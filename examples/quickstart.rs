//! Quickstart: solve an unsatisfiable formula, record the resolve trace,
//! and validate the UNSAT claim with both independent checkers.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rescheck::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The pigeonhole principle: 5 pigeons do not fit into 4 holes.
    // A classic formula that is unsatisfiable for non-obvious reasons.
    let instance = rescheck::workloads::pigeonhole::instance(4);
    let cnf = &instance.cnf;
    println!("instance: {instance}");

    // Solve while streaming the resolve trace into memory.
    let mut solver = Solver::from_cnf(cnf, SolverConfig::default());
    let mut trace = MemorySink::new();
    let result = solver.solve_traced(&mut trace)?;
    println!("solver says: {result}");
    println!("solver stats: {}", solver.stats());

    match result {
        SolveResult::Satisfiable(model) => {
            // The easy direction: check the model in linear time.
            check_sat_claim(cnf, &model)?;
            println!("model verified");
        }
        SolveResult::Unsatisfiable => {
            // The interesting direction: independently re-derive the
            // empty clause by resolution, two ways.
            for strategy in [Strategy::DepthFirst, Strategy::BreadthFirst] {
                let outcome = check_unsat_claim(cnf, &trace, strategy, &CheckConfig::default())?;
                println!("{}", outcome.stats);
                if let Some(core) = outcome.core {
                    println!(
                        "  unsat core: {} of {} original clauses over {} variables",
                        core.num_clauses(),
                        cnf.num_clauses(),
                        core.num_vars()
                    );
                }
            }
            println!("UNSAT claim validated ✓");
        }
        SolveResult::Unknown => unreachable!("no conflict budget configured"),
    }
    Ok(())
}
