//! Combinational equivalence checking, the EDA flow the paper's
//! `c5135`/`c7225` instances come from.
//!
//! Two adder implementations — ripple-carry and carry-select — are
//! mitered together. If the miter output can never be 1 the designs are
//! equivalent; the SAT solver proves that with an UNSAT answer, and the
//! resolution checker validates the proof so the signoff does not rest
//! on trusting the solver. A deliberately buggy adder shows the SAT
//! side: the model is a concrete counterexample input.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example equivalence_checking
//! ```

use rescheck::circuit::{arith, bits_to_u64, miter, Circuit};
use rescheck::prelude::*;

const WIDTH: usize = 12;

fn ripple_adder() -> Circuit {
    let mut c = Circuit::new();
    let a = c.input_word(WIDTH);
    let b = c.input_word(WIDTH);
    let sum = arith::ripple_carry_add(&mut c, &a, &b);
    c.set_outputs(sum);
    c
}

fn carry_select_adder() -> Circuit {
    let mut c = Circuit::new();
    let a = c.input_word(WIDTH);
    let b = c.input_word(WIDTH);
    let sum = arith::carry_select_add(&mut c, &a, &b, 3);
    c.set_outputs(sum);
    c
}

/// A carry-select adder with a wrong block boundary mux polarity.
fn buggy_adder() -> Circuit {
    let mut c = Circuit::new();
    let a = c.input_word(WIDTH);
    let b = c.input_word(WIDTH);
    let mut sum = arith::carry_select_add(&mut c, &a, &b, 3);
    // Sabotage one middle sum bit.
    let flipped = c.not(sum[WIDTH / 2]);
    sum[WIDTH / 2] = flipped;
    c.set_outputs(sum);
    c
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- The good pair: prove equivalence, then validate the proof. ---
    let spec = ripple_adder();
    let imp = carry_select_adder();
    let cnf = miter::equivalence_cnf(&spec, &imp)?;
    println!(
        "equivalence CNF: {} vars, {} clauses",
        cnf.num_vars(),
        cnf.num_clauses()
    );

    let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
    let mut trace = MemorySink::new();
    let result = solver.solve_traced(&mut trace)?;
    assert!(result.is_unsat(), "the adders are equivalent");
    println!("solver: UNSAT → designs equivalent ({})", solver.stats());

    let outcome = check_depth_first(&cnf, &trace, &CheckConfig::default())?;
    println!("proof validated: {}", outcome.stats);

    // --- The buggy pair: find and decode a counterexample. ---
    let buggy = buggy_adder();
    let m = miter::miter(&spec, &buggy)?;
    let enc = rescheck::circuit::tseitin::encode(&m);
    let mut bug_cnf = enc.cnf.clone();
    bug_cnf.add_clause([enc.output_lits[0]]);

    let mut solver = Solver::from_cnf(&bug_cnf, SolverConfig::default());
    let result = solver.solve();
    let model = result.model().expect("the bug must be found");
    check_sat_claim(&bug_cnf, model)?;

    // Decode the failing input vector from the model.
    let input_bits: Vec<bool> = enc
        .input_vars
        .iter()
        .map(|&v| model.value(v) == LBool::True)
        .collect();
    let x = bits_to_u64(&input_bits[..WIDTH]);
    let y = bits_to_u64(&input_bits[WIDTH..]);
    let good = bits_to_u64(&spec.simulate(&input_bits));
    let bad = bits_to_u64(&buggy.simulate(&input_bits));
    println!("bug found: {x} + {y} = {good}, but the buggy adder says {bad}");
    assert_ne!(good, bad);
    Ok(())
}
