//! Proof analytics and trimming — the "other applications" of §4/§5.
//!
//! A validated proof is also an artifact worth studying and archiving:
//! this example measures the resolution-DAG shape of each benchmark
//! family's proof (depth, needed fraction, resolution counts), trims the
//! traces down to their needed subgraphs, and shows how the hybrid
//! checker handles what depth-first cannot.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example proof_analytics
//! ```

use rescheck::prelude::*;
use rescheck::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let instances = vec![
        workloads::pigeonhole::instance(6),
        workloads::parity::tseitin_cubic(12),
        workloads::equiv::adder_miter(10),
        workloads::bmc::longmult(4),
        workloads::bmc::sequential_multiplier(3, 5),
        workloads::pipeline::pipe(8, 2),
        workloads::routing::congested_channel(4, 12, 9),
        workloads::planning::agent_swap(6, 10),
    ];

    println!(
        "{:<22} {:>7} {:>7} {:>6} {:>6} {:>9} {:>7} {:>8}",
        "instance", "learned", "needed", "need%", "depth", "resols", "trim%", "core"
    );
    for instance in instances {
        let mut solver = Solver::from_cnf(&instance.cnf, SolverConfig::default());
        let mut trace = MemorySink::new();
        let result = solver.solve_traced(&mut trace)?;
        assert!(result.is_unsat(), "{}", instance.name);

        // Structural analytics — no clause is ever rebuilt.
        let stats = proof_stats(&instance.cnf, &trace)?;

        // Trim to the needed subgraph and confirm the result still
        // validates (with the hybrid strategy, for variety).
        let trimmed = trim_trace(&instance.cnf, &trace)?;
        let outcome = check_unsat_claim(
            &instance.cnf,
            &trimmed.events,
            Strategy::Hybrid,
            &CheckConfig::default(),
        )?;
        assert!(outcome.core.is_some());

        println!(
            "{:<22} {:>7} {:>7} {:>5.0}% {:>6} {:>9} {:>6.0}% {:>4}/{:<4}",
            instance.name,
            stats.learned_total,
            stats.needed,
            stats.needed_percent(),
            stats.depth,
            stats.derivation_resolutions,
            trimmed.kept_percent(),
            trimmed.core.num_clauses(),
            instance.num_clauses(),
        );
    }

    println!();
    println!(
        "Reading the table: xor-heavy proofs (longmult, tseitin) need most of what \
         they learn; padded instances (routing) have small cores; every trimmed \
         trace re-validated under the hybrid checker."
    );
    Ok(())
}
