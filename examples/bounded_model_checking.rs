//! Bounded model checking with validated UNSAT answers (the paper's
//! `barrel`/`longmult` flow, after Biere et al.).
//!
//! A BMC run that *finds* a bug hands back a trace anyone can replay.
//! A BMC run that returns UNSAT — "the property holds up to bound k" —
//! is only as trustworthy as the solver… unless the solver's resolution
//! proof is independently checked, which is what this example does.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example bounded_model_checking
//! ```

use rescheck::circuit::seq::token_ring;
use rescheck::prelude::*;
use rescheck::workloads::bmc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Safe design: the rotating one-hot token ring. ---
    let positions = 8;
    let ring = token_ring(positions);
    for bound in [4, 8, 16] {
        let cnf = ring.unroll_to_cnf(bound);
        let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
        let mut trace = MemorySink::new();
        let result = solver.solve_traced(&mut trace)?;
        assert!(result.is_unsat(), "the invariant holds");

        let outcome = check_unsat_claim(
            &cnf,
            &trace,
            Strategy::BreadthFirst,
            &CheckConfig::default(),
        )?;
        println!(
            "token ring, bound {bound:>2}: safe (proof checked: {} learned clauses rebuilt, {} resolutions)",
            outcome.stats.clauses_built, outcome.stats.resolutions
        );
    }

    // --- Buggy design: the shifter that drops its token at the wrap. ---
    let depth = 6;
    for bound in [depth - 1, depth] {
        let instance = bmc::barrel_broken(depth, bound);
        let mut solver = Solver::from_cnf(&instance.cnf, SolverConfig::default());
        let mut trace = MemorySink::new();
        match solver.solve_traced(&mut trace)? {
            SolveResult::Unsatisfiable => {
                check_unsat_claim(
                    &instance.cnf,
                    &trace,
                    Strategy::DepthFirst,
                    &CheckConfig::default(),
                )?;
                println!("broken shifter, bound {bound}: no bug reachable yet (proof checked)");
            }
            SolveResult::Satisfiable(model) => {
                check_sat_claim(&instance.cnf, &model)?;
                println!(
                    "broken shifter, bound {bound}: BUG — the token can be lost in {bound} steps"
                );
            }
            SolveResult::Unknown => unreachable!(),
        }
    }

    // --- The resolution-hard one: unrolled multiplier equivalence. ---
    let instance = bmc::longmult(5);
    let mut solver = Solver::from_cnf(&instance.cnf, SolverConfig::default());
    let mut trace = MemorySink::new();
    assert!(solver.solve_traced(&mut trace)?.is_unsat());
    let df = check_unsat_claim(
        &instance.cnf,
        &trace,
        Strategy::DepthFirst,
        &CheckConfig::default(),
    )?;
    println!(
        "{}: xor-heavy proof, depth-first rebuilt {:.0}% of {} learned clauses",
        instance.name,
        df.stats.built_percent(),
        df.stats.learned_in_trace
    );
    Ok(())
}
