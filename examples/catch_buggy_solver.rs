//! Catching a buggy solver — the reason the checker exists.
//!
//! "During the recent SAT 2002 solver competition, quite a few submitted
//! SAT solvers were found to be buggy. Thus, a rigorous checker is needed
//! to validate the solvers." (paper §3)
//!
//! This example simulates four distinct solver/trace-generation bugs by
//! corrupting a genuine trace, and shows the diagnostic the checker
//! produces for each — precise enough to start debugging from.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example catch_buggy_solver
//! ```

use rescheck::prelude::*;
use rescheck::trace::TraceEvent;
use rescheck::workloads::pigeonhole;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let instance = pigeonhole::instance(5);
    let cnf = &instance.cnf;

    // A correct solver produces a genuine trace…
    let mut solver = Solver::from_cnf(cnf, SolverConfig::default());
    let mut sink = MemorySink::new();
    assert!(solver.solve_traced(&mut sink)?.is_unsat());
    let genuine = sink.into_events();
    for strategy in [
        Strategy::DepthFirst,
        Strategy::BreadthFirst,
        Strategy::Hybrid,
    ] {
        check_unsat_claim(cnf, &genuine, strategy, &CheckConfig::default())?;
    }
    println!("genuine trace: accepted ✓\n");

    // …and each simulated bug is caught with a specific diagnostic.
    type BugInjection = Box<dyn Fn(&mut Vec<TraceEvent>)>;
    let bugs: Vec<(&str, BugInjection)> = vec![
        (
            "learning records the wrong antecedent id",
            Box::new(|events| {
                for e in events.iter_mut() {
                    if let TraceEvent::Learned { sources, .. } = e {
                        if sources.len() >= 3 {
                            sources[1] = sources[1].wrapping_add(1);
                            return;
                        }
                    }
                }
            }),
        ),
        (
            "a resolve source is dropped",
            Box::new(|events| {
                for e in events.iter_mut() {
                    if let TraceEvent::Learned { sources, .. } = e {
                        if sources.len() >= 3 {
                            sources.remove(1);
                            return;
                        }
                    }
                }
            }),
        ),
        (
            "a level-0 implication has its value flipped",
            Box::new(|events| {
                for e in events.iter_mut() {
                    if let TraceEvent::LevelZero { lit, .. } = e {
                        *lit = !*lit;
                        return;
                    }
                }
            }),
        ),
        (
            "the final conflict points at a satisfied clause",
            Box::new(|events| {
                for e in events.iter_mut() {
                    if let TraceEvent::FinalConflict { id } = e {
                        *id = 0; // an at-least-one clause, satisfied at level 0
                        return;
                    }
                }
            }),
        ),
    ];

    for (description, inject) in bugs {
        let mut corrupted = genuine.clone();
        inject(&mut corrupted);
        println!("bug: {description}");
        for strategy in [
            Strategy::DepthFirst,
            Strategy::BreadthFirst,
            Strategy::Hybrid,
        ] {
            match check_unsat_claim(cnf, &corrupted, strategy, &CheckConfig::default()) {
                Ok(_) => println!("  {strategy:13} MISSED THE BUG (should never happen)"),
                Err(e) => println!("  {strategy:13} rejected: {e}"),
            }
        }
        println!();
    }
    Ok(())
}
