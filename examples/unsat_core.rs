//! Unsatisfiable-core extraction for design debugging (paper §4).
//!
//! An FPGA routing channel is unroutable. The formula says so (UNSAT),
//! but a designer needs to know *why*. The depth-first checker's unsat
//! core names the original clauses the proof actually used; iterating
//! solve → check → shrink (Table 3) narrows it to the congested nets.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example unsat_core
//! ```

use rescheck::prelude::*;
use rescheck::workloads::routing;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 4 tracks, a 5-net congestion, and 30 innocent nets elsewhere.
    let tracks = 4;
    let easy_nets = 30;
    let instance = routing::congested_channel(tracks, easy_nets, 7);
    let cnf = &instance.cnf;
    println!("channel: {instance}");

    // Prove unroutability with a checkable trace.
    let mut solver = Solver::from_cnf(cnf, SolverConfig::default());
    let mut trace = MemorySink::new();
    assert!(solver.solve_traced(&mut trace)?.is_unsat());
    println!("channel is unroutable (validated below)");

    // One depth-first check gives the first core for free.
    let outcome = check_depth_first(cnf, &trace, &CheckConfig::default())?;
    let first = outcome.core.expect("depth-first yields a core");
    println!(
        "after 1 iteration: {:>5} of {} clauses, {:>4} of {} variables",
        first.num_clauses(),
        cnf.num_clauses(),
        first.num_vars(),
        cnf.num_used_vars(),
    );

    // Iterate to a fixed point, as in the paper's Table 3.
    let minimized = minimize_core(cnf, &SolverConfig::default(), 30)?;
    for (i, it) in minimized.iterations.iter().enumerate() {
        println!(
            "after {} iteration(s): {:>5} clauses, {:>4} variables",
            i + 1,
            it.num_clauses,
            it.num_vars
        );
    }
    println!(
        "fixed point: {} (after {} iterations)",
        minimized.reached_fixed_point,
        minimized.iterations.len()
    );

    // Which nets does the final core talk about? Every variable
    // `net * tracks + t` maps back to a net index.
    let core = minimized.final_core(cnf);
    let mut nets: Vec<usize> = core
        .to_subformula(cnf)
        .clauses()
        .flat_map(|c| c.iter().map(|l| l.var().index() / tracks))
        .collect();
    nets.sort_unstable();
    nets.dedup();
    println!(
        "the core blames nets {nets:?} — the {} congested nets, none of the {} easy ones",
        tracks + 1,
        easy_nets
    );
    assert!(nets.len() <= tracks + 1);

    // The core alone is still unroutable — re-solve it to be sure.
    let sub = core.to_subformula(cnf);
    let mut sub_solver = Solver::from_cnf(&sub, SolverConfig::default());
    assert!(sub_solver.solve().is_unsat());
    println!("core re-solved: still UNSAT ✓");
    Ok(())
}
