//! `proof_format` jobs through a live daemon: clausal proofs (DRAT and
//! LRAT) must reach the same verdicts the native trace path reaches, and
//! defective or unreadable proofs must map onto the existing verdict
//! statuses — never a new failure mode, never a dead worker.

mod common;

use common::*;
use rescheck_interop::export_lrat;
use rescheck_obs::json::Json;
use rescheck_serve::{LineOutcome, ServeConfig, Server};
use rescheck_solver::{Solver, SolverConfig};
use rescheck_trace::MemorySink;

fn submit_all(lines: &[String]) -> Vec<Json> {
    let server = Server::start(ServeConfig {
        workers: 2,
        queue_depth: 64,
        ..ServeConfig::default()
    });
    let buf = SharedBuf::new();
    let reply = buf.reply();
    for line in lines {
        assert_eq!(server.handle_line(line, &reply), LineOutcome::Submitted);
    }
    let frames = buf.wait_frames(lines.len());
    server.shutdown();
    frames
}

fn status_by_id(frames: &[Json]) -> std::collections::BTreeMap<String, String> {
    frames
        .iter()
        .map(|f| {
            (
                f.get("id").unwrap().as_str().unwrap().to_string(),
                f.get("status").unwrap().as_str().unwrap().to_string(),
            )
        })
        .collect()
}

#[test]
fn clausal_proof_jobs_reach_native_verdicts() {
    let cnf = pigeonhole(2);
    let cnf_json = Json::from(cnf_text(&cnf).as_str());

    // A real LRAT proof, produced by the exporter from a solver trace.
    let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
    let mut sink = MemorySink::new();
    assert!(solver.solve_traced(&mut sink).expect("solve").is_unsat());
    let exported = export_lrat(&cnf, sink.events()).expect("export");
    let mut lrat_text = Vec::new();
    rescheck_interop::lrat::write_text(&mut lrat_text, &exported.steps).unwrap();
    let lrat_text = String::from_utf8(lrat_text).unwrap();

    let lines = vec![
        job_frame(
            "lrat-good",
            &[
                ("cnf", cnf_json.clone()),
                ("trace", Json::from(lrat_text.as_str())),
                ("proof_format", Json::from("lrat")),
                ("strategy", Json::from("pdag")),
            ],
        ),
        // The same claim as a hint-free DRAT proof. Unit propagation on
        // PHP(2) refutes it after the two unit lemmas below.
        job_frame(
            "drat-good",
            &[
                ("cnf", cnf_json.clone()),
                ("trace", Json::from("-1 0\n-4 0\n0\n")),
                ("proof_format", Json::from("drat")),
            ],
        ),
        // Parses, proves nothing: a non-unit RUP addition then silence.
        job_frame(
            "drat-stall",
            &[
                ("cnf", cnf_json.clone()),
                ("trace", Json::from("-1 -4 0\n")),
                ("proof_format", Json::from("drat")),
            ],
        ),
        // Not a proof at all.
        job_frame(
            "drat-garbage",
            &[
                ("cnf", cnf_json.clone()),
                ("trace", Json::from("one two 0\n")),
                ("proof_format", Json::from("drat")),
            ],
        ),
        // Missing proof file.
        job_frame(
            "lrat-missing",
            &[
                ("cnf", cnf_json.clone()),
                ("trace_path", Json::from("/nonexistent/proof.lrat")),
                ("proof_format", Json::from("lrat")),
            ],
        ),
    ];
    let frames = submit_all(&lines);
    let statuses = status_by_id(&frames);
    assert_eq!(statuses["lrat-good"], "valid");
    assert_eq!(statuses["drat-good"], "valid");
    assert_eq!(statuses["drat-stall"], "proof-defect");
    assert_eq!(statuses["drat-garbage"], "io-error");
    assert_eq!(statuses["lrat-missing"], "io-error");

    // The valid verdicts ran the real checker on the synthesized trace:
    // they carry checker stats like any native-trace job.
    for frame in &frames {
        let id = frame.get("id").unwrap().as_str().unwrap();
        if statuses[id] == "valid" {
            assert!(frame.get("stats").is_some(), "{id}: no checker stats");
        }
    }
}
