//! The acceptance campaign: a 100-job mixed workload through
//! `rescheck serve` must match one-shot checking bit-for-bit (same
//! statuses, same stats), and must do so identically whether the daemon
//! runs one worker or four.

mod common;

use common::*;
use rescheck_bench::report;
use rescheck_checker::{check_sat_claim, check_unsat_claim, CheckConfig, FailureKind, Strategy};
use rescheck_cnf::{Assignment, Cnf, Lit};
use rescheck_obs::json::Json;
use rescheck_serve::{LineOutcome, ServeConfig, Server};
use rescheck_trace::{read_all, MemorySink, TraceFormat};
use std::collections::BTreeMap;
use std::io::Cursor;

/// Deterministic strategies only: portfolio races two threads and its
/// reported stats depend on which racer wins.
const STRATEGIES: [(&str, Strategy); 5] = [
    ("df", Strategy::DepthFirst),
    ("bf", Strategy::BreadthFirst),
    ("hybrid", Strategy::Hybrid),
    ("pbf", Strategy::ParallelBf),
    ("dfd", Strategy::DiskDepthFirst),
];

struct Case {
    id: String,
    line: String,
    /// `(status, comparable-stats)` the daemon must reproduce.
    expected: (String, Option<Json>),
}

/// The stats fields compared bit-for-bit between serve and one-shot
/// (floats and wall-clock excluded).
const COMPARED_STATS: [&str; 5] = [
    "learned_in_trace",
    "clauses_built",
    "resolutions",
    "peak_memory_bytes",
    "trace_bytes",
];

fn comparable_stats(stats: &Json) -> Json {
    let mut out = Json::object();
    for key in COMPARED_STATS {
        out.set(key, stats.get(key).cloned().unwrap_or(Json::Null));
    }
    out.set(
        "strategy",
        stats.get("strategy").cloned().unwrap_or(Json::Null),
    );
    out
}

fn failure_status(kind: FailureKind) -> &'static str {
    match kind {
        FailureKind::ProofDefect => "proof-defect",
        FailureKind::ResourceLimit => "resource-limit",
        FailureKind::Io => "io-error",
        FailureKind::Cancelled => "cancelled",
        FailureKind::Internal => "internal-error",
    }
}

/// Runs the one-shot checker the way `rescheck check` would, producing
/// the `(status, stats)` the daemon must match.
fn one_shot_unsat(
    cnf: &Cnf,
    trace_text: &str,
    strategy: Strategy,
    memory: Option<u64>,
) -> (String, Option<Json>) {
    let events =
        read_all(Cursor::new(trace_text.as_bytes()), TraceFormat::Ascii).expect("trace parses");
    let trace = MemorySink::from(events);
    let config = CheckConfig {
        memory_limit: memory,
        jobs: 1,
        ..CheckConfig::default()
    };
    match check_unsat_claim(cnf, &trace, strategy, &config) {
        Ok(outcome) => (
            "valid".to_string(),
            Some(comparable_stats(&report::check_stats_json(&outcome.stats))),
        ),
        Err(e) => (failure_status(e.kind()).to_string(), None),
    }
}

fn unsat_case(
    id: String,
    cnf: &Cnf,
    cnf_str: &str,
    trace_text: &str,
    strategy_name: &str,
    strategy: Strategy,
    memory: Option<u64>,
) -> Case {
    let mut fields = vec![
        ("cnf", Json::Str(cnf_str.to_string())),
        ("trace", Json::Str(trace_text.to_string())),
        ("strategy", Json::Str(strategy_name.to_string())),
    ];
    if let Some(bytes) = memory {
        fields.push(("memory_bytes", Json::UInt(bytes)));
    }
    Case {
        line: job_frame(&id, &fields),
        expected: one_shot_unsat(cnf, trace_text, strategy, memory),
        id,
    }
}

fn sat_case(id: String, cnf: &Cnf, cnf_str: &str, model: &[i64]) -> Case {
    let mut assignment = Assignment::new(cnf.num_vars());
    for &l in model {
        assignment.assign(Lit::from_dimacs(l));
    }
    let expected = match check_sat_claim(cnf, &assignment) {
        Ok(()) => ("valid".to_string(), None),
        Err(_) => ("model-defect".to_string(), None),
    };
    let lits = model.iter().map(|&l| Json::Int(l)).collect();
    Case {
        line: job_frame(
            &id,
            &[
                ("cnf", Json::Str(cnf_str.to_string())),
                ("model", Json::Array(lits)),
            ],
        ),
        expected,
        id,
    }
}

/// Builds the 100-job mixed campaign: valid UNSAT proofs across every
/// deterministic strategy, defective proofs (formula/trace mismatches),
/// valid and defective SAT models, and memory-starved jobs.
fn build_campaign() -> Vec<Case> {
    let formulas: Vec<(String, Cnf)> = vec![
        ("php2".into(), pigeonhole(2)),
        ("php3".into(), pigeonhole(3)),
        ("php4".into(), pigeonhole(4)),
        ("chain20".into(), unsat_chain(20)),
    ];
    let prepared: Vec<(String, Cnf, String, String)> = formulas
        .into_iter()
        .map(|(name, cnf)| {
            let text = cnf_text(&cnf);
            let trace = unsat_trace_text(&cnf);
            (name, cnf, text, trace)
        })
        .collect();

    let mut cases = Vec::new();

    // 40 valid UNSAT: 4 formulas × 5 strategies × 2 rounds (the repeat
    // round exercises warm formula-cache + scratch reuse paths).
    for round in 0..2 {
        for (name, cnf, text, trace) in &prepared {
            for (sname, strategy) in STRATEGIES {
                cases.push(unsat_case(
                    format!("ok-{name}-{sname}-r{round}"),
                    cnf,
                    text,
                    trace,
                    sname,
                    strategy,
                    None,
                ));
            }
        }
    }

    // 20 proof defects: each formula checked against the next formula's
    // trace — ids resolve, resolutions do not.
    for (i, (name, cnf, text, _)) in prepared.iter().enumerate() {
        let wrong_trace = &prepared[(i + 1) % prepared.len()].3;
        for (sname, strategy) in STRATEGIES {
            cases.push(unsat_case(
                format!("defect-{name}-{sname}"),
                cnf,
                text,
                wrong_trace,
                sname,
                strategy,
                None,
            ));
        }
    }

    // 15 memory-starved: 64 bytes is below any real clause budget.
    for (name, cnf, text, trace) in prepared.iter().take(3) {
        for (sname, strategy) in STRATEGIES {
            cases.push(unsat_case(
                format!("oom-{name}-{sname}"),
                cnf,
                text,
                trace,
                sname,
                strategy,
                Some(64),
            ));
        }
    }

    // 15 valid SAT + 10 model defects.
    for k in 0..15 {
        let mut cnf = Cnf::new();
        for c in 0..(k % 4) + 1 {
            cnf.add_dimacs_clause(&[(c as i64) + 1, -1 - (c as i64)]);
        }
        let text = cnf_text(&cnf);
        let model: Vec<i64> = (1..=cnf.num_vars() as i64).collect();
        cases.push(sat_case(format!("sat-{k}"), &cnf, &text, &model));
    }
    for k in 0..10 {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1, 2]);
        cnf.add_dimacs_clause(&[(k as i64) + 1]);
        let text = cnf_text(&cnf);
        let model: Vec<i64> = (1..=cnf.num_vars() as i64).map(|v| -v).collect();
        cases.push(sat_case(format!("badmodel-{k}"), &cnf, &text, &model));
    }

    assert_eq!(cases.len(), 100);
    cases
}

/// Runs the whole campaign through a daemon with `workers` workers and
/// returns each job's `(status, comparable-stats)` by id.
fn run_campaign(cases: &[Case], workers: usize) -> BTreeMap<String, (String, Option<Json>)> {
    let server = Server::start(ServeConfig {
        workers,
        queue_depth: 256, // the whole campaign must be admitted, not shed
        ..ServeConfig::default()
    });
    let buf = SharedBuf::new();
    let reply = buf.reply();
    for case in cases {
        assert_eq!(
            server.handle_line(&case.line, &reply),
            LineOutcome::Submitted,
            "{}",
            case.line
        );
    }
    let frames = buf.wait_frames(cases.len());
    server.shutdown();

    let mut results = BTreeMap::new();
    for frame in &frames {
        let id = frame.get("id").unwrap().as_str().unwrap().to_string();
        let status = status_of(frame).to_string();
        let stats = frame.get("stats").map(comparable_stats);
        assert!(
            results.insert(id.clone(), (status, stats)).is_none(),
            "duplicate verdict for {id}"
        );
    }
    results
}

#[test]
fn hundred_job_campaign_matches_one_shot_checking_for_any_worker_count() {
    let cases = build_campaign();

    let solo = run_campaign(&cases, 1);
    let fleet = run_campaign(&cases, 4);

    // Determinism: worker count must not change a single verdict.
    assert_eq!(solo, fleet);

    // Parity: every verdict matches the one-shot checker bit-for-bit.
    for case in &cases {
        let id = &case.id;
        let (status, stats) = solo
            .get(id)
            .unwrap_or_else(|| panic!("no verdict for {id}"));
        assert_eq!(status, &case.expected.0, "status mismatch for {id}");
        assert_eq!(stats, &case.expected.1, "stats mismatch for {id}");
    }

    // The campaign genuinely exercised distinct verdict classes.
    let statuses: std::collections::BTreeSet<&str> =
        solo.values().map(|(s, _)| s.as_str()).collect();
    for expected in ["valid", "proof-defect", "resource-limit", "model-defect"] {
        assert!(
            statuses.contains(expected),
            "campaign never produced {expected}: {statuses:?}"
        );
    }
}
