//! Shared helpers for the serve integration tests.

#![allow(dead_code)]

use rescheck_cnf::{dimacs, Cnf};
use rescheck_obs::json::{self, Json};
use rescheck_serve::Reply;
use rescheck_solver::{Solver, SolverConfig};
use rescheck_trace::AsciiWriter;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A clonable in-memory sink that can serve as a verdict [`Reply`] while
/// the test keeps reading what accumulated.
#[derive(Clone, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    pub fn new() -> SharedBuf {
        SharedBuf::default()
    }

    pub fn reply(&self) -> Reply {
        Arc::new(Mutex::new(Box::new(self.clone())))
    }

    pub fn text(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).expect("utf8 output")
    }

    /// Every complete frame written so far.
    pub fn frames(&self) -> Vec<Json> {
        self.text()
            .lines()
            .filter(|line| !line.trim().is_empty())
            .map(|line| json::parse(line).expect("reply frame parses"))
            .collect()
    }

    /// Polls until at least `n` frames have been written.
    pub fn wait_frames(&self, n: usize) -> Vec<Json> {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let frames = self.frames();
            if frames.len() >= n {
                return frames;
            }
            assert!(
                Instant::now() < deadline,
                "timed out waiting for {n} frames; have {}:\n{}",
                frames.len(),
                self.text()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The pigeonhole principle with `holes + 1` pigeons: small, genuinely
/// UNSAT, and requires real resolution (not just unit propagation).
pub fn pigeonhole(holes: usize) -> Cnf {
    let pigeons = holes + 1;
    let var = |p: usize, h: usize| (p * holes + h + 1) as i64;
    let mut cnf = Cnf::new();
    for p in 0..pigeons {
        let clause: Vec<i64> = (0..holes).map(|h| var(p, h)).collect();
        cnf.add_dimacs_clause(&clause);
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                cnf.add_dimacs_clause(&[-var(p1, h), -var(p2, h)]);
            }
        }
    }
    cnf
}

/// An unsatisfiable implication chain `x1, x_i → x_{i+1}, ¬x_k`.
pub fn unsat_chain(k: usize) -> Cnf {
    let mut cnf = Cnf::new();
    cnf.add_dimacs_clause(&[1]);
    for i in 1..k {
        cnf.add_dimacs_clause(&[-(i as i64), (i + 1) as i64]);
    }
    cnf.add_dimacs_clause(&[-(k as i64)]);
    cnf
}

pub fn cnf_text(cnf: &Cnf) -> String {
    let mut buf = Vec::new();
    dimacs::write(&mut buf, cnf).expect("write DIMACS");
    String::from_utf8(buf).expect("DIMACS is utf8")
}

/// Solves `cnf` (which must be UNSAT) and returns its ASCII resolve
/// trace.
pub fn unsat_trace_text(cnf: &Cnf) -> String {
    let mut solver = Solver::from_cnf(cnf, SolverConfig::default());
    let mut writer = AsciiWriter::new(Vec::new());
    let result = solver.solve_traced(&mut writer).expect("solve");
    assert!(result.is_unsat(), "test formula must be UNSAT");
    String::from_utf8(writer.into_inner()).expect("trace is utf8")
}

/// Builds a job frame line with proper JSON escaping.
pub fn job_frame(id: &str, fields: &[(&str, Json)]) -> String {
    let mut frame = Json::object();
    frame.set("id", id);
    for (key, value) in fields {
        frame.set(key, value.clone());
    }
    frame.to_string()
}

/// Pulls the status string out of a verdict frame.
pub fn status_of(frame: &Json) -> &str {
    frame
        .get("status")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("frame without status: {frame}"))
}

/// Finds the verdict for a job id.
pub fn verdict_for<'a>(frames: &'a [Json], id: &str) -> &'a Json {
    frames
        .iter()
        .find(|f| f.get("id").and_then(Json::as_str) == Some(id))
        .unwrap_or_else(|| panic!("no verdict for job {id}"))
}
