//! Wire-protocol robustness: malformed frames, backpressure, timeouts,
//! panic isolation. The invariant under test throughout: the daemon
//! answers *every* line with a frame and never dies or disconnects.

mod common;

use common::*;
use rescheck_obs::json::Json;
use rescheck_serve::{serve_io, LineOutcome, ServeConfig, Server};
use std::io::Cursor;
use std::time::{Duration, Instant};

fn one_worker() -> ServeConfig {
    ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    }
}

/// A trivially satisfiable job used where the claim's content is
/// irrelevant to the scenario.
fn sat_job(id: &str, extra: &[(&str, Json)]) -> String {
    let mut fields = vec![
        ("cnf", Json::Str("p cnf 1 1\n1 0\n".to_string())),
        ("model", Json::Array(vec![Json::Int(1)])),
    ];
    fields.extend(extra.iter().cloned());
    job_frame(id, &fields)
}

#[test]
fn malformed_frames_each_get_a_verdict_and_the_session_survives() {
    let server = Server::start(one_worker());
    let buf = SharedBuf::new();
    let reply = buf.reply();

    let bad_lines = [
        r#"{"id":"trunc","#,                                     // truncated JSON
        r#"[1,2,3]"#,                                            // not an object
        r#"{"op":"selfdestruct"}"#,                              // unknown op
        r#"{"cnf":"x","trace":"t"}"#,                            // missing id
        r#"{"id":"s","cnf":"x","trace":"t","strategy":"warp"}"#, // unknown strategy
        r#"{"id":"k","cnf":"x","trace":"t","zebra":1}"#,         // unknown key
        r#"{"id":"noclaim","cnf":"x"}"#,                         // no evidence
    ];
    for line in bad_lines {
        assert_eq!(
            server.handle_line(line, &reply),
            LineOutcome::Replied,
            "{line}"
        );
    }
    let frames = buf.wait_frames(bad_lines.len());
    for frame in &frames {
        assert_eq!(status_of(frame), "malformed");
        assert!(frame.get("error").is_some(), "{frame}");
    }
    // Recoverable ids are echoed so drivers can correlate.
    assert_eq!(
        verdict_for(&frames, "s")
            .get("error")
            .unwrap()
            .as_str()
            .unwrap(),
        "unknown strategy \"warp\""
    );

    // The session is still fully usable: a real job round-trips.
    let cnf = pigeonhole(3);
    let line = job_frame(
        "after-the-garbage",
        &[
            ("cnf", Json::Str(cnf_text(&cnf))),
            ("trace", Json::Str(unsat_trace_text(&cnf))),
        ],
    );
    assert_eq!(server.handle_line(&line, &reply), LineOutcome::Submitted);
    let frames = buf.wait_frames(bad_lines.len() + 1);
    assert_eq!(
        status_of(verdict_for(&frames, "after-the-garbage")),
        "valid"
    );

    let snapshot = server.metrics_snapshot();
    assert_eq!(
        snapshot.counter("serve.frames_malformed"),
        Some(bad_lines.len() as u64)
    );
    server.shutdown();
}

#[test]
fn oversized_frames_are_rejected_without_parsing() {
    let server = Server::start(ServeConfig {
        workers: 1,
        max_frame_bytes: 256,
        ..ServeConfig::default()
    });
    let buf = SharedBuf::new();
    let reply = buf.reply();
    let huge = format!(r#"{{"id":"big","cnf":"{}","trace":"t"}}"#, "x".repeat(1000));
    assert_eq!(server.handle_line(&huge, &reply), LineOutcome::Replied);
    let frames = buf.wait_frames(1);
    assert_eq!(status_of(&frames[0]), "malformed");
    assert!(frames[0]
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("256-byte limit"));
    // Still alive.
    assert_eq!(
        server.handle_line(r#"{"op":"ping"}"#, &reply),
        LineOutcome::Replied
    );
    server.shutdown();
}

#[test]
fn full_queue_sheds_with_busy_and_recovers() {
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    });
    let buf = SharedBuf::new();
    let reply = buf.reply();

    // One worker + one queue slot: of five instant submissions of
    // 250 ms jobs, at most two are admitted; the rest shed as `busy`.
    let mut admitted = 0;
    let mut shed = 0;
    for i in 0..5 {
        let line = sat_job(
            &format!("burst-{i}"),
            &[("inject", Json::Str("sleep:250".into()))],
        );
        match server.handle_line(&line, &reply) {
            LineOutcome::Submitted => admitted += 1,
            LineOutcome::Replied => shed += 1,
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    assert!(admitted <= 2, "admitted {admitted}");
    assert_eq!(shed, 5 - admitted);
    assert!(shed >= 3);

    let frames = buf.wait_frames(5);
    let busy = frames.iter().filter(|f| status_of(f) == "busy").count();
    let valid = frames.iter().filter(|f| status_of(f) == "valid").count();
    assert_eq!(busy, shed);
    assert_eq!(valid, admitted);

    // Burst over: the daemon accepts work again.
    let line = sat_job("after-the-burst", &[]);
    assert_eq!(server.handle_line(&line, &reply), LineOutcome::Submitted);
    let frames = buf.wait_frames(6);
    assert_eq!(status_of(verdict_for(&frames, "after-the-burst")), "valid");

    let snapshot = server.metrics_snapshot();
    assert_eq!(snapshot.counter("serve.jobs_shed"), Some(shed as u64));
    assert_eq!(snapshot.counter("serve.jobs_submitted"), Some(6));
    assert!(snapshot.histogram("serve.queue_depth").is_some());
    assert!(snapshot.histogram("serve.job_wall_us").is_some());
    server.shutdown();
}

#[test]
fn zero_timeout_yields_a_deterministic_timeout_verdict() {
    let cnf = pigeonhole(3);
    let job = job_frame(
        "deadline",
        &[
            ("cnf", Json::Str(cnf_text(&cnf))),
            ("trace", Json::Str(unsat_trace_text(&cnf))),
            ("timeout_ms", Json::UInt(0)),
        ],
    );
    let input = format!("{job}\n{{\"op\":\"shutdown\"}}\n");
    let buf = SharedBuf::new();
    serve_io(one_worker(), Cursor::new(input), Box::new(buf.clone())).unwrap();
    let frames = buf.frames();
    let verdict = verdict_for(&frames, "deadline");
    assert_eq!(status_of(verdict), "timeout");
    assert!(verdict
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("deadline"));
}

#[test]
fn a_panicking_job_costs_one_verdict_not_the_daemon() {
    let server = Server::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let buf = SharedBuf::new();
    let reply = buf.reply();

    let boom = sat_job("boom", &[("inject", Json::Str("panic".into()))]);
    assert_eq!(server.handle_line(&boom, &reply), LineOutcome::Submitted);
    let quiet = sat_job("quiet", &[]);
    assert_eq!(server.handle_line(&quiet, &reply), LineOutcome::Submitted);

    let frames = buf.wait_frames(2);
    let verdict = verdict_for(&frames, "boom");
    assert_eq!(status_of(verdict), "internal-error");
    assert!(verdict
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("injected job panic"));
    assert_eq!(status_of(verdict_for(&frames, "quiet")), "valid");

    // The worker was respawned (counter moves just after the verdict is
    // written, so poll briefly).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snapshot = server.metrics_snapshot();
        if snapshot.counter("serve.worker_respawns") == Some(1) {
            assert_eq!(snapshot.counter("serve.worker_panics"), Some(1));
            assert_eq!(snapshot.counter("serve.status.internal-error"), Some(1));
            break;
        }
        assert!(Instant::now() < deadline, "respawn counter never moved");
        std::thread::sleep(Duration::from_millis(5));
    }

    // And the pool still works — including the respawned worker's slot:
    // two concurrent jobs need both workers live.
    for i in 0..2 {
        let line = sat_job(
            &format!("post-{i}"),
            &[("inject", Json::Str("sleep:50".into()))],
        );
        assert_eq!(server.handle_line(&line, &reply), LineOutcome::Submitted);
    }
    let frames = buf.wait_frames(4);
    for i in 0..2 {
        assert_eq!(
            status_of(verdict_for(&frames, &format!("post-{i}"))),
            "valid"
        );
    }
    server.shutdown();
}

#[test]
fn control_frames_answer_inline_and_eof_emits_a_summary() {
    let input = concat!(
        r#"{"op":"ping"}"#,
        "\n",
        r#"{"op":"metrics"}"#,
        "\n",
        // no shutdown frame: EOF must wind down cleanly
    );
    let buf = SharedBuf::new();
    let summary = serve_io(one_worker(), Cursor::new(input), Box::new(buf.clone())).unwrap();
    assert_eq!(
        summary.get("rescheck").unwrap().as_str(),
        Some("rescheck-serve-summary-v1")
    );
    assert_eq!(summary.get("jobs_submitted").unwrap().as_u64(), Some(0));

    let frames = buf.frames();
    assert_eq!(frames.len(), 3);
    assert_eq!(
        frames[0].get("rescheck").unwrap().as_str(),
        Some("rescheck-serve-pong-v1")
    );
    assert_eq!(
        frames[1].get("schema").unwrap().as_str(),
        Some("rescheck-metrics-v2")
    );
    assert_eq!(
        frames[2].get("rescheck").unwrap().as_str(),
        Some("rescheck-serve-summary-v1")
    );
}

#[test]
fn verdicts_embed_a_metrics_v2_document() {
    let cnf = unsat_chain(12);
    let job = job_frame(
        "observed",
        &[
            ("cnf", Json::Str(cnf_text(&cnf))),
            ("trace", Json::Str(unsat_trace_text(&cnf))),
            ("strategy", Json::Str("bf".into())),
        ],
    );
    let input = format!("{job}\n{{\"op\":\"shutdown\"}}\n");
    let buf = SharedBuf::new();
    serve_io(one_worker(), Cursor::new(input), Box::new(buf.clone())).unwrap();
    let frames = buf.frames();
    let verdict = verdict_for(&frames, "observed");
    assert_eq!(status_of(verdict), "valid");
    let metrics = verdict.get("metrics").expect("embedded metrics");
    assert_eq!(
        metrics.get("schema").unwrap().as_str(),
        Some("rescheck-metrics-v2")
    );
    assert_eq!(metrics.get("command").unwrap().as_str(), Some("serve-job"));
    assert!(metrics.path("phases.check:resolve").is_some(), "{metrics}");
    assert!(verdict.path("stats.clauses_built").is_some());
}
