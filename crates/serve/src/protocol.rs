//! The newline-delimited JSON wire protocol of `rescheck serve`.
//!
//! One request frame per line, one reply frame per line. A request is
//! either a **job** (a claim to validate) or a **control** frame
//! (`{"op": "ping" | "metrics" | "shutdown"}`). Every job produces
//! exactly one verdict frame carrying a `status`, the checker's stats and
//! an embedded `rescheck-metrics-v2` document; malformed input produces a
//! `malformed` verdict on the same connection — the daemon never answers
//! bad bytes by disconnecting or dying.
//!
//! Job frame fields:
//!
//! | key            | meaning                                                  |
//! |----------------|----------------------------------------------------------|
//! | `id`           | required; echoed verbatim in the verdict                 |
//! | `cnf`          | inline DIMACS text (exactly one of `cnf` / `cnf_path`)   |
//! | `cnf_path`     | path to a DIMACS file                                    |
//! | `trace`        | inline ASCII resolve trace (UNSAT claim)                 |
//! | `trace_path`   | path to a trace file (ASCII or binary, sniffed)          |
//! | `model`        | array of DIMACS literals (SAT claim)                     |
//! | `strategy`     | `df` `bf` `hybrid` `portfolio` `pbf` `pdag` `dfd` (default `df`)|
//! | `proof_format` | `native` (default) `drat` `drup` `lrat` — how to read the trace payload |
//! | `memory_bytes` | per-job accounted-memory cap                             |
//! | `timeout_ms`   | per-job wall-clock deadline                              |
//! | `jobs`         | inner worker threads for `pbf`/`pdag` (default 1)        |
//! | `inject`       | chaos hook: `panic` or `sleep:<ms>` (tests, drills)      |
//!
//! Exactly one of `trace` / `trace_path` / `model` selects the claim.

use rescheck_checker::Strategy;
use rescheck_interop::ProofFormat;
use rescheck_obs::json::{self, Json};

/// Schema tag on every per-job reply frame.
pub const VERDICT_SCHEMA: &str = "rescheck-serve-verdict-v1";
/// Schema tag on the end-of-session summary frame.
pub const SUMMARY_SCHEMA: &str = "rescheck-serve-summary-v1";

/// Verdict `status` values (one module so tests and the CLI share the
/// exact strings).
pub mod status {
    /// The claim was validated.
    pub const VALID: &str = "valid";
    /// The resolution proof is defective — the UNSAT claim is unproven.
    pub const PROOF_DEFECT: &str = "proof-defect";
    /// The claimed model leaves clauses unsatisfied — SAT claim unproven.
    pub const MODEL_DEFECT: &str = "model-defect";
    /// The job exceeded its memory lease.
    pub const RESOURCE_LIMIT: &str = "resource-limit";
    /// The job exceeded its deadline and was cancelled by the watchdog.
    pub const TIMEOUT: &str = "timeout";
    /// The job was cancelled without a deadline being involved.
    pub const CANCELLED: &str = "cancelled";
    /// Reading the formula or trace failed.
    pub const IO_ERROR: &str = "io-error";
    /// The queue was full; the job was shed without running.
    pub const BUSY: &str = "busy";
    /// The worker panicked mid-job; the daemon survived, the job did not.
    pub const INTERNAL_ERROR: &str = "internal-error";
    /// The request frame could not be understood.
    pub const MALFORMED: &str = "malformed";
}

/// Where a payload lives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload {
    /// The bytes travelled inline in the frame.
    Inline(String),
    /// The daemon reads the file itself (shared-filesystem deployments).
    Path(String),
}

/// What the solver claimed, and the evidence offered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Claim {
    /// UNSAT, backed by a resolve trace.
    Unsat(Payload),
    /// SAT, backed by a model given as DIMACS literals.
    Sat(Vec<i64>),
}

/// Fault-injection hooks, honoured only so tests and operational drills
/// can exercise the failure paths of a *live* daemon.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Inject {
    /// Panic inside the worker before the check starts.
    Panic,
    /// Sleep this many milliseconds before the check starts.
    Sleep(u64),
}

/// A fully validated job request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Caller-chosen id, echoed in the verdict.
    pub id: String,
    /// The formula the claim is about.
    pub formula: Payload,
    /// The claim and its evidence.
    pub claim: Claim,
    /// Checking strategy.
    pub strategy: Strategy,
    /// Per-job accounted-memory cap; `None` = the daemon's fair share.
    pub memory_bytes: Option<u64>,
    /// Per-job wall-clock deadline; `None` = the daemon default.
    pub timeout_ms: Option<u64>,
    /// Inner worker threads (only `pbf` and `pdag` use more than one).
    pub inner_jobs: usize,
    /// How to read UNSAT evidence: `None` = native resolve trace,
    /// `Some` = a clausal proof ingested into a synthetic trace first.
    pub proof_format: Option<ProofFormat>,
    /// Optional chaos hook.
    pub inject: Option<Inject>,
}

/// One parsed request frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// A validation job.
    Job(Box<JobSpec>),
    /// Liveness probe; answered with a `pong` frame.
    Ping,
    /// Snapshot request; answered with a `rescheck-metrics-v2` document.
    Metrics,
    /// Orderly shutdown of the whole daemon.
    Shutdown,
}

/// Why a frame was rejected, with the job id when one was recoverable —
/// the verdict echoes it so campaign drivers can correlate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameError {
    /// The `id` field, if the frame was parseable enough to have one.
    pub id: Option<String>,
    /// Human-readable reason.
    pub message: String,
}

impl FrameError {
    fn new(id: Option<String>, message: impl Into<String>) -> FrameError {
        FrameError {
            id,
            message: message.into(),
        }
    }
}

/// Maps the CLI's strategy names (the serve protocol reuses them
/// verbatim) to [`Strategy`].
pub fn parse_strategy(name: &str) -> Option<Strategy> {
    match name {
        "df" | "depth-first" => Some(Strategy::DepthFirst),
        "bf" | "breadth-first" => Some(Strategy::BreadthFirst),
        "hybrid" => Some(Strategy::Hybrid),
        "portfolio" => Some(Strategy::Portfolio),
        "pbf" | "parallel-bf" => Some(Strategy::ParallelBf),
        "pdag" | "parallel-dag" => Some(Strategy::ParallelDag),
        "dfd" | "disk-df" => Some(Strategy::DiskDepthFirst),
        _ => None,
    }
}

const JOB_KEYS: &[&str] = &[
    "id",
    "cnf",
    "cnf_path",
    "trace",
    "trace_path",
    "model",
    "strategy",
    "memory_bytes",
    "timeout_ms",
    "jobs",
    "proof_format",
    "inject",
];

/// Parses one request line into a [`Frame`].
///
/// # Errors
///
/// Returns a [`FrameError`] (with the job id when recoverable) for
/// anything that is not a well-formed frame: broken JSON, non-objects,
/// missing/duplicate payload fields, unknown strategies, unknown keys.
pub fn parse_frame(line: &str) -> Result<Frame, FrameError> {
    let value =
        json::parse(line).map_err(|e| FrameError::new(None, format!("unparseable JSON: {e}")))?;
    if !matches!(value, Json::Object(_)) {
        return Err(FrameError::new(None, "frame must be a JSON object"));
    }
    if let Some(op) = value.get("op") {
        return match op.as_str() {
            Some("ping") => Ok(Frame::Ping),
            Some("metrics") => Ok(Frame::Metrics),
            Some("shutdown") => Ok(Frame::Shutdown),
            Some(other) => Err(FrameError::new(None, format!("unknown op {other:?}"))),
            None => Err(FrameError::new(None, "op must be a string")),
        };
    }

    // From here on the id (when present and a string) is recoverable, so
    // errors echo it.
    let id = value.get("id").and_then(Json::as_str).map(str::to_string);
    let fail = |message: String| FrameError::new(id.clone(), message);

    let Some(id_value) = value.get("id") else {
        return Err(fail("job frame missing required key \"id\"".to_string()));
    };
    let Some(job_id) = id_value.as_str() else {
        return Err(fail("\"id\" must be a string".to_string()));
    };
    for key in value.keys() {
        if !JOB_KEYS.contains(&key) {
            return Err(fail(format!("unknown key {key:?} in job frame")));
        }
    }

    let cnf_inline = str_field(&value, "cnf").map_err(|e| fail(e.message))?;
    let cnf_path = str_field(&value, "cnf_path").map_err(|e| fail(e.message))?;
    let formula = match (cnf_inline, cnf_path) {
        (Some(text), None) => Payload::Inline(text),
        (None, Some(path)) => Payload::Path(path),
        (None, None) => return Err(fail("exactly one of \"cnf\"/\"cnf_path\" required".into())),
        (Some(_), Some(_)) => {
            return Err(fail(
                "\"cnf\" and \"cnf_path\" are mutually exclusive".into(),
            ))
        }
    };

    let trace = str_field(&value, "trace").map_err(|e| fail(e.message))?;
    let trace_path = str_field(&value, "trace_path").map_err(|e| fail(e.message))?;
    let model = value.get("model");
    let claim = match (trace, trace_path, model) {
        (Some(text), None, None) => Claim::Unsat(Payload::Inline(text)),
        (None, Some(path), None) => Claim::Unsat(Payload::Path(path)),
        (None, None, Some(lits)) => Claim::Sat(parse_model(lits).map_err(&fail)?),
        (None, None, None) => {
            return Err(fail(
                "exactly one of \"trace\"/\"trace_path\"/\"model\" required".into(),
            ))
        }
        _ => {
            return Err(fail(
                "\"trace\", \"trace_path\" and \"model\" are mutually exclusive".into(),
            ))
        }
    };

    let strategy = match value.get("strategy") {
        None => Strategy::DepthFirst,
        Some(s) => {
            let name = s
                .as_str()
                .ok_or_else(|| fail("\"strategy\" must be a string".into()))?;
            parse_strategy(name).ok_or_else(|| fail(format!("unknown strategy {name:?}")))?
        }
    };
    let proof_format = match value.get("proof_format") {
        None => None,
        Some(v) => {
            let name = v
                .as_str()
                .ok_or_else(|| fail("\"proof_format\" must be a string".into()))?;
            match name {
                "native" => None,
                other => Some(ProofFormat::from_name(other).ok_or_else(|| {
                    fail(format!(
                        "unknown proof format {other:?} (native|drat|drup|lrat)"
                    ))
                })?),
            }
        }
    };
    if proof_format.is_some() && matches!(claim, Claim::Sat(_)) {
        return Err(fail(
            "\"proof_format\" requires a \"trace\"/\"trace_path\" claim".into(),
        ));
    }
    let memory_bytes = u64_field(&value, "memory_bytes").map_err(|e| fail(e.message))?;
    let timeout_ms = u64_field(&value, "timeout_ms").map_err(|e| fail(e.message))?;
    let inner_jobs = u64_field(&value, "jobs")
        .map_err(|e| fail(e.message))?
        .map_or(1, |j| j as usize);
    let inject = match value.get("inject").map(|v| (v, v.as_str())) {
        None => None,
        Some((_, Some("panic"))) => Some(Inject::Panic),
        Some((_, Some(s))) if s.starts_with("sleep:") => {
            let ms = s["sleep:".len()..]
                .parse::<u64>()
                .map_err(|_| fail(format!("bad inject sleep duration in {s:?}")))?;
            Some(Inject::Sleep(ms))
        }
        Some((_, Some(other))) => return Err(fail(format!("unknown inject hook {other:?}"))),
        Some((_, None)) => return Err(fail("\"inject\" must be a string".into())),
    };

    Ok(Frame::Job(Box::new(JobSpec {
        id: job_id.to_string(),
        formula,
        claim,
        strategy,
        memory_bytes,
        timeout_ms,
        inner_jobs,
        proof_format,
        inject,
    })))
}

fn str_field(value: &Json, key: &str) -> Result<Option<String>, FrameError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| FrameError::new(None, format!("{key:?} must be a string"))),
    }
}

fn u64_field(value: &Json, key: &str) -> Result<Option<u64>, FrameError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            FrameError::new(None, format!("{key:?} must be a non-negative integer"))
        }),
    }
}

fn parse_model(lits: &Json) -> Result<Vec<i64>, String> {
    let Json::Array(items) = lits else {
        return Err("\"model\" must be an array of DIMACS literals".to_string());
    };
    items
        .iter()
        .map(|item| match *item {
            Json::Int(i) if i != 0 => Ok(i),
            Json::UInt(u) if u != 0 => {
                i64::try_from(u).map_err(|_| "model literal out of range".to_string())
            }
            _ => Err("model literals must be non-zero integers".to_string()),
        })
        .collect()
}

/// Starts a verdict frame: `{"rescheck": ..., "id": ..., "status": ...}`.
pub fn verdict(id: &str, status: &str) -> Json {
    let mut frame = Json::object();
    frame
        .set("rescheck", VERDICT_SCHEMA)
        .set("id", id)
        .set("status", status);
    frame
}

/// The reply to an unparseable or invalid frame.
pub fn malformed_verdict(error: &FrameError) -> Json {
    let mut frame = verdict(error.id.as_deref().unwrap_or(""), status::MALFORMED);
    frame.set("error", error.message.as_str());
    frame
}

/// The reply to a job shed because the queue was full.
pub fn busy_verdict(id: &str, queue_depth: usize) -> Json {
    let mut frame = verdict(id, status::BUSY);
    frame.set(
        "error",
        format!("queue full ({queue_depth} jobs waiting); resubmit later"),
    );
    frame
}

/// The reply to a job whose worker panicked.
pub fn internal_verdict(id: &str, what: &str) -> Json {
    let mut frame = verdict(id, status::INTERNAL_ERROR);
    frame.set("error", what);
    frame
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job_line(extra: &str) -> String {
        format!(r#"{{"id":"j1","cnf":"p cnf 1 2\n1 0\n-1 0\n","trace":"t"{extra}}}"#)
    }

    #[test]
    fn minimal_job_frame_parses_with_defaults() {
        let Frame::Job(spec) = parse_frame(&job_line("")).unwrap() else {
            panic!("expected a job frame");
        };
        assert_eq!(spec.id, "j1");
        assert_eq!(spec.strategy, Strategy::DepthFirst);
        assert_eq!(spec.inner_jobs, 1);
        assert_eq!(spec.memory_bytes, None);
        assert_eq!(spec.timeout_ms, None);
        assert_eq!(spec.inject, None);
        assert!(matches!(spec.claim, Claim::Unsat(Payload::Inline(_))));
    }

    #[test]
    fn every_documented_strategy_name_parses() {
        for (name, expect) in [
            ("df", Strategy::DepthFirst),
            ("bf", Strategy::BreadthFirst),
            ("hybrid", Strategy::Hybrid),
            ("portfolio", Strategy::Portfolio),
            ("pbf", Strategy::ParallelBf),
            ("parallel-bf", Strategy::ParallelBf),
            ("pdag", Strategy::ParallelDag),
            ("parallel-dag", Strategy::ParallelDag),
            ("dfd", Strategy::DiskDepthFirst),
            ("disk-df", Strategy::DiskDepthFirst),
        ] {
            let line = job_line(&format!(r#","strategy":"{name}""#));
            let Frame::Job(spec) = parse_frame(&line).unwrap() else {
                panic!("expected a job frame for {name}");
            };
            assert_eq!(spec.strategy, expect, "{name}");
        }
    }

    #[test]
    fn control_frames_parse() {
        assert_eq!(parse_frame(r#"{"op":"ping"}"#).unwrap(), Frame::Ping);
        assert_eq!(parse_frame(r#"{"op":"metrics"}"#).unwrap(), Frame::Metrics);
        assert_eq!(
            parse_frame(r#"{"op":"shutdown"}"#).unwrap(),
            Frame::Shutdown
        );
        assert!(parse_frame(r#"{"op":"dance"}"#).is_err());
    }

    #[test]
    fn model_claims_parse_as_sat() {
        let line = r#"{"id":"m","cnf":"p cnf 2 1\n1 2 0\n","model":[1,-2]}"#;
        let Frame::Job(spec) = parse_frame(line).unwrap() else {
            panic!("expected a job frame");
        };
        assert_eq!(spec.claim, Claim::Sat(vec![1, -2]));
    }

    #[test]
    fn errors_recover_the_job_id_when_possible() {
        let err =
            parse_frame(r#"{"id":"j9","cnf":"x","trace":"t","strategy":"warp"}"#).unwrap_err();
        assert_eq!(err.id.as_deref(), Some("j9"));
        assert!(err.message.contains("warp"));
        // Broken JSON has no recoverable id.
        let err = parse_frame(r#"{"id":"j9","#).unwrap_err();
        assert_eq!(err.id, None);
    }

    #[test]
    fn payload_exclusivity_is_enforced() {
        for line in [
            r#"{"id":"x","trace":"t"}"#,
            r#"{"id":"x","cnf":"c","cnf_path":"p","trace":"t"}"#,
            r#"{"id":"x","cnf":"c"}"#,
            r#"{"id":"x","cnf":"c","trace":"t","model":[1]}"#,
            r#"{"id":"x","cnf":"c","trace":"t","trace_path":"p"}"#,
        ] {
            assert!(parse_frame(line).is_err(), "{line}");
        }
    }

    #[test]
    fn unknown_keys_and_bad_hooks_are_rejected() {
        assert!(parse_frame(&job_line(r#","tracepath":"typo""#)).is_err());
        assert!(parse_frame(&job_line(r#","inject":"explode""#)).is_err());
        assert!(parse_frame(&job_line(r#","inject":"sleep:soon""#)).is_err());
        let Frame::Job(spec) = parse_frame(&job_line(r#","inject":"sleep:25""#)).unwrap() else {
            panic!("expected a job frame");
        };
        assert_eq!(spec.inject, Some(Inject::Sleep(25)));
    }

    #[test]
    fn proof_format_parses_and_guards() {
        for (name, expect) in [
            ("native", None),
            ("drat", Some(ProofFormat::Drat)),
            ("drup", Some(ProofFormat::Drat)),
            ("lrat", Some(ProofFormat::Lrat)),
        ] {
            let line = job_line(&format!(r#","proof_format":"{name}""#));
            let Frame::Job(spec) = parse_frame(&line).unwrap() else {
                panic!("expected a job frame for {name}");
            };
            assert_eq!(spec.proof_format, expect, "{name}");
        }
        assert!(parse_frame(&job_line(r#","proof_format":"tracecheck""#)).is_err());
        assert!(parse_frame(&job_line(r#","proof_format":7"#)).is_err());
        // A SAT claim carries no proof to reinterpret.
        let line = r#"{"id":"m","cnf":"p cnf 2 1\n1 2 0\n","model":[1],"proof_format":"drat"}"#;
        assert!(parse_frame(line).is_err());
    }

    #[test]
    fn verdict_builders_tag_the_schema() {
        let v = busy_verdict("j1", 7);
        assert_eq!(v.get("rescheck").unwrap().as_str(), Some(VERDICT_SCHEMA));
        assert_eq!(v.get("status").unwrap().as_str(), Some(status::BUSY));
        assert!(v.get("error").unwrap().as_str().unwrap().contains("7 jobs"));
    }
}
