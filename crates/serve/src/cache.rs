//! A small content-addressed formula cache shared by all workers.
//!
//! Campaigns routinely submit many jobs against the same CNF (one formula,
//! many traces). Parsing DIMACS per job would dominate small checks, so
//! the daemon keys parsed formulas by an FNV-1a hash of the DIMACS text
//! and hands out `Arc<Cnf>` clones. Each distinct formula also gets a
//! stable **token**, which is what [`CheckScratch::begin_job`] uses to
//! decide whether a worker's warm original-clause tier may be reused —
//! same token, same formula, warm reuse is sound.
//!
//! [`CheckScratch::begin_job`]: rescheck_checker::CheckScratch::begin_job

use rescheck_cnf::dimacs;
use rescheck_cnf::{Cnf, ParseDimacsError};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Parsed formulas the cache keeps resident at once. Entries are whole
/// CNFs, so the cap is deliberately small; eviction is FIFO.
const CACHE_CAPACITY: usize = 8;

struct Entry {
    /// Stored to disambiguate genuine hits from 64-bit hash collisions.
    text_len: usize,
    text_fnv: u64,
    cnf: Arc<Cnf>,
    token: u64,
}

/// A parsed formula plus its identity token for scratch warm-tier reuse.
#[derive(Clone)]
pub struct CachedFormula {
    /// The parsed formula.
    pub cnf: Arc<Cnf>,
    /// Stable identity: equal tokens ⇒ byte-identical DIMACS source.
    pub token: u64,
}

#[derive(Default)]
struct State {
    entries: HashMap<u64, Entry>,
    order: VecDeque<u64>,
    next_token: u64,
    hits: u64,
    misses: u64,
}

/// Content-addressed `Arc<Cnf>` cache with FIFO eviction.
#[derive(Default)]
pub struct FormulaCache {
    state: Mutex<State>,
}

impl FormulaCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        FormulaCache::default()
    }

    /// Parses `text` as DIMACS, or returns the cached parse of identical
    /// text. Tokens are assigned once per distinct formula and survive
    /// eviction-free for the entry's lifetime; a re-inserted formula gets
    /// a *fresh* token, which at worst costs a warm-tier rebuild, never
    /// correctness.
    ///
    /// # Errors
    ///
    /// Propagates the DIMACS parse error for malformed input (parse
    /// failures are not cached).
    pub fn load_text(&self, text: &str) -> Result<CachedFormula, ParseDimacsError> {
        let key = fnv1a(text.as_bytes());
        {
            let mut state = self.state.lock().expect("formula cache poisoned");
            if let Some(entry) = state.entries.get(&key) {
                if entry.text_len == text.len() && entry.text_fnv == key {
                    let hit = CachedFormula {
                        cnf: Arc::clone(&entry.cnf),
                        token: entry.token,
                    };
                    state.hits += 1;
                    return Ok(hit);
                }
            }
        }
        let cnf = Arc::new(dimacs::parse_str(text)?);
        let mut state = self.state.lock().expect("formula cache poisoned");
        state.misses += 1;
        let token = state.next_token;
        state.next_token += 1;
        if state.order.len() >= CACHE_CAPACITY {
            if let Some(oldest) = state.order.pop_front() {
                state.entries.remove(&oldest);
            }
        }
        state.entries.insert(
            key,
            Entry {
                text_len: text.len(),
                text_fnv: key,
                cnf: Arc::clone(&cnf),
                token,
            },
        );
        state.order.push_back(key);
        Ok(CachedFormula { cnf, token })
    }

    /// `(hits, misses)` so far — exported as `serve.formula_cache.*`.
    pub fn stats(&self) -> (u64, u64) {
        let state = self.state.lock().expect("formula cache poisoned");
        (state.hits, state.misses)
    }
}

/// 64-bit FNV-1a — tiny, dependency-free, good enough for a keyed cache
/// that double-checks length on hit.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = "p cnf 1 2\n1 0\n-1 0\n";

    #[test]
    fn identical_text_hits_and_shares_a_token() {
        let cache = FormulaCache::new();
        let a = cache.load_text(TINY).unwrap();
        let b = cache.load_text(TINY).unwrap();
        assert_eq!(a.token, b.token);
        assert!(Arc::ptr_eq(&a.cnf, &b.cnf));
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn distinct_text_gets_distinct_tokens() {
        let cache = FormulaCache::new();
        let a = cache.load_text(TINY).unwrap();
        let b = cache.load_text("p cnf 2 1\n1 2 0\n").unwrap();
        assert_ne!(a.token, b.token);
        assert_eq!(cache.stats(), (0, 2));
    }

    #[test]
    fn parse_errors_propagate_and_are_not_cached() {
        let cache = FormulaCache::new();
        assert!(cache.load_text("p cnf nonsense").is_err());
        assert_eq!(cache.stats(), (0, 0));
    }

    #[test]
    fn eviction_is_fifo_and_reinsert_changes_token() {
        let cache = FormulaCache::new();
        let first = cache.load_text(TINY).unwrap();
        for i in 0..CACHE_CAPACITY {
            let text = format!("p cnf {n} 1\n{n} 0\n", n = i + 1);
            cache.load_text(&text).unwrap();
        }
        // TINY was evicted; loading it again re-parses under a new token.
        let again = cache.load_text(TINY).unwrap();
        assert_ne!(first.token, again.token);
    }
}
