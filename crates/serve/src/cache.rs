//! Small caches shared by all workers: parsed formulas and opened
//! trace handles.
//!
//! Campaigns routinely submit many jobs against the same CNF (one formula,
//! many traces). Parsing DIMACS per job would dominate small checks, so
//! the daemon keys parsed formulas by an FNV-1a hash of the DIMACS text
//! and hands out `Arc<Cnf>` clones. Each distinct formula also gets a
//! stable **token**, which is what [`CheckScratch::begin_job`] uses to
//! decide whether a worker's warm original-clause tier may be reused —
//! same token, same formula, warm reuse is sound.
//!
//! The same campaigns also re-check one trace *file* under several
//! strategies or job counts. A [`TraceCache`] keys opened [`FileTrace`]
//! handles by path (revalidated by length + mtime) and hands out clones
//! that share the original's established byte map — so the daemon maps
//! a repeatedly checked trace once instead of per job.
//!
//! [`CheckScratch::begin_job`]: rescheck_checker::CheckScratch::begin_job

use rescheck_cnf::dimacs;
use rescheck_cnf::{Cnf, ParseDimacsError};
use rescheck_trace::{no_mmap_requested, FileTrace, TraceSource};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::sync::{Arc, Mutex};
use std::time::SystemTime;

/// Parsed formulas the cache keeps resident at once. Entries are whole
/// CNFs, so the cap is deliberately small; eviction is FIFO.
const CACHE_CAPACITY: usize = 8;

struct Entry {
    /// Stored to disambiguate genuine hits from 64-bit hash collisions.
    text_len: usize,
    text_fnv: u64,
    cnf: Arc<Cnf>,
    token: u64,
}

/// A parsed formula plus its identity token for scratch warm-tier reuse.
#[derive(Clone)]
pub struct CachedFormula {
    /// The parsed formula.
    pub cnf: Arc<Cnf>,
    /// Stable identity: equal tokens ⇒ byte-identical DIMACS source.
    pub token: u64,
}

#[derive(Default)]
struct State {
    entries: HashMap<u64, Entry>,
    order: VecDeque<u64>,
    next_token: u64,
    hits: u64,
    misses: u64,
}

/// Content-addressed `Arc<Cnf>` cache with FIFO eviction.
#[derive(Default)]
pub struct FormulaCache {
    state: Mutex<State>,
}

impl FormulaCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        FormulaCache::default()
    }

    /// Parses `text` as DIMACS, or returns the cached parse of identical
    /// text. Tokens are assigned once per distinct formula and survive
    /// eviction-free for the entry's lifetime; a re-inserted formula gets
    /// a *fresh* token, which at worst costs a warm-tier rebuild, never
    /// correctness.
    ///
    /// # Errors
    ///
    /// Propagates the DIMACS parse error for malformed input (parse
    /// failures are not cached).
    pub fn load_text(&self, text: &str) -> Result<CachedFormula, ParseDimacsError> {
        let key = fnv1a(text.as_bytes());
        {
            let mut state = self.state.lock().expect("formula cache poisoned");
            if let Some(entry) = state.entries.get(&key) {
                if entry.text_len == text.len() && entry.text_fnv == key {
                    let hit = CachedFormula {
                        cnf: Arc::clone(&entry.cnf),
                        token: entry.token,
                    };
                    state.hits += 1;
                    return Ok(hit);
                }
            }
        }
        let cnf = Arc::new(dimacs::parse_str(text)?);
        let mut state = self.state.lock().expect("formula cache poisoned");
        state.misses += 1;
        let token = state.next_token;
        state.next_token += 1;
        if state.order.len() >= CACHE_CAPACITY {
            if let Some(oldest) = state.order.pop_front() {
                state.entries.remove(&oldest);
            }
        }
        state.entries.insert(
            key,
            Entry {
                text_len: text.len(),
                text_fnv: key,
                cnf: Arc::clone(&cnf),
                token,
            },
        );
        state.order.push_back(key);
        Ok(CachedFormula { cnf, token })
    }

    /// `(hits, misses)` so far — exported as `serve.formula_cache.*`.
    pub fn stats(&self) -> (u64, u64) {
        let state = self.state.lock().expect("formula cache poisoned");
        (state.hits, state.misses)
    }
}

struct TraceEntry {
    /// Revalidation stamp: a changed length or mtime means the file was
    /// rewritten and the cached handle (and its map) must not be reused.
    len: u64,
    mtime: Option<SystemTime>,
    trace: FileTrace,
}

#[derive(Default)]
struct TraceState {
    entries: HashMap<String, TraceEntry>,
    order: VecDeque<String>,
    hits: u64,
    misses: u64,
}

/// Path-keyed cache of opened [`FileTrace`] handles with FIFO eviction.
///
/// The payoff is not the `open` syscall but the **byte map**: the cache
/// establishes each handle's [`rescheck_trace::TraceMap`] once, and the
/// clones it hands out share it — a campaign checking one trace file
/// under several strategies or worker counts maps (or, under
/// `RESCHECK_NO_MMAP`, reads) the file exactly once.
#[derive(Default)]
pub struct TraceCache {
    state: Mutex<TraceState>,
}

impl TraceCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        TraceCache::default()
    }

    /// Opens `path`, or returns a clone of the cached handle when the
    /// file's length and mtime are unchanged. The clone shares the
    /// cached handle's established byte map (binary traces; ASCII
    /// traces have no map and simply skip the establishment).
    ///
    /// # Errors
    ///
    /// Propagates `stat`/`open` failures; failures are not cached.
    pub fn open(&self, path: &str) -> io::Result<FileTrace> {
        let meta = std::fs::metadata(path)?;
        let (len, mtime) = (meta.len(), meta.modified().ok());
        {
            let mut state = self.state.lock().expect("trace cache poisoned");
            if let Some(entry) = state.entries.get(path) {
                if entry.len == len && entry.mtime == mtime {
                    let trace = entry.trace.clone();
                    state.hits += 1;
                    return Ok(trace);
                }
            }
        }
        let trace = FileTrace::open(path)?;
        // Establish the shared map *before* caching: clones share an
        // already-established map, while one established later would
        // live on that job's clone alone.
        let _ = trace.trace_map(!no_mmap_requested());
        let mut state = self.state.lock().expect("trace cache poisoned");
        state.misses += 1;
        if !state.entries.contains_key(path) {
            if state.order.len() >= CACHE_CAPACITY {
                if let Some(oldest) = state.order.pop_front() {
                    state.entries.remove(&oldest);
                }
            }
            state.order.push_back(path.to_string());
        }
        state.entries.insert(
            path.to_string(),
            TraceEntry {
                len,
                mtime,
                trace: trace.clone(),
            },
        );
        Ok(trace)
    }

    /// `(hits, misses)` so far — exported as `serve.trace_cache.*`.
    pub fn stats(&self) -> (u64, u64) {
        let state = self.state.lock().expect("trace cache poisoned");
        (state.hits, state.misses)
    }
}

/// 64-bit FNV-1a — tiny, dependency-free, good enough for a keyed cache
/// that double-checks length on hit.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = "p cnf 1 2\n1 0\n-1 0\n";

    #[test]
    fn identical_text_hits_and_shares_a_token() {
        let cache = FormulaCache::new();
        let a = cache.load_text(TINY).unwrap();
        let b = cache.load_text(TINY).unwrap();
        assert_eq!(a.token, b.token);
        assert!(Arc::ptr_eq(&a.cnf, &b.cnf));
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn distinct_text_gets_distinct_tokens() {
        let cache = FormulaCache::new();
        let a = cache.load_text(TINY).unwrap();
        let b = cache.load_text("p cnf 2 1\n1 2 0\n").unwrap();
        assert_ne!(a.token, b.token);
        assert_eq!(cache.stats(), (0, 2));
    }

    #[test]
    fn parse_errors_propagate_and_are_not_cached() {
        let cache = FormulaCache::new();
        assert!(cache.load_text("p cnf nonsense").is_err());
        assert_eq!(cache.stats(), (0, 0));
    }

    fn write_binary_trace(name: &str) -> std::path::PathBuf {
        use rescheck_trace::{BinaryWriter, TraceSink};
        let path = std::env::temp_dir().join(format!(
            "rescheck-serve-cache-{}-{name}.rtb",
            std::process::id()
        ));
        let mut buf = Vec::new();
        {
            let mut w = BinaryWriter::new(&mut buf).unwrap();
            w.learned(2, &[0, 1]).unwrap();
            w.final_conflict(2).unwrap();
        }
        std::fs::write(&path, buf).unwrap();
        path
    }

    #[test]
    fn trace_cache_hits_on_unchanged_files() {
        let path = write_binary_trace("hit");
        let cache = TraceCache::new();
        let a = cache.open(path.to_str().unwrap()).unwrap();
        let b = cache.open(path.to_str().unwrap()).unwrap();
        assert_eq!(cache.stats(), (1, 1));
        // Both handles decode the same events.
        use rescheck_trace::TraceSource;
        let ea: Vec<_> = a.events_iter().unwrap().map(Result::unwrap).collect();
        let eb: Vec<_> = b.events_iter().unwrap().map(Result::unwrap).collect();
        assert_eq!(ea, eb);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_cache_revalidates_on_length_change() {
        use rescheck_trace::{BinaryWriter, TraceSink, TraceSource};
        let path = write_binary_trace("stale");
        let cache = TraceCache::new();
        cache.open(path.to_str().unwrap()).unwrap();
        // Rewrite the file with one more event: the stale handle must
        // not be served.
        let mut buf = Vec::new();
        {
            let mut w = BinaryWriter::new(&mut buf).unwrap();
            w.learned(2, &[0, 1]).unwrap();
            w.learned(3, &[2, 1]).unwrap();
            w.final_conflict(3).unwrap();
        }
        std::fs::write(&path, buf).unwrap();
        let fresh = cache.open(path.to_str().unwrap()).unwrap();
        assert_eq!(fresh.events_iter().unwrap().count(), 3);
        assert_eq!(cache.stats().1, 2, "rewrite must be a miss");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_cache_propagates_open_errors() {
        let cache = TraceCache::new();
        assert!(cache.open("/nonexistent/rescheck-trace.rtb").is_err());
        assert_eq!(cache.stats(), (0, 0));
    }

    #[test]
    fn eviction_is_fifo_and_reinsert_changes_token() {
        let cache = FormulaCache::new();
        let first = cache.load_text(TINY).unwrap();
        for i in 0..CACHE_CAPACITY {
            let text = format!("p cnf {n} 1\n{n} 0\n", n = i + 1);
            cache.load_text(&text).unwrap();
        }
        // TINY was evicted; loading it again re-parses under a new token.
        let again = cache.load_text(TINY).unwrap();
        assert_ne!(first.token, again.token);
    }
}
