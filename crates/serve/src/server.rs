//! The daemon: admission control, the worker pool, and the front doors.
//!
//! ```text
//! stdin/TCP line ──▶ handle_line ──▶ parse ──▶ try_send ──▶ bounded queue
//!                        │              │          │
//!                        │              │          └─ Full ⇒ `busy` verdict (shed)
//!                        │              └─ bad frame ⇒ `malformed` verdict
//!                        └─ control ops answered inline (ping/metrics/shutdown)
//!
//! worker (×N): recv ─▶ scratch checkout ─▶ catch_unwind(run_job) ─▶ verdict
//!                          │ panic ⇒ scratch discarded, `internal-error`
//!                          │         verdict written, worker respawned
//!                          └ ok    ⇒ scratch returned to the pool
//! ```
//!
//! The invariant the whole module is built around: **the daemon never
//! dies and never goes silent.** Every admitted job produces exactly one
//! verdict frame, no matter how it fails; every rejected line produces a
//! `malformed` or `busy` frame; worker panics cost one job and one warm
//! scratch, never the process.

use crate::budget::BudgetLedger;
use crate::cache::{FormulaCache, TraceCache};
use crate::job::{run_job, JobEnv};
use crate::protocol::{self, status, Frame, FrameError, JobSpec, SUMMARY_SCHEMA};
use crate::watchdog::Watchdog;
use rescheck_bench::report;
use rescheck_checker::ScratchPool;
use rescheck_obs::{Json, Registry};
use std::any::Any;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// Daemon-level tunables (the CLI flags of `rescheck serve`).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads; `0` picks the available parallelism (capped at 8).
    pub workers: usize,
    /// Jobs allowed to wait in the queue before submissions shed as
    /// `busy` (workers already executing do not count).
    pub queue_depth: usize,
    /// Daemon-wide accounted-memory budget, leased out per job; `None` =
    /// unlimited.
    pub mem_total: Option<u64>,
    /// Default per-job deadline for jobs that set none; `None` = no
    /// deadline.
    pub default_timeout_ms: Option<u64>,
    /// Request frames longer than this many bytes are rejected as
    /// `malformed` without being parsed.
    pub max_frame_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_depth: 16,
            mem_total: None,
            default_timeout_ms: None,
            max_frame_bytes: 8 << 20,
        }
    }
}

/// Where verdict frames for a connection are written. Shared between the
/// submitting connection and the workers executing its jobs.
pub type Reply = Arc<Mutex<Box<dyn Write + Send>>>;

/// What [`Server::handle_line`] did with a request line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LineOutcome {
    /// A job was queued; its verdict arrives later from a worker.
    Submitted,
    /// The line was answered inline (control op, malformed, shed).
    Replied,
    /// Blank line; nothing written.
    Ignored,
    /// A shutdown frame: the caller should stop reading and call
    /// [`Server::shutdown`].
    Shutdown,
}

struct QueuedJob {
    spec: Box<JobSpec>,
    reply: Reply,
}

/// State shared by the front end and every worker.
struct Shared {
    ledger: BudgetLedger,
    watchdog: Watchdog,
    cache: FormulaCache,
    traces: TraceCache,
    pool: ScratchPool,
    registry: Mutex<Registry>,
    queued: AtomicUsize,
    default_timeout_ms: Option<u64>,
}

impl Shared {
    fn with_registry<R>(&self, f: impl FnOnce(&mut Registry) -> R) -> R {
        // A worker that panics while holding the registry would poison
        // it; the daemon must keep serving, so poisoning is shrugged off.
        f(&mut self.registry.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

enum LoopExit {
    /// The queue closed: orderly drain, the worker retires.
    Drained,
    /// A job panicked. The verdict is already written; the wrapper
    /// discards all worker state and starts a fresh loop.
    JobPanicked,
}

/// A running validation service.
///
/// Frames come in through [`Server::handle_line`] (the stdin and TCP
/// front ends are thin loops over it), verdicts go out through each
/// line's [`Reply`] handle.
pub struct Server {
    shared: Arc<Shared>,
    tx: Mutex<Option<SyncSender<QueuedJob>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    worker_count: usize,
    queue_depth: usize,
    max_frame_bytes: usize,
    started: Instant,
}

impl Server {
    /// Starts the worker pool and deadline service.
    pub fn start(config: ServeConfig) -> Server {
        let worker_count = if config.workers == 0 {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8)
        } else {
            config.workers
        };
        let queue_depth = config.queue_depth.max(1);
        let shared = Arc::new(Shared {
            ledger: BudgetLedger::new(config.mem_total, worker_count),
            watchdog: Watchdog::start(),
            cache: FormulaCache::new(),
            traces: TraceCache::new(),
            pool: ScratchPool::new(),
            registry: Mutex::new(Registry::new()),
            queued: AtomicUsize::new(0),
            default_timeout_ms: config.default_timeout_ms,
        });
        shared.with_registry(|reg| reg.set_gauge("serve.workers", worker_count as f64));
        let (tx, rx) = sync_channel::<QueuedJob>(queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..worker_count)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                thread::Builder::new()
                    .name(format!("rescheck-serve-worker-{w}"))
                    .spawn(move || worker_entry(&shared, &rx))
                    .expect("spawn serve worker")
            })
            .collect();
        Server {
            shared,
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(workers),
            worker_count,
            queue_depth,
            max_frame_bytes: config.max_frame_bytes,
            started: Instant::now(),
        }
    }

    /// Handles one request line: control ops are answered inline, jobs
    /// are queued (or shed as `busy`), garbage gets a `malformed` frame.
    /// Never panics, never drops a line silently.
    pub fn handle_line(&self, line: &str, reply: &Reply) -> LineOutcome {
        let line = line.trim();
        if line.is_empty() {
            return LineOutcome::Ignored;
        }
        if line.len() > self.max_frame_bytes {
            return self.reject(
                reply,
                &FrameError {
                    id: None,
                    message: format!(
                        "frame of {} bytes exceeds the {}-byte limit",
                        line.len(),
                        self.max_frame_bytes
                    ),
                },
            );
        }
        match protocol::parse_frame(line) {
            Err(e) => self.reject(reply, &e),
            Ok(Frame::Ping) => {
                let mut pong = Json::object();
                pong.set("rescheck", "rescheck-serve-pong-v1")
                    .set("workers", self.worker_count)
                    .set("queued", self.shared.queued.load(Ordering::SeqCst))
                    .set("uptime_seconds", self.started.elapsed().as_secs_f64());
                write_frame(reply, &pong);
                LineOutcome::Replied
            }
            Ok(Frame::Metrics) => {
                let snapshot = self.metrics_snapshot();
                write_frame(reply, &report::metrics_document("serve", &snapshot));
                LineOutcome::Replied
            }
            Ok(Frame::Shutdown) => LineOutcome::Shutdown,
            Ok(Frame::Job(spec)) => self.submit(spec, reply),
        }
    }

    fn reject(&self, reply: &Reply, error: &FrameError) -> LineOutcome {
        self.shared
            .with_registry(|reg| reg.inc("serve.frames_malformed", 1));
        write_frame(reply, &protocol::malformed_verdict(error));
        LineOutcome::Replied
    }

    fn submit(&self, spec: Box<JobSpec>, reply: &Reply) -> LineOutcome {
        let depth = self.shared.queued.load(Ordering::SeqCst);
        self.shared.with_registry(|reg| {
            reg.inc("serve.jobs_submitted", 1);
            reg.record_hist("serve.queue_depth", depth as u64);
        });
        let tx = self.tx.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(tx) = tx.as_ref() else {
            // Shutting down: shed rather than hang the client.
            let id = spec.id.clone();
            drop(spec);
            self.shed(&id, reply);
            return LineOutcome::Replied;
        };
        // Counted *before* the send: the receiving worker decrements, and
        // it can win the race to its decrement before a post-send
        // increment would land, underflowing the counter.
        let depth = self.shared.queued.fetch_add(1, Ordering::SeqCst) + 1;
        match tx.try_send(QueuedJob {
            spec,
            reply: Arc::clone(reply),
        }) {
            Ok(()) => {
                self.shared
                    .with_registry(|reg| reg.set_gauge("serve.queue_depth", depth as f64));
                LineOutcome::Submitted
            }
            Err(TrySendError::Full(job)) | Err(TrySendError::Disconnected(job)) => {
                self.shared.queued.fetch_sub(1, Ordering::SeqCst);
                self.shed(&job.spec.id, reply);
                LineOutcome::Replied
            }
        }
    }

    fn shed(&self, id: &str, reply: &Reply) {
        self.shared.with_registry(|reg| {
            reg.inc("serve.jobs_shed", 1);
            reg.inc(&format!("serve.status.{}", status::BUSY), 1);
        });
        write_frame(reply, &protocol::busy_verdict(id, self.queue_depth));
    }

    /// Closes the queue, drains it, and joins every worker. Idempotent.
    pub fn shutdown(&self) {
        let tx = self
            .tx
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        drop(tx);
        let workers =
            std::mem::take(&mut *self.workers.lock().unwrap_or_else(PoisonError::into_inner));
        for worker in workers {
            let _ = worker.join();
        }
    }

    /// A copy of the daemon-wide metrics registry (cache gauges
    /// refreshed).
    pub fn metrics_snapshot(&self) -> Registry {
        let (hits, misses) = self.shared.cache.stats();
        let (trace_hits, trace_misses) = self.shared.traces.stats();
        self.shared.with_registry(|reg| {
            reg.inc(
                "serve.formula_cache.hits",
                hits - reg.counter("serve.formula_cache.hits").unwrap_or(0),
            );
            reg.inc(
                "serve.formula_cache.misses",
                misses - reg.counter("serve.formula_cache.misses").unwrap_or(0),
            );
            reg.inc(
                "serve.trace_cache.hits",
                trace_hits - reg.counter("serve.trace_cache.hits").unwrap_or(0),
            );
            reg.inc(
                "serve.trace_cache.misses",
                trace_misses - reg.counter("serve.trace_cache.misses").unwrap_or(0),
            );
            let mut out = Registry::new();
            out.merge(reg);
            out
        })
    }

    /// The end-of-session summary frame.
    pub fn summary(&self) -> Json {
        let snapshot = self.metrics_snapshot();
        let count = |name: &str| snapshot.counter(name).unwrap_or(0);
        let mut frame = Json::object();
        frame
            .set("rescheck", SUMMARY_SCHEMA)
            .set("jobs_submitted", count("serve.jobs_submitted"))
            .set("jobs_completed", count("serve.jobs_completed"))
            .set("jobs_shed", count("serve.jobs_shed"))
            .set("frames_malformed", count("serve.frames_malformed"))
            .set("worker_panics", count("serve.worker_panics"))
            .set("worker_respawns", count("serve.worker_respawns"))
            .set("uptime_seconds", self.started.elapsed().as_secs_f64());
        frame
    }

    /// The effective worker-pool size.
    pub fn workers(&self) -> usize {
        self.worker_count
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_entry(shared: &Arc<Shared>, rx: &Arc<Mutex<Receiver<QueuedJob>>>) {
    loop {
        match catch_unwind(AssertUnwindSafe(|| worker_loop(shared, rx))) {
            Ok(LoopExit::Drained) => return,
            Ok(LoopExit::JobPanicked) | Err(_) => {
                // The respawn: all worker state (scratch, locals) is gone;
                // the next iteration starts the loop from nothing. An
                // Err here means the loop machinery itself panicked —
                // handled identically.
                shared.with_registry(|reg| reg.inc("serve.worker_respawns", 1));
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>, rx: &Arc<Mutex<Receiver<QueuedJob>>>) -> LoopExit {
    loop {
        // Holding the lock across the blocking recv is fine: it only
        // serializes *dequeueing*, and the holder is asleep until a job
        // arrives for it anyway.
        let job = {
            let rx = rx.lock().unwrap_or_else(PoisonError::into_inner);
            rx.recv()
        };
        let Ok(job) = job else {
            return LoopExit::Drained;
        };
        let depth = self_sub(&shared.queued);
        shared.with_registry(|reg| reg.set_gauge("serve.queue_depth", depth as f64));

        let mut scratch = shared.pool.checkout();
        let env = JobEnv {
            ledger: &shared.ledger,
            watchdog: &shared.watchdog,
            cache: &shared.cache,
            traces: &shared.traces,
            default_timeout_ms: shared.default_timeout_ms,
        };
        let started = Instant::now();
        let run = catch_unwind(AssertUnwindSafe(|| run_job(&job.spec, &env, &mut scratch)));
        let wall_us = started.elapsed().as_micros() as u64;
        match run {
            Ok((frame, job_registry)) => {
                shared.pool.checkin(scratch);
                let job_status = frame
                    .get("status")
                    .and_then(Json::as_str)
                    .unwrap_or(status::INTERNAL_ERROR)
                    .to_string();
                shared.with_registry(|reg| {
                    reg.merge(&job_registry);
                    reg.inc("serve.jobs_completed", 1);
                    reg.inc(&format!("serve.status.{job_status}"), 1);
                    reg.record_hist("serve.job_wall_us", wall_us);
                });
                write_frame(&job.reply, &frame);
            }
            Err(payload) => {
                // The scratch was mid-mutation when the panic unwound:
                // poisoned, never returns to the pool.
                drop(scratch);
                let what = panic_message(payload.as_ref());
                shared.with_registry(|reg| {
                    reg.inc("serve.worker_panics", 1);
                    reg.inc("serve.jobs_completed", 1);
                    reg.inc(&format!("serve.status.{}", status::INTERNAL_ERROR), 1);
                    reg.record_hist("serve.job_wall_us", wall_us);
                });
                write_frame(&job.reply, &protocol::internal_verdict(&job.spec.id, &what));
                return LoopExit::JobPanicked;
            }
        }
    }
}

fn self_sub(queued: &AtomicUsize) -> usize {
    queued.fetch_sub(1, Ordering::SeqCst).saturating_sub(1)
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    let what = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    format!("worker panicked: {what}")
}

/// Writes one frame as a compact JSON line. Write errors are swallowed:
/// a client that hung up forfeits its verdicts, nothing more.
pub fn write_frame(reply: &Reply, frame: &Json) {
    let mut writer = reply.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = writeln!(writer, "{frame}");
    let _ = writer.flush();
}
