//! The daemon's front doors: a stdin/stdout loop and a TCP listener.
//!
//! Both are thin wrappers over [`Server::handle_line`]; everything
//! interesting (admission, shedding, verdicts) lives behind that call.

use crate::server::{write_frame, LineOutcome, Reply, ServeConfig, Server};
use rescheck_obs::Json;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

/// Serves newline-delimited JSON frames from `reader`, writing verdicts
/// to `writer`. Returns the summary frame (also written as the final
/// line) once `reader` hits EOF or a shutdown frame arrives.
///
/// # Errors
///
/// Only read errors on `reader` surface; client write errors are
/// swallowed per connection-loss semantics.
pub fn serve_io(
    config: ServeConfig,
    reader: impl BufRead,
    writer: Box<dyn Write + Send>,
) -> io::Result<Json> {
    let server = Server::start(config);
    let reply: Reply = Arc::new(Mutex::new(writer));
    for line in reader.lines() {
        let line = line?;
        if matches!(server.handle_line(&line, &reply), LineOutcome::Shutdown) {
            break;
        }
    }
    server.shutdown();
    let summary = server.summary();
    write_frame(&reply, &summary);
    Ok(summary)
}

/// [`serve_io`] over the process's stdin and stdout — the
/// `rescheck serve --stdin` mode, and the one-liner documented in the
/// README (`printf '...' | rescheck serve --stdin`).
///
/// # Errors
///
/// See [`serve_io`].
pub fn serve_stdin(config: ServeConfig) -> io::Result<Json> {
    serve_io(config, io::stdin().lock(), Box::new(io::stdout()))
}

/// Binds `addr` and serves every connection until a shutdown frame
/// arrives on any of them. `on_ready` receives the bound address before
/// the first accept (pass port `0` to let the OS choose). Returns the
/// summary frame.
///
/// # Errors
///
/// Bind/local-addr failures; per-connection I/O errors only end that
/// connection.
pub fn serve_tcp(
    config: ServeConfig,
    addr: &str,
    on_ready: impl FnOnce(SocketAddr),
) -> io::Result<Json> {
    let server = Arc::new(Server::start(config));
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    on_ready(local);
    let stop = Arc::new(AtomicBool::new(false));
    let mut connections = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        connections.push(thread::spawn(move || {
            let Ok(write_half) = stream.try_clone() else {
                return;
            };
            let reply: Reply = Arc::new(Mutex::new(Box::new(write_half)));
            for line in BufReader::new(stream).lines() {
                let Ok(line) = line else { break };
                if matches!(server.handle_line(&line, &reply), LineOutcome::Shutdown) {
                    stop.store(true, Ordering::SeqCst);
                    // The accept loop is parked in `incoming()`; poke it
                    // awake with a throwaway connection so it sees the
                    // stop flag.
                    let _ = TcpStream::connect(local);
                    break;
                }
            }
        }));
    }
    for connection in connections {
        let _ = connection.join();
    }
    server.shutdown();
    Ok(server.summary())
}
