//! Partitioning one daemon-wide memory budget into per-job leases.
//!
//! `rescheck serve` owns a single global budget (`--mem-total`). Every
//! admitted job checks out a [`Lease`] before it runs; the lease's byte
//! count becomes that job's [`CheckConfig::memory_limit`], so the sum of
//! accounted memory across concurrently running jobs can never exceed the
//! daemon's budget. Dropping the lease (job done, job panicked — either
//! way, drops run) refunds the bytes.
//!
//! [`CheckConfig::memory_limit`]: rescheck_checker::CheckConfig::memory_limit

use std::sync::Mutex;

/// The daemon-wide memory budget, shared by all workers.
#[derive(Debug)]
pub struct BudgetLedger {
    /// `None` = unlimited: leases carry no cap and nothing is accounted.
    total: Option<u64>,
    /// Fair-share default for jobs that do not request a specific budget.
    share: u64,
    available: Mutex<u64>,
}

impl BudgetLedger {
    /// Creates a ledger for `total` bytes split fairly across `workers`
    /// concurrent jobs. `None` disables budgeting entirely.
    pub fn new(total: Option<u64>, workers: usize) -> Self {
        let total_bytes = total.unwrap_or(0);
        BudgetLedger {
            total,
            share: total_bytes / workers.max(1) as u64,
            available: Mutex::new(total_bytes),
        }
    }

    /// Checks out a lease of `requested` bytes (or the fair share when the
    /// job did not ask for a specific amount), clamped to what is left.
    ///
    /// The clamp means an overloaded daemon degrades into per-job
    /// `resource-limit` verdicts instead of overcommitting the budget —
    /// the job still runs, just against whatever is genuinely available.
    pub fn lease<'a>(&'a self, requested: Option<u64>) -> Lease<'a> {
        if self.total.is_none() {
            // Unlimited daemon: honour the job's own cap verbatim.
            return Lease {
                ledger: self,
                bytes: requested,
                charged: 0,
            };
        }
        let want = requested.unwrap_or(self.share).max(1);
        let mut available = self.available.lock().expect("budget ledger poisoned");
        // Only what was genuinely deducted is refunded later; the 1-byte
        // floor on the cap exists so a drained ledger still yields a
        // well-formed (instantly resource-limited) job config.
        let charged = want.min(*available);
        *available -= charged;
        Lease {
            ledger: self,
            bytes: Some(charged.max(1)),
            charged,
        }
    }

    /// Bytes not currently leased out (`None` when unlimited).
    pub fn available(&self) -> Option<u64> {
        self.total.as_ref()?;
        Some(*self.available.lock().expect("budget ledger poisoned"))
    }
}

/// A per-job slice of the daemon budget; refunds itself on drop.
#[derive(Debug)]
pub struct Lease<'a> {
    ledger: &'a BudgetLedger,
    bytes: Option<u64>,
    charged: u64,
}

impl Lease<'_> {
    /// The job's memory cap: feed this to `CheckConfig::memory_limit`.
    pub fn bytes(&self) -> Option<u64> {
        self.bytes
    }
}

impl Drop for Lease<'_> {
    fn drop(&mut self) {
        if self.charged > 0 {
            let mut available = self
                .ledger
                .available
                .lock()
                .expect("budget ledger poisoned");
            *available += self.charged;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_ledger_passes_requests_through() {
        let ledger = BudgetLedger::new(None, 4);
        assert_eq!(ledger.available(), None);
        let a = ledger.lease(None);
        assert_eq!(a.bytes(), None);
        let b = ledger.lease(Some(123));
        assert_eq!(b.bytes(), Some(123));
    }

    #[test]
    fn leases_charge_and_refund_the_budget() {
        let ledger = BudgetLedger::new(Some(1000), 4);
        let a = ledger.lease(None); // fair share = 250
        assert_eq!(a.bytes(), Some(250));
        assert_eq!(ledger.available(), Some(750));
        let b = ledger.lease(Some(700));
        assert_eq!(b.bytes(), Some(700));
        assert_eq!(ledger.available(), Some(50));
        drop(a);
        assert_eq!(ledger.available(), Some(300));
        drop(b);
        assert_eq!(ledger.available(), Some(1000));
    }

    #[test]
    fn exhausted_budget_clamps_instead_of_overcommitting() {
        let ledger = BudgetLedger::new(Some(100), 1);
        let a = ledger.lease(Some(100));
        assert_eq!(a.bytes(), Some(100));
        // The budget is gone; the next lease is clamped to the 1-byte
        // floor, which any real check immediately reports as a
        // resource-limit — deterministic shedding, not overcommit.
        let b = ledger.lease(Some(50));
        assert_eq!(b.bytes(), Some(1));
        drop(a);
        drop(b);
        assert_eq!(ledger.available(), Some(100));
    }
}
