//! Per-job deadlines: a single watchdog thread that fires [`CancelFlag`]s.
//!
//! Each job with a `timeout_ms` arms an entry `(deadline, flag)`; one
//! daemon-wide thread sleeps until the earliest deadline and cancels
//! whatever has expired. Completed jobs disarm by dropping their
//! [`WatchdogGuard`]. Deadlines already in the past fire *synchronously*
//! inside [`Watchdog::arm`], which makes `timeout_ms = 0` deterministic —
//! the job observes the cancellation before its first instruction — and
//! keeps timeout tests free of sleeps.

use rescheck_checker::CancelFlag;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;

#[derive(Default)]
struct State {
    /// Armed deadlines by entry id. A HashMap (not a heap) because
    /// disarming on job completion is the common path and must be O(1)-ish
    /// without tombstone bookkeeping.
    entries: HashMap<u64, (Instant, CancelFlag)>,
    next_id: u64,
    stopping: bool,
}

struct Inner {
    state: Mutex<State>,
    wake: Condvar,
}

/// The daemon's deadline service. Cheap to clone handles via [`Arc`]; the
/// background thread stops when [`Watchdog::stop`] is called.
pub struct Watchdog {
    inner: Arc<Inner>,
    thread: Option<JoinHandle<()>>,
}

impl Watchdog {
    /// Starts the watchdog thread.
    pub fn start() -> Self {
        let inner = Arc::new(Inner {
            state: Mutex::new(State::default()),
            wake: Condvar::new(),
        });
        let worker = Arc::clone(&inner);
        let thread = thread::Builder::new()
            .name("rescheck-serve-watchdog".to_string())
            .spawn(move || watchdog_loop(&worker))
            .expect("spawn watchdog thread");
        Watchdog {
            inner,
            thread: Some(thread),
        }
    }

    /// Arms `flag` to be cancelled at `deadline`. A deadline that has
    /// already passed cancels the flag before this call returns.
    pub fn arm(&self, deadline: Instant, flag: CancelFlag) -> WatchdogGuard {
        if deadline <= Instant::now() {
            flag.cancel();
            return WatchdogGuard {
                inner: Arc::clone(&self.inner),
                id: None,
            };
        }
        let id = {
            let mut state = self.inner.state.lock().expect("watchdog poisoned");
            let id = state.next_id;
            state.next_id += 1;
            state.entries.insert(id, (deadline, flag));
            id
        };
        self.inner.wake.notify_one();
        WatchdogGuard {
            inner: Arc::clone(&self.inner),
            id: Some(id),
        }
    }

    /// Number of currently armed deadlines (tests and metrics).
    pub fn armed(&self) -> usize {
        self.inner
            .state
            .lock()
            .expect("watchdog poisoned")
            .entries
            .len()
    }

    /// Stops and joins the watchdog thread. Armed flags that have not yet
    /// expired are left un-cancelled.
    pub fn stop(&mut self) {
        {
            let mut state = self.inner.state.lock().expect("watchdog poisoned");
            state.stopping = true;
        }
        self.inner.wake.notify_one();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Disarms its deadline when dropped (the job finished in time).
pub struct WatchdogGuard {
    inner: Arc<Inner>,
    /// `None` when the deadline fired synchronously at arm time.
    id: Option<u64>,
}

impl Drop for WatchdogGuard {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            let mut state = self.inner.state.lock().expect("watchdog poisoned");
            state.entries.remove(&id);
        }
    }
}

fn watchdog_loop(inner: &Inner) {
    let mut state = inner.state.lock().expect("watchdog poisoned");
    loop {
        if state.stopping {
            return;
        }
        let now = Instant::now();
        // Fire everything expired, then sleep until the next deadline.
        let expired: Vec<u64> = state
            .entries
            .iter()
            .filter(|(_, (deadline, _))| *deadline <= now)
            .map(|(id, _)| *id)
            .collect();
        for id in expired {
            if let Some((_, flag)) = state.entries.remove(&id) {
                flag.cancel();
            }
        }
        let next = state.entries.values().map(|(deadline, _)| *deadline).min();
        state = match next {
            Some(deadline) => {
                let wait = deadline.saturating_duration_since(Instant::now());
                inner
                    .wake
                    .wait_timeout(state, wait)
                    .expect("watchdog poisoned")
                    .0
            }
            None => inner.wake.wait(state).expect("watchdog poisoned"),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn past_deadlines_fire_synchronously() {
        let watchdog = Watchdog::start();
        let flag = CancelFlag::armed();
        let _guard = watchdog.arm(Instant::now(), flag.clone());
        assert!(flag.is_cancelled());
        assert_eq!(watchdog.armed(), 0);
    }

    #[test]
    fn future_deadlines_fire_from_the_thread() {
        let watchdog = Watchdog::start();
        let flag = CancelFlag::armed();
        let _guard = watchdog.arm(Instant::now() + Duration::from_millis(20), flag.clone());
        assert!(!flag.is_cancelled());
        let start = Instant::now();
        while !flag.is_cancelled() {
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "watchdog never fired"
            );
            thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn dropping_the_guard_disarms() {
        let mut watchdog = Watchdog::start();
        let flag = CancelFlag::armed();
        let guard = watchdog.arm(Instant::now() + Duration::from_secs(600), flag.clone());
        assert_eq!(watchdog.armed(), 1);
        drop(guard);
        assert_eq!(watchdog.armed(), 0);
        assert!(!flag.is_cancelled());
        watchdog.stop();
    }
}
