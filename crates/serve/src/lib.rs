//! `rescheck serve` — a persistent validation service over the checker.
//!
//! Batch checking (`rescheck check`) pays process startup, formula
//! parsing and allocator warm-up per claim. A solver regression farm
//! validating thousands of claims wants a **daemon**: parse the formula
//! once, keep kernel/arena scratch warm, and stream claims through a
//! worker pool. This crate is that daemon, built exclusively on `std`
//! (`std::net` + `std::thread`), in keeping with the workspace's
//! zero-dependency policy.
//!
//! The moving parts:
//!
//! - [`protocol`] — newline-delimited JSON frames in, verdict frames out.
//! - [`Server`] — admission control over a bounded queue (`busy` shedding
//!   past [`ServeConfig::queue_depth`]) and a pool of panic-isolated
//!   workers: a poisoned job yields an `internal-error` verdict and a
//!   respawned worker, never a dead daemon.
//! - [`BudgetLedger`] — one daemon-wide memory budget leased out per job,
//!   so concurrent checks can never jointly exceed `--mem-total`.
//! - [`Watchdog`] — per-job deadlines driving the checker's cooperative
//!   [`CancelFlag`](rescheck_checker::CancelFlag); expired jobs verdict
//!   as `timeout`.
//! - [`FormulaCache`] — content-addressed `Arc<Cnf>` sharing across jobs,
//!   whose identity tokens gate
//!   [`CheckScratch`](rescheck_checker::CheckScratch) warm-tier reuse.
//! - [`TraceCache`] — path-keyed sharing of opened trace handles, so a
//!   campaign re-checking one trace file maps its bytes once instead of
//!   per job.
//!
//! Verdicts embed a full `rescheck-metrics-v2` document, and the daemon
//! itself exports `serve.*` counters, queue-depth and job-wall-time
//! histograms via the `{"op": "metrics"}` control frame.
//!
//! # Examples
//!
//! ```
//! use rescheck_serve::{serve_io, ServeConfig};
//! use std::io::Cursor;
//!
//! let frames = concat!(
//!     r#"{"id":"pigeon","cnf":"p cnf 1 2\n1 0\n-1 0\n","model":[1]}"#,
//!     "\n",
//!     r#"{"op":"shutdown"}"#,
//!     "\n",
//! );
//! let summary = serve_io(
//!     ServeConfig { workers: 1, ..ServeConfig::default() },
//!     Cursor::new(frames),
//!     Box::new(Vec::new()),
//! )?;
//! assert_eq!(summary.get("jobs_submitted").unwrap().as_u64(), Some(1));
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod cache;
mod front;
mod job;
pub mod protocol;
mod server;
mod watchdog;

pub use budget::{BudgetLedger, Lease};
pub use cache::{CachedFormula, FormulaCache, TraceCache};
pub use front::{serve_io, serve_stdin, serve_tcp};
pub use server::{write_frame, LineOutcome, Reply, ServeConfig, Server};
pub use watchdog::{Watchdog, WatchdogGuard};
