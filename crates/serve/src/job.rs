//! Executing one admitted job on a worker thread.
//!
//! [`run_job`] is the panic-*prone* part of the daemon — it runs solver
//! evidence of unknown quality through the checker — so the worker wraps
//! it in `catch_unwind` and this module stays free of any state that
//! could leak across jobs: everything it touches is either per-job
//! (lease, cancel flag, metrics sink) or owned by the caller and
//! discarded on panic (the scratch).

use crate::budget::BudgetLedger;
use crate::cache::{FormulaCache, TraceCache};
use crate::protocol::{status, verdict, Claim, Inject, JobSpec, Payload};
use crate::watchdog::Watchdog;
use rescheck_bench::report;
use rescheck_checker::{
    check_sat_claim, check_unsat_claim_scoped, CancelFlag, CheckConfig, CheckScratch, FailureKind,
};
use rescheck_cnf::{Assignment, Lit};
use rescheck_obs::{Json, MetricsSink, Registry};
use rescheck_trace::{read_all, FileTrace, MemorySink, TraceFormat};
use std::io::Cursor;
use std::thread;
use std::time::{Duration, Instant};

/// The shared daemon services a job executes against.
pub struct JobEnv<'a> {
    /// Global memory budget to lease from.
    pub ledger: &'a BudgetLedger,
    /// Deadline service.
    pub watchdog: &'a Watchdog,
    /// Shared parsed-formula cache.
    pub cache: &'a FormulaCache,
    /// Shared opened-trace cache (one byte map per distinct trace file).
    pub traces: &'a TraceCache,
    /// Daemon-wide default deadline for jobs that set none.
    pub default_timeout_ms: Option<u64>,
}

/// Runs one job to a verdict frame plus the job's metrics registry
/// (callers merge the registry into the daemon-wide one).
///
/// Never returns an error: every failure mode is a verdict. It *can*
/// panic — by injection or by checker bug — and the worker loop treats
/// that as one more failure mode (`internal-error`), not a daemon death.
pub fn run_job(spec: &JobSpec, env: &JobEnv<'_>, scratch: &mut CheckScratch) -> (Json, Registry) {
    let started = Instant::now();
    match spec.inject {
        Some(Inject::Panic) => panic!("injected job panic (inject=panic)"),
        Some(Inject::Sleep(ms)) => thread::sleep(Duration::from_millis(ms)),
        None => {}
    }

    let lease = env.ledger.lease(spec.memory_bytes);
    let cancel = CancelFlag::armed();
    let timeout_ms = spec.timeout_ms.or(env.default_timeout_ms);
    let deadline_armed = timeout_ms.is_some();
    let _deadline = timeout_ms.map(|ms| {
        env.watchdog
            .arm(started + Duration::from_millis(ms), cancel.clone())
    });

    let formula = match &spec.formula {
        Payload::Inline(text) => env.cache.load_text(text),
        Payload::Path(path) => match std::fs::read_to_string(path) {
            Ok(text) => env.cache.load_text(&text),
            Err(e) => {
                return finish(
                    error_verdict(spec, status::IO_ERROR, &format!("reading {path}: {e}")),
                    started,
                    Registry::new(),
                )
            }
        },
    };
    let formula = match formula {
        Ok(f) => f,
        Err(e) => {
            return finish(
                error_verdict(spec, status::IO_ERROR, &format!("parsing formula: {e}")),
                started,
                Registry::new(),
            )
        }
    };

    // `timeout_ms: 0` (and any deadline that expired during load) is
    // caught here, before the checker spends cycles — deterministically,
    // because past deadlines fire synchronously in `Watchdog::arm`.
    if cancel.is_cancelled() {
        return finish(
            error_verdict(
                spec,
                status::TIMEOUT,
                "deadline expired before the check ran",
            ),
            started,
            Registry::new(),
        );
    }

    match &spec.claim {
        Claim::Sat(lits) => {
            let max_var = lits.iter().map(|l| l.unsigned_abs() as usize).max();
            let mut model = Assignment::new(formula.cnf.num_vars());
            model.grow_to(max_var.unwrap_or(0).max(formula.cnf.num_vars()));
            for &l in lits {
                model.assign(Lit::from_dimacs(l));
            }
            let frame = match check_sat_claim(&formula.cnf, &model) {
                Ok(()) => {
                    let mut frame = verdict(&spec.id, status::VALID);
                    frame.set("claim", "sat");
                    frame
                }
                Err(e) => {
                    let mut frame = verdict(&spec.id, status::MODEL_DEFECT);
                    frame.set("claim", "sat").set("error", e.to_string());
                    frame
                }
            };
            finish(frame, started, Registry::new())
        }
        Claim::Unsat(evidence) => {
            let trace = if let Some(format) = spec.proof_format {
                // Clausal proof: ingest it into a synthetic resolve
                // trace first, then check that trace like any other.
                let bytes = match evidence {
                    Payload::Inline(text) => text.as_bytes().to_vec(),
                    Payload::Path(path) => match std::fs::read(path) {
                        Ok(bytes) => bytes,
                        Err(e) => {
                            return finish(
                                error_verdict(
                                    spec,
                                    status::IO_ERROR,
                                    &format!("reading proof {path}: {e}"),
                                ),
                                started,
                                Registry::new(),
                            )
                        }
                    },
                };
                match rescheck_interop::ingest_bytes(&formula.cnf, &bytes, format) {
                    Ok(report) if !report.resolution_checkable() => {
                        // RAT steps have no resolution derivation; the
                        // ingestion engine's forward check is the verdict.
                        let mut frame = verdict(&spec.id, status::VALID);
                        frame
                            .set("claim", "unsat")
                            .set("proof_format", format.to_string())
                            .set("verified_by", "ingest")
                            .set("rat_steps", report.stats.rat_steps);
                        return finish(frame, started, Registry::new());
                    }
                    Ok(report) => LoadedTrace::Memory(MemorySink::from(report.events)),
                    Err(e) => {
                        let status = match e.kind {
                            rescheck_interop::InteropErrorKind::Input => status::IO_ERROR,
                            rescheck_interop::InteropErrorKind::ProofDefect => status::PROOF_DEFECT,
                        };
                        return finish(
                            error_verdict(spec, status, &e.to_string()),
                            started,
                            Registry::new(),
                        );
                    }
                }
            } else {
                match load_trace(evidence, env.traces) {
                    Ok(trace) => trace,
                    Err(message) => {
                        return finish(
                            error_verdict(spec, status::IO_ERROR, &message),
                            started,
                            Registry::new(),
                        )
                    }
                }
            };
            let mut sink = MetricsSink::new();
            scratch.begin_job(formula.token);
            let config = CheckConfig {
                memory_limit: lease.bytes(),
                jobs: spec.inner_jobs,
                cancel: cancel.clone(),
                ..CheckConfig::default()
            };
            let result = match &trace {
                LoadedTrace::Memory(sinkful) => check_unsat_claim_scoped(
                    &formula.cnf,
                    sinkful,
                    spec.strategy,
                    &config,
                    scratch,
                    &mut sink,
                ),
                LoadedTrace::File(file) => check_unsat_claim_scoped(
                    &formula.cnf,
                    file,
                    spec.strategy,
                    &config,
                    scratch,
                    &mut sink,
                ),
            };
            let registry = sink.into_registry();
            let frame = match result {
                Ok(outcome) => {
                    let mut frame = verdict(&spec.id, status::VALID);
                    frame
                        .set("claim", "unsat")
                        .set("stats", report::check_stats_json(&outcome.stats));
                    if let Some(core) = &outcome.core {
                        frame.set("core_clauses", core.num_clauses());
                    }
                    frame
                }
                Err(e) => {
                    let mut frame = verdict(&spec.id, failure_status(e.kind(), deadline_armed));
                    frame.set("claim", "unsat").set("error", e.to_string());
                    frame
                }
            };
            finish(frame, started, registry)
        }
    }
}

enum LoadedTrace {
    Memory(MemorySink),
    File(FileTrace),
}

fn load_trace(evidence: &Payload, traces: &TraceCache) -> Result<LoadedTrace, String> {
    match evidence {
        Payload::Inline(text) => {
            let events = read_all(Cursor::new(text.as_bytes()), TraceFormat::Ascii)
                .map_err(|e| format!("parsing inline trace: {e}"))?;
            Ok(LoadedTrace::Memory(MemorySink::from(events)))
        }
        // Path evidence goes through the daemon's trace cache: repeated
        // jobs against one file share a single established byte map.
        Payload::Path(path) => traces
            .open(path)
            .map(LoadedTrace::File)
            .map_err(|e| format!("opening trace {path}: {e}")),
    }
}

fn failure_status(kind: FailureKind, deadline_armed: bool) -> &'static str {
    match kind {
        FailureKind::ProofDefect => status::PROOF_DEFECT,
        FailureKind::ResourceLimit => status::RESOURCE_LIMIT,
        FailureKind::Io => status::IO_ERROR,
        FailureKind::Cancelled if deadline_armed => status::TIMEOUT,
        FailureKind::Cancelled => status::CANCELLED,
        FailureKind::Internal => status::INTERNAL_ERROR,
    }
}

fn error_verdict(spec: &JobSpec, status: &str, message: &str) -> Json {
    let mut frame = verdict(&spec.id, status);
    frame.set("error", message);
    frame
}

/// Stamps the wall time and embeds the job's metrics document.
fn finish(mut frame: Json, started: Instant, registry: Registry) -> (Json, Registry) {
    frame.set("wall_seconds", started.elapsed().as_secs_f64());
    frame.set("metrics", report::metrics_document("serve-job", &registry));
    (frame, registry)
}
