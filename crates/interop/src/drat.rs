//! The DRAT/DRUP clausal proof format, text and binary.
//!
//! A DRAT proof is a flat list of clause *additions* and *deletions*
//! against an implicit, growing clause database — no hints, no clause
//! ids. The two wire encodings are the ones drat-trim standardised:
//!
//! - **text** — one step per line, literals in DIMACS numbering
//!   terminated by `0`; a leading `d` marks a deletion; `c` lines are
//!   comments.
//! - **binary** — each step starts with an `a` (0x61) or `d` (0x64)
//!   byte, followed by the literals as 7-bit variable-length integers
//!   of the mapping `2·|l| + (l < 0)`, terminated by a single 0x00
//!   byte. The mapping leaves code 0 free to be the terminator, which
//!   is why the encoding has no sign bit to confuse truncation with.
//!
//! The parser classifies every rejection as an *input* error
//! ([`crate::InteropErrorKind::Input`]): a file that does not tokenize
//! is not a bad proof, it is not a proof at all.

use crate::error::InteropError;
use std::io::Write;

/// One parsed DRAT proof step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DratStep {
    /// Add a clause (DIMACS literals, unsorted, as written).
    Add(Vec<i64>),
    /// Delete a clause, matched by its literal set.
    Delete(Vec<i64>),
}

impl DratStep {
    /// The literals of the step, whichever kind it is.
    pub fn lits(&self) -> &[i64] {
        match self {
            DratStep::Add(lits) | DratStep::Delete(lits) => lits,
        }
    }
}

/// Sniffs the binary encoding: a DRAT file whose first byte is `a`/`d`
/// *could* be text, but text proofs start with a digit, `-`, `d `, `c`
/// or whitespace — the unambiguous tell is a 0x61/0x64 first byte
/// followed by a byte that is not valid text (binary literal codes are
/// almost never printable separators).
pub fn looks_binary(bytes: &[u8]) -> bool {
    // Binary steps open with 'a' (0x61); a text proof can open with
    // 'd' or 'c' but never with 'a'. A text deletion is always "d ",
    // a binary deletion's next byte is a varint that is never 0x20.
    match bytes {
        [0x61, ..] => true,
        [0x64, next, ..] => !next.is_ascii_whitespace(),
        _ => false,
    }
}

/// Parses a text DRAT proof.
///
/// # Errors
///
/// [`InteropError`] of kind `Input` on any malformed token, a clause
/// missing its `0` terminator, or a stray `d` with no clause.
pub fn parse_text(text: &str) -> Result<Vec<DratStep>, InteropError> {
    let mut steps = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let at = Some(lineno as u64 + 1);
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let (is_delete, rest) = match line.strip_prefix('d') {
            Some(rest) if rest.starts_with(|c: char| c.is_ascii_whitespace()) => (true, rest),
            Some(_) => {
                return Err(InteropError::input(
                    at,
                    format!("unrecognised DRAT line {line:?}"),
                ))
            }
            None => (false, line),
        };
        let mut lits = Vec::new();
        let mut terminated = false;
        for tok in rest.split_ascii_whitespace() {
            if terminated {
                return Err(InteropError::input(
                    at,
                    format!("trailing token {tok:?} after clause terminator"),
                ));
            }
            let lit: i64 = tok
                .parse()
                .map_err(|_| InteropError::input(at, format!("bad DRAT literal token {tok:?}")))?;
            if lit == 0 {
                terminated = true;
            } else {
                lits.push(lit);
            }
        }
        if !terminated {
            return Err(InteropError::input(at, "clause missing its 0 terminator"));
        }
        steps.push(if is_delete {
            DratStep::Delete(lits)
        } else {
            DratStep::Add(lits)
        });
    }
    Ok(steps)
}

/// Maps a DIMACS literal into the binary-DRAT unsigned code
/// `2·|l| + (l < 0)`.
fn lit_code(lit: i64) -> u64 {
    (lit.unsigned_abs() << 1) | u64::from(lit < 0)
}

/// Inverse of [`lit_code`]; `None` when the code overflows `i64` or is
/// the reserved terminator 0.
fn code_lit(code: u64) -> Option<i64> {
    let var = code >> 1;
    if var == 0 || var > i64::MAX as u64 {
        return None;
    }
    let var = var as i64;
    Some(if code & 1 == 1 { -var } else { var })
}

/// Reads one binary varint (7-bit groups, MSB continuation).
fn read_varint(bytes: &[u8], pos: &mut usize, at: u64) -> Result<u64, InteropError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(InteropError::input(
                Some(at),
                "truncated varint in binary DRAT stream",
            ));
        };
        *pos += 1;
        if shift == 63 && b > 1 {
            return Err(InteropError::input(
                Some(at),
                "binary DRAT varint overflows u64",
            ));
        }
        value |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(InteropError::input(
                Some(at),
                "binary DRAT varint overflows u64",
            ));
        }
    }
}

fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Parses a binary DRAT proof.
///
/// # Errors
///
/// [`InteropError`] of kind `Input` on an unknown step tag, a truncated
/// or overlong varint, a literal code that decodes to variable 0, or a
/// clause cut off before its 0x00 terminator.
pub fn parse_binary(bytes: &[u8]) -> Result<Vec<DratStep>, InteropError> {
    let mut steps = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let at = steps.len() as u64 + 1;
        let tag = bytes[pos];
        pos += 1;
        let is_delete = match tag {
            0x61 => false,
            0x64 => true,
            other => {
                return Err(InteropError::input(
                    Some(at),
                    format!("unknown binary DRAT step tag {other:#04x}"),
                ))
            }
        };
        let mut lits = Vec::new();
        loop {
            if pos >= bytes.len() {
                return Err(InteropError::input(
                    Some(at),
                    "binary DRAT clause cut off before its 0 terminator",
                ));
            }
            let code = read_varint(bytes, &mut pos, at)?;
            if code == 0 {
                break;
            }
            let lit = code_lit(code).ok_or_else(|| {
                InteropError::input(Some(at), format!("bad binary DRAT literal code {code}"))
            })?;
            lits.push(lit);
        }
        steps.push(if is_delete {
            DratStep::Delete(lits)
        } else {
            DratStep::Add(lits)
        });
    }
    Ok(steps)
}

/// Parses a DRAT proof, sniffing text vs binary by the first bytes.
///
/// # Errors
///
/// `Input` errors from the underlying parser; non-UTF-8 bytes on the
/// text path are an input error too.
pub fn parse(bytes: &[u8]) -> Result<Vec<DratStep>, InteropError> {
    if looks_binary(bytes) {
        parse_binary(bytes)
    } else {
        let text = std::str::from_utf8(bytes)
            .map_err(|e| InteropError::input(None, format!("DRAT file is not UTF-8: {e}")))?;
        parse_text(text)
    }
}

/// Renders steps in the text encoding.
pub fn write_text<W: Write>(mut out: W, steps: &[DratStep]) -> std::io::Result<()> {
    for step in steps {
        if matches!(step, DratStep::Delete(_)) {
            out.write_all(b"d ")?;
        }
        for lit in step.lits() {
            write!(out, "{lit} ")?;
        }
        out.write_all(b"0\n")?;
    }
    Ok(())
}

/// Renders steps in the binary encoding.
pub fn write_binary(steps: &[DratStep]) -> Vec<u8> {
    let mut out = Vec::new();
    for step in steps {
        out.push(if matches!(step, DratStep::Delete(_)) {
            0x64
        } else {
            0x61
        });
        for &lit in step.lits() {
            write_varint(&mut out, lit_code(lit));
        }
        out.push(0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::InteropErrorKind;

    #[test]
    fn text_roundtrip() {
        let steps = vec![
            DratStep::Add(vec![1, -2, 3]),
            DratStep::Delete(vec![-1, 2]),
            DratStep::Add(vec![]),
        ];
        let mut buf = Vec::new();
        write_text(&mut buf, &steps).unwrap();
        assert_eq!(String::from_utf8_lossy(&buf), "1 -2 3 0\nd -1 2 0\n0\n");
        assert_eq!(parse(&buf).unwrap(), steps);
    }

    #[test]
    fn binary_roundtrip() {
        let steps = vec![
            DratStep::Add(vec![1, -2, 129]),
            DratStep::Delete(vec![-129]),
            DratStep::Add(vec![]),
        ];
        let bytes = write_binary(&steps);
        assert!(looks_binary(&bytes));
        assert_eq!(parse(&bytes).unwrap(), steps);
    }

    #[test]
    fn binary_zero_terminator_only_is_rejected() {
        // A lone 0x00 with no step tag is not a step.
        let err = parse_binary(&[0x00]).unwrap_err();
        assert_eq!(err.kind, InteropErrorKind::Input);
    }

    #[test]
    fn binary_max_var_literal_roundtrips() {
        // The largest variable the code mapping can carry in an i64.
        let max = i64::MAX;
        let steps = vec![DratStep::Add(vec![max, -max])];
        let bytes = write_binary(&steps);
        assert_eq!(parse_binary(&bytes).unwrap(), steps);
    }

    #[test]
    fn binary_truncation_is_input_error() {
        let bytes = write_binary(&[DratStep::Add(vec![1000, -2000, 3000])]);
        for cut in 1..bytes.len() {
            match parse_binary(&bytes[..cut]) {
                Err(e) => assert_eq!(e.kind, InteropErrorKind::Input, "cut at {cut}"),
                Ok(steps) => {
                    // A cut exactly after a full step parses clean.
                    assert!(cut == bytes.len(), "unexpected accept at {cut}: {steps:?}")
                }
            }
        }
    }

    #[test]
    fn binary_literal_code_zero_variable_is_rejected() {
        // Code 1 decodes to variable 0 (negative phase) — reserved.
        let err = parse_binary(&[0x61, 0x01, 0x00]).unwrap_err();
        assert_eq!(err.kind, InteropErrorKind::Input);
    }

    #[test]
    fn text_rejections() {
        for bad in ["1 2", "1 x 0", "d\n", "1 0 2 0", "delete 1 0"] {
            let err = parse_text(bad).unwrap_err();
            assert_eq!(err.kind, InteropErrorKind::Input, "{bad:?}");
        }
    }

    #[test]
    fn text_comments_and_blanks_are_skipped() {
        let steps = parse_text("c comment\n\n1 0\n").unwrap();
        assert_eq!(steps, vec![DratStep::Add(vec![1])]);
    }
}
