//! Proof-format interop for rescheck.
//!
//! The native evidence format is the *resolve trace* — an explicit
//! resolution derivation the seven checking strategies replay clause by
//! clause (Zhang & Malik, DATE 2003). The wider proof-checking
//! ecosystem standardised on clausal formats instead: DRAT (clause
//! additions and deletions, no justification) and LRAT (DRAT plus unit
//! propagation hints). This crate is the bridge, in both directions:
//!
//! - **emit** ([`export_lrat`]) — convert a resolve trace to LRAT. A
//!   learned clause's antecedent chain, reversed, *is* a valid RUP hint
//!   list, so the conversion is a fold-and-renumber with no search.
//! - **ingest** ([`ingest_drat`], [`ingest_lrat`]) — reconstruct a
//!   resolve trace from a clausal proof, re-deriving the missing
//!   justification by two-watched-literal unit propagation (DRAT) or
//!   hint replay (LRAT). The synthesized trace is then checkable by any
//!   native strategy — two independent codebases agreeing on a proof
//!   neither produced.
//!
//! RAT steps (clause additions that are only *resolution asymmetric*
//! tautologies, not reverse-unit-propagation consequences) have no
//! resolution derivation; ingestion verifies them via resolvent-RUP and
//! flags the result as not resolution-checkable
//! ([`IngestReport::resolution_checkable`]).
//!
//! Everything rejects in one of two ways, and the split drives the CLI
//! exit codes: [`InteropErrorKind::Input`] (the bytes are not a proof,
//! exit 4) versus [`InteropErrorKind::ProofDefect`] (the proof is
//! wrong, exit 1). Neither path may panic, no matter the bytes — the
//! conformance suite and the fuzz corpus (via [`corrupt`]) enforce it.

pub mod corrupt;
pub mod drat;
pub mod error;
pub mod export;
pub mod ingest;
pub mod lrat;

pub use corrupt::{apply_proof, ProofMutation, ALL_PROOF_MUTATIONS};
pub use drat::DratStep;
pub use error::{InteropError, InteropErrorKind};
pub use export::{export_lrat, ExportReport, ExportStats};
pub use ingest::{ingest_drat, ingest_lrat, IngestReport, IngestStats};
pub use lrat::LratStep;

use rescheck_cnf::Cnf;

/// A clausal proof format the ingestion front end understands.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProofFormat {
    /// DRAT/DRUP: additions and deletions, no hints (text or binary).
    Drat,
    /// LRAT: additions with unit-propagation hints (text or binary).
    Lrat,
}

impl ProofFormat {
    /// Parses the CLI/protocol spelling of a format name.
    pub fn from_name(name: &str) -> Option<ProofFormat> {
        match name {
            "drat" | "drup" => Some(ProofFormat::Drat),
            "lrat" => Some(ProofFormat::Lrat),
            _ => None,
        }
    }
}

impl std::fmt::Display for ProofFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProofFormat::Drat => f.write_str("drat"),
            ProofFormat::Lrat => f.write_str("lrat"),
        }
    }
}

/// Parses and ingests proof bytes in one call, sniffing text vs binary.
///
/// # Errors
///
/// `Input` errors from the parser, `Input`/`ProofDefect` errors from
/// the ingestion engine — see [`ingest_drat`] and [`ingest_lrat`].
pub fn ingest_bytes(
    cnf: &Cnf,
    bytes: &[u8],
    format: ProofFormat,
) -> Result<IngestReport, InteropError> {
    match format {
        ProofFormat::Drat => {
            let steps = drat::parse(bytes)?;
            ingest_drat(cnf, &steps)
        }
        ProofFormat::Lrat => {
            let steps = lrat::parse(bytes)?;
            ingest_lrat(cnf, &steps)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_names_parse() {
        assert_eq!(ProofFormat::from_name("drat"), Some(ProofFormat::Drat));
        assert_eq!(ProofFormat::from_name("drup"), Some(ProofFormat::Drat));
        assert_eq!(ProofFormat::from_name("lrat"), Some(ProofFormat::Lrat));
        assert_eq!(ProofFormat::from_name("native"), None);
        assert_eq!(ProofFormat::Drat.to_string(), "drat");
        assert_eq!(ProofFormat::Lrat.to_string(), "lrat");
    }
}
