//! Error taxonomy for the interop pipeline.
//!
//! Everything the parsers and the ingestion engine can reject falls into
//! one of two classes, and the distinction is load-bearing for callers:
//!
//! - [`InteropErrorKind::Input`] — the bytes are not a well-formed
//!   DRAT/LRAT file (garbage tokens, truncated varints, missing
//!   terminators). The CLI maps this to exit code 4, the same class as
//!   an unreadable file: the environment handed us something that is
//!   not a proof.
//! - [`InteropErrorKind::ProofDefect`] — the file parses fine but the
//!   proof it encodes is wrong (an addition that is not RUP/RAT, a hint
//!   that is neither unit nor conflicting, no empty clause derived).
//!   The CLI maps this to exit code 1, the same class as a rejected
//!   native trace: the solver (or the converter) produced a bad proof.

use std::fmt;
use std::io;

/// Which class of failure an [`InteropError`] reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InteropErrorKind {
    /// The input is not a well-formed proof file (exit code 4).
    Input,
    /// The proof is well-formed but invalid (exit code 1).
    ProofDefect,
}

impl fmt::Display for InteropErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InteropErrorKind::Input => f.write_str("input error"),
            InteropErrorKind::ProofDefect => f.write_str("proof defect"),
        }
    }
}

/// A structured failure from parsing, exporting or ingesting a proof.
#[derive(Debug)]
pub struct InteropError {
    /// The failure class (drives the CLI exit code).
    pub kind: InteropErrorKind,
    /// 1-based line number (text formats) or proof-step index (binary
    /// formats) where the failure was detected, when known.
    pub at: Option<u64>,
    /// Human-readable description.
    pub message: String,
}

impl InteropError {
    /// A malformed-input failure (exit code 4).
    pub fn input(at: Option<u64>, message: impl Into<String>) -> InteropError {
        InteropError {
            kind: InteropErrorKind::Input,
            at,
            message: message.into(),
        }
    }

    /// A proof-defect failure (exit code 1).
    pub fn defect(at: Option<u64>, message: impl Into<String>) -> InteropError {
        InteropError {
            kind: InteropErrorKind::ProofDefect,
            at,
            message: message.into(),
        }
    }
}

impl fmt::Display for InteropError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.at {
            Some(at) => write!(f, "{} at step {}: {}", self.kind, at, self.message),
            None => write!(f, "{}: {}", self.kind, self.message),
        }
    }
}

impl std::error::Error for InteropError {}

impl From<io::Error> for InteropError {
    /// Raw I/O failures while reading proof bytes are input errors; the
    /// proof never got far enough to be judged.
    fn from(e: io::Error) -> InteropError {
        InteropError::input(None, e.to_string())
    }
}
