//! Ingesting clausal proofs (DRAT/LRAT) into resolution traces.
//!
//! This is the Cruz-Filipe pipeline run in one pass: a clausal proof
//! names *what* was derived but not *how*, so the engine re-derives the
//! "how" — for DRAT by two-watched-literal unit propagation (the
//! forward BCP pass), for LRAT by replaying the hint lists — and records
//! every derivation as a [`TraceEvent::Learned`] antecedent chain the
//! existing resolution checkers can fold.
//!
//! The synthesis rules, matching the checker's validation contract:
//!
//! - a RUP addition's conflict analysis walks the trail top-down,
//!   resolving the conflicting clause with the reason of every falsified
//!   literal it accumulates (level-0 reasons included), so the derived
//!   resolvent `R ⊆ C` contains only negated assumptions and the chain
//!   folds with exactly one clashing variable per step;
//! - a chain of length one means the conflicting clause subsumes the
//!   addition — the checker requires at least two sources, so the new
//!   clause *aliases* the subsumer instead of emitting an event;
//! - persistent (decision-level-0) propagations become
//!   [`TraceEvent::LevelZero`] records in propagation order, which is
//!   exactly the order discipline the final-phase checker enforces;
//! - the first root-level conflict becomes [`TraceEvent::FinalConflict`]
//!   and ends the proof (later steps are counted, not replayed);
//! - RAT additions are verified via resolvent-RUP (every resolvent on
//!   the pivot must itself be RUP), but a RAT step has no resolution
//!   derivation, so `rat_steps > 0` marks the synthesized trace as not
//!   checkable by the resolution strategies — the ingest verification
//!   itself is then the verdict.
//!
//! Deletions follow the drat-trim conventions: deleting a clause that
//! is not in the database is a *warning*, not an error, and deleting a
//! clause that is currently the reason of a level-0 assignment is
//! skipped (the clause stays).

use crate::drat::DratStep;
use crate::error::InteropError;
use crate::lrat::LratStep;
use rescheck_checker::normalize_literals;
use rescheck_cnf::{Cnf, Lit};
use rescheck_trace::TraceEvent;
use std::collections::HashMap;
use std::fmt;

/// Counters from one ingestion run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Addition steps processed (before the empty clause).
    pub additions: u64,
    /// Additions derived by RUP conflict analysis (chain emitted).
    pub rup_steps: u64,
    /// Additions verified by resolvent-RUP (no chain possible).
    pub rat_steps: u64,
    /// Additions subsumed by an existing clause (no event emitted).
    pub aliased: u64,
    /// Tautological additions, skipped per drat-trim convention.
    pub tautologies: u64,
    /// Deletions applied.
    pub deletions: u64,
    /// Deletions of clauses not in the database (warned, ignored).
    pub missing_deletions: u64,
    /// Deletions skipped because the clause is a level-0 reason.
    pub locked_deletions: u64,
    /// Level-0 assignment records synthesized.
    pub level_zero: u64,
    /// Proof steps after the empty clause was derived (ignored).
    pub steps_after_empty: u64,
}

impl fmt::Display for IngestStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ingest: {} additions ({} rup, {} rat, {} aliased, {} tautological), \
             {} deletions ({} missing, {} locked), {} level-zero records",
            self.additions,
            self.rup_steps,
            self.rat_steps,
            self.aliased,
            self.tautologies,
            self.deletions,
            self.missing_deletions,
            self.locked_deletions,
            self.level_zero
        )
    }
}

/// The synthesized trace plus everything a caller needs to judge it.
#[derive(Debug)]
pub struct IngestReport {
    /// The synthesized resolution trace, in derivation order.
    pub events: Vec<TraceEvent>,
    /// Ingestion counters.
    pub stats: IngestStats,
    /// `(trace_id, literals)` of every derived clause that got a
    /// `Learned` event — the round-trip tests compare these sets.
    pub resolvents: Vec<(u64, Vec<Lit>)>,
}

impl IngestReport {
    /// `true` when the synthesized trace is a complete resolution
    /// derivation the native strategies can check. RAT steps have no
    /// resolution counterpart, so any RAT step forfeits this.
    pub fn resolution_checkable(&self) -> bool {
        self.stats.rat_steps == 0
    }
}

/// A variable index cap low enough that every literal stays convertible
/// (`Var::new` panics above `u32::MAX / 2`; a panic in a parser-facing
/// path would break the conformance guarantee).
const MAX_DIMACS_VAR: u64 = (u32::MAX / 2) as u64;

/// Bounds the variables a proof may mention: the formula's own, plus at
/// most one fresh variable per literal occurrence in the proof. A
/// legitimate proof numbers its extension variables densely after the
/// formula's; a "variable two billion" literal is hostile input that
/// would otherwise force a multi-gigabyte dense allocation in
/// [`Engine::ensure_var`], so it is rejected as an input error instead.
fn proof_var_cap(cnf: &Cnf, proof_lits: u64) -> u64 {
    (cnf.num_vars() as u64)
        .saturating_add(proof_lits)
        .min(MAX_DIMACS_VAR)
}

const NO_REASON: usize = usize::MAX;
/// Arena sentinel for deletion-index entries that deactivate nothing
/// (tautologies and aliased additions).
const NO_CLAUSE: usize = usize::MAX;

struct ClauseRec {
    /// Sorted, deduplicated literals of the clause the database
    /// actually holds (the derived resolvent for RUP additions).
    lits: Vec<Lit>,
    /// Id this clause carries in the synthesized trace.
    trace_id: u64,
    active: bool,
    /// Watched positions into `lits` (meaningful when `lits.len() >= 2`).
    watch: [usize; 2],
}

/// Shared ingestion state for both proof formats.
struct Engine {
    clauses: Vec<ClauseRec>,
    next_trace_id: u64,
    /// Per-variable assignment: 0 unassigned, 1 true, -1 false.
    value: Vec<i8>,
    /// Per-variable reason (arena index) or `NO_REASON`.
    reason: Vec<usize>,
    trail: Vec<Lit>,
    /// Length of the persistent (level-0) prefix of the trail.
    fixed: usize,
    prop_head: usize,
    /// Watch lists per literal code (DRAT mode only).
    watches: Vec<Vec<usize>>,
    /// Deletion index: normalized claimed literals → arena entries, in
    /// addition order (deletions pop the most recent match).
    del_index: HashMap<Vec<Lit>, Vec<usize>>,
    /// Per-arena flag: clause is the reason of a persistent assignment.
    locked: Vec<bool>,
    /// Analysis scratch: per-literal-code membership in the resolvent.
    mark: Vec<bool>,
    events: Vec<TraceEvent>,
    resolvents: Vec<(u64, Vec<Lit>)>,
    stats: IngestStats,
    done: bool,
}

impl Engine {
    fn new(cnf: &Cnf) -> Engine {
        Engine {
            clauses: Vec::with_capacity(cnf.num_clauses()),
            next_trace_id: cnf.num_clauses() as u64,
            value: vec![0; cnf.num_vars()],
            reason: vec![NO_REASON; cnf.num_vars()],
            trail: Vec::new(),
            fixed: 0,
            prop_head: 0,
            watches: vec![Vec::new(); 2 * cnf.num_vars()],
            del_index: HashMap::new(),
            locked: Vec::new(),
            mark: vec![false; 2 * cnf.num_vars()],
            events: Vec::new(),
            resolvents: Vec::new(),
            stats: IngestStats::default(),
            done: false,
        }
    }

    fn ensure_var(&mut self, var_index: usize) {
        if var_index >= self.value.len() {
            let vars = var_index + 1;
            self.value.resize(vars, 0);
            self.reason.resize(vars, NO_REASON);
            self.watches.resize(2 * vars, Vec::new());
            self.mark.resize(2 * vars, false);
        }
    }

    /// `1` satisfied, `-1` falsified, `0` unassigned, for `lit` under
    /// the current assignment.
    fn lit_value(&self, lit: Lit) -> i8 {
        let v = self.value[lit.var().index()];
        if lit.is_positive() {
            v
        } else {
            -v
        }
    }

    fn assign(&mut self, lit: Lit, reason: usize) {
        self.value[lit.var().index()] = if lit.is_positive() { 1 } else { -1 };
        self.reason[lit.var().index()] = reason;
        self.trail.push(lit);
    }

    /// Pops the trail back to `mark`, unassigning everything above it.
    fn pop_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let lit = self.trail.pop().expect("trail above mark");
            self.value[lit.var().index()] = 0;
            self.reason[lit.var().index()] = NO_REASON;
        }
        self.prop_head = self.prop_head.min(self.trail.len());
    }

    /// Registers a clause in the arena (and its watches, when watched).
    fn push_clause(&mut self, lits: Vec<Lit>, trace_id: u64, watched: bool) -> usize {
        let idx = self.clauses.len();
        let watch = if lits.len() >= 2 { [0, 1] } else { [0, 0] };
        if watched && lits.len() >= 2 {
            self.watches[lits[0].code()].push(idx);
            self.watches[lits[1].code()].push(idx);
        }
        self.clauses.push(ClauseRec {
            lits,
            trace_id,
            active: true,
            watch,
        });
        self.locked.push(false);
        idx
    }

    /// [`Engine::propagate`] at decision level 0: every literal the
    /// propagation assigns is a persistent fact, so each one gets a
    /// [`TraceEvent::LevelZero`] record (in propagation order — the
    /// order discipline the final-phase checker enforces) and its
    /// reason clause is locked against deletion.
    fn propagate_persistent(&mut self) -> Option<usize> {
        let start = self.trail.len();
        let conflict = self.propagate();
        for i in start..self.trail.len() {
            let lit = self.trail[i];
            let r = self.reason[lit.var().index()];
            debug_assert_ne!(r, NO_REASON, "level-0 propagation without a reason");
            self.locked[r] = true;
            self.stats.level_zero += 1;
            self.events.push(TraceEvent::LevelZero {
                lit,
                antecedent: self.clauses[r].trace_id,
            });
        }
        self.fixed = self.trail.len();
        conflict
    }

    /// Two-watched-literal unit propagation from `prop_head` to the
    /// fixpoint. Returns the arena index of a falsified clause, if the
    /// propagation ran into one.
    fn propagate(&mut self) -> Option<usize> {
        while self.prop_head < self.trail.len() {
            let lit = self.trail[self.prop_head];
            self.prop_head += 1;
            let false_lit = !lit;
            let mut list = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut keep = 0usize;
            let mut conflict = None;
            let mut i = 0usize;
            while i < list.len() {
                let c = list[i];
                i += 1;
                if !self.clauses[c].active {
                    continue; // lazily drop deleted clauses
                }
                let (w0, w1) = (self.clauses[c].watch[0], self.clauses[c].watch[1]);
                let this = if self.clauses[c].lits[w0] == false_lit {
                    0
                } else {
                    debug_assert_eq!(self.clauses[c].lits[w1], false_lit);
                    1
                };
                let other_lit = self.clauses[c].lits[self.clauses[c].watch[1 - this]];
                if self.lit_value(other_lit) == 1 {
                    list[keep] = c;
                    keep += 1;
                    continue;
                }
                // Look for a replacement watch.
                let mut replaced = false;
                for (pos, &l) in self.clauses[c].lits.iter().enumerate() {
                    if pos == w0 || pos == w1 || self.lit_value(l) == -1 {
                        continue;
                    }
                    self.clauses[c].watch[this] = pos;
                    self.watches[l.code()].push(c);
                    replaced = true;
                    break;
                }
                if replaced {
                    continue;
                }
                list[keep] = c;
                keep += 1;
                match self.lit_value(other_lit) {
                    0 => self.assign(other_lit, c),
                    _ => {
                        conflict = Some(c);
                        break;
                    }
                }
            }
            // Keep the untraversed tail when a conflict cut the scan
            // short, then put the list back.
            while i < list.len() {
                list[keep] = list[i];
                keep += 1;
                i += 1;
            }
            list.truncate(keep);
            self.watches[false_lit.code()] = list;
            if let Some(c) = conflict {
                return Some(c);
            }
        }
        None
    }

    /// Conflict analysis: walks the whole trail top-down from the
    /// falsified clause, resolving away every accumulated literal that
    /// has a reason. Returns the antecedent chain (conflicting clause
    /// first) and the derived resolvent, sorted.
    fn analyze(&mut self, conflict: usize) -> (Vec<u64>, Vec<Lit>) {
        let mut chain = vec![self.clauses[conflict].trace_id];
        let mut marked: Vec<Lit> = Vec::new();
        for &l in &self.clauses[conflict].lits {
            if !self.mark[l.code()] {
                self.mark[l.code()] = true;
                marked.push(l);
            }
        }
        for i in (0..self.trail.len()).rev() {
            let lit = self.trail[i];
            let neg = !lit;
            if !self.mark[neg.code()] {
                continue;
            }
            let r = self.reason[lit.var().index()];
            if r == NO_REASON {
                continue; // assumption: its negation stays in the resolvent
            }
            self.mark[neg.code()] = false;
            chain.push(self.clauses[r].trace_id);
            for pos in 0..self.clauses[r].lits.len() {
                let l = self.clauses[r].lits[pos];
                if l != lit && !self.mark[l.code()] {
                    self.mark[l.code()] = true;
                    marked.push(l);
                }
            }
        }
        // Whatever is still marked survives the fold: negated
        // assumptions, plus the satisfied literal in the
        // satisfied-at-level-0 case.
        let mut resolvent: Vec<Lit> = marked
            .into_iter()
            .filter(|l| {
                let m = self.mark[l.code()];
                self.mark[l.code()] = false;
                m
            })
            .collect();
        resolvent.sort_unstable();
        (chain, resolvent)
    }

    /// Installs a derived clause: emits the `Learned` event (or counts
    /// an alias when the chain has a single source), registers watches
    /// (DRAT mode) and the deletion-index entry, then applies the
    /// root-level completion rule (conflict → final event, unit →
    /// persistent propagation). Returns an error only via the events it
    /// cannot express — it has none, so it is infallible.
    fn install(
        &mut self,
        claimed_key: Vec<Lit>,
        chain: Vec<u64>,
        resolvent: Vec<Lit>,
        conflict: usize,
        watched: bool,
    ) {
        if chain.len() == 1 {
            // The conflicting clause subsumes the addition: the checker
            // demands >= 2 sources, so no event. The database gets a
            // *copy* of the subsumer under the same trace id — a later
            // deletion of this addition must not deactivate the
            // subsumer itself, and later derivations that resolve with
            // this clause must see the literals the trace id stands for.
            self.stats.aliased += 1;
            debug_assert_eq!(resolvent, self.clauses[conflict].lits);
            let tid = self.clauses[conflict].trace_id;
            let idx = self.push_clause(resolvent, tid, watched);
            self.del_index.entry(claimed_key).or_default().push(idx);
            return;
        }
        self.stats.rup_steps += 1;
        let id = self.next_trace_id;
        self.next_trace_id += 1;
        self.events.push(TraceEvent::Learned { id, sources: chain });
        self.resolvents.push((id, resolvent.clone()));
        let idx = self.push_clause(resolvent, id, watched);
        self.del_index.entry(claimed_key).or_default().push(idx);
        self.complete(idx, watched);
    }

    /// Root-level completion after a clause lands in the database:
    /// fully falsified (or empty) → final conflict; unit → persistent
    /// assignment, then (in watched/DRAT mode) persistent propagation.
    fn complete(&mut self, idx: usize, watched: bool) {
        debug_assert_eq!(self.trail.len(), self.fixed, "completion above level 0");
        let mut unassigned = None;
        let mut false_count = 0usize;
        for &l in &self.clauses[idx].lits {
            match self.lit_value(l) {
                1 => return, // satisfied at level 0: nothing to do
                -1 => false_count += 1,
                _ => {
                    if unassigned.replace(l).is_some() {
                        return; // two unassigned literals: not unit
                    }
                }
            }
        }
        match unassigned {
            None => {
                debug_assert_eq!(false_count, self.clauses[idx].lits.len());
                self.events.push(TraceEvent::FinalConflict {
                    id: self.clauses[idx].trace_id,
                });
                self.done = true;
            }
            Some(lit) => {
                self.assign_persistent(lit, idx);
                if watched {
                    if let Some(conflict) = self.propagate_persistent() {
                        self.events.push(TraceEvent::FinalConflict {
                            id: self.clauses[conflict].trace_id,
                        });
                        self.done = true;
                    }
                }
            }
        }
    }

    /// Asserts `lit` at level 0 with `reason`, emitting the trace
    /// record and locking the reason against deletion.
    fn assign_persistent(&mut self, lit: Lit, reason: usize) {
        self.assign(lit, reason);
        self.fixed = self.trail.len();
        self.locked[reason] = true;
        self.stats.level_zero += 1;
        self.events.push(TraceEvent::LevelZero {
            lit,
            antecedent: self.clauses[reason].trace_id,
        });
    }

    /// Loads the original formula: every clause joins the arena and the
    /// deletion index; units assert persistently; an empty clause (or a
    /// propagation conflict) ends the proof before it starts.
    fn load_cnf(&mut self, cnf: &Cnf, watched: bool) {
        for (id, clause) in cnf.iter() {
            let lits = normalize_literals(clause.iter().copied());
            let idx = self.push_clause(lits.clone(), id as u64, watched && !is_tautology(&lits));
            self.del_index.entry(lits).or_default().push(idx);
        }
        if !watched {
            // LRAT mode replays hints; only an outright empty original
            // clause short-circuits.
            if let Some(idx) = (0..self.clauses.len()).find(|&i| self.clauses[i].lits.is_empty()) {
                self.events.push(TraceEvent::FinalConflict {
                    id: self.clauses[idx].trace_id,
                });
                self.done = true;
            }
            return;
        }
        for idx in 0..self.clauses.len() {
            if self.done {
                return;
            }
            match self.clauses[idx].lits.len() {
                0 => {
                    self.events.push(TraceEvent::FinalConflict {
                        id: self.clauses[idx].trace_id,
                    });
                    self.done = true;
                }
                1 => {
                    let lit = self.clauses[idx].lits[0];
                    match self.lit_value(lit) {
                        1 => {} // duplicate unit: already asserted
                        -1 => {
                            // Contradicting units: this clause is
                            // falsified at level 0.
                            self.events.push(TraceEvent::FinalConflict {
                                id: self.clauses[idx].trace_id,
                            });
                            self.done = true;
                        }
                        _ => {
                            self.assign_persistent(lit, idx);
                            if let Some(conflict) = self.propagate_persistent() {
                                self.events.push(TraceEvent::FinalConflict {
                                    id: self.clauses[conflict].trace_id,
                                });
                                self.done = true;
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Applies a deletion matched by normalized literals (DRAT).
    fn delete_by_lits(&mut self, key: &[Lit]) {
        let Some(entries) = self.del_index.get_mut(key) else {
            self.stats.missing_deletions += 1;
            return;
        };
        let Some(idx) = entries.pop() else {
            self.stats.missing_deletions += 1;
            return;
        };
        if entries.is_empty() {
            self.del_index.remove(key);
        }
        if idx == NO_CLAUSE {
            // Tautology or alias: the "clause" never entered the
            // database, so the deletion is a semantic no-op.
            self.stats.deletions += 1;
            return;
        }
        if self.locked[idx] {
            self.stats.locked_deletions += 1;
            return;
        }
        self.clauses[idx].active = false;
        self.stats.deletions += 1;
    }

    fn into_report(self) -> Result<IngestReport, InteropError> {
        if !self.done {
            return Err(InteropError::defect(
                None,
                "proof ends without deriving the empty clause",
            ));
        }
        Ok(IngestReport {
            events: self.events,
            stats: self.stats,
            resolvents: self.resolvents,
        })
    }
}

fn is_tautology(sorted: &[Lit]) -> bool {
    sorted.windows(2).any(|w| w[0].var() == w[1].var())
}

/// Converts DIMACS literals with a range check instead of the `Var`
/// panic (a hostile proof must fail cleanly, never abort).
fn convert_lits(raw: &[i64], max_var: u64, at: u64) -> Result<Vec<Lit>, InteropError> {
    raw.iter()
        .map(|&d| {
            if d == 0 || d.unsigned_abs() > max_var {
                Err(InteropError::input(
                    Some(at),
                    format!("literal {d} out of the supported variable range"),
                ))
            } else {
                Ok(Lit::from_dimacs(d))
            }
        })
        .collect()
}

/// Ingests a parsed DRAT/DRUP proof against `cnf`.
///
/// # Errors
///
/// `Input` on out-of-range literals; `ProofDefect` when an addition is
/// neither RUP nor RAT, or the proof never derives the empty clause.
pub fn ingest_drat(cnf: &Cnf, steps: &[DratStep]) -> Result<IngestReport, InteropError> {
    let max_var = proof_var_cap(cnf, steps.iter().map(|s| s.lits().len() as u64).sum());
    let mut eng = Engine::new(cnf);
    eng.load_cnf(cnf, true);
    for (stepno, step) in steps.iter().enumerate() {
        let at = stepno as u64 + 1;
        if eng.done {
            eng.stats.steps_after_empty += 1;
            continue;
        }
        match step {
            DratStep::Delete(raw) => {
                let lits = convert_lits(raw, max_var, at)?;
                let key = normalize_literals(lits);
                eng.delete_by_lits(&key);
            }
            DratStep::Add(raw) => {
                eng.stats.additions += 1;
                let lits = convert_lits(raw, max_var, at)?;
                for l in &lits {
                    eng.ensure_var(l.var().index());
                }
                let key = normalize_literals(lits.iter().copied());
                if is_tautology(&key) {
                    eng.stats.tautologies += 1;
                    eng.del_index.entry(key).or_default().push(NO_CLAUSE);
                    continue;
                }
                add_drat_clause(&mut eng, &lits, key, at)?;
            }
        }
    }
    eng.into_report()
}

/// One DRAT addition: RUP check by propagation, RAT fallback on the
/// first literal, then installation with the completion rule.
fn add_drat_clause(
    eng: &mut Engine,
    raw_lits: &[Lit],
    key: Vec<Lit>,
    at: u64,
) -> Result<(), InteropError> {
    let temp_mark = eng.trail.len();
    debug_assert_eq!(temp_mark, eng.fixed);

    // Assume the negation; a literal already satisfied at level 0 means
    // its reason clause is falsified under the assumption — analysis
    // can start there without touching the assignment.
    let mut conflict = None;
    for &c in &key {
        match eng.lit_value(c) {
            1 => {
                conflict = Some(eng.reason[c.var().index()]);
                debug_assert_ne!(conflict, Some(NO_REASON));
                break;
            }
            -1 => {}
            _ => eng.assign(!c, NO_REASON),
        }
    }
    if conflict.is_none() {
        conflict = eng.propagate();
    }

    if let Some(conflict) = conflict {
        let (chain, resolvent) = eng.analyze(conflict);
        eng.pop_to(temp_mark);
        eng.install(key, chain, resolvent, conflict, true);
        return Ok(());
    }

    // Not RUP: try RAT on the first literal, per the DRAT convention.
    let Some(&pivot) = raw_lits.first() else {
        eng.pop_to(temp_mark);
        return Err(InteropError::defect(
            Some(at),
            "empty clause addition is not RUP",
        ));
    };
    let rup_mark = eng.trail.len();
    let neg_pivot = !pivot;
    for idx in 0..eng.clauses.len() {
        if !eng.clauses[idx].active || !eng.clauses[idx].lits.contains(&neg_pivot) {
            continue;
        }
        // Tautological resolvent (C has ¬m for some other m of the
        // overlap clause): vacuously redundant, skip.
        if eng.clauses[idx]
            .lits
            .iter()
            .any(|&m| m != neg_pivot && key.contains(&!m))
        {
            continue;
        }
        let mut resolved = false;
        for pos in 0..eng.clauses[idx].lits.len() {
            let m = eng.clauses[idx].lits[pos];
            if m == neg_pivot {
                continue;
            }
            match eng.lit_value(m) {
                1 => {
                    // The resolvent contains a literal the ¬C
                    // propagation already made true: RUP trivially.
                    resolved = true;
                    break;
                }
                -1 => {}
                _ => eng.assign(!m, NO_REASON),
            }
        }
        let ok = resolved || eng.propagate().is_some();
        eng.pop_to(rup_mark);
        if !ok {
            let lits: Vec<i64> = eng.clauses[idx]
                .lits
                .iter()
                .map(|l| l.to_dimacs())
                .collect();
            eng.pop_to(temp_mark);
            return Err(InteropError::defect(
                Some(at),
                format!(
                    "clause is neither RUP nor RAT on {}: resolvent with {lits:?} is not RUP",
                    pivot.to_dimacs()
                ),
            ));
        }
    }
    eng.pop_to(temp_mark);
    // RAT verified. There is no resolution derivation to emit; the
    // clause joins the database under a fresh id with no event, and the
    // report is flagged via `rat_steps`.
    eng.stats.rat_steps += 1;
    let id = eng.next_trace_id;
    eng.next_trace_id += 1;
    let idx = eng.push_clause(key.clone(), id, true);
    eng.del_index.entry(key).or_default().push(idx);
    eng.complete(idx, true);
    Ok(())
}

/// Ingests a parsed LRAT proof against `cnf` by hint replay.
///
/// # Errors
///
/// `Input` on out-of-range literals; `ProofDefect` on unknown or
/// deleted hint ids, hints that are neither unit nor conflicting,
/// uncovered RAT resolvents, duplicate clause ids, or a proof without
/// an empty clause.
pub fn ingest_lrat(cnf: &Cnf, steps: &[LratStep]) -> Result<IngestReport, InteropError> {
    let max_var = proof_var_cap(
        cnf,
        steps
            .iter()
            .map(|s| match s {
                LratStep::Add { lits, .. } => lits.len() as u64,
                LratStep::Delete { .. } => 0,
            })
            .sum(),
    );
    let mut eng = Engine::new(cnf);
    eng.load_cnf(cnf, false);
    // File id → arena index. Originals are 1-based by position.
    let mut id_map: HashMap<u64, usize> =
        (0..cnf.num_clauses()).map(|i| (i as u64 + 1, i)).collect();
    for (stepno, step) in steps.iter().enumerate() {
        let at = stepno as u64 + 1;
        if eng.done {
            eng.stats.steps_after_empty += 1;
            continue;
        }
        match step {
            LratStep::Delete { ids } => {
                for &id in ids {
                    match id_map.get(&id) {
                        Some(&idx) if eng.clauses[idx].active => {
                            if eng.locked[idx] {
                                eng.stats.locked_deletions += 1;
                            } else {
                                eng.clauses[idx].active = false;
                                eng.stats.deletions += 1;
                            }
                        }
                        _ => eng.stats.missing_deletions += 1,
                    }
                }
            }
            LratStep::Add { id, lits, hints } => {
                eng.stats.additions += 1;
                if id_map.get(id).is_some_and(|&idx| eng.clauses[idx].active) {
                    return Err(InteropError::defect(
                        Some(at),
                        format!("clause id {id} is already in use"),
                    ));
                }
                let raw = convert_lits(lits, max_var, at)?;
                for l in &raw {
                    eng.ensure_var(l.var().index());
                }
                let key = normalize_literals(raw.iter().copied());
                if is_tautology(&key) {
                    eng.stats.tautologies += 1;
                    continue; // never referenced soundly; ids of skipped
                              // tautologies simply stay unmapped
                }
                let idx = add_lrat_clause(&mut eng, &id_map, &raw, key, hints, at)?;
                id_map.insert(*id, idx);
            }
        }
    }
    eng.into_report()
}

/// Resolves an LRAT hint id to an active arena clause.
fn lookup_hint(
    eng: &Engine,
    id_map: &HashMap<u64, usize>,
    id: u64,
    at: u64,
) -> Result<usize, InteropError> {
    match id_map.get(&id) {
        Some(&idx) if eng.clauses[idx].active => Ok(idx),
        Some(_) => Err(InteropError::defect(
            Some(at),
            format!("hint {id} references a deleted clause"),
        )),
        None => Err(InteropError::defect(
            Some(at),
            format!("hint {id} references an unknown clause"),
        )),
    }
}

/// What replaying one positive hint did to the trail.
enum HintReplay {
    /// The hint clause was unit; its literal is now assigned.
    Unit,
    /// The hint clause is fully falsified — the conflict.
    Conflict(usize),
    /// The hint clause is already satisfied at this point in the
    /// replay. Exported reverse chains pick up such hints from clause-
    /// minimization resolutions, where a minimization antecedent's unit
    /// literal was already implied by an earlier hint. Skipping is
    /// sound: a skipped hint adds no assignments, so a later hint must
    /// still genuinely conflict for the step to verify.
    Satisfied,
}

/// Replays one positive hint: assigns the unit it implies, or returns
/// the conflict when the hint clause is falsified.
fn replay_hint(eng: &mut Engine, idx: usize, at: u64) -> Result<HintReplay, InteropError> {
    let mut unassigned = None;
    for pos in 0..eng.clauses[idx].lits.len() {
        let l = eng.clauses[idx].lits[pos];
        match eng.lit_value(l) {
            1 => return Ok(HintReplay::Satisfied),
            -1 => {}
            _ => {
                if unassigned.replace(l).is_some() {
                    return Err(InteropError::defect(
                        Some(at),
                        "hint clause has two unassigned literals",
                    ));
                }
            }
        }
    }
    match unassigned {
        Some(l) => {
            eng.assign(l, idx);
            Ok(HintReplay::Unit)
        }
        None => Ok(HintReplay::Conflict(idx)),
    }
}

/// One LRAT addition: replay the RUP prefix; on conflict, synthesize
/// the chain; otherwise verify the RAT groups. The empty clause is the
/// special case whose hint replay *is* the level-0 derivation.
fn add_lrat_clause(
    eng: &mut Engine,
    id_map: &HashMap<u64, usize>,
    raw_lits: &[Lit],
    key: Vec<Lit>,
    hints: &[i64],
    at: u64,
) -> Result<usize, InteropError> {
    let temp_mark = eng.trail.len();
    debug_assert_eq!(temp_mark, 0, "LRAT replay keeps no persistent trail");

    if key.is_empty() {
        // The final line: no assumptions, so every unit the hints imply
        // is a genuine level-0 propagation, and the conflicting hint is
        // the final conflict of the synthesized trace.
        for &h in hints {
            if h < 0 {
                eng.pop_to(temp_mark);
                return Err(InteropError::defect(
                    Some(at),
                    "the empty clause cannot have RAT hints",
                ));
            }
            let idx = lookup_hint(eng, id_map, h as u64, at)?;
            match replay_hint(eng, idx, at) {
                Ok(HintReplay::Unit) => {
                    // Promote the unit to a persistent record.
                    let lit = *eng.trail.last().expect("unit just assigned");
                    eng.trail.pop();
                    eng.assign_persistent(lit, idx);
                }
                Ok(HintReplay::Conflict(conflict)) => {
                    eng.events.push(TraceEvent::FinalConflict {
                        id: eng.clauses[conflict].trace_id,
                    });
                    eng.done = true;
                    return Ok(idx);
                }
                Ok(HintReplay::Satisfied) => {}
                Err(e) => {
                    eng.pop_to(temp_mark);
                    return Err(e);
                }
            }
        }
        eng.pop_to(temp_mark);
        return Err(InteropError::defect(
            Some(at),
            "empty-clause hints end without a conflict",
        ));
    }

    for &c in &key {
        debug_assert_ne!(eng.lit_value(c), 1, "no persistent state in LRAT mode");
        if eng.lit_value(c) == 0 {
            eng.assign(!c, NO_REASON);
        }
    }

    let mut split = hints.splitn(2, |&h| h < 0);
    let prefix = split.next().unwrap_or(&[]);
    let has_groups = hints.iter().any(|&h| h < 0);

    for &h in prefix {
        let idx = match lookup_hint(eng, id_map, h as u64, at) {
            Ok(idx) => idx,
            Err(e) => {
                eng.pop_to(temp_mark);
                return Err(e);
            }
        };
        match replay_hint(eng, idx, at) {
            Ok(HintReplay::Unit) | Ok(HintReplay::Satisfied) => {}
            Ok(HintReplay::Conflict(conflict)) => {
                let (chain, resolvent) = eng.analyze(conflict);
                eng.pop_to(temp_mark);
                if chain.len() == 1 {
                    // Subsumed addition: install a copy of the subsumer
                    // under this proof id (see `Engine::install`).
                    eng.stats.aliased += 1;
                    debug_assert_eq!(resolvent, eng.clauses[conflict].lits);
                    let tid = eng.clauses[conflict].trace_id;
                    return Ok(eng.push_clause(resolvent, tid, false));
                }
                eng.stats.rup_steps += 1;
                let id = eng.next_trace_id;
                eng.next_trace_id += 1;
                eng.events.push(TraceEvent::Learned { id, sources: chain });
                eng.resolvents.push((id, resolvent.clone()));
                return Ok(eng.push_clause(resolvent, id, false));
            }
            Err(e) => {
                eng.pop_to(temp_mark);
                return Err(e);
            }
        }
    }

    if !has_groups {
        eng.pop_to(temp_mark);
        return Err(InteropError::defect(
            Some(at),
            "hints end without a conflict",
        ));
    }
    let idx = add_lrat_rat(eng, id_map, raw_lits, &key, hints, at, temp_mark)?;
    Ok(idx)
}

/// Verifies an LRAT RAT step: every active clause containing the
/// negated pivot must be covered by a resolvent group (or have a
/// tautological resolvent), and each group's hints must refute the
/// resolvent. Called with the ¬C assumptions and the RUP-prefix units
/// already on the trail.
fn add_lrat_rat(
    eng: &mut Engine,
    id_map: &HashMap<u64, usize>,
    raw_lits: &[Lit],
    key: &[Lit],
    hints: &[i64],
    at: u64,
    temp_mark: usize,
) -> Result<usize, InteropError> {
    let pivot = raw_lits[0];
    let neg_pivot = !pivot;
    let prefix_mark = eng.trail.len();
    let mut covered: Vec<usize> = Vec::new();

    // Walk the groups: each opens with -d and carries its unit hints.
    let mut i = hints.iter().position(|&h| h < 0).expect("has a group");
    while i < hints.len() {
        let d = (-hints[i]) as u64;
        let d_idx = match lookup_hint(eng, id_map, d, at) {
            Ok(idx) => idx,
            Err(e) => {
                eng.pop_to(temp_mark);
                return Err(e);
            }
        };
        i += 1;
        let group_end = hints[i..]
            .iter()
            .position(|&h| h < 0)
            .map_or(hints.len(), |p| i + p);
        if !eng.clauses[d_idx].lits.contains(&neg_pivot) {
            eng.pop_to(temp_mark);
            return Err(InteropError::defect(
                Some(at),
                format!("RAT group clause {d} does not contain the negated pivot"),
            ));
        }
        covered.push(d_idx);

        // Assume the negation of the resolvent's D-side; a literal the
        // prefix already satisfied ends the group immediately.
        let mut resolved = false;
        for pos in 0..eng.clauses[d_idx].lits.len() {
            let m = eng.clauses[d_idx].lits[pos];
            if m == neg_pivot {
                continue;
            }
            match eng.lit_value(m) {
                1 => {
                    resolved = true;
                    break;
                }
                -1 => {}
                _ => eng.assign(!m, NO_REASON),
            }
        }
        if !resolved {
            let mut conflicted = false;
            for &h in &hints[i..group_end] {
                let h_idx = match lookup_hint(eng, id_map, h as u64, at) {
                    Ok(idx) => idx,
                    Err(e) => {
                        eng.pop_to(temp_mark);
                        return Err(e);
                    }
                };
                match replay_hint(eng, h_idx, at) {
                    Ok(HintReplay::Unit) | Ok(HintReplay::Satisfied) => {}
                    Ok(HintReplay::Conflict(_)) => {
                        conflicted = true;
                        break;
                    }
                    Err(e) => {
                        eng.pop_to(temp_mark);
                        return Err(e);
                    }
                }
            }
            if !conflicted {
                eng.pop_to(temp_mark);
                return Err(InteropError::defect(
                    Some(at),
                    format!("RAT resolvent group for clause {d} ends without a conflict"),
                ));
            }
        }
        eng.pop_to(prefix_mark);
        i = group_end;
    }

    // Soundness: no active ¬pivot clause may be left unexamined.
    for idx in 0..eng.clauses.len() {
        if !eng.clauses[idx].active
            || covered.contains(&idx)
            || !eng.clauses[idx].lits.contains(&neg_pivot)
        {
            continue;
        }
        let tautological = eng.clauses[idx]
            .lits
            .iter()
            .any(|&m| m != neg_pivot && key.contains(&!m));
        if !tautological {
            eng.pop_to(temp_mark);
            return Err(InteropError::defect(
                Some(at),
                format!(
                    "RAT step leaves the resolvent with clause id {} unverified",
                    eng.clauses[idx].trace_id
                ),
            ));
        }
    }
    eng.pop_to(temp_mark);
    eng.stats.rat_steps += 1;
    let id = eng.next_trace_id;
    eng.next_trace_id += 1;
    Ok(eng.push_clause(key.to_vec(), id, false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drat;
    use crate::error::InteropErrorKind;

    fn cnf(clauses: &[&[i64]]) -> Cnf {
        let mut cnf = Cnf::new();
        for c in clauses {
            cnf.add_dimacs_clause(c);
        }
        cnf
    }

    #[test]
    fn drup_proof_synthesizes_checkable_trace() {
        // (1 2)(1 -2)(-1 3)(-1 -3) with the classic two-lemma proof.
        let cnf = cnf(&[&[1, 2], &[1, -2], &[-1, 3], &[-1, -3]]);
        let steps = drat::parse_text("1 0\n0\n").unwrap();
        let report = ingest_drat(&cnf, &steps).unwrap();
        assert!(report.resolution_checkable());
        assert_eq!(report.stats.rup_steps, 1);
        // Asserting the lemma (1) also propagates 3 via (−1 3): both
        // facts get level-0 records.
        assert_eq!(report.stats.level_zero, 2);
        assert!(matches!(
            report.events.last(),
            Some(TraceEvent::FinalConflict { .. })
        ));
    }

    #[test]
    fn non_rup_addition_is_a_proof_defect() {
        // Adding (1) to (1 2)(−1 −2): assuming −1 propagates only 2 (no
        // conflict), and the RAT resolvent (−2) with (−1 −2) is not RUP
        // either — the step is simply not derivable.
        let cnf = cnf(&[&[1, 2], &[-1, -2]]);
        let steps = drat::parse_text("1 0\n").unwrap();
        let err = ingest_drat(&cnf, &steps).unwrap_err();
        assert_eq!(err.kind, InteropErrorKind::ProofDefect);
    }

    #[test]
    fn incomplete_proof_is_a_proof_defect() {
        // Re-adding an original clause is RUP (it aliases), but the
        // proof then stops without ever deriving the empty clause.
        let cnf = cnf(&[&[1, 2], &[1, -2], &[-1, 2], &[-1, -2]]);
        let steps = drat::parse_text("1 2 0\n").unwrap();
        let err = ingest_drat(&cnf, &steps).unwrap_err();
        assert_eq!(err.kind, InteropErrorKind::ProofDefect);
    }

    #[test]
    fn missing_deletion_is_a_warning_not_an_error() {
        let cnf = cnf(&[&[1, 2], &[1, -2], &[-1, 3], &[-1, -3]]);
        let steps = drat::parse_text("d 5 6 0\n1 0\n0\n").unwrap();
        let report = ingest_drat(&cnf, &steps).unwrap();
        assert_eq!(report.stats.missing_deletions, 1);
    }

    #[test]
    fn deletion_of_level_zero_reason_is_skipped() {
        // Loading asserts 1 (reason: clause 1) and propagates 2
        // (reason: clause 2) with variables 3/4 untouched; both reasons
        // are locked, so the deletions are skipped and the rest of the
        // proof still relies on them.
        let cnf = cnf(&[&[1], &[-1, 2], &[3, 4], &[3, -4], &[-3, 4], &[-3, -4]]);
        let steps = drat::parse_text("d 1 0\nd -1 2 0\n3 0\n0\n").unwrap();
        let report = ingest_drat(&cnf, &steps).unwrap();
        assert_eq!(report.stats.locked_deletions, 2);
        assert!(report.resolution_checkable());
    }

    #[test]
    fn rat_addition_is_verified_but_not_checkable() {
        // (5) over a fresh variable is not RUP (assuming −5 propagates
        // nothing) but is vacuously RAT on 5: no clause contains −5.
        let cnf = cnf(&[&[1, 2], &[1, -2], &[-1, 3], &[-1, -3]]);
        let steps = drat::parse_text("5 0\n1 0\n").unwrap();
        let report = ingest_drat(&cnf, &steps).unwrap();
        assert_eq!(report.stats.rat_steps, 1);
        assert_eq!(report.stats.rup_steps, 1);
        assert!(!report.resolution_checkable());
    }

    #[test]
    fn out_of_range_literal_is_input_error() {
        let cnf = cnf(&[&[1, 2], &[-1, -2]]);
        let steps = vec![DratStep::Add(vec![i64::MAX])];
        let err = ingest_drat(&cnf, &steps).unwrap_err();
        assert_eq!(err.kind, InteropErrorKind::Input);
    }

    #[test]
    fn lrat_unknown_hint_is_a_proof_defect() {
        let cnf = cnf(&[&[1, 2], &[1, -2], &[-1, 3], &[-1, -3]]);
        let steps = crate::lrat::parse_text("5 1 0 99 0\n").unwrap();
        let err = ingest_lrat(&cnf, &steps).unwrap_err();
        assert_eq!(err.kind, InteropErrorKind::ProofDefect);
    }

    #[test]
    fn lrat_proof_with_hints_synthesizes_trace() {
        let cnf = cnf(&[&[1, 2], &[1, -2], &[-1, 3], &[-1, -3]]);
        // Lemma (1): assume −1; (1 2) forces 2; (1 −2) conflicts.
        // Final: (1)=id 5 forces 1; (−1 3) forces 3; (−1 −3) conflicts.
        let steps = crate::lrat::parse_text("5 1 0 1 2 0\n6 0 5 3 4 0\n").unwrap();
        let report = ingest_lrat(&cnf, &steps).unwrap();
        assert!(report.resolution_checkable());
        assert_eq!(report.stats.rup_steps, 1);
        assert_eq!(report.stats.level_zero, 2);
        assert!(matches!(
            report.events.last(),
            Some(TraceEvent::FinalConflict { .. })
        ));
    }

    #[test]
    fn lrat_satisfied_hint_is_skipped_not_fatal() {
        let cnf = cnf(&[&[1, 2], &[1, -2], &[-1, 3], &[-1, -3]]);
        // Hint 3 = (−1 3) is satisfied under the assumption −1 —
        // redundant, so the replay skips it; hints 1 and 2 then derive
        // the claimed unit the normal way. (Exported reverse chains
        // produce such hints from clause-minimization resolutions.)
        let steps = crate::lrat::parse_text("5 1 0 3 1 2 0\n6 0 5 3 4 0\n").unwrap();
        let report = ingest_lrat(&cnf, &steps).unwrap();
        assert_eq!(report.stats.rup_steps, 1);
        // A proof that is *only* satisfied hints still proves nothing.
        let steps = crate::lrat::parse_text("5 1 0 3 0\n").unwrap();
        let err = ingest_lrat(&cnf, &steps).unwrap_err();
        assert_eq!(err.kind, InteropErrorKind::ProofDefect);
    }
}
