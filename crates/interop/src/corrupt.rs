//! Deterministic corruption operators over proof files.
//!
//! The conformance contract for the DRAT/LRAT front end is the same as
//! for the native trace decoder: hostile bytes must produce a clean
//! verdict — an input error or a proof defect — and never a panic.
//! These operators manufacture the hostile bytes, mirroring
//! `rescheck_trace::mutate` so fuzz campaigns can drive both parsers
//! with the same loop shape:
//!
//! - [`ProofMutation::BitFlip`] — flip one bit anywhere;
//! - [`ProofMutation::TruncateTail`] — cut the file short, possibly
//!   mid-token or mid-varint;
//! - [`ProofMutation::DropStep`] — remove one whole proof step (the
//!   file stays well-formed; the *proof* usually breaks);
//! - [`ProofMutation::GarbleToken`] — splice unparseable bytes into the
//!   middle of the stream.
//!
//! Each operator is deterministic for a given [`SplitMix64`] state and
//! returns `None` when the input is too small to apply it; it never
//! returns bytes equal to its input.

use rescheck_cnf::SplitMix64;

/// One corruption operator over encoded proof bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProofMutation {
    /// Flip a single random bit.
    BitFlip,
    /// Truncate the file at a random point.
    TruncateTail,
    /// Remove one whole step (line or binary record).
    DropStep,
    /// Overwrite a random byte run with unparseable filler.
    GarbleToken,
}

/// Every proof mutation, in the order campaigns cycle through them.
pub const ALL_PROOF_MUTATIONS: [ProofMutation; 4] = [
    ProofMutation::BitFlip,
    ProofMutation::TruncateTail,
    ProofMutation::DropStep,
    ProofMutation::GarbleToken,
];

impl std::fmt::Display for ProofMutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProofMutation::BitFlip => f.write_str("bit-flip"),
            ProofMutation::TruncateTail => f.write_str("truncate-tail"),
            ProofMutation::DropStep => f.write_str("drop-step"),
            ProofMutation::GarbleToken => f.write_str("garble-token"),
        }
    }
}

/// Applies `mutation` to proof bytes, drawing randomness from `rng`.
///
/// Works on either encoding: the byte-level operators do not care, and
/// [`ProofMutation::DropStep`] finds step boundaries by newline (text)
/// or 0x00 terminator (binary), sniffing the encoding the same way the
/// parsers do. Returns `None` when the input is too small (an empty
/// file, or a single step for `DropStep`).
pub fn apply_proof(bytes: &[u8], mutation: ProofMutation, rng: &mut SplitMix64) -> Option<Vec<u8>> {
    match mutation {
        ProofMutation::BitFlip => bit_flip(bytes, rng),
        ProofMutation::TruncateTail => truncate_tail(bytes, rng),
        ProofMutation::DropStep => drop_step(bytes, rng),
        ProofMutation::GarbleToken => garble_token(bytes, rng),
    }
}

fn bit_flip(bytes: &[u8], rng: &mut SplitMix64) -> Option<Vec<u8>> {
    if bytes.is_empty() {
        return None;
    }
    let mut out = bytes.to_vec();
    let pos = rng.range_usize(0..out.len());
    let bit = rng.below(8) as u8;
    out[pos] ^= 1 << bit;
    Some(out)
}

fn truncate_tail(bytes: &[u8], rng: &mut SplitMix64) -> Option<Vec<u8>> {
    if bytes.len() < 2 {
        return None;
    }
    // Keep at least one byte, cut at least one.
    let keep = rng.range_usize(1..bytes.len());
    Some(bytes[..keep].to_vec())
}

/// Step boundaries: byte offsets one *past* each step terminator.
fn step_ends(bytes: &[u8]) -> Vec<usize> {
    let binary = matches!(bytes.first(), Some(0x61 | 0x64));
    let terminator = if binary { 0x00 } else { b'\n' };
    let mut ends: Vec<usize> = bytes
        .iter()
        .enumerate()
        .filter_map(|(i, &b)| (b == terminator).then_some(i + 1))
        .collect();
    if ends.last() != Some(&bytes.len()) && !bytes.is_empty() {
        ends.push(bytes.len()); // unterminated tail counts as a step
    }
    ends
}

fn drop_step(bytes: &[u8], rng: &mut SplitMix64) -> Option<Vec<u8>> {
    let ends = step_ends(bytes);
    if ends.len() < 2 {
        return None;
    }
    let victim = rng.range_usize(0..ends.len());
    let start = if victim == 0 { 0 } else { ends[victim - 1] };
    let mut out = bytes[..start].to_vec();
    out.extend_from_slice(&bytes[ends[victim]..]);
    Some(out)
}

fn garble_token(bytes: &[u8], rng: &mut SplitMix64) -> Option<Vec<u8>> {
    if bytes.is_empty() {
        return None;
    }
    let mut out = bytes.to_vec();
    let pos = rng.range_usize(0..out.len());
    let len = (rng.below(4) + 1) as usize;
    for i in 0..len.min(out.len() - pos) {
        // 0xF7 is not printable ASCII, not a valid UTF-8 start byte for
        // the widths that follow it here, and in binary streams it is a
        // continuation byte that tends to run varints off the end.
        out[pos + i] = 0xf7;
    }
    if out == bytes {
        return None; // already garbage at that spot
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::InteropError;
    use crate::{drat, lrat};

    fn sample_text() -> Vec<u8> {
        b"1 2 0\nd 1 -2 0\n-3 0\n0\n".to_vec()
    }

    fn sample_binary() -> Vec<u8> {
        drat::write_binary(&[
            drat::DratStep::Add(vec![1, 2]),
            drat::DratStep::Delete(vec![1, -2]),
            drat::DratStep::Add(vec![-3]),
            drat::DratStep::Add(vec![]),
        ])
    }

    /// Parsing a mutant must return a verdict, never panic. (The panic
    /// guarantee is the point of the test; the verdict is incidental.)
    fn parse_both(bytes: &[u8]) -> (Result<(), InteropError>, Result<(), InteropError>) {
        (drat::parse(bytes).map(drop), lrat::parse(bytes).map(drop))
    }

    #[test]
    fn every_mutation_changes_the_bytes_and_parses_cleanly() {
        for original in [sample_text(), sample_binary()] {
            for mutation in ALL_PROOF_MUTATIONS {
                for seed in 0..50u64 {
                    let mut rng = SplitMix64::new(seed);
                    let Some(mutated) = apply_proof(&original, mutation, &mut rng) else {
                        panic!("{mutation} inapplicable to the sample");
                    };
                    assert_ne!(mutated, original, "{mutation} seed {seed} was a no-op");
                    let _ = parse_both(&mutated);
                }
            }
        }
    }

    #[test]
    fn mutations_are_deterministic() {
        let original = sample_text();
        for mutation in ALL_PROOF_MUTATIONS {
            let a = apply_proof(&original, mutation, &mut SplitMix64::new(42));
            let b = apply_proof(&original, mutation, &mut SplitMix64::new(42));
            assert_eq!(a, b, "{mutation}");
        }
    }

    #[test]
    fn drop_step_keeps_text_well_formed() {
        let original = sample_text();
        let before = drat::parse(&original).unwrap().len();
        for seed in 0..50u64 {
            let mut rng = SplitMix64::new(seed);
            let mutated = apply_proof(&original, ProofMutation::DropStep, &mut rng).unwrap();
            let after = drat::parse(&mutated).expect("dropping a whole line stays parseable");
            assert_eq!(after.len(), before - 1);
        }
    }

    #[test]
    fn drop_step_keeps_binary_well_formed() {
        let original = sample_binary();
        let before = drat::parse(&original).unwrap().len();
        for seed in 0..50u64 {
            let mut rng = SplitMix64::new(seed);
            let mutated = apply_proof(&original, ProofMutation::DropStep, &mut rng).unwrap();
            if mutated.is_empty() || drat::looks_binary(&mutated) {
                let after = drat::parse(&mutated).expect("dropping a record stays parseable");
                assert_eq!(after.len(), before - 1);
            }
            // Dropping the first record can demote the sniff to text;
            // that is fine — the parser still returns a verdict.
        }
    }

    #[test]
    fn inapplicable_mutations_return_none() {
        let mut rng = SplitMix64::new(1);
        assert!(apply_proof(b"", ProofMutation::BitFlip, &mut rng).is_none());
        assert!(apply_proof(b"", ProofMutation::TruncateTail, &mut rng).is_none());
        assert!(apply_proof(b"0", ProofMutation::TruncateTail, &mut rng).is_none());
        assert!(apply_proof(b"1 0\n", ProofMutation::DropStep, &mut rng).is_none());
        assert!(apply_proof(b"", ProofMutation::GarbleToken, &mut rng).is_none());
    }
}
