//! Converting resolve traces to LRAT.
//!
//! The conversion leans on one structural fact: a learned clause's
//! antecedent chain `s0 ⊗ s1 ⊗ … ⊗ sk` (conflicting clause first, one
//! clashing variable per step) is exactly a reverse unit propagation
//! refutation read backwards. Assuming the negation of the resolvent
//! and replaying `sk, …, s1` makes each antecedent unit in turn, and
//! `s0` ends up falsified — so the LRAT hint list for the clause is the
//! source chain *reversed*. No propagation or search happens here: the
//! exporter folds each chain once (validating it, like the checkers do)
//! to learn the clause's literals, and emits the hints by reversal.
//!
//! The trace's level-0 records and final conflict become the LRAT empty
//! clause: its hints are the level-0 antecedents that the final clause's
//! falsification actually depends on (the backward-reachable cone, in
//! recorded order — the order the trace validated, so each is unit when
//! replayed), followed by the final clause itself.
//!
//! Deletion lines come from a last-use scan: once no later hint list
//! references a clause, it is deleted. Original clauses the proof never
//! uses are left alone (deleting them is legal but noise), and learned
//! clauses nothing ever uses are deleted right after their definition.

use crate::error::InteropError;
use crate::lrat::LratStep;
use rescheck_checker::{normalize_literals, resolve_sorted};
use rescheck_cnf::{Cnf, Lit};
use rescheck_trace::TraceEvent;
use std::collections::HashMap;

/// Counters from one export run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExportStats {
    /// Learned clauses converted to LRAT additions.
    pub learned: u64,
    /// Level-0 assignment records in the trace.
    pub level_zero: u64,
    /// Level-0 records the empty clause actually depends on (the cone).
    pub level_zero_used: u64,
    /// Clause ids covered by emitted deletion lines.
    pub deletions: u64,
}

impl std::fmt::Display for ExportStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "export: {} learned, {} level-0 ({} in cone), {} deletions",
            self.learned, self.level_zero, self.level_zero_used, self.deletions
        )
    }
}

/// The converted proof plus the data round-trip tests compare against.
#[derive(Debug)]
pub struct ExportReport {
    /// The LRAT proof, additions interleaved with deletions.
    pub steps: Vec<LratStep>,
    /// Export counters.
    pub stats: ExportStats,
    /// `(lrat_id, literals)` of every learned clause emitted (sorted,
    /// deduplicated literals — the same normal form ingestion reports).
    pub resolvents: Vec<(u64, Vec<Lit>)>,
}

/// Everything known about a clause id while walking the trace.
struct ClauseInfo {
    lrat_id: u64,
    lits: Vec<Lit>,
}

/// A validated level-0 assignment record.
struct LevelZeroRec {
    lit: Lit,
    antecedent: u64,
}

/// Converts a resolve trace to an LRAT proof of unsatisfiability.
///
/// # Errors
///
/// [`InteropError`] of kind `ProofDefect` whenever the trace itself is
/// not a valid refutation — a chain that does not fold with one clash
/// per step, an undefined or duplicate id, a level-0 antecedent that is
/// not unit under the earlier records, a final clause the records do
/// not falsify, or a trace with no final conflict at all. (A defective
/// trace has no LRAT counterpart; the caller should run a native check
/// to get the precise diagnosis.)
pub fn export_lrat(cnf: &Cnf, events: &[TraceEvent]) -> Result<ExportReport, InteropError> {
    let num_original = cnf.num_clauses() as u64;
    let mut clauses: HashMap<u64, ClauseInfo> = HashMap::with_capacity(cnf.num_clauses());
    for (id, clause) in cnf.iter() {
        clauses.insert(
            id as u64,
            ClauseInfo {
                lrat_id: id as u64 + 1,
                lits: normalize_literals(clause.iter().copied()),
            },
        );
    }
    let mut next_lrat = num_original + 1;
    let mut additions: Vec<(u64, Vec<Lit>, Vec<u64>)> = Vec::new();
    let mut resolvents: Vec<(u64, Vec<Lit>)> = Vec::new();
    let mut level_zero: Vec<LevelZeroRec> = Vec::new();
    // Variable index → position in `level_zero`.
    let mut var_record: HashMap<usize, usize> = HashMap::new();
    let mut final_id: Option<u64> = None;
    let mut stats = ExportStats::default();

    for (evno, event) in events.iter().enumerate() {
        let at = Some(evno as u64 + 1);
        if final_id.is_some() {
            // The checkers take the first final conflict and ignore the
            // rest of the trace; the exporter matches them.
            break;
        }
        match event {
            TraceEvent::Learned { id, sources } => {
                if clauses.contains_key(id) {
                    return Err(InteropError::defect(
                        at,
                        format!("learned clause id {id} is already defined"),
                    ));
                }
                if sources.len() < 2 {
                    return Err(InteropError::defect(
                        at,
                        format!("learned clause {id} has fewer than two sources"),
                    ));
                }
                let mut lits: Option<Vec<Lit>> = None;
                let mut hints = Vec::with_capacity(sources.len());
                for &src in sources {
                    let info = clauses.get(&src).ok_or_else(|| {
                        InteropError::defect(
                            at,
                            format!("learned clause {id} references undefined clause {src}"),
                        )
                    })?;
                    hints.push(info.lrat_id);
                    lits = Some(match lits {
                        None => info.lits.clone(),
                        Some(acc) => resolve_sorted(&acc, &info.lits).map_err(|e| {
                            InteropError::defect(
                                at,
                                format!("learned clause {id} does not fold: {e}"),
                            )
                        })?,
                    });
                }
                // Chain order is conflict-first; RUP replays it backwards.
                hints.reverse();
                let lits = lits.expect("at least two sources");
                let lrat_id = next_lrat;
                next_lrat += 1;
                stats.learned += 1;
                resolvents.push((lrat_id, lits.clone()));
                additions.push((lrat_id, lits.clone(), hints));
                clauses.insert(*id, ClauseInfo { lrat_id, lits });
            }
            TraceEvent::LevelZero { lit, antecedent } => {
                let info = clauses.get(antecedent).ok_or_else(|| {
                    InteropError::defect(
                        at,
                        format!("level-0 record references undefined clause {antecedent}"),
                    )
                })?;
                if var_record.contains_key(&lit.var().index()) {
                    return Err(InteropError::defect(
                        at,
                        format!("variable {} has two level-0 records", lit.var().to_dimacs()),
                    ));
                }
                // The antecedent must be unit (= `lit`) under the
                // records so far — the discipline the final-phase
                // checker enforces, revalidated so a bad trace cannot
                // become a "valid" LRAT file.
                let mut saw_lit = false;
                for &l in &info.lits {
                    if l == *lit {
                        saw_lit = true;
                    } else if var_record
                        .get(&l.var().index())
                        .is_none_or(|&r| level_zero[r].lit != !l)
                    {
                        return Err(InteropError::defect(
                            at,
                            format!("level-0 antecedent {antecedent} is not unit"),
                        ));
                    }
                }
                if !saw_lit {
                    return Err(InteropError::defect(
                        at,
                        format!("level-0 antecedent {antecedent} does not contain the literal"),
                    ));
                }
                stats.level_zero += 1;
                var_record.insert(lit.var().index(), level_zero.len());
                level_zero.push(LevelZeroRec {
                    lit: *lit,
                    antecedent: *antecedent,
                });
            }
            TraceEvent::FinalConflict { id } => {
                final_id = Some(*id);
            }
        }
    }

    let Some(final_id) = final_id else {
        return Err(InteropError::defect(
            None,
            "trace has no final conflict event",
        ));
    };
    let final_info = clauses.get(&final_id).ok_or_else(|| {
        InteropError::defect(
            None,
            format!("final conflict references undefined clause {final_id}"),
        )
    })?;

    // Backward-reachable cone of level-0 records the final clause needs.
    let mut needed = vec![false; level_zero.len()];
    let mut stack: Vec<usize> = Vec::new();
    for &l in &final_info.lits {
        match var_record.get(&l.var().index()) {
            Some(&r) if level_zero[r].lit == !l => stack.push(r),
            _ => {
                return Err(InteropError::defect(
                    None,
                    format!(
                        "final clause {final_id} is not falsified by the level-0 records \
                         (literal {} is unassigned)",
                        l.to_dimacs()
                    ),
                ))
            }
        }
    }
    while let Some(r) = stack.pop() {
        if needed[r] {
            continue;
        }
        needed[r] = true;
        let ante = &clauses[&level_zero[r].antecedent];
        for &l in &ante.lits {
            if l != level_zero[r].lit {
                // Validated above: every non-unit literal has a record.
                stack.push(var_record[&l.var().index()]);
            }
        }
    }
    let mut final_hints: Vec<u64> = Vec::new();
    for (r, rec) in level_zero.iter().enumerate() {
        if needed[r] {
            stats.level_zero_used += 1;
            final_hints.push(clauses[&rec.antecedent].lrat_id);
        }
    }
    final_hints.push(final_info.lrat_id);
    let empty_id = next_lrat;
    additions.push((empty_id, Vec::new(), final_hints));

    // Last-use scan for deletion lines: a clause's life ends at the
    // last addition whose hints reference it (a learned clause no one
    // references dies at its own definition).
    let mut last_use: HashMap<u64, usize> = HashMap::new();
    for (step, (lrat_id, _, hints)) in additions.iter().enumerate() {
        if *lrat_id > num_original {
            last_use.entry(*lrat_id).or_insert(step);
        }
        for &h in hints {
            last_use.insert(h, step);
        }
    }
    last_use.remove(&empty_id);
    let mut deletions_at: Vec<Vec<u64>> = vec![Vec::new(); additions.len()];
    for (&lrat_id, &step) in &last_use {
        if step + 1 < additions.len() {
            deletions_at[step].push(lrat_id);
        }
    }

    let mut steps = Vec::with_capacity(additions.len() * 2);
    for (step, (lrat_id, lits, hints)) in additions.into_iter().enumerate() {
        steps.push(LratStep::Add {
            id: lrat_id,
            lits: lits.iter().map(|l| l.to_dimacs()).collect(),
            hints: hints.into_iter().map(|h| h as i64).collect(),
        });
        let mut dead = std::mem::take(&mut deletions_at[step]);
        if !dead.is_empty() {
            dead.sort_unstable();
            stats.deletions += dead.len() as u64;
            steps.push(LratStep::Delete { ids: dead });
        }
    }

    Ok(ExportReport {
        steps,
        stats,
        resolvents,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::InteropErrorKind;
    use crate::ingest::ingest_lrat;
    use rescheck_cnf::Lit;

    fn cnf(clauses: &[&[i64]]) -> Cnf {
        let mut cnf = Cnf::new();
        for c in clauses {
            cnf.add_dimacs_clause(c);
        }
        cnf
    }

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    /// (1 2)(1 -2)(-1 3)(-1 -3): learn (1) from clauses 0,1; then 1 is
    /// asserted by the learned clause, 3 by clause 2, and clause 3 is
    /// the final conflict.
    fn tiny_trace() -> (Cnf, Vec<TraceEvent>) {
        let cnf = cnf(&[&[1, 2], &[1, -2], &[-1, 3], &[-1, -3]]);
        let events = vec![
            TraceEvent::Learned {
                id: 4,
                sources: vec![0, 1],
            },
            TraceEvent::LevelZero {
                lit: lit(1),
                antecedent: 4,
            },
            TraceEvent::LevelZero {
                lit: lit(3),
                antecedent: 2,
            },
            TraceEvent::FinalConflict { id: 3 },
        ];
        (cnf, events)
    }

    #[test]
    fn exports_hints_in_reverse_chain_order() {
        let (cnf, events) = tiny_trace();
        let report = export_lrat(&cnf, &events).unwrap();
        let adds: Vec<&LratStep> = report
            .steps
            .iter()
            .filter(|s| matches!(s, LratStep::Add { .. }))
            .collect();
        assert_eq!(adds.len(), 2);
        let LratStep::Add { id, lits, hints } = adds[0] else {
            unreachable!()
        };
        assert_eq!(
            (*id, lits.as_slice(), hints.as_slice()),
            (5, &[1][..], &[2, 1][..])
        );
        let LratStep::Add { id, lits, hints } = adds[1] else {
            unreachable!()
        };
        assert_eq!((*id, lits.len()), (6, 0));
        // Level-0 antecedents in recorded order, then the final clause.
        assert_eq!(hints.as_slice(), &[5, 3, 4]);
    }

    #[test]
    fn exported_proof_reingests_cleanly() {
        let (cnf, events) = tiny_trace();
        let report = export_lrat(&cnf, &events).unwrap();
        let reingested = ingest_lrat(&cnf, &report.steps).unwrap();
        assert!(reingested.resolution_checkable());
        let exported: Vec<&Vec<Lit>> = report.resolvents.iter().map(|(_, l)| l).collect();
        let ingested: Vec<&Vec<Lit>> = reingested.resolvents.iter().map(|(_, l)| l).collect();
        assert_eq!(exported, ingested);
    }

    #[test]
    fn deletion_lines_cover_spent_clauses() {
        let (cnf, events) = tiny_trace();
        let report = export_lrat(&cnf, &events).unwrap();
        // Clauses 1 and 2 (lrat ids) are last used by the first lemma,
        // which is not the last addition — they must be deleted.
        let deleted: Vec<u64> = report
            .steps
            .iter()
            .filter_map(|s| match s {
                LratStep::Delete { ids } => Some(ids.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(deleted, vec![1, 2]);
        assert_eq!(report.stats.deletions, 2);
    }

    #[test]
    fn unfoldable_chain_is_a_defect() {
        let cnf = cnf(&[&[1, 2], &[-1, -2]]);
        // Two clashing variables: not a resolution step.
        let events = vec![TraceEvent::Learned {
            id: 2,
            sources: vec![0, 1],
        }];
        let err = export_lrat(&cnf, &events).unwrap_err();
        assert_eq!(err.kind, InteropErrorKind::ProofDefect);
    }

    #[test]
    fn missing_final_conflict_is_a_defect() {
        let (cnf, mut events) = tiny_trace();
        events.pop();
        let err = export_lrat(&cnf, &events).unwrap_err();
        assert_eq!(err.kind, InteropErrorKind::ProofDefect);
    }

    #[test]
    fn non_unit_level_zero_antecedent_is_a_defect() {
        let cnf = cnf(&[&[1, 2], &[-1, -2]]);
        let events = vec![TraceEvent::LevelZero {
            lit: lit(1),
            antecedent: 0,
        }];
        let err = export_lrat(&cnf, &events).unwrap_err();
        assert_eq!(err.kind, InteropErrorKind::ProofDefect);
    }

    #[test]
    fn original_empty_clause_exports_directly() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1, 2]);
        cnf.add_dimacs_clause(&[]);
        let events = vec![TraceEvent::FinalConflict { id: 1 }];
        let report = export_lrat(&cnf, &events).unwrap();
        let LratStep::Add { lits, hints, .. } = &report.steps[0] else {
            panic!("expected an addition")
        };
        assert!(lits.is_empty());
        assert_eq!(hints.as_slice(), &[2]);
    }
}
