//! The LRAT annotated clausal proof format, text and binary.
//!
//! LRAT extends DRAT with clause ids and *hints*: every addition names
//! the clauses whose unit propagation refutes its negation, so a
//! checker needs no search at all — the property that lets this crate
//! map hint lines straight onto resolve-trace antecedent chains.
//!
//! - **text** — `<id> <lits> 0 <hints> 0` for additions, where hints
//!   are clause ids and a *negative* hint opens a RAT resolvent group;
//!   `<id> d <ids> 0` for deletions; `c` lines are comments.
//! - **binary** — an `a` (0x61) byte, the clause id as an unsigned
//!   varint, the literals in the DRAT code mapping `2·|l| + (l < 0)`
//!   terminated by 0x00, then the hints in the *signed* mapping
//!   `2·|h| + (h < 0)` terminated by 0x00; deletions are a `d` (0x64)
//!   byte followed by the deleted ids as unsigned varints terminated
//!   by 0x00 (a binary deletion carries no id of its own, matching the
//!   drat-trim tooling).
//!
//! As with DRAT, everything the *parser* rejects is an input error;
//! whether the hints actually support the clause is the ingestion
//! engine's judgement ([`crate::ingest`]).

use crate::error::InteropError;
use std::io::Write;

/// One parsed LRAT proof step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LratStep {
    /// Add clause `id` with `lits`, justified by `hints` (negative
    /// hints open RAT groups).
    Add {
        /// The id the rest of the proof uses for this clause.
        id: u64,
        /// DIMACS literals, as written.
        lits: Vec<i64>,
        /// Hint ids; a negative value `-d` introduces the resolvent
        /// group against clause `d`.
        hints: Vec<i64>,
    },
    /// Delete the clauses with the given ids.
    Delete {
        /// Ids to drop from the active database.
        ids: Vec<u64>,
    },
}

/// Sniffs the binary encoding, same tell as binary DRAT: a text LRAT
/// line always starts with a digit or `c`, never with `a`/`d`.
pub fn looks_binary(bytes: &[u8]) -> bool {
    matches!(bytes, [0x61 | 0x64, ..])
}

/// Parses a text LRAT proof.
///
/// # Errors
///
/// [`InteropError`] of kind `Input` on malformed tokens, a missing
/// terminator, a zero/negative clause id, or a deletion id of zero.
pub fn parse_text(text: &str) -> Result<Vec<LratStep>, InteropError> {
    let mut steps = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let at = Some(lineno as u64 + 1);
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut toks = line.split_ascii_whitespace();
        let id_tok = toks.next().expect("non-empty line has a first token");
        let id: u64 = id_tok
            .parse()
            .ok()
            .filter(|&id| id > 0)
            .ok_or_else(|| InteropError::input(at, format!("bad LRAT clause id {id_tok:?}")))?;
        let rest: Vec<&str> = toks.collect();
        if rest.first() == Some(&"d") {
            let mut ids = Vec::new();
            let mut terminated = false;
            for tok in &rest[1..] {
                if terminated {
                    return Err(InteropError::input(
                        at,
                        format!("trailing token {tok:?} after deletion terminator"),
                    ));
                }
                let v: u64 = tok.parse().map_err(|_| {
                    InteropError::input(at, format!("bad LRAT deletion id {tok:?}"))
                })?;
                if v == 0 {
                    terminated = true;
                } else {
                    ids.push(v);
                }
            }
            if !terminated {
                return Err(InteropError::input(at, "deletion missing its 0 terminator"));
            }
            steps.push(LratStep::Delete { ids });
            continue;
        }
        // Addition: literals up to the first 0, hints up to the second.
        let mut lits = Vec::new();
        let mut hints = Vec::new();
        let mut section = 0usize;
        for tok in &rest {
            let v: i64 = tok
                .parse()
                .map_err(|_| InteropError::input(at, format!("bad LRAT token {tok:?}")))?;
            if v == 0 {
                section += 1;
                if section == 2 {
                    continue;
                }
            } else if section == 0 {
                lits.push(v);
            } else if section == 1 {
                hints.push(v);
            } else {
                return Err(InteropError::input(
                    at,
                    format!("trailing token {tok:?} after hint terminator"),
                ));
            }
        }
        if section < 2 {
            return Err(InteropError::input(
                at,
                "LRAT addition needs two 0 terminators (literals, hints)",
            ));
        }
        steps.push(LratStep::Add { id, lits, hints });
    }
    Ok(steps)
}

fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize, at: u64) -> Result<u64, InteropError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(InteropError::input(
                Some(at),
                "truncated varint in binary LRAT stream",
            ));
        };
        *pos += 1;
        if shift == 63 && b > 1 {
            return Err(InteropError::input(
                Some(at),
                "binary LRAT varint overflows u64",
            ));
        }
        value |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(InteropError::input(
                Some(at),
                "binary LRAT varint overflows u64",
            ));
        }
    }
}

/// Signed value in the `2·|v| + (v < 0)` mapping; 0 is the terminator.
fn signed_code(v: i64) -> u64 {
    (v.unsigned_abs() << 1) | u64::from(v < 0)
}

fn code_signed(code: u64) -> Option<i64> {
    let mag = code >> 1;
    if mag == 0 || mag > i64::MAX as u64 {
        return None;
    }
    let mag = mag as i64;
    Some(if code & 1 == 1 { -mag } else { mag })
}

/// Parses a binary LRAT proof.
///
/// # Errors
///
/// [`InteropError`] of kind `Input` on an unknown tag or any truncated
/// or out-of-range varint.
pub fn parse_binary(bytes: &[u8]) -> Result<Vec<LratStep>, InteropError> {
    let mut steps = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let at = steps.len() as u64 + 1;
        let tag = bytes[pos];
        pos += 1;
        match tag {
            0x61 => {
                let id = read_varint(bytes, &mut pos, at)?;
                if id == 0 {
                    return Err(InteropError::input(Some(at), "binary LRAT clause id 0"));
                }
                let mut lits = Vec::new();
                loop {
                    let code = read_varint(bytes, &mut pos, at)?;
                    if code == 0 {
                        break;
                    }
                    lits.push(code_signed(code).ok_or_else(|| {
                        InteropError::input(
                            Some(at),
                            format!("bad binary LRAT literal code {code}"),
                        )
                    })?);
                }
                let mut hints = Vec::new();
                loop {
                    let code = read_varint(bytes, &mut pos, at)?;
                    if code == 0 {
                        break;
                    }
                    hints.push(code_signed(code).ok_or_else(|| {
                        InteropError::input(Some(at), format!("bad binary LRAT hint code {code}"))
                    })?);
                }
                steps.push(LratStep::Add { id, lits, hints });
            }
            0x64 => {
                let mut ids = Vec::new();
                loop {
                    let id = read_varint(bytes, &mut pos, at)?;
                    if id == 0 {
                        break;
                    }
                    ids.push(id);
                }
                steps.push(LratStep::Delete { ids });
            }
            other => {
                return Err(InteropError::input(
                    Some(at),
                    format!("unknown binary LRAT step tag {other:#04x}"),
                ))
            }
        }
    }
    Ok(steps)
}

/// Parses an LRAT proof, sniffing text vs binary by the first byte.
///
/// # Errors
///
/// `Input` errors from the underlying parser; non-UTF-8 bytes on the
/// text path are an input error too.
pub fn parse(bytes: &[u8]) -> Result<Vec<LratStep>, InteropError> {
    if looks_binary(bytes) {
        parse_binary(bytes)
    } else {
        let text = std::str::from_utf8(bytes)
            .map_err(|e| InteropError::input(None, format!("LRAT file is not UTF-8: {e}")))?;
        parse_text(text)
    }
}

/// Renders steps in the text encoding. Text deletions need an id of
/// their own; the convention (shared with drat-trim's output) is the id
/// of the most recent addition, which `last_id` tracks.
pub fn write_text<W: Write>(mut out: W, steps: &[LratStep]) -> std::io::Result<()> {
    let mut last_id = 0u64;
    for step in steps {
        match step {
            LratStep::Add { id, lits, hints } => {
                last_id = *id;
                write!(out, "{id}")?;
                for l in lits {
                    write!(out, " {l}")?;
                }
                write!(out, " 0")?;
                for h in hints {
                    write!(out, " {h}")?;
                }
                out.write_all(b" 0\n")?;
            }
            LratStep::Delete { ids } => {
                write!(out, "{last_id} d")?;
                for id in ids {
                    write!(out, " {id}")?;
                }
                out.write_all(b" 0\n")?;
            }
        }
    }
    Ok(())
}

/// Renders steps in the binary encoding.
pub fn write_binary(steps: &[LratStep]) -> Vec<u8> {
    let mut out = Vec::new();
    for step in steps {
        match step {
            LratStep::Add { id, lits, hints } => {
                out.push(0x61);
                write_varint(&mut out, *id);
                for &l in lits {
                    write_varint(&mut out, signed_code(l));
                }
                out.push(0);
                for &h in hints {
                    write_varint(&mut out, signed_code(h));
                }
                out.push(0);
            }
            LratStep::Delete { ids } => {
                out.push(0x64);
                for &id in ids {
                    write_varint(&mut out, id);
                }
                out.push(0);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::InteropErrorKind;

    #[test]
    fn text_roundtrip() {
        let steps = vec![
            LratStep::Add {
                id: 5,
                lits: vec![1, -2],
                hints: vec![3, 1, -4, 2],
            },
            LratStep::Delete { ids: vec![1, 3] },
            LratStep::Add {
                id: 6,
                lits: vec![],
                hints: vec![5, 2],
            },
        ];
        let mut buf = Vec::new();
        write_text(&mut buf, &steps).unwrap();
        assert_eq!(
            String::from_utf8_lossy(&buf),
            "5 1 -2 0 3 1 -4 2 0\n5 d 1 3 0\n6 0 5 2 0\n"
        );
        assert_eq!(parse(&buf).unwrap(), steps);
    }

    #[test]
    fn binary_roundtrip() {
        let steps = vec![
            LratStep::Add {
                id: 300,
                lits: vec![64, -65],
                hints: vec![-12, 299],
            },
            LratStep::Delete { ids: vec![299] },
        ];
        let bytes = write_binary(&steps);
        assert!(looks_binary(&bytes));
        assert_eq!(parse(&bytes).unwrap(), steps);
    }

    #[test]
    fn rejections_are_input_errors() {
        for bad in [
            "x 1 0 1 0",   // bad id
            "0 1 0 1 0",   // id zero
            "3 1 0",       // one terminator only
            "3 1 0 2 0 9", // trailing token
            "3 d 1",       // unterminated deletion
            "3 d 1 0 4",   // trailing deletion token
        ] {
            let err = parse_text(bad).unwrap_err();
            assert_eq!(err.kind, InteropErrorKind::Input, "{bad:?}");
        }
        for bad in [
            &[0x62u8][..],           // unknown tag
            &[0x61, 0x00][..],       // id zero
            &[0x61, 0x05][..],       // truncated after id
            &[0x61, 0x05, 0x02][..], // truncated literal list
        ] {
            let err = parse_binary(bad).unwrap_err();
            assert_eq!(err.kind, InteropErrorKind::Input, "{bad:?}");
        }
    }
}
