//! Parser/ingester conformance: hostile proof bytes must produce a
//! clean verdict, never a panic.
//!
//! The contract mirrors the native trace decoder's: whatever the bytes,
//! the pipeline ends in `Ok`, an `Input` error (the file is not a
//! proof) or a `ProofDefect` error (the proof is wrong). The corpus
//! here is deterministic; `RESCHECK_CONFORMANCE_ITERS` scales the
//! seeded corruption sweep up for nightly runs (default 200 per
//! operator/format pair).

use rescheck_cnf::{Cnf, SplitMix64};
use rescheck_interop::{apply_proof, drat, ingest_bytes, lrat, ProofFormat, ALL_PROOF_MUTATIONS};

fn fixture_cnf() -> Cnf {
    let mut cnf = Cnf::new();
    for c in [&[1i64, 2][..], &[1, -2], &[-1, 3], &[-1, -3]] {
        cnf.add_dimacs_clause(c);
    }
    cnf
}

fn iterations() -> u64 {
    std::env::var("RESCHECK_CONFORMANCE_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

/// Well-formed seed proofs for each format, text and binary.
fn seed_proofs() -> Vec<(ProofFormat, Vec<u8>)> {
    let drat_steps = vec![
        drat::DratStep::Add(vec![1]),
        drat::DratStep::Delete(vec![1, 2]),
        drat::DratStep::Add(vec![]),
    ];
    let mut drat_text = Vec::new();
    drat::write_text(&mut drat_text, &drat_steps).unwrap();
    let lrat_steps = vec![
        lrat::LratStep::Add {
            id: 5,
            lits: vec![1],
            hints: vec![2, 1],
        },
        lrat::LratStep::Delete { ids: vec![1, 2] },
        lrat::LratStep::Add {
            id: 6,
            lits: vec![],
            hints: vec![5, 3, 4],
        },
    ];
    let mut lrat_text = Vec::new();
    lrat::write_text(&mut lrat_text, &lrat_steps).unwrap();
    vec![
        (ProofFormat::Drat, drat_text),
        (ProofFormat::Drat, drat::write_binary(&drat_steps)),
        (ProofFormat::Lrat, lrat_text),
        (ProofFormat::Lrat, lrat::write_binary(&lrat_steps)),
    ]
}

#[test]
fn seed_proofs_are_accepted() {
    let cnf = fixture_cnf();
    for (format, bytes) in seed_proofs() {
        let report = ingest_bytes(&cnf, &bytes, format)
            .unwrap_or_else(|e| panic!("{format} seed proof rejected: {e}"));
        assert!(report.resolution_checkable(), "{format}");
    }
}

/// The centerpiece: every corruption of every seed proof, under both
/// format front ends, ends in a verdict. The `catch_unwind` is belt and
/// braces — a panic in here is a conformance bug even if the harness
/// would catch it.
#[test]
fn corrupted_proofs_never_panic() {
    let cnf = fixture_cnf();
    let iters = iterations();
    for (format, bytes) in seed_proofs() {
        for mutation in ALL_PROOF_MUTATIONS {
            for seed in 0..iters {
                let mut rng = SplitMix64::new(seed ^ 0x9e3779b97f4a7c15);
                let Some(mutated) = apply_proof(&bytes, mutation, &mut rng) else {
                    continue;
                };
                let outcome = std::panic::catch_unwind(|| {
                    // Drive the mutant through BOTH format front ends:
                    // misdeclared formats are part of the hostile-input
                    // space.
                    let _ = ingest_bytes(&cnf, &mutated, format);
                    let _ = ingest_bytes(&cnf, &mutated, ProofFormat::Drat);
                    let _ = ingest_bytes(&cnf, &mutated, ProofFormat::Lrat);
                });
                assert!(
                    outcome.is_ok(),
                    "{format}/{mutation} seed {seed}: ingestion panicked"
                );
            }
        }
    }
}

#[test]
fn truncation_sweep_rejects_cleanly() {
    let cnf = fixture_cnf();
    for (format, bytes) in seed_proofs() {
        for cut in 0..bytes.len() {
            let outcome = std::panic::catch_unwind(|| ingest_bytes(&cnf, &bytes[..cut], format));
            let verdict = outcome.unwrap_or_else(|_| panic!("{format}: panic at truncation {cut}"));
            // Any verdict is fine — a short text file can still be a
            // (defective or even complete) proof — but no panics, and a
            // truncation that still verifies must have kept the empty
            // clause derivable.
            if let Ok(report) = verdict {
                assert!(
                    !report.events.is_empty(),
                    "{format}: empty accept at truncation {cut}"
                );
            }
        }
    }
}

#[test]
fn garbage_is_an_input_error() {
    let cnf = fixture_cnf();
    for garbage in [
        &b"not a proof at all"[..],
        &b"1 2 three 0"[..],
        &[0xff, 0xfe, 0x00][..],
        &b"d"[..],
    ] {
        for format in [ProofFormat::Drat, ProofFormat::Lrat] {
            let err = ingest_bytes(&cnf, garbage, format).expect_err("garbage must not ingest");
            assert_eq!(
                err.kind,
                rescheck_interop::InteropErrorKind::Input,
                "{format}: {garbage:?}"
            );
        }
    }
}

#[test]
fn wrong_proofs_are_proof_defects() {
    let cnf = fixture_cnf();
    // Parse fine, prove nothing: the additions are derivable (or
    // aliases) but non-unit, so the proof never reaches the empty
    // clause. (Unit lemmas would complete eagerly — the engine
    // propagates every root assertion forward.)
    for (format, bytes) in [
        (ProofFormat::Drat, &b"2 3 0\n"[..]),
        (ProofFormat::Drat, &b"1 2 0\n"[..]),
        (ProofFormat::Lrat, &b"5 1 0 99 0\n"[..]),
        (ProofFormat::Lrat, &b"5 1 0 3 0\n"[..]),
    ] {
        let err = ingest_bytes(&cnf, bytes, format).expect_err("defective proof must not verify");
        assert_eq!(
            err.kind,
            rescheck_interop::InteropErrorKind::ProofDefect,
            "{format}: {:?}",
            String::from_utf8_lossy(bytes)
        );
    }
}
