//! Round-trip property tests: solver trace → LRAT → re-ingested trace.
//!
//! The invariant under test is the paper's independence argument turned
//! into a pipeline: a resolve trace exported to LRAT and re-ingested
//! must describe the *same refutation* — the re-derived resolvents
//! match the exported ones clause for clause — and the synthesized
//! trace must satisfy all seven native checking strategies, unanimously.

use rescheck_checker::agreement::verify_synthesized_trace;
use rescheck_checker::CheckConfig;
use rescheck_cnf::{Cnf, Lit, SatStatus};
use rescheck_interop::{drat, export_lrat, ingest_drat, ingest_lrat, lrat, DratStep, LratStep};
use rescheck_solver::{SolveResult, Solver, SolverConfig};
use rescheck_trace::{MemorySink, TraceEvent};
use rescheck_workloads::{graph_color, parity, pigeonhole, Instance};

/// The oracle configuration the fuzz harness uses: small thread count,
/// no parallel fallback threshold, so every strategy genuinely runs.
fn oracle_config() -> CheckConfig {
    CheckConfig {
        jobs: 3,
        parallel_min_learned: 0,
        ..CheckConfig::default()
    }
}

/// Solves a known-UNSAT instance with a seeded solver and returns the
/// formula plus the recorded resolve trace.
fn solve_unsat(instance: &Instance, seed: u64) -> (Cnf, Vec<TraceEvent>) {
    assert_eq!(instance.expected, Some(SatStatus::Unsatisfiable));
    let cfg = SolverConfig {
        seed,
        ..SolverConfig::default()
    };
    let mut solver = Solver::from_cnf(&instance.cnf, cfg);
    let mut sink = MemorySink::new();
    let result = solver.solve_traced(&mut sink).expect("memory sink");
    assert_eq!(result, SolveResult::Unsatisfiable, "{instance}");
    (instance.cnf.clone(), sink.into_events())
}

/// Sorted resolvent literal sets, the order-insensitive comparison key.
fn resolvent_key(resolvents: &[(u64, Vec<Lit>)]) -> Vec<Vec<Lit>> {
    let mut key: Vec<Vec<Lit>> = resolvents.iter().map(|(_, l)| l.clone()).collect();
    key.sort();
    key
}

fn unsat_corpus() -> Vec<Instance> {
    vec![
        pigeonhole::instance(2),
        pigeonhole::instance(3),
        pigeonhole::instance(4),
        parity::chained_parity(5),
        graph_color::clique_instance(3),
    ]
}

#[test]
fn lrat_roundtrip_preserves_the_refutation() {
    for instance in unsat_corpus() {
        for seed in [1u64, 7, 42] {
            let (cnf, events) = solve_unsat(&instance, seed);

            let exported = export_lrat(&cnf, &events)
                .unwrap_or_else(|e| panic!("{instance} seed {seed}: export failed: {e}"));

            // Wire-format round-trips: text and binary encodings are
            // lossless over the exported steps.
            let mut text = Vec::new();
            lrat::write_text(&mut text, &exported.steps).unwrap();
            assert_eq!(lrat::parse(&text).unwrap(), exported.steps, "{instance}");
            let binary = lrat::write_binary(&exported.steps);
            assert_eq!(lrat::parse(&binary).unwrap(), exported.steps, "{instance}");

            // Semantic round-trip: re-ingesting derives the same
            // resolvents, with no RAT escape hatch needed.
            let reingested = ingest_lrat(&cnf, &exported.steps)
                .unwrap_or_else(|e| panic!("{instance} seed {seed}: re-ingest failed: {e}"));
            assert!(reingested.resolution_checkable(), "{instance} seed {seed}");
            assert_eq!(
                resolvent_key(&exported.resolvents),
                resolvent_key(&reingested.resolvents),
                "{instance} seed {seed}: resolvent sets diverged"
            );

            // The synthesized trace convinces every native strategy.
            verify_synthesized_trace(&cnf, &reingested.events, &oracle_config()).unwrap_or_else(
                |d| panic!("{instance} seed {seed}: strategies disagreed on the round-trip: {d}"),
            );
        }
    }
}

#[test]
fn drat_projection_of_exported_proof_ingests_cleanly() {
    // Strip the hints off an exported LRAT proof: what remains is a
    // valid DRAT proof (additions in derivation order plus deletions),
    // and DRAT ingestion must re-derive a checkable trace from it.
    for instance in unsat_corpus() {
        let (cnf, events) = solve_unsat(&instance, 3);
        let exported = export_lrat(&cnf, &events).unwrap();
        let mut id_lits: std::collections::HashMap<u64, Vec<i64>> = (0..cnf.num_clauses())
            .map(|i| {
                (
                    i as u64 + 1,
                    cnf.iter()
                        .nth(i)
                        .unwrap()
                        .1
                        .iter()
                        .map(|l| l.to_dimacs())
                        .collect(),
                )
            })
            .collect();
        let mut steps: Vec<DratStep> = Vec::new();
        for step in &exported.steps {
            match step {
                LratStep::Add { id, lits, .. } => {
                    id_lits.insert(*id, lits.clone());
                    steps.push(DratStep::Add(lits.clone()));
                }
                LratStep::Delete { ids } => {
                    for id in ids {
                        steps.push(DratStep::Delete(id_lits[id].clone()));
                    }
                }
            }
        }

        let report = ingest_drat(&cnf, &steps)
            .unwrap_or_else(|e| panic!("{instance}: DRAT ingest failed: {e}"));
        assert!(report.resolution_checkable(), "{instance}");

        verify_synthesized_trace(&cnf, &report.events, &oracle_config()).unwrap_or_else(|d| {
            panic!("{instance}: strategies disagreed on the DRAT-synthesized trace: {d}")
        });

        // The DRAT binary encoding round-trips the projected proof too.
        let binary = drat::write_binary(&steps);
        assert_eq!(drat::parse(&binary).unwrap(), steps, "{instance}");
    }
}
