//! Block-buffered binary trace decoding.
//!
//! [`crate::BinaryReader`] issues a `read_exact` per tag byte and per
//! varint byte and materializes an owned [`TraceEvent`] (with a freshly
//! allocated `sources` vector) per record. On Table-2-scale traces those
//! per-record costs dominate checking. [`BlockDecoder`] instead refills
//! one [`READ_BUFFER_BYTES`]-sized buffer and decodes varints in place,
//! straddling block boundaries by compacting the unconsumed tail to the
//! front; source lists land in a reused scratch vector handed out as a
//! borrowed [`EventRef`], so steady-state decoding performs no heap
//! allocation at all.
//!
//! The decoder accepts exactly the byte streams [`crate::BinaryReader`]
//! accepts and reports the same `InvalidData` diagnostics on malformed
//! input (see the differential tests below).
//!
//! [`READ_BUFFER_BYTES`]: rescheck_cnf::READ_BUFFER_BYTES

use crate::binary::{TAG_FINAL, TAG_LEARNED, TAG_LEVEL_ZERO};
use crate::{EventRef, TraceEvent, BINARY_MAGIC};
use rescheck_cnf::{Lit, READ_BUFFER_BYTES};
use std::io::{self, Read};

/// Streams borrowed trace events from binary input through one reused
/// block buffer.
///
/// This is a lending reader: each [`BlockDecoder::next_event`] call
/// returns an [`EventRef`] borrowing the decoder's scratch space, valid
/// until the next call. Wrap the decoder in [`BlockDecoder::into_events`]
/// for an owned-event `Iterator` compatible with [`crate::BinaryReader`].
///
/// # Examples
///
/// ```
/// use rescheck_trace::{BlockDecoder, BinaryWriter, EventRef, TraceSink};
///
/// let mut buf = Vec::new();
/// let mut w = BinaryWriter::new(&mut buf)?;
/// w.learned(2, &[0, 1])?;
///
/// let mut decoder = BlockDecoder::new(std::io::Cursor::new(buf))?;
/// assert_eq!(
///     decoder.next_event()?,
///     Some(EventRef::Learned { id: 2, sources: &[0, 1] })
/// );
/// assert_eq!(decoder.next_event()?, None);
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct BlockDecoder<R> {
    reader: R,
    buf: Vec<u8>,
    start: usize,
    end: usize,
    eof: bool,
    scratch: Vec<u64>,
    events: u64,
    bytes_read: u64,
    refills: u64,
}

impl<R: Read> BlockDecoder<R> {
    /// Creates a decoder with the default block size, consuming and
    /// validating the magic header.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] if the magic does not match
    /// and [`io::ErrorKind::UnexpectedEof`] if the input is shorter than
    /// the magic.
    pub fn new(reader: R) -> io::Result<Self> {
        Self::with_block_size(reader, READ_BUFFER_BYTES)
    }

    /// Creates a decoder refilling in `block_size`-byte reads (clamped to
    /// a small minimum). Exposed so tests can force records to straddle
    /// refill boundaries.
    ///
    /// # Errors
    ///
    /// As for [`BlockDecoder::new`].
    pub fn with_block_size(reader: R, block_size: usize) -> io::Result<Self> {
        let mut decoder = BlockDecoder {
            reader,
            buf: vec![0; block_size.max(16)],
            start: 0,
            end: 0,
            eof: false,
            scratch: Vec::new(),
            events: 0,
            bytes_read: 0,
            refills: 0,
        };
        while decoder.end - decoder.start < BINARY_MAGIC.len() {
            if !decoder.fill_more()? {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "failed to fill whole buffer",
                ));
            }
        }
        if decoder.buf[decoder.start..decoder.start + BINARY_MAGIC.len()] != BINARY_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a rescheck binary trace (bad magic)",
            ));
        }
        decoder.start += BINARY_MAGIC.len();
        Ok(decoder)
    }

    /// Number of events decoded so far.
    pub fn events_decoded(&self) -> u64 {
        self.events
    }

    /// Number of bytes pulled from the underlying reader so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Number of buffer refills (reads issued on the underlying reader).
    pub fn refills(&self) -> u64 {
        self.refills
    }

    /// Wraps the decoder into an owned-event iterator (the compatibility
    /// shim matching [`crate::BinaryReader`]'s item type).
    pub fn into_events(self) -> BlockEvents<R> {
        BlockEvents { decoder: self }
    }

    /// Decodes the next record, or `None` at a clean end of input.
    ///
    /// The returned [`EventRef`] borrows the decoder's scratch buffer and
    /// is invalidated by the next call.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] on malformed records (same
    /// diagnostics as [`crate::BinaryReader`]),
    /// [`io::ErrorKind::UnexpectedEof`] on truncation mid-record, and any
    /// error from the underlying reader.
    pub fn next_event(&mut self) -> io::Result<Option<EventRef<'_>>> {
        let Some(tag) = self.read_byte()? else {
            return Ok(None);
        };
        self.events += 1;
        match tag {
            TAG_LEARNED => {
                let id = self.read_varint()?;
                let count = self.read_varint()?;
                if count < 2 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "learned clause needs at least two resolve sources",
                    ));
                }
                if count > (1 << 32) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "implausible resolve-source count",
                    ));
                }
                self.scratch.clear();
                // Bound the speculative reservation: `count` is attacker-
                // controlled until the sources actually decode.
                self.scratch.reserve(count.min(65_536) as usize);
                // When the whole source list provably fits in the buffered
                // window (10 bytes is the longest varint), decode it with a
                // local cursor: one window check for the list instead of
                // one per varint.
                if (self.end - self.start) / 10 >= count as usize {
                    let mut pos = self.start;
                    for _ in 0..count {
                        let first = self.buf[pos];
                        if first < 0x80 {
                            pos += 1;
                            self.scratch.push(u64::from(first));
                        } else {
                            let chunk: &[u8; 10] = self.buf[pos..pos + 10]
                                .try_into()
                                .expect("slice of length 10");
                            let (value, consumed) = decode_varint_chunk(chunk)?;
                            pos += consumed;
                            self.scratch.push(value);
                        }
                    }
                    self.start = pos;
                } else {
                    for _ in 0..count {
                        let source = self.read_varint()?;
                        self.scratch.push(source);
                    }
                }
                Ok(Some(EventRef::Learned {
                    id,
                    sources: &self.scratch,
                }))
            }
            TAG_LEVEL_ZERO => {
                let code = self.read_varint()?;
                if code > u32::MAX as u64 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "literal code out of range",
                    ));
                }
                let antecedent = self.read_varint()?;
                Ok(Some(EventRef::LevelZero {
                    lit: Lit::from_code(code as usize),
                    antecedent,
                }))
            }
            TAG_FINAL => {
                let id = self.read_varint()?;
                Ok(Some(EventRef::FinalConflict { id }))
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown binary trace tag 0x{other:02x}"),
            )),
        }
    }

    /// Pulls more bytes from the reader, compacting the unconsumed tail
    /// to the front of the buffer first. Returns `false` at end of input.
    fn fill_more(&mut self) -> io::Result<bool> {
        if self.eof {
            return Ok(false);
        }
        if self.start > 0 {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
        debug_assert!(self.end < self.buf.len(), "a varint is at most 10 bytes");
        loop {
            match self.reader.read(&mut self.buf[self.end..]) {
                Ok(0) => {
                    self.eof = true;
                    return Ok(false);
                }
                Ok(n) => {
                    self.end += n;
                    self.bytes_read += n as u64;
                    self.refills += 1;
                    return Ok(true);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    fn read_byte(&mut self) -> io::Result<Option<u8>> {
        if self.start == self.end && !self.fill_more()? {
            return Ok(None);
        }
        let byte = self.buf[self.start];
        self.start += 1;
        Ok(Some(byte))
    }

    /// Decodes one LEB128 varint, normally entirely within the buffered
    /// window; only a varint straddling a refill boundary falls back to
    /// the byte-at-a-time tail loop. Matches [`crate::varint::read_u64`]
    /// exactly, including its overflow diagnostics.
    #[inline]
    fn read_varint(&mut self) -> io::Result<u64> {
        // Hot path: a varint is at most 10 bytes, so with 10 buffered
        // bytes in hand the whole value decodes from a fixed-size chunk
        // with no per-byte window checks (the common case with a block
        // buffer three orders of magnitude larger than a record).
        if self.end - self.start >= 10 {
            let chunk: &[u8; 10] = self.buf[self.start..self.start + 10]
                .try_into()
                .expect("slice of length 10");
            let first = chunk[0];
            if first < 0x80 {
                self.start += 1;
                return Ok(u64::from(first));
            }
            let (value, consumed) = decode_varint_chunk(chunk)?;
            self.start += consumed;
            return Ok(value);
        }
        self.read_varint_boundary()
    }

    /// Cold path for varints near the end of the buffered window: byte
    /// at a time, refilling as needed.
    fn read_varint_boundary(&mut self) -> io::Result<u64> {
        let mut value: u64 = 0;
        let mut shift: u32 = 0;
        let mut consumed = 0usize;
        let window = self.end - self.start;
        while consumed < window {
            let byte = self.buf[self.start + consumed];
            consumed += 1;
            if shift == 63 && byte > 1 {
                self.start += consumed;
                return Err(varint_overflow());
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                self.start += consumed;
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                self.start += consumed;
                return Err(varint_overflow());
            }
        }
        self.start += consumed;
        loop {
            let Some(byte) = self.read_byte()? else {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "failed to fill whole buffer",
                ));
            };
            if shift == 63 && byte > 1 {
                return Err(varint_overflow());
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(varint_overflow());
            }
        }
    }
}

fn varint_overflow() -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, "LEB128 value overflows u64")
}

/// Decodes one LEB128 varint known to lie entirely within `chunk`,
/// returning the value and the number of bytes consumed. Overflow
/// semantics match [`crate::varint::read_u64`]: a 10th byte above 1 or
/// an 11th continuation byte is an overflow.
#[inline]
fn decode_varint_chunk(chunk: &[u8; 10]) -> io::Result<(u64, usize)> {
    let mut value: u64 = 0;
    let mut shift: u32 = 0;
    for (i, &byte) in chunk.iter().enumerate() {
        if shift == 63 && byte > 1 {
            return Err(varint_overflow());
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    // All ten bytes had continuation bits: an 11th byte would be
    // required, which read_u64 rejects as overflow.
    Err(varint_overflow())
}

/// Borrowed-from-map decoding: [`BlockDecoder`]'s semantics over an
/// in-memory byte slice, with no read buffer and no copy.
///
/// This is the decoder the [`crate::TraceMap`] paths use — one-shot
/// strategies, `rescheck serve` jobs and the sharded parallel pass-1
/// scans all decode straight off the mapped bytes. It accepts exactly
/// the streams [`BlockDecoder`] accepts and reports identical
/// diagnostics (kind and message) on malformed or truncated input; the
/// differential tests below run both decoders over the same corpora.
///
/// # Examples
///
/// ```
/// use rescheck_trace::{BinaryWriter, EventRef, SliceDecoder, TraceSink};
///
/// let mut buf = Vec::new();
/// let mut w = BinaryWriter::new(&mut buf)?;
/// w.learned(2, &[0, 1])?;
///
/// let mut decoder = SliceDecoder::new(&buf)?;
/// assert_eq!(
///     decoder.next_event()?,
///     Some(EventRef::Learned { id: 2, sources: &[0, 1] })
/// );
/// assert_eq!(decoder.next_event()?, None);
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct SliceDecoder<'a> {
    data: &'a [u8],
    pos: usize,
    scratch: Vec<u64>,
    events: u64,
}

impl<'a> SliceDecoder<'a> {
    /// Creates a decoder over a whole trace, validating the magic.
    ///
    /// # Errors
    ///
    /// As for [`BlockDecoder::new`].
    pub fn new(data: &'a [u8]) -> io::Result<Self> {
        if data.len() < BINARY_MAGIC.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "failed to fill whole buffer",
            ));
        }
        if data[..BINARY_MAGIC.len()] != BINARY_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a rescheck binary trace (bad magic)",
            ));
        }
        Ok(Self::resume_at(data, BINARY_MAGIC.len()))
    }

    /// Creates a decoder positioned at byte `pos` of `data`, which must
    /// be a record boundary (e.g. a [`crate::ShardRange`] start). No
    /// magic is consumed or checked.
    pub fn resume_at(data: &'a [u8], pos: usize) -> Self {
        SliceDecoder {
            data,
            pos,
            scratch: Vec::new(),
            events: 0,
        }
    }

    /// Current byte offset into the slice (a record boundary between
    /// calls to [`SliceDecoder::next_event`]).
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Number of events decoded so far.
    pub fn events_decoded(&self) -> u64 {
        self.events
    }

    /// Decodes the next record, or `None` at the end of the slice.
    ///
    /// # Errors
    ///
    /// As for [`BlockDecoder::next_event`].
    pub fn next_event(&mut self) -> io::Result<Option<EventRef<'_>>> {
        let Some(&tag) = self.data.get(self.pos) else {
            return Ok(None);
        };
        self.pos += 1;
        self.events += 1;
        match tag {
            TAG_LEARNED => {
                let id = self.read_varint()?;
                let count = self.read_varint()?;
                if count < 2 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "learned clause needs at least two resolve sources",
                    ));
                }
                if count > (1 << 32) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "implausible resolve-source count",
                    ));
                }
                self.scratch.clear();
                // As in BlockDecoder: `count` is attacker-controlled
                // until the sources actually decode.
                self.scratch.reserve(count.min(65_536) as usize);
                for _ in 0..count {
                    let source = self.read_varint()?;
                    self.scratch.push(source);
                }
                Ok(Some(EventRef::Learned {
                    id,
                    sources: &self.scratch,
                }))
            }
            TAG_LEVEL_ZERO => {
                let code = self.read_varint()?;
                if code > u32::MAX as u64 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "literal code out of range",
                    ));
                }
                let antecedent = self.read_varint()?;
                Ok(Some(EventRef::LevelZero {
                    lit: Lit::from_code(code as usize),
                    antecedent,
                }))
            }
            TAG_FINAL => {
                let id = self.read_varint()?;
                Ok(Some(EventRef::FinalConflict { id }))
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown binary trace tag 0x{other:02x}"),
            )),
        }
    }

    #[inline]
    fn read_varint(&mut self) -> io::Result<u64> {
        // Same shape as BlockDecoder::read_varint, minus refills: with
        // ten bytes in hand the whole varint decodes from a fixed-size
        // chunk; only the final few records of the slice take the
        // byte-at-a-time tail.
        if self.data.len() - self.pos >= 10 {
            let chunk: &[u8; 10] = self.data[self.pos..self.pos + 10]
                .try_into()
                .expect("slice of length 10");
            let first = chunk[0];
            if first < 0x80 {
                self.pos += 1;
                return Ok(u64::from(first));
            }
            let (value, consumed) = decode_varint_chunk(chunk)?;
            self.pos += consumed;
            return Ok(value);
        }
        let mut value: u64 = 0;
        let mut shift: u32 = 0;
        while let Some(&byte) = self.data.get(self.pos) {
            self.pos += 1;
            if shift == 63 && byte > 1 {
                return Err(varint_overflow());
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(varint_overflow());
            }
        }
        Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "failed to fill whole buffer",
        ))
    }
}

/// Owned-event iterator over a [`BlockDecoder`].
///
/// Each item clones the decoder's scratch into a fresh [`TraceEvent`];
/// use [`BlockDecoder::next_event`] directly to avoid that.
#[derive(Debug)]
pub struct BlockEvents<R> {
    decoder: BlockDecoder<R>,
}

impl<R: Read> Iterator for BlockEvents<R> {
    type Item = io::Result<TraceEvent>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.decoder.next_event() {
            Ok(Some(event)) => Some(Ok(event.to_owned())),
            Ok(None) => None,
            Err(e) => Some(Err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{varint, BinaryReader, BinaryWriter, TraceSink};
    use rescheck_cnf::SplitMix64;

    /// Deterministic pseudo-random event stream exercising multi-byte
    /// varints and long source lists.
    fn seeded_events(seed: u64, count: usize) -> Vec<TraceEvent> {
        let mut rng = SplitMix64::new(seed);
        let mut events = Vec::with_capacity(count);
        for i in 0..count {
            match rng.next_u64() % 4 {
                0 => {
                    let sign: i64 = if rng.next_u64().is_multiple_of(2) {
                        1
                    } else {
                        -1
                    };
                    let var = (rng.next_u64() % 5000 + 1) as i64;
                    events.push(TraceEvent::LevelZero {
                        lit: Lit::from_dimacs(sign * var),
                        antecedent: rng.next_u64() % (1 << 40),
                    });
                }
                1 => events.push(TraceEvent::FinalConflict {
                    id: rng.next_u64() % (1 << 50),
                }),
                _ => {
                    let len = 2 + (rng.next_u64() % 30) as usize;
                    let sources = (0..len).map(|_| rng.next_u64() % (1 << 45)).collect();
                    events.push(TraceEvent::Learned {
                        id: 1_000_000 + i as u64,
                        sources,
                    });
                }
            }
        }
        events
    }

    fn encode(events: &[TraceEvent]) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = BinaryWriter::new(&mut buf).unwrap();
        for e in events {
            w.event(e).unwrap();
        }
        buf
    }

    fn decode_all(bytes: &[u8], block_size: usize) -> io::Result<Vec<TraceEvent>> {
        let mut decoder = BlockDecoder::with_block_size(io::Cursor::new(bytes), block_size)?;
        let mut events = Vec::new();
        while let Some(event) = decoder.next_event()? {
            events.push(event.to_owned());
        }
        Ok(events)
    }

    fn decode_all_slice(bytes: &[u8]) -> io::Result<Vec<TraceEvent>> {
        let mut decoder = SliceDecoder::new(bytes)?;
        let mut events = Vec::new();
        while let Some(event) = decoder.next_event()? {
            events.push(event.to_owned());
        }
        Ok(events)
    }

    #[test]
    fn seeded_roundtrip_across_block_boundaries() {
        for seed in [1, 0xdead_beef, 42] {
            let events = seeded_events(seed, 500);
            let bytes = encode(&events);
            // A 16-byte block guarantees most records straddle refills.
            for block_size in [16, 17, 64, 4096] {
                let got = decode_all(&bytes, block_size).unwrap();
                assert_eq!(got, events, "seed {seed}, block size {block_size}");
            }
            let got = decode_all_slice(&bytes).unwrap();
            assert_eq!(got, events, "seed {seed}, slice decoder");
        }
    }

    #[test]
    fn matches_per_record_reader_on_truncated_traces() {
        let events = seeded_events(7, 50);
        let bytes = encode(&events);
        // Chop the stream at every byte boundary: the block decoder must
        // agree with BinaryReader on both the decoded prefix and the
        // error (kind and message) where one occurs.
        for cut in 0..bytes.len() {
            let truncated = &bytes[..cut];
            let reference: io::Result<Vec<TraceEvent>> =
                match BinaryReader::new(io::Cursor::new(truncated.to_vec())) {
                    Ok(reader) => reader.collect(),
                    Err(e) => Err(e),
                };
            let block = decode_all(truncated, 16);
            let slice = decode_all_slice(truncated);
            for (label, got) in [("block", block), ("slice", slice)] {
                match (&reference, got) {
                    (Ok(a), Ok(b)) => assert_eq!(*a, b, "cut {cut} ({label})"),
                    (Err(a), Err(b)) => {
                        assert_eq!(a.kind(), b.kind(), "cut {cut} ({label})");
                        assert_eq!(a.to_string(), b.to_string(), "cut {cut} ({label})");
                    }
                    (a, b) => panic!("cut {cut} ({label}): reference {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn garbage_tail_diagnostics_match_per_record_reader() {
        let mut tails: Vec<Vec<u8>> = Vec::new();
        // Unknown tag.
        tails.push(vec![0x7f]);
        // Learned with count < 2.
        let mut t = vec![TAG_LEARNED];
        varint::write_u64(&mut t, 9).unwrap();
        varint::write_u64(&mut t, 1).unwrap();
        tails.push(t);
        // Learned with implausible count.
        let mut t = vec![TAG_LEARNED];
        varint::write_u64(&mut t, 9).unwrap();
        varint::write_u64(&mut t, (1 << 32) + 1).unwrap();
        tails.push(t);
        // Level-zero literal code out of range.
        let mut t = vec![TAG_LEVEL_ZERO];
        varint::write_u64(&mut t, u64::from(u32::MAX) + 1).unwrap();
        varint::write_u64(&mut t, 0).unwrap();
        tails.push(t);
        // Varint that overflows u64 (11 continuation bytes).
        let mut t = vec![TAG_FINAL];
        t.extend_from_slice(&[0xff; 10]);
        t.push(0x01);
        tails.push(t);
        // Varint whose 10th byte has excess high bits.
        let mut t = vec![TAG_FINAL];
        t.extend_from_slice(&[0x80; 9]);
        t.push(0x02);
        tails.push(t);

        for tail in tails {
            let mut bytes = encode(&seeded_events(3, 5));
            bytes.extend_from_slice(&tail);
            let reference: io::Result<Vec<TraceEvent>> =
                BinaryReader::new(io::Cursor::new(bytes.clone()))
                    .unwrap()
                    .collect();
            let block = decode_all(&bytes, 16);
            let slice = decode_all_slice(&bytes);
            let reference_err = reference.unwrap_err();
            for (label, got) in [("block", block), ("slice", slice)] {
                let err = got.unwrap_err();
                assert_eq!(reference_err.kind(), err.kind(), "tail {tail:?} ({label})");
                assert_eq!(
                    reference_err.to_string(),
                    err.to_string(),
                    "tail {tail:?} ({label})"
                );
            }
        }
    }

    #[test]
    fn bad_magic_and_short_magic_are_rejected() {
        let err = BlockDecoder::new(io::Cursor::new(b"NOPE".to_vec())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = BlockDecoder::new(io::Cursor::new(b"RT".to_vec())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        let err = SliceDecoder::new(b"NOPE").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = SliceDecoder::new(b"RT").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn owned_iterator_matches_lending_api() {
        let events = seeded_events(11, 200);
        let bytes = encode(&events);
        let owned: Vec<TraceEvent> = BlockDecoder::new(io::Cursor::new(bytes.clone()))
            .unwrap()
            .into_events()
            .collect::<io::Result<Vec<_>>>()
            .unwrap();
        assert_eq!(owned, events);
        assert_eq!(owned, decode_all(&bytes, 32).unwrap());
    }

    #[test]
    fn counters_track_progress() {
        let events = seeded_events(5, 100);
        let bytes = encode(&events);
        let mut decoder = BlockDecoder::new(io::Cursor::new(bytes.clone())).unwrap();
        while decoder.next_event().unwrap().is_some() {}
        assert_eq!(decoder.events_decoded(), events.len() as u64);
        assert_eq!(decoder.bytes_read(), bytes.len() as u64);
        assert!(decoder.refills() >= 1);
    }
}
