//! Memory-mapped trace backing.
//!
//! Every strategy used to funnel the binary trace through a streaming
//! decoder (one thread, one read buffer), and the disk-backed
//! depth-first checker paid a positioned read per cursor fetch. A
//! [`TraceMap`] instead exposes the whole trace file as one `&[u8]`:
//! on unix via `mmap(2)` (with an `MADV_WILLNEED` hint), elsewhere —
//! or under the `RESCHECK_NO_MMAP` escape hatch — via a
//! read-whole-file buffer. Both backings present the identical
//! slice, so everything layered on top (slice decoding, offset
//! iteration, sharded parallel scans) behaves bit-identically across
//! backings; only the page-cache behaviour differs.
//!
//! # Safety invariants of the mapped backing
//!
//! The kernel keeps the mapping coherent with the file, which cuts both
//! ways:
//!
//! - **The file must not be truncated while mapped.** Reading a mapped
//!   page past a shrunken file raises `SIGBUS`. rescheck only maps
//!   traces it was handed as finished evidence; nothing in the workspace
//!   writes to a trace after opening it for checking.
//! - **Length is captured once, at map time.** [`TraceMap::open`] reads
//!   the file length via `fstat` and maps exactly that many bytes; a
//!   file that grows afterwards is ignored beyond the mapped prefix, so
//!   a check sees a consistent snapshot.
//! - **The magic is re-verified on the mapped bytes** (not on a prior
//!   buffered read), so decode always starts from a header the checker
//!   itself observed through the mapping.
//!
//! The map itself is shared read-only (`PROT_READ`, `MAP_PRIVATE`), so
//! handing `&[u8]` slices to decoder threads is safe: no writer exists.
//!
//! # Accounting
//!
//! A map is *resident state* the checker chose to hold, so strategies
//! that keep one alive charge [`TraceMap::accounted_bytes`] — the full
//! file length, identical for both backings — to their `MemoryMeter`.
//! That keeps the paper's Table-2-style peak-memory comparison honest:
//! the buffered fallback really does hold the bytes, and the mapped
//! backing may fault them all in.

#![allow(unsafe_code)]

use crate::binary::{TAG_FINAL, TAG_LEARNED, TAG_LEVEL_ZERO};
use crate::BINARY_MAGIC;
use std::fs::File;
use std::io::{self, Read};
use std::path::Path;
use std::sync::OnceLock;

/// Environment variable that disables the `mmap` backing (the buffered
/// read-whole-file backing is used instead). Any non-empty value other
/// than `0` disables mapping. Decode results are identical either way.
pub const NO_MMAP_ENV: &str = "RESCHECK_NO_MMAP";

/// Events per [`BlockIndex`] mark: the granularity at which a mapped
/// trace can be sharded across decode workers.
pub(crate) const MARK_STRIDE: u64 = 1024;

#[cfg(unix)]
mod sys {
    //! Hand-rolled `libc`-free bindings for the three calls the mapped
    //! backing needs. The constant values below are shared by Linux and
    //! the BSDs (including macOS) for these specific flags.
    pub use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    pub const MADV_WILLNEED: i32 = 3;

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
        pub fn madvise(addr: *mut c_void, len: usize, advice: i32) -> i32;
    }
}

enum Backing {
    /// A `PROT_READ`/`MAP_PRIVATE` mapping of the whole file.
    #[cfg(unix)]
    Mapped { ptr: *mut sys::c_void, len: usize },
    /// The whole file read into an owned buffer.
    Buffered(Vec<u8>),
}

// SAFETY: the mapped backing is read-only shared memory with no writer
// (PROT_READ | MAP_PRIVATE); the pointer is owned exclusively by this
// struct and only ever reborrowed as `&[u8]`.
unsafe impl Send for Backing {}
unsafe impl Sync for Backing {}

/// A binary resolve trace exposed as one contiguous byte slice.
///
/// See the [module docs](self) for the backing strategy and its safety
/// invariants. The header magic is validated against the mapped bytes
/// before `open` returns, with the same diagnostics as the streaming
/// [`crate::BlockDecoder`] (`UnexpectedEof` for files shorter than the
/// magic — including zero-length files — and `InvalidData` for a magic
/// mismatch).
///
/// # Examples
///
/// ```no_run
/// use rescheck_trace::{SliceDecoder, TraceMap};
///
/// let map = TraceMap::open("proof.rtb".as_ref())?;
/// let mut decoder = SliceDecoder::new(map.bytes())?;
/// while let Some(event) = decoder.next_event()? {
///     let _ = event;
/// }
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct TraceMap {
    backing: Backing,
    index: OnceLock<Option<BlockIndex>>,
}

impl std::fmt::Debug for TraceMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceMap")
            .field("len", &self.bytes().len())
            .field("mmap", &self.is_mmap())
            .finish()
    }
}

impl TraceMap {
    /// Maps `path`, falling back to the buffered backing off unix, when
    /// [`NO_MMAP_ENV`] is set, or when the `mmap` syscall fails.
    ///
    /// # Errors
    ///
    /// Any I/O error opening or reading the file, plus the magic/length
    /// validation errors described on [`TraceMap`].
    pub fn open(path: &Path) -> io::Result<TraceMap> {
        Self::open_with(path, !no_mmap_requested())
    }

    /// Opens `path` with the buffered backing unconditionally.
    ///
    /// # Errors
    ///
    /// As for [`TraceMap::open`].
    pub fn open_buffered(path: &Path) -> io::Result<TraceMap> {
        Self::open_with(path, false)
    }

    fn open_with(path: &Path, want_mmap: bool) -> io::Result<TraceMap> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        if len < BINARY_MAGIC.len() as u64 {
            // Zero-length and shorter-than-magic files fail exactly like
            // the streaming decoder, before any mapping is attempted.
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "failed to fill whole buffer",
            ));
        }
        let Ok(len) = usize::try_from(len) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trace file too large to map on this platform",
            ));
        };
        let backing = Self::establish_backing(&mut file, len, want_mmap)?;
        let map = TraceMap {
            backing,
            index: OnceLock::new(),
        };
        if map.bytes()[..BINARY_MAGIC.len()] != BINARY_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a rescheck binary trace (bad magic)",
            ));
        }
        Ok(map)
    }

    #[cfg(unix)]
    fn establish_backing(file: &mut File, len: usize, want_mmap: bool) -> io::Result<Backing> {
        use std::os::unix::io::AsRawFd;
        if want_mmap {
            // SAFETY: fd is open for reading, len is the fstat'd file
            // length (> 0), and a PROT_READ | MAP_PRIVATE mapping has no
            // aliasing writer. The pointer is owned by the returned
            // Backing and unmapped exactly once, in Drop.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr != sys::map_failed() {
                // Advice is best-effort; failure changes nothing. Only
                // WILLNEED: checkers read the map at least twice (count
                // pass, then rebuild pass) and the disk-depth-first
                // cursor jumps around in it, so SEQUENTIAL's drop-behind
                // would re-fault pages the next pass needs.
                // SAFETY: ptr/len delimit the live mapping created above.
                unsafe {
                    sys::madvise(ptr, len, sys::MADV_WILLNEED);
                }
                return Ok(Backing::Mapped { ptr, len });
            }
            // Fall through: an mmap failure (e.g. a pseudo-file that
            // does not support mapping) degrades to the buffered path.
        }
        Self::read_backing(file, len)
    }

    #[cfg(not(unix))]
    fn establish_backing(file: &mut File, len: usize, _want_mmap: bool) -> io::Result<Backing> {
        Self::read_backing(file, len)
    }

    fn read_backing(file: &mut File, len: usize) -> io::Result<Backing> {
        let mut buf = Vec::with_capacity(len);
        file.read_to_end(&mut buf)?;
        // A file that shrank between fstat and read would desynchronize
        // the accounted length from the decoded bytes; treat it as the
        // truncation it is.
        if buf.len() < BINARY_MAGIC.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "failed to fill whole buffer",
            ));
        }
        Ok(Backing::Buffered(buf))
    }

    /// The mapped (or buffered) trace bytes, magic included.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { ptr, len } => {
                // SAFETY: the mapping is live for the lifetime of self
                // (unmapped only in Drop), read-only, and `len` bytes
                // long.
                unsafe { std::slice::from_raw_parts(*ptr as *const u8, *len) }
            }
            Backing::Buffered(buf) => buf,
        }
    }

    /// Bytes to charge against a `MemoryMeter` while the map is held:
    /// the full file length, identical for both backings.
    pub fn accounted_bytes(&self) -> u64 {
        self.bytes().len() as u64
    }

    /// Whether the map is backed by `mmap` (false: buffered fallback).
    pub fn is_mmap(&self) -> bool {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { .. } => true,
            Backing::Buffered(_) => false,
        }
    }

    /// The structural block index of this trace, built on first use.
    ///
    /// `None` means the skip-scan found a structural problem (truncated
    /// record, bad tag, varint overflow, implausible counts): callers
    /// must then fall back to the streaming sequential decode path,
    /// which reproduces the exact sequential error semantics. A `Some`
    /// index certifies the byte stream is structurally clean end to
    /// end, which is what makes sharded parallel decoding safe.
    pub fn block_index(&self) -> Option<&BlockIndex> {
        self.index
            .get_or_init(|| BlockIndex::scan(self.bytes()))
            .as_ref()
    }
}

impl Drop for TraceMap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = self.backing {
            // SAFETY: ptr/len delimit the mapping created in open_with;
            // no slice borrowed from it can outlive self.
            unsafe {
                sys::munmap(ptr, len);
            }
        }
    }
}

/// Returns whether [`NO_MMAP_ENV`] currently disables mapping.
pub fn no_mmap_requested() -> bool {
    std::env::var_os(NO_MMAP_ENV).is_some_and(|v| !v.is_empty() && v != *"0")
}

/// A mark every [`MARK_STRIDE`] events: a byte offset at which a record
/// provably starts, with the index of that record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct BlockMark {
    offset: usize,
    event_idx: u64,
}

/// One worker's contiguous slice of a mapped trace: a byte range that
/// starts and ends on record boundaries, plus the global index of its
/// first event (for the deterministic trace-order merge).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardRange {
    /// Byte offset of the range's first record.
    pub start: usize,
    /// Byte offset one past the range's last record.
    pub end: usize,
    /// Global (trace-order) index of the range's first event.
    pub first_event: u64,
}

/// A structural index over a mapped binary trace.
///
/// Built by one sequential *skip-scan* that validates every record's
/// framing — tag, varint well-formedness, source-count plausibility,
/// literal-code range, no mid-record truncation — without materializing
/// any event, and drops a [`BlockMark`] every [`MARK_STRIDE`] events.
/// The marks let [`BlockIndex::shard_ranges`] cut the byte stream into
/// disjoint ranges that each start on a record boundary, so any number
/// of workers can decode in parallel and a trace-order merge of their
/// outputs is bit-identical to a sequential decode.
#[derive(Clone, Debug)]
pub struct BlockIndex {
    marks: Vec<BlockMark>,
    events: u64,
    learned: u64,
    total_len: usize,
}

impl BlockIndex {
    /// Skip-scans `data` (which must start with the magic); `None` on
    /// any structural fault.
    fn scan(data: &[u8]) -> Option<BlockIndex> {
        if data.len() < BINARY_MAGIC.len() || data[..BINARY_MAGIC.len()] != BINARY_MAGIC {
            return None;
        }
        let mut pos = BINARY_MAGIC.len();
        let mut events: u64 = 0;
        let mut learned: u64 = 0;
        let mut marks = Vec::new();
        while pos < data.len() {
            if events.is_multiple_of(MARK_STRIDE) {
                marks.push(BlockMark {
                    offset: pos,
                    event_idx: events,
                });
            }
            let tag = data[pos];
            pos += 1;
            match tag {
                TAG_LEARNED => {
                    let _id = scan_varint(data, &mut pos)?;
                    let count = scan_varint(data, &mut pos)?;
                    if !(2..=1 << 32).contains(&count) {
                        return None;
                    }
                    for _ in 0..count {
                        scan_varint(data, &mut pos)?;
                    }
                    learned += 1;
                }
                TAG_LEVEL_ZERO => {
                    let code = scan_varint(data, &mut pos)?;
                    if code > u32::MAX as u64 {
                        return None;
                    }
                    scan_varint(data, &mut pos)?;
                }
                TAG_FINAL => {
                    scan_varint(data, &mut pos)?;
                }
                _ => return None,
            }
            events += 1;
        }
        Some(BlockIndex {
            marks,
            events,
            learned,
            total_len: data.len(),
        })
    }

    /// Total number of events in the trace.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Number of learned-clause events in the trace (the exact value the
    /// small-trace parallel fallback wants, replacing the encoded-size
    /// estimate).
    pub fn learned(&self) -> u64 {
        self.learned
    }

    /// Cuts the trace into at most `shards` disjoint, contiguous,
    /// record-aligned byte ranges of near-equal event counts, in trace
    /// order. Fewer ranges come back when the trace has too few marks
    /// to split further; at least one range is returned for a non-empty
    /// trace, and an empty ranges list for an event-free trace.
    pub fn shard_ranges(&self, shards: usize) -> Vec<ShardRange> {
        if self.events == 0 {
            return Vec::new();
        }
        let shards = shards.max(1) as u64;
        let mut ranges = Vec::new();
        let mark_at = |event_target: u64| -> BlockMark {
            // Largest mark at or below the target; marks are sorted by
            // event index so a binary search would also do, but the
            // mark list is tiny relative to the trace.
            let i = self
                .marks
                .partition_point(|m| m.event_idx <= event_target)
                .saturating_sub(1);
            self.marks[i]
        };
        let mut prev = mark_at(0);
        for s in 1..=shards {
            let boundary = if s == shards {
                BlockMark {
                    offset: self.total_len,
                    event_idx: self.events,
                }
            } else {
                mark_at(self.events * s / shards)
            };
            if boundary.offset > prev.offset {
                ranges.push(ShardRange {
                    start: prev.offset,
                    end: boundary.offset,
                    first_event: prev.event_idx,
                });
                prev = boundary;
            }
        }
        ranges
    }
}

/// Scans one LEB128 varint at `*pos`, advancing it; `None` on overflow
/// or truncation (same conditions `crate::varint::read_u64` rejects).
fn scan_varint(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value: u64 = 0;
    let mut shift: u32 = 0;
    loop {
        let byte = *data.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None;
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinaryWriter, SliceDecoder, TraceSink};
    use rescheck_cnf::SplitMix64;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rescheck-map-{}-{name}", std::process::id()));
        p
    }

    fn write_temp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = temp_path(name);
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    fn seeded_trace(seed: u64, count: usize) -> Vec<u8> {
        let mut rng = SplitMix64::new(seed);
        let mut buf = Vec::new();
        let mut w = BinaryWriter::new(&mut buf).unwrap();
        for i in 0..count {
            match rng.next_u64() % 4 {
                0 => {
                    let var = (rng.next_u64() % 500 + 1) as i64;
                    w.level_zero(
                        rescheck_cnf::Lit::from_dimacs(var),
                        rng.next_u64() % (1 << 40),
                    )
                    .unwrap();
                }
                1 => w.final_conflict(rng.next_u64() % (1 << 50)).unwrap(),
                _ => {
                    let len = 2 + (rng.next_u64() % 20) as usize;
                    let sources: Vec<u64> = (0..len).map(|_| rng.next_u64() % (1 << 45)).collect();
                    w.learned(1_000 + i as u64, &sources).unwrap();
                }
            }
        }
        buf
    }

    #[test]
    fn mapped_and_buffered_backings_expose_identical_bytes() {
        let bytes = seeded_trace(1, 300);
        let path = write_temp("parity", &bytes);
        let mapped = TraceMap::open(&path).unwrap();
        let buffered = TraceMap::open_buffered(&path).unwrap();
        assert_eq!(mapped.bytes(), bytes.as_slice());
        assert_eq!(buffered.bytes(), bytes.as_slice());
        assert!(!buffered.is_mmap());
        assert_eq!(mapped.accounted_bytes(), bytes.len() as u64);
        assert_eq!(buffered.accounted_bytes(), bytes.len() as u64);
        #[cfg(unix)]
        assert!(mapped.is_mmap() || no_mmap_requested());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_length_and_truncated_headers_are_rejected_without_panic() {
        for (name, contents) in [("empty", &b""[..]), ("shorty", &b"RT"[..])] {
            let path = write_temp(name, contents);
            for map in [TraceMap::open(&path), TraceMap::open_buffered(&path)] {
                let err = map.unwrap_err();
                assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "{name}");
                assert_eq!(err.to_string(), "failed to fill whole buffer", "{name}");
            }
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn bad_magic_is_rejected_on_the_mapped_bytes() {
        let path = write_temp("magic", b"NOPE-this-is-not-a-trace");
        for map in [TraceMap::open(&path), TraceMap::open_buffered(&path)] {
            let err = map.unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
            assert_eq!(err.to_string(), "not a rescheck binary trace (bad magic)");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn block_index_counts_events_and_learned() {
        let bytes = seeded_trace(2, 2_500);
        let path = write_temp("index", &bytes);
        let map = TraceMap::open(&path).unwrap();
        let index = map.block_index().expect("clean trace must index");
        assert_eq!(index.events(), 2_500);
        let mut decoder = SliceDecoder::new(map.bytes()).unwrap();
        let mut learned = 0;
        while let Some(event) = decoder.next_event().unwrap() {
            if matches!(event, crate::EventRef::Learned { .. }) {
                learned += 1;
            }
        }
        assert_eq!(index.learned(), learned);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_traces_yield_no_index() {
        let mut bytes = seeded_trace(3, 100);
        bytes.push(0x7f); // unknown tag tail
        let path = write_temp("corrupt", &bytes);
        let map = TraceMap::open(&path).unwrap();
        assert!(map.block_index().is_none());
        std::fs::remove_file(&path).ok();

        let mut truncated = seeded_trace(3, 100);
        truncated.truncate(truncated.len() - 1);
        let path = write_temp("truncated", &truncated);
        let map = TraceMap::open(&path).unwrap();
        assert!(map.block_index().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shard_ranges_cover_the_trace_without_overlap() {
        let bytes = seeded_trace(4, 5_000);
        let path = write_temp("shards", &bytes);
        let map = TraceMap::open(&path).unwrap();
        let index = map.block_index().unwrap();
        for shards in [1, 2, 3, 4, 8, 100] {
            let ranges = index.shard_ranges(shards);
            assert!(!ranges.is_empty());
            assert!(ranges.len() <= shards.max(1));
            assert_eq!(ranges[0].start, BINARY_MAGIC.len());
            assert_eq!(ranges[0].first_event, 0);
            assert_eq!(ranges.last().unwrap().end, bytes.len());
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "{shards} shards");
                assert!(pair[0].first_event < pair[1].first_event);
            }
            // Decoding every range and concatenating reproduces the
            // sequential decode (the merge rule the checkers rely on).
            let sequential: Vec<_> = {
                let mut d = SliceDecoder::new(map.bytes()).unwrap();
                let mut all = Vec::new();
                while let Some(e) = d.next_event().unwrap() {
                    all.push(e.to_owned());
                }
                all
            };
            let mut sharded = Vec::new();
            for range in &ranges {
                let mut d = SliceDecoder::resume_at(map.bytes(), range.start);
                assert_eq!(sharded.len() as u64, range.first_event);
                while d.offset() < range.end {
                    let e = d.next_event().unwrap().expect("range ends on boundary");
                    sharded.push(e.to_owned());
                }
                assert_eq!(d.offset(), range.end);
            }
            assert_eq!(sharded, sequential);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shard_ranges_of_tiny_traces_collapse() {
        let bytes = seeded_trace(5, 3);
        let path = write_temp("tiny", &bytes);
        let map = TraceMap::open(&path).unwrap();
        let index = map.block_index().unwrap();
        let ranges = index.shard_ranges(8);
        // Only one mark exists below MARK_STRIDE events.
        assert_eq!(ranges.len(), 1);
        assert_eq!(ranges[0].start, BINARY_MAGIC.len());
        assert_eq!(ranges[0].end, bytes.len());
        std::fs::remove_file(&path).ok();
    }
}
