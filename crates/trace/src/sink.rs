//! Sinks that receive trace events from a solver.

use crate::TraceEvent;
use rescheck_cnf::Lit;
use std::io;

/// A destination for trace events emitted during solving.
///
/// The solver calls these methods as the corresponding things happen
/// (paper §3.1, modifications 1–3). Implementations may write to memory,
/// to a file in ASCII or binary form, or discard events entirely
/// ([`NullSink`], used to measure the solver's trace-off baseline for
/// Table 1).
///
/// # Examples
///
/// ```
/// use rescheck_trace::{MemorySink, TraceSink};
///
/// let mut sink = MemorySink::new();
/// sink.learned(10, &[0, 4, 7])?;
/// assert_eq!(sink.events().len(), 1);
/// # Ok::<(), std::io::Error>(())
/// ```
pub trait TraceSink {
    /// Records that a learned clause `id` was derived by resolving the
    /// `sources` in order (first the conflicting clause, then antecedents).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer, if any.
    fn learned(&mut self, id: u64, sources: &[u64]) -> io::Result<()>;

    /// Records that `lit` became true at decision level 0 with the given
    /// antecedent clause. Called in chronological (trail) order.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer, if any.
    fn level_zero(&mut self, lit: Lit, antecedent: u64) -> io::Result<()>;

    /// Records the clause that was conflicting at decision level 0 when
    /// the solver concluded UNSAT.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer, if any.
    fn final_conflict(&mut self, id: u64) -> io::Result<()>;

    /// Forwards a whole event. Provided for convenience.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer, if any.
    fn event(&mut self, event: &TraceEvent) -> io::Result<()> {
        match event {
            TraceEvent::Learned { id, sources } => self.learned(*id, sources),
            TraceEvent::LevelZero { lit, antecedent } => self.level_zero(*lit, *antecedent),
            TraceEvent::FinalConflict { id } => self.final_conflict(*id),
        }
    }

    /// Flushes buffered output, if any.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer, if any.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    fn learned(&mut self, id: u64, sources: &[u64]) -> io::Result<()> {
        (**self).learned(id, sources)
    }

    fn level_zero(&mut self, lit: Lit, antecedent: u64) -> io::Result<()> {
        (**self).level_zero(lit, antecedent)
    }

    fn final_conflict(&mut self, id: u64) -> io::Result<()> {
        (**self).final_conflict(id)
    }

    fn flush(&mut self) -> io::Result<()> {
        (**self).flush()
    }
}

/// A sink that discards every event.
///
/// Running the solver with a `NullSink` is the "trace generation turned
/// off" configuration of Table 1.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullSink;

impl NullSink {
    /// Creates a new discarding sink.
    pub fn new() -> Self {
        NullSink
    }
}

impl TraceSink for NullSink {
    fn learned(&mut self, _id: u64, _sources: &[u64]) -> io::Result<()> {
        Ok(())
    }

    fn level_zero(&mut self, _lit: Lit, _antecedent: u64) -> io::Result<()> {
        Ok(())
    }

    fn final_conflict(&mut self, _id: u64) -> io::Result<()> {
        Ok(())
    }
}

/// A sink that stores events in memory.
///
/// Doubles as a [`TraceSource`](crate::TraceSource) for in-process
/// checking without touching the filesystem.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemorySink {
    events: Vec<TraceEvent>,
}

impl MemorySink {
    /// Creates an empty in-memory trace.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consumes the sink and returns the events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl From<Vec<TraceEvent>> for MemorySink {
    fn from(events: Vec<TraceEvent>) -> Self {
        MemorySink { events }
    }
}

impl TraceSink for MemorySink {
    fn learned(&mut self, id: u64, sources: &[u64]) -> io::Result<()> {
        self.events.push(TraceEvent::Learned {
            id,
            sources: sources.to_vec(),
        });
        Ok(())
    }

    fn level_zero(&mut self, lit: Lit, antecedent: u64) -> io::Result<()> {
        self.events.push(TraceEvent::LevelZero { lit, antecedent });
        Ok(())
    }

    fn final_conflict(&mut self, id: u64) -> io::Result<()> {
        self.events.push(TraceEvent::FinalConflict { id });
        Ok(())
    }
}

/// A sink adapter that counts events and bytes while forwarding to an
/// inner sink.
///
/// Useful for reporting trace sizes (Table 2's "Trace Size" column) and
/// event statistics without a second pass.
#[derive(Debug)]
pub struct CountingSink<S> {
    inner: S,
    learned: u64,
    level_zero: u64,
    final_conflicts: u64,
}

impl<S: TraceSink> CountingSink<S> {
    /// Wraps `inner`, counting the events that pass through.
    pub fn new(inner: S) -> Self {
        CountingSink {
            inner,
            learned: 0,
            level_zero: 0,
            final_conflicts: 0,
        }
    }

    /// Number of learned-clause events forwarded.
    pub fn learned_count(&self) -> u64 {
        self.learned
    }

    /// Number of level-zero assignment events forwarded.
    pub fn level_zero_count(&self) -> u64 {
        self.level_zero
    }

    /// Number of final-conflict events forwarded.
    pub fn final_conflict_count(&self) -> u64 {
        self.final_conflicts
    }

    /// Returns the wrapped sink.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Shared access to the wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: TraceSink> TraceSink for CountingSink<S> {
    fn learned(&mut self, id: u64, sources: &[u64]) -> io::Result<()> {
        self.learned += 1;
        self.inner.learned(id, sources)
    }

    fn level_zero(&mut self, lit: Lit, antecedent: u64) -> io::Result<()> {
        self.level_zero += 1;
        self.inner.level_zero(lit, antecedent)
    }

    fn final_conflict(&mut self, id: u64) -> io::Result<()> {
        self.final_conflicts += 1;
        self.inner.final_conflict(id)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A sink that duplicates every event into two sinks.
///
/// Useful for writing a trace file while also keeping the events in
/// memory for immediate checking.
///
/// # Examples
///
/// ```
/// use rescheck_trace::{AsciiWriter, MemorySink, TeeSink, TraceSink};
///
/// let mut buf = Vec::new();
/// let mut tee = TeeSink::new(AsciiWriter::new(&mut buf), MemorySink::new());
/// tee.final_conflict(3)?;
/// tee.flush()?;
/// let (_, memory) = tee.into_inner();
/// assert_eq!(memory.len(), 1);
/// assert!(!buf.is_empty());
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct TeeSink<A, B> {
    first: A,
    second: B,
}

impl<A: TraceSink, B: TraceSink> TeeSink<A, B> {
    /// Creates a tee over two sinks.
    pub fn new(first: A, second: B) -> Self {
        TeeSink { first, second }
    }

    /// Returns both sinks.
    pub fn into_inner(self) -> (A, B) {
        (self.first, self.second)
    }
}

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    fn learned(&mut self, id: u64, sources: &[u64]) -> io::Result<()> {
        self.first.learned(id, sources)?;
        self.second.learned(id, sources)
    }

    fn level_zero(&mut self, lit: Lit, antecedent: u64) -> io::Result<()> {
        self.first.level_zero(lit, antecedent)?;
        self.second.level_zero(lit, antecedent)
    }

    fn final_conflict(&mut self, id: u64) -> io::Result<()> {
        self.first.final_conflict(id)?;
        self.second.final_conflict(id)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.first.flush()?;
        self.second.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tee_duplicates_events() {
        let mut tee = TeeSink::new(MemorySink::new(), MemorySink::new());
        tee.learned(5, &[0, 1]).unwrap();
        tee.level_zero(Lit::from_dimacs(-2), 5).unwrap();
        tee.final_conflict(4).unwrap();
        tee.flush().unwrap();
        let (a, b) = tee.into_inner();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn memory_sink_records_in_order() {
        let mut sink = MemorySink::new();
        sink.learned(5, &[0, 1]).unwrap();
        sink.level_zero(Lit::from_dimacs(3), 5).unwrap();
        sink.final_conflict(2).unwrap();
        assert_eq!(sink.len(), 3);
        assert!(!sink.is_empty());
        assert_eq!(
            sink.events()[0],
            TraceEvent::Learned {
                id: 5,
                sources: vec![0, 1]
            }
        );
        assert_eq!(sink.into_events().len(), 3);
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut sink = NullSink::new();
        sink.learned(1, &[0]).unwrap();
        sink.level_zero(Lit::from_dimacs(-1), 0).unwrap();
        sink.final_conflict(0).unwrap();
        sink.flush().unwrap();
    }

    #[test]
    fn counting_sink_counts_and_forwards() {
        let mut sink = CountingSink::new(MemorySink::new());
        sink.learned(1, &[0]).unwrap();
        sink.learned(2, &[0, 1]).unwrap();
        sink.level_zero(Lit::from_dimacs(1), 2).unwrap();
        sink.final_conflict(2).unwrap();
        assert_eq!(sink.learned_count(), 2);
        assert_eq!(sink.level_zero_count(), 1);
        assert_eq!(sink.final_conflict_count(), 1);
        assert_eq!(sink.inner().len(), 4);
        assert_eq!(sink.into_inner().len(), 4);
    }

    #[test]
    fn event_dispatch_matches_direct_calls() {
        let mut a = MemorySink::new();
        let mut b = MemorySink::new();
        let events = vec![
            TraceEvent::Learned {
                id: 9,
                sources: vec![1, 2, 3],
            },
            TraceEvent::LevelZero {
                lit: Lit::from_dimacs(-7),
                antecedent: 9,
            },
            TraceEvent::FinalConflict { id: 9 },
        ];
        for e in &events {
            a.event(e).unwrap();
        }
        b.learned(9, &[1, 2, 3]).unwrap();
        b.level_zero(Lit::from_dimacs(-7), 9).unwrap();
        b.final_conflict(9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mut_ref_is_a_sink() {
        fn use_sink(sink: &mut dyn TraceSink) {
            sink.final_conflict(0).unwrap();
        }
        let mut sink = MemorySink::new();
        use_sink(&mut sink);
        assert_eq!(sink.len(), 1);
    }
}
