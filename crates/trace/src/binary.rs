//! Compact binary trace encoding.
//!
//! The paper notes (§4) that the ASCII trace format trades space for
//! readability and that a binary encoding would compact traces 2–3x and
//! speed up checking, since "a significant amount of run time for the
//! checker is spent on parsing and translating the trace files". This
//! module is that encoding: a 4-byte magic followed by tagged records
//! whose integers are LEB128 varints (see [`crate::varint`]).
//!
//! ```text
//! magic  "RTB1"
//! 0x01   learned:   id, source-count, sources...
//! 0x02   level-0:   literal code, antecedent id
//! 0x03   final:     id
//! ```

use crate::{varint, TraceEvent, TraceSink};
use rescheck_cnf::Lit;
use std::io::{self, BufRead, Write};

/// The 4-byte magic that starts every binary trace.
pub const BINARY_MAGIC: [u8; 4] = *b"RTB1";

pub(crate) const TAG_LEARNED: u8 = 0x01;
pub(crate) const TAG_LEVEL_ZERO: u8 = 0x02;
pub(crate) const TAG_FINAL: u8 = 0x03;

/// Writes trace events in the binary format.
///
/// # Examples
///
/// ```
/// use rescheck_trace::{BinaryReader, BinaryWriter, TraceEvent, TraceSink};
///
/// let mut buf = Vec::new();
/// let mut w = BinaryWriter::new(&mut buf)?;
/// w.learned(2, &[0, 1])?;
/// w.final_conflict(2)?;
/// w.flush()?;
///
/// let events: Result<Vec<_>, _> =
///     BinaryReader::new(std::io::Cursor::new(buf))?.collect();
/// assert_eq!(events?.len(), 2);
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct BinaryWriter<W> {
    writer: W,
    bytes: u64,
    events: u64,
}

impl<W: Write> BinaryWriter<W> {
    /// Creates a writer and emits the magic header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the header.
    pub fn new(mut writer: W) -> io::Result<Self> {
        writer.write_all(&BINARY_MAGIC)?;
        Ok(BinaryWriter {
            writer,
            bytes: BINARY_MAGIC.len() as u64,
            events: 0,
        })
    }

    /// Number of bytes emitted so far (including the magic).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Number of events encoded so far.
    pub fn events_written(&self) -> u64 {
        self.events
    }

    /// Returns the underlying writer.
    pub fn into_inner(self) -> W {
        self.writer
    }

    fn put_u64(&mut self, v: u64) -> io::Result<()> {
        varint::write_u64(&mut self.writer, v)?;
        self.bytes += varint::encoded_len(v) as u64;
        Ok(())
    }

    fn put_tag(&mut self, tag: u8) -> io::Result<()> {
        self.writer.write_all(&[tag])?;
        self.bytes += 1;
        self.events += 1;
        Ok(())
    }
}

impl<W: Write> TraceSink for BinaryWriter<W> {
    fn learned(&mut self, id: u64, sources: &[u64]) -> io::Result<()> {
        self.put_tag(TAG_LEARNED)?;
        self.put_u64(id)?;
        self.put_u64(sources.len() as u64)?;
        for &s in sources {
            self.put_u64(s)?;
        }
        Ok(())
    }

    fn level_zero(&mut self, lit: Lit, antecedent: u64) -> io::Result<()> {
        self.put_tag(TAG_LEVEL_ZERO)?;
        self.put_u64(lit.code() as u64)?;
        self.put_u64(antecedent)
    }

    fn final_conflict(&mut self, id: u64) -> io::Result<()> {
        self.put_tag(TAG_FINAL)?;
        self.put_u64(id)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// Streams trace events from binary input.
#[derive(Debug)]
pub struct BinaryReader<R> {
    reader: R,
}

impl<R: BufRead> BinaryReader<R> {
    /// Creates a reader, consuming and validating the magic header.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] if the magic does not match.
    pub fn new(mut reader: R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if magic != BINARY_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a rescheck binary trace (bad magic)",
            ));
        }
        Ok(BinaryReader { reader })
    }

    fn read_event(&mut self) -> io::Result<Option<TraceEvent>> {
        let mut tag = [0u8];
        match self.reader.read_exact(&mut tag) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        match tag[0] {
            TAG_LEARNED => {
                let id = varint::read_u64(&mut self.reader)?;
                let count = varint::read_u64(&mut self.reader)?;
                if count < 2 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "learned clause needs at least two resolve sources",
                    ));
                }
                if count > (1 << 32) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "implausible resolve-source count",
                    ));
                }
                let mut sources = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    sources.push(varint::read_u64(&mut self.reader)?);
                }
                Ok(Some(TraceEvent::Learned { id, sources }))
            }
            TAG_LEVEL_ZERO => {
                let code = varint::read_u64(&mut self.reader)?;
                if code > u32::MAX as u64 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "literal code out of range",
                    ));
                }
                let antecedent = varint::read_u64(&mut self.reader)?;
                Ok(Some(TraceEvent::LevelZero {
                    lit: Lit::from_code(code as usize),
                    antecedent,
                }))
            }
            TAG_FINAL => {
                let id = varint::read_u64(&mut self.reader)?;
                Ok(Some(TraceEvent::FinalConflict { id }))
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown binary trace tag 0x{other:02x}"),
            )),
        }
    }
}

impl<R: BufRead> Iterator for BinaryReader<R> {
    type Item = io::Result<TraceEvent>;

    fn next(&mut self) -> Option<Self::Item> {
        self.read_event().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AsciiWriter;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Learned {
                id: 1000,
                sources: vec![0, 3, 700, 0],
            },
            TraceEvent::LevelZero {
                lit: Lit::from_dimacs(-52),
                antecedent: 1000,
            },
            TraceEvent::LevelZero {
                lit: Lit::from_dimacs(9),
                antecedent: 0,
            },
            TraceEvent::FinalConflict { id: 42 },
        ]
    }

    #[test]
    fn roundtrip_all_event_kinds() {
        let events = sample_events();
        let mut buf = Vec::new();
        let mut w = BinaryWriter::new(&mut buf).unwrap();
        for e in &events {
            w.event(e).unwrap();
        }
        assert_eq!(w.bytes_written(), buf.len() as u64);
        let got: Vec<_> = BinaryReader::new(io::Cursor::new(buf))
            .unwrap()
            .collect::<io::Result<Vec<_>>>()
            .unwrap();
        assert_eq!(got, events);
    }

    #[test]
    fn binary_is_smaller_than_ascii() {
        // The compaction claim from the paper's §4 should hold on a
        // realistic-looking stream of events.
        let mut events = Vec::new();
        for i in 0..1000u64 {
            events.push(TraceEvent::Learned {
                id: 10_000 + i,
                sources: vec![i, i + 1, 10_000 + i / 2, i * 3 % 9999],
            });
        }
        let mut ascii = Vec::new();
        let mut aw = AsciiWriter::new(&mut ascii);
        for e in &events {
            aw.event(e).unwrap();
        }
        let mut bin = Vec::new();
        let mut bw = BinaryWriter::new(&mut bin).unwrap();
        for e in &events {
            bw.event(e).unwrap();
        }
        assert!(
            (bin.len() as f64) < ascii.len() as f64 / 2.0,
            "binary {} vs ascii {}",
            bin.len(),
            ascii.len()
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = BinaryReader::new(io::Cursor::new(b"NOPE".to_vec())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let mut buf = Vec::new();
        let mut w = BinaryWriter::new(&mut buf).unwrap();
        w.learned(7, &[1, 2, 3]).unwrap();
        buf.truncate(buf.len() - 1);
        let result: io::Result<Vec<_>> = BinaryReader::new(io::Cursor::new(buf)).unwrap().collect();
        assert!(result.is_err());
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut buf = BINARY_MAGIC.to_vec();
        buf.push(0x7f);
        let result: io::Result<Vec<_>> = BinaryReader::new(io::Cursor::new(buf)).unwrap().collect();
        assert!(result.is_err());
    }

    #[test]
    fn undersized_source_count_is_rejected() {
        let mut buf = BINARY_MAGIC.to_vec();
        buf.push(TAG_LEARNED);
        varint::write_u64(&mut buf, 9).unwrap(); // id
        varint::write_u64(&mut buf, 1).unwrap(); // count < 2
        varint::write_u64(&mut buf, 0).unwrap();
        let result: io::Result<Vec<_>> = BinaryReader::new(io::Cursor::new(buf)).unwrap().collect();
        assert!(result.is_err());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        let _w = BinaryWriter::new(&mut buf).unwrap();
        let got: Vec<_> = BinaryReader::new(io::Cursor::new(buf))
            .unwrap()
            .collect::<io::Result<Vec<_>>>()
            .unwrap();
        assert!(got.is_empty());
    }
}
