//! LEB128 variable-length integer encoding used by the binary trace format.
//!
//! Small IDs dominate real traces, so LEB128 gives most of the 2–3x
//! compaction over ASCII that the paper predicts for a binary encoding.
//!
//! # Examples
//!
//! ```
//! use rescheck_trace::varint;
//!
//! let mut buf = Vec::new();
//! varint::write_u64(&mut buf, 300)?;
//! assert_eq!(buf, [0xAC, 0x02]);
//! let mut slice = &buf[..];
//! assert_eq!(varint::read_u64(&mut slice)?, 300);
//! # Ok::<(), std::io::Error>(())
//! ```

use std::io::{self, Read, Write};

/// Writes `value` as unsigned LEB128.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_u64<W: Write>(mut writer: W, mut value: u64) -> io::Result<()> {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            writer.write_all(&[byte])?;
            return Ok(());
        }
        writer.write_all(&[byte | 0x80])?;
    }
}

/// Reads an unsigned LEB128 value.
///
/// # Errors
///
/// Returns [`io::ErrorKind::UnexpectedEof`] on a truncated value and
/// [`io::ErrorKind::InvalidData`] if the encoding exceeds 10 bytes
/// (overflowing `u64`).
pub fn read_u64<R: Read>(mut reader: R) -> io::Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8];
        reader.read_exact(&mut byte)?;
        let b = byte[0];
        if shift == 63 && b > 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "LEB128 value overflows u64",
            ));
        }
        value |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "LEB128 value overflows u64",
            ));
        }
    }
}

/// Number of bytes [`write_u64`] produces for `value`.
pub fn encoded_len(value: u64) -> usize {
    if value == 0 {
        1
    } else {
        (64 - value.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            255,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v).unwrap();
            assert_eq!(buf.len(), encoded_len(v), "length for {v}");
            let mut slice = &buf[..];
            assert_eq!(read_u64(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn truncated_input_is_unexpected_eof() {
        let err = read_u64(&[0x80u8][..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn overlong_encoding_is_invalid_data() {
        let buf = [0xffu8; 11];
        let err = read_u64(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn max_u64_uses_ten_bytes() {
        assert_eq!(encoded_len(u64::MAX), 10);
        assert_eq!(encoded_len(0), 1);
        assert_eq!(encoded_len(127), 1);
        assert_eq!(encoded_len(128), 2);
    }
}
