//! Random access into encoded traces.
//!
//! The paper's conclusion asks for a checker "that has the advantage of
//! both the depth-first and breadth-first approaches … potentially a
//! depth-first algorithm for the graph on disk". That algorithm needs to
//! jump to an individual trace record by position instead of streaming,
//! which is what [`RandomAccessTrace`] provides: every event has a stable
//! *offset* (a byte position for file traces, an index for in-memory
//! traces), learnable from [`RandomAccessTrace::offset_events`] and
//! dereferenceable through a [`TraceCursor`].
//!
//! There are two random-access paths for file traces. The original one
//! issues a positioned read (seek + `read_exact`) per fetch. When a
//! [`crate::TraceMap`] has been established on the [`FileTrace`], the
//! cursor instead indexes the mapped bytes directly — a fetch is
//! pointer arithmetic plus a record decode, no syscall. Offsets are
//! identical across both paths (the byte position of the record), so
//! the id → offset indexes the checkers build are valid against either.
//! The mapped path inherits the map's safety invariants (see
//! [`crate::map`](crate::TraceMap)): the file must not be truncated
//! while mapped, the length is captured at map time, and the magic is
//! re-verified on the mapped bytes before any decode.

use crate::{varint, FileTrace, MemorySink, TraceEvent, TraceFormat, TraceSource, BINARY_MAGIC};
use rescheck_cnf::{Lit, READ_BUFFER_BYTES};
use std::fs::File;
use std::io::{self, BufRead, BufReader, Read, Seek, SeekFrom};

/// Positioned reads of single events.
pub trait TraceCursor {
    /// Reads the event at `offset` (a value previously yielded by
    /// [`RandomAccessTrace::offset_events`]).
    ///
    /// # Errors
    ///
    /// Fails if the offset does not address a valid record.
    fn event_at(&mut self, offset: u64) -> io::Result<TraceEvent>;
}

/// Boxed iterator over `(offset, event)` pairs, as yielded by
/// [`RandomAccessTrace::offset_events`].
pub type OffsetEventsIter<'a> = Box<dyn Iterator<Item = io::Result<(u64, TraceEvent)>> + 'a>;

/// A trace whose events can be addressed individually.
///
/// # Examples
///
/// ```
/// use rescheck_trace::{MemorySink, RandomAccessTrace, TraceSink};
///
/// let mut sink = MemorySink::new();
/// sink.learned(5, &[0, 1])?;
/// sink.final_conflict(5)?;
///
/// let offsets: Vec<u64> = sink
///     .offset_events()?
///     .map(|r| r.map(|(o, _)| o))
///     .collect::<Result<_, _>>()?;
/// let mut cursor = sink.open_cursor()?;
/// assert_eq!(cursor.event_at(offsets[1])?.primary_id(), Some(5));
/// # Ok::<(), std::io::Error>(())
/// ```
pub trait RandomAccessTrace: TraceSource {
    /// Streams `(offset, event)` pairs, in emission order.
    ///
    /// # Errors
    ///
    /// Like [`TraceSource::events_iter`].
    fn offset_events(&self) -> io::Result<OffsetEventsIter<'_>>;

    /// Opens a cursor for positioned reads.
    ///
    /// # Errors
    ///
    /// Fails if the underlying storage cannot be opened.
    fn open_cursor(&self) -> io::Result<Box<dyn TraceCursor + '_>>;
}

// ---------------------------------------------------------------------
// In-memory traces: the offset is the event index.
// ---------------------------------------------------------------------

struct SliceCursor<'a>(&'a [TraceEvent]);

impl TraceCursor for SliceCursor<'_> {
    fn event_at(&mut self, offset: u64) -> io::Result<TraceEvent> {
        self.0
            .get(offset as usize)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "event index out of range"))
    }
}

fn slice_offsets(events: &[TraceEvent]) -> OffsetEventsIter<'_> {
    Box::new(
        events
            .iter()
            .enumerate()
            .map(|(i, e)| Ok((i as u64, e.clone()))),
    )
}

impl RandomAccessTrace for MemorySink {
    fn offset_events(&self) -> io::Result<OffsetEventsIter<'_>> {
        Ok(slice_offsets(self.events()))
    }

    fn open_cursor(&self) -> io::Result<Box<dyn TraceCursor + '_>> {
        Ok(Box::new(SliceCursor(self.events())))
    }
}

impl RandomAccessTrace for [TraceEvent] {
    fn offset_events(&self) -> io::Result<OffsetEventsIter<'_>> {
        Ok(slice_offsets(self))
    }

    fn open_cursor(&self) -> io::Result<Box<dyn TraceCursor + '_>> {
        Ok(Box::new(SliceCursor(self)))
    }
}

impl RandomAccessTrace for Vec<TraceEvent> {
    fn offset_events(&self) -> io::Result<OffsetEventsIter<'_>> {
        Ok(slice_offsets(self))
    }

    fn open_cursor(&self) -> io::Result<Box<dyn TraceCursor + '_>> {
        Ok(Box::new(SliceCursor(self)))
    }
}

impl<T: RandomAccessTrace + ?Sized> RandomAccessTrace for &T {
    fn offset_events(&self) -> io::Result<OffsetEventsIter<'_>> {
        (**self).offset_events()
    }

    fn open_cursor(&self) -> io::Result<Box<dyn TraceCursor + '_>> {
        (**self).open_cursor()
    }
}

// ---------------------------------------------------------------------
// File traces: the offset is a byte position.
// ---------------------------------------------------------------------

/// Reads one binary event from the current position of `reader`.
pub(crate) fn read_binary_event_here<R: BufRead>(reader: &mut R) -> io::Result<TraceEvent> {
    let mut tag = [0u8];
    reader.read_exact(&mut tag)?;
    parse_binary_body(reader, tag[0])
}

pub(crate) fn parse_binary_body<R: BufRead>(reader: &mut R, tag: u8) -> io::Result<TraceEvent> {
    match tag {
        0x01 => {
            let id = varint::read_u64(&mut *reader)?;
            let count = varint::read_u64(&mut *reader)?;
            if !(2..=(1 << 32)).contains(&count) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "bad resolve-source count",
                ));
            }
            let mut sources = Vec::with_capacity(count as usize);
            for _ in 0..count {
                sources.push(varint::read_u64(&mut *reader)?);
            }
            Ok(TraceEvent::Learned { id, sources })
        }
        0x02 => {
            let code = varint::read_u64(&mut *reader)?;
            if code > u32::MAX as u64 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "literal code out of range",
                ));
            }
            let antecedent = varint::read_u64(&mut *reader)?;
            Ok(TraceEvent::LevelZero {
                lit: Lit::from_code(code as usize),
                antecedent,
            })
        }
        0x03 => {
            let id = varint::read_u64(&mut *reader)?;
            Ok(TraceEvent::FinalConflict { id })
        }
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown binary trace tag 0x{other:02x}"),
        )),
    }
}

/// Number of bytes an event occupies in the binary encoding.
fn binary_event_len(event: &TraceEvent) -> u64 {
    1 + match event {
        TraceEvent::Learned { id, sources } => {
            varint::encoded_len(*id) as u64
                + varint::encoded_len(sources.len() as u64) as u64
                + sources
                    .iter()
                    .map(|&s| varint::encoded_len(s) as u64)
                    .sum::<u64>()
        }
        TraceEvent::LevelZero { lit, antecedent } => {
            varint::encoded_len(lit.code() as u64) as u64 + varint::encoded_len(*antecedent) as u64
        }
        TraceEvent::FinalConflict { id } => varint::encoded_len(*id) as u64,
    }
}

struct FileCursor {
    reader: BufReader<File>,
    format: TraceFormat,
}

impl TraceCursor for FileCursor {
    fn event_at(&mut self, offset: u64) -> io::Result<TraceEvent> {
        self.reader.seek(SeekFrom::Start(offset))?;
        match self.format {
            TraceFormat::Binary => read_binary_event_here(&mut self.reader),
            TraceFormat::Ascii => {
                let mut line = String::new();
                self.reader.read_line(&mut line)?;
                let mut reader = crate::AsciiReader::new(io::Cursor::new(line));
                reader.next().unwrap_or_else(|| {
                    Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "offset does not address an event record",
                    ))
                })
            }
        }
    }
}

/// Offset iteration over mapped bytes: decodes with the same
/// `parse_binary_body` the positioned-read path uses, so diagnostics on
/// malformed records are byte-for-byte identical to [`BinaryOffsetIter`].
struct MapOffsetIter<'a> {
    data: &'a [u8],
    pos: usize,
    done: bool,
}

impl Iterator for MapOffsetIter<'_> {
    type Item = io::Result<(u64, TraceEvent)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done || self.pos >= self.data.len() {
            return None;
        }
        let start = self.pos;
        let tag = self.data[self.pos];
        let mut rest = &self.data[self.pos + 1..];
        match parse_binary_body(&mut rest, tag) {
            Ok(event) => {
                self.pos = start + binary_event_len(&event) as usize;
                Some(Ok((start as u64, event)))
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// Positioned reads as slice indexing into the mapped bytes.
struct MapCursor<'a> {
    data: &'a [u8],
}

impl TraceCursor for MapCursor<'_> {
    fn event_at(&mut self, offset: u64) -> io::Result<TraceEvent> {
        let pos = usize::try_from(offset)
            .ok()
            .filter(|&p| p < self.data.len())
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "trace offset out of range")
            })?;
        let tag = self.data[pos];
        let mut rest = &self.data[pos + 1..];
        parse_binary_body(&mut rest, tag)
    }
}

impl RandomAccessTrace for FileTrace {
    fn offset_events(&self) -> io::Result<OffsetEventsIter<'_>> {
        if self.format() == TraceFormat::Binary {
            if let Some(map) = self.established_map() {
                return Ok(Box::new(MapOffsetIter {
                    data: map.bytes(),
                    pos: BINARY_MAGIC.len(),
                    done: false,
                }));
            }
        }
        let reader = BufReader::with_capacity(READ_BUFFER_BYTES, File::open(self.path())?);
        match self.format() {
            TraceFormat::Ascii => Ok(Box::new(AsciiOffsetIter {
                reader,
                pos: 0,
                done: false,
            })),
            TraceFormat::Binary => {
                let mut iter = BinaryOffsetIter {
                    reader,
                    pos: BINARY_MAGIC.len() as u64,
                    done: false,
                };
                // Consume and validate the magic.
                let mut magic = [0u8; 4];
                iter.reader.read_exact(&mut magic)?;
                if magic != BINARY_MAGIC {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "not a rescheck binary trace (bad magic)",
                    ));
                }
                Ok(Box::new(iter))
            }
        }
    }

    fn open_cursor(&self) -> io::Result<Box<dyn TraceCursor + '_>> {
        if self.format() == TraceFormat::Binary {
            if let Some(map) = self.established_map() {
                return Ok(Box::new(MapCursor { data: map.bytes() }));
            }
        }
        // Deliberately the small default capacity: every `event_at` seek
        // discards the buffer, so a large one would re-read far more than
        // the single record being fetched.
        Ok(Box::new(FileCursor {
            reader: BufReader::new(File::open(self.path())?),
            format: self.format(),
        }))
    }
}

struct AsciiOffsetIter {
    reader: BufReader<File>,
    pos: u64,
    done: bool,
}

impl Iterator for AsciiOffsetIter {
    type Item = io::Result<(u64, TraceEvent)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            let start = self.pos;
            let mut line = String::new();
            match self.reader.read_line(&mut line) {
                Ok(0) => return None,
                Ok(n) => self.pos += n as u64,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
            let mut parser = crate::AsciiReader::new(io::Cursor::new(&line));
            match parser.next() {
                Some(Ok(event)) => return Some(Ok((start, event))),
                Some(Err(e)) => {
                    self.done = true;
                    return Some(Err(e));
                }
                None => continue, // comment or blank line
            }
        }
    }
}

struct BinaryOffsetIter {
    reader: BufReader<File>,
    pos: u64,
    done: bool,
}

impl Iterator for BinaryOffsetIter {
    type Item = io::Result<(u64, TraceEvent)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let start = self.pos;
        let mut tag = [0u8];
        match self.reader.read_exact(&mut tag) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return None,
            Err(e) => {
                self.done = true;
                return Some(Err(e));
            }
        }
        match parse_binary_body(&mut self.reader, tag[0]) {
            Ok(event) => {
                self.pos += binary_event_len(&event);
                Some(Ok((start, event)))
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AsciiWriter, BinaryWriter, TraceSink};
    use std::path::PathBuf;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Learned {
                id: 1000,
                sources: vec![0, 3, 700],
            },
            TraceEvent::LevelZero {
                lit: Lit::from_dimacs(-52),
                antecedent: 1000,
            },
            TraceEvent::Learned {
                id: 1001,
                sources: vec![1000, 5],
            },
            TraceEvent::FinalConflict { id: 1001 },
        ]
    }

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("rescheck-random-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn check_random_access(trace: &dyn RandomAccessTrace, expected: &[TraceEvent]) {
        let pairs: Vec<(u64, TraceEvent)> = trace
            .offset_events()
            .unwrap()
            .collect::<io::Result<_>>()
            .unwrap();
        assert_eq!(pairs.len(), expected.len());
        for ((_, e), want) in pairs.iter().zip(expected) {
            assert_eq!(e, want);
        }
        // Random access in shuffled order.
        let mut cursor = trace.open_cursor().unwrap();
        for &(offset, ref want) in pairs.iter().rev() {
            assert_eq!(&cursor.event_at(offset).unwrap(), want);
        }
        // Repeated reads of the same offset work.
        let (o0, ref e0) = pairs[0];
        assert_eq!(&cursor.event_at(o0).unwrap(), e0);
        assert_eq!(&cursor.event_at(o0).unwrap(), e0);
    }

    #[test]
    fn memory_traces_are_random_access() {
        let events = sample();
        let sink: MemorySink = events.clone().into();
        check_random_access(&sink, &events);
        check_random_access(&events, &events);
    }

    #[test]
    fn ascii_files_are_random_access() {
        let path = tmp_path("ra.rt");
        {
            let mut w = AsciiWriter::new(std::fs::File::create(&path).unwrap());
            // Interleave comments to prove offsets skip them.
            w.event(&sample()[0]).unwrap();
            w.flush().unwrap();
        }
        // Re-write completely with comments via raw text.
        let mut text = String::from("c header comment\n");
        for e in sample() {
            text.push_str(&e.to_string());
            text.push('\n');
            text.push_str("c interleaved\n");
        }
        std::fs::write(&path, text).unwrap();
        let trace = FileTrace::open(&path).unwrap();
        check_random_access(&trace, &sample());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_files_are_random_access() {
        let path = tmp_path("ra.rtb");
        {
            let mut w = BinaryWriter::new(std::fs::File::create(&path).unwrap()).unwrap();
            for e in sample() {
                w.event(&e).unwrap();
            }
            w.flush().unwrap();
        }
        let trace = FileTrace::open(&path).unwrap();
        check_random_access(&trace, &sample());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_random_access_matches_positioned_reads() {
        let path = tmp_path("ra-map.rtb");
        {
            let mut w = BinaryWriter::new(std::fs::File::create(&path).unwrap()).unwrap();
            for e in sample() {
                w.event(&e).unwrap();
            }
            w.flush().unwrap();
        }
        let plain = FileTrace::open(&path).unwrap();
        let mapped = FileTrace::open(&path).unwrap();
        assert!(mapped.trace_map(true).is_some());

        let positioned: Vec<(u64, TraceEvent)> = plain
            .offset_events()
            .unwrap()
            .collect::<io::Result<_>>()
            .unwrap();
        let via_map: Vec<(u64, TraceEvent)> = mapped
            .offset_events()
            .unwrap()
            .collect::<io::Result<_>>()
            .unwrap();
        assert_eq!(positioned, via_map);

        let mut cursor = mapped.open_cursor().unwrap();
        for &(offset, ref want) in positioned.iter().rev() {
            assert_eq!(&cursor.event_at(offset).unwrap(), want);
        }
        assert!(cursor.event_at(1 << 40).is_err());
        check_random_access(&mapped, &sample());

        // A clone shares the established map.
        let clone = mapped.clone();
        assert!(clone.established_map().is_some());
        check_random_access(&clone, &sample());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_offsets_error() {
        let events = sample();
        let mut cursor = events.open_cursor().unwrap();
        assert!(cursor.event_at(99).is_err());

        let path = tmp_path("bad.rtb");
        let mut w = BinaryWriter::new(std::fs::File::create(&path).unwrap()).unwrap();
        w.event(&events[0]).unwrap();
        w.flush().unwrap();
        let trace = FileTrace::open(&path).unwrap();
        let mut cursor = trace.open_cursor().unwrap();
        // Offset 1 points into the middle of the magic/record: either an
        // error or a wrong-tag failure, never a panic.
        assert!(cursor.event_at(1).is_err());
        std::fs::remove_file(&path).ok();
    }
}
