//! The *resolve trace* format of the rescheck toolkit.
//!
//! A resolve trace is what a [CDCL solver] emits so that an independent
//! checker can re-derive the empty clause by resolution (Zhang & Malik,
//! DATE 2003, §3.1). It records three kinds of events:
//!
//! 1. [`TraceEvent::Learned`] — a learned clause's ID together with the
//!    IDs of its *resolve sources* (the conflicting clause followed by the
//!    antecedent clauses it was resolved with, in order);
//! 2. [`TraceEvent::LevelZero`] — a variable assigned at decision level 0,
//!    with its value (encoded as the satisfied literal) and the ID of its
//!    antecedent clause, emitted in chronological (trail) order;
//! 3. [`TraceEvent::FinalConflict`] — the ID of a clause that was
//!    conflicting when the solver concluded UNSAT at decision level 0.
//!
//! Clause IDs are `u64`; IDs below the number of original clauses refer to
//! the input CNF by position, higher IDs are learned clauses.
//!
//! The crate provides a [`TraceSink`] trait for writers, with
//! [`MemorySink`], [`AsciiWriter`] and [`BinaryWriter`] implementations
//! (the paper notes that a binary encoding compacts traces 2–3x and speeds
//! up parsing), and a [`TraceSource`] trait for readers that supports the
//! two-pass streaming the breadth-first checker needs.
//!
//! [CDCL solver]: https://en.wikipedia.org/wiki/Conflict-driven_clause_learning
//!
//! # Examples
//!
//! ```
//! use rescheck_cnf::Lit;
//! use rescheck_trace::{AsciiWriter, MemorySink, TraceEvent, TraceSink, TraceSource};
//!
//! let mut sink = MemorySink::new();
//! sink.learned(5, &[0, 1, 3])?;
//! sink.level_zero(Lit::from_dimacs(-2), 5)?;
//! sink.final_conflict(4)?;
//!
//! let events: Vec<_> = sink.events().to_vec();
//! assert_eq!(events.len(), 3);
//! assert_eq!(events[2], TraceEvent::FinalConflict { id: 4 });
//!
//! // Same trace as ASCII text.
//! let mut buf = Vec::new();
//! let mut w = AsciiWriter::new(&mut buf);
//! for e in &events {
//!     w.event(e)?;
//! }
//! w.flush()?;
//! assert_eq!(String::from_utf8_lossy(&buf), "r 5 3 0 1 3\nv -2 5\nf 4\n");
//! # Ok::<(), std::io::Error>(())
//! ```

// `map` needs three raw syscall bindings; everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod ascii;
mod binary;
mod block;
mod event;
mod map;
pub mod mutate;
mod random;
mod sink;
mod snapshot;
mod source;
pub mod varint;

pub use ascii::{AsciiReader, AsciiWriter};
pub use binary::{BinaryReader, BinaryWriter, BINARY_MAGIC};
pub use block::{BlockDecoder, BlockEvents, SliceDecoder};
pub use event::{EventRef, TraceEvent};
pub use map::{no_mmap_requested, BlockIndex, ShardRange, TraceMap, NO_MMAP_ENV};
pub use mutate::{Mutation, ALL_MUTATIONS};
pub use random::{OffsetEventsIter, RandomAccessTrace, TraceCursor};
pub use sink::{CountingSink, MemorySink, NullSink, TeeSink, TraceSink};
pub use snapshot::{TraceChunk, TraceSnapshot};
pub use source::{collect_events, read_all, FileTrace, ReadTraceError, TraceFormat, TraceSource};
