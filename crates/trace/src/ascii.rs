//! Human-readable ASCII trace encoding.
//!
//! One event per line:
//!
//! ```text
//! r <id> <n> <src1> ... <srcn>   learned clause with n resolve sources
//! v <±var> <antecedent>          level-0 assignment (sign = value)
//! f <id>                         final conflicting clause
//! c ...                          comment (ignored)
//! ```
//!
//! The source list is count-prefixed rather than 0-terminated because
//! clause ID 0 (the first original clause) is a perfectly legal resolve
//! source.
//!
//! This is the human-readable format the paper used in its experiments
//! ("not very space-efficient in order to make the trace human readable",
//! §4); the binary sibling in [`crate::BinaryWriter`] provides the
//! predicted 2–3x compaction.

use crate::{TraceEvent, TraceSink};
use rescheck_cnf::Lit;
use std::io::{self, BufRead, Write};

/// Writes trace events as ASCII lines.
///
/// Tracks the number of bytes written so harnesses can report trace sizes.
///
/// # Examples
///
/// ```
/// use rescheck_trace::{AsciiWriter, TraceSink};
///
/// let mut buf = Vec::new();
/// let mut w = AsciiWriter::new(&mut buf);
/// w.learned(2, &[0, 1])?;
/// w.final_conflict(2)?;
/// w.flush()?;
/// assert_eq!(String::from_utf8_lossy(&buf), "r 2 2 0 1\nf 2\n");
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct AsciiWriter<W> {
    writer: W,
    bytes: u64,
    events: u64,
    /// Reused line buffer: trace generation sits on the solver's hot
    /// path, so per-event allocations would inflate the Table 1 overhead.
    line: Vec<u8>,
}

impl<W: Write> AsciiWriter<W> {
    /// Creates a writer over any [`Write`] destination.
    ///
    /// Pass `&mut writer` if you need the destination back without
    /// consuming the `AsciiWriter`.
    pub fn new(writer: W) -> Self {
        AsciiWriter {
            writer,
            bytes: 0,
            events: 0,
            line: Vec::with_capacity(128),
        }
    }

    /// Number of bytes emitted so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Number of events encoded so far.
    pub fn events_written(&self) -> u64 {
        self.events
    }

    /// Returns the underlying writer.
    pub fn into_inner(self) -> W {
        self.writer
    }

    fn push_u64(&mut self, mut v: u64) {
        let mut digits = [0u8; 20];
        let mut i = digits.len();
        loop {
            i -= 1;
            digits[i] = b'0' + (v % 10) as u8;
            v /= 10;
            if v == 0 {
                break;
            }
        }
        self.line.extend_from_slice(&digits[i..]);
    }

    fn push_i64(&mut self, v: i64) {
        if v < 0 {
            self.line.push(b'-');
        }
        self.push_u64(v.unsigned_abs());
    }

    fn finish_line(&mut self) -> io::Result<()> {
        self.line.push(b'\n');
        self.writer.write_all(&self.line)?;
        self.bytes += self.line.len() as u64;
        self.events += 1;
        self.line.clear();
        Ok(())
    }
}

impl<W: Write> TraceSink for AsciiWriter<W> {
    fn learned(&mut self, id: u64, sources: &[u64]) -> io::Result<()> {
        self.line.extend_from_slice(b"r ");
        self.push_u64(id);
        self.line.push(b' ');
        self.push_u64(sources.len() as u64);
        for &s in sources {
            self.line.push(b' ');
            self.push_u64(s);
        }
        self.finish_line()
    }

    fn level_zero(&mut self, lit: Lit, antecedent: u64) -> io::Result<()> {
        self.line.extend_from_slice(b"v ");
        self.push_i64(lit.to_dimacs());
        self.line.push(b' ');
        self.push_u64(antecedent);
        self.finish_line()
    }

    fn final_conflict(&mut self, id: u64) -> io::Result<()> {
        self.line.extend_from_slice(b"f ");
        self.push_u64(id);
        self.finish_line()
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// Streams trace events from ASCII text.
///
/// # Examples
///
/// ```
/// use rescheck_trace::{AsciiReader, TraceEvent};
///
/// let text = "c comment\nr 2 2 0 1\nf 2\n";
/// let events: Result<Vec<_>, _> =
///     AsciiReader::new(std::io::Cursor::new(text)).collect();
/// assert_eq!(events?.len(), 2);
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct AsciiReader<R> {
    reader: R,
    line_no: usize,
    buf: String,
}

impl<R: BufRead> AsciiReader<R> {
    /// Creates a reader over buffered ASCII input.
    pub fn new(reader: R) -> Self {
        AsciiReader {
            reader,
            line_no: 0,
            buf: String::new(),
        }
    }

    fn bad(&self, msg: impl Into<String>) -> io::Error {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("trace line {}: {}", self.line_no, msg.into()),
        )
    }

    fn parse_line(&self, line: &str) -> io::Result<Option<TraceEvent>> {
        let mut tokens = line.split_whitespace();
        let Some(tag) = tokens.next() else {
            return Ok(None);
        };
        match tag {
            "c" => Ok(None),
            "r" => {
                let id = self.parse_u64(tokens.next(), "clause id")?;
                let count = self.parse_u64(tokens.next(), "source count")? as usize;
                if count < 2 {
                    return Err(self.bad("learned clause needs at least two resolve sources"));
                }
                let mut sources = Vec::with_capacity(count);
                for _ in 0..count {
                    sources.push(self.parse_u64(tokens.next(), "source id")?);
                }
                if tokens.next().is_some() {
                    return Err(self.bad("trailing tokens in r record"));
                }
                Ok(Some(TraceEvent::Learned { id, sources }))
            }
            "v" => {
                let lit_tok = tokens
                    .next()
                    .ok_or_else(|| self.bad("missing literal in v record"))?;
                let d: i64 = lit_tok
                    .parse()
                    .map_err(|_| self.bad(format!("invalid literal {lit_tok:?}")))?;
                if d == 0 {
                    return Err(self.bad("literal in v record must be non-zero"));
                }
                let antecedent = self.parse_u64(tokens.next(), "antecedent id")?;
                if tokens.next().is_some() {
                    return Err(self.bad("trailing tokens in v record"));
                }
                Ok(Some(TraceEvent::LevelZero {
                    lit: Lit::from_dimacs(d),
                    antecedent,
                }))
            }
            "f" => {
                let id = self.parse_u64(tokens.next(), "clause id")?;
                if tokens.next().is_some() {
                    return Err(self.bad("trailing tokens in f record"));
                }
                Ok(Some(TraceEvent::FinalConflict { id }))
            }
            other => Err(self.bad(format!("unknown record tag {other:?}"))),
        }
    }

    fn parse_u64(&self, token: Option<&str>, what: &str) -> io::Result<u64> {
        let t = token.ok_or_else(|| self.bad(format!("missing {what}")))?;
        t.parse()
            .map_err(|_| self.bad(format!("invalid {what} {t:?}")))
    }
}

impl<R: BufRead> Iterator for AsciiReader<R> {
    type Item = io::Result<TraceEvent>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.buf.clear();
            self.line_no += 1;
            match self.reader.read_line(&mut self.buf) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => return Some(Err(e)),
            }
            let line = std::mem::take(&mut self.buf);
            match self.parse_line(&line) {
                Ok(Some(event)) => return Some(Ok(event)),
                Ok(None) => continue,
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(events: &[TraceEvent]) -> Vec<TraceEvent> {
        let mut buf = Vec::new();
        let mut w = AsciiWriter::new(&mut buf);
        for e in events {
            w.event(e).unwrap();
        }
        w.flush().unwrap();
        AsciiReader::new(io::Cursor::new(buf))
            .collect::<io::Result<Vec<_>>>()
            .unwrap()
    }

    #[test]
    fn roundtrip_all_event_kinds() {
        let events = vec![
            TraceEvent::Learned {
                id: 10,
                sources: vec![0, 3, 7],
            },
            TraceEvent::Learned {
                id: 11,
                sources: vec![10, 0],
            },
            TraceEvent::LevelZero {
                lit: Lit::from_dimacs(-5),
                antecedent: 11,
            },
            TraceEvent::LevelZero {
                lit: Lit::from_dimacs(2),
                antecedent: 0,
            },
            TraceEvent::FinalConflict { id: 3 },
        ];
        assert_eq!(roundtrip(&events), events);
    }

    #[test]
    fn clause_zero_as_source_roundtrips_anywhere() {
        let events = vec![TraceEvent::Learned {
            id: 5,
            sources: vec![0, 1, 0, 2],
        }];
        assert_eq!(roundtrip(&events), events);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "c hello\n\nf 4\n";
        let events: Vec<_> = AsciiReader::new(io::Cursor::new(text))
            .collect::<io::Result<Vec<_>>>()
            .unwrap();
        assert_eq!(events, vec![TraceEvent::FinalConflict { id: 4 }]);
    }

    #[test]
    fn bytes_written_is_accurate() {
        let mut buf = Vec::new();
        let mut w = AsciiWriter::new(&mut buf);
        w.learned(2, &[0, 1]).unwrap();
        w.final_conflict(2).unwrap();
        assert_eq!(w.bytes_written(), buf.len() as u64);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "f 1\nz 2\n";
        let mut r = AsciiReader::new(io::Cursor::new(text));
        assert!(r.next().unwrap().is_ok());
        let err = r.next().unwrap().unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn malformed_records_are_rejected() {
        for bad in [
            "r 1 3 2 3\n",   // fewer sources than declared
            "r 1 1 0\n",     // too few sources
            "r x 2 0 1\n",   // bad id
            "r 1 2 0 1 9\n", // trailing token
            "v 0 3\n",       // zero literal
            "v 1\n",         // missing antecedent
            "v 1 2 3\n",     // trailing token
            "f\n",           // missing id
            "f 1 2\n",       // trailing token
            "q 1\n",         // unknown tag
            "r 1 2 y 0\n",   // bad source
        ] {
            let result: io::Result<Vec<_>> = AsciiReader::new(io::Cursor::new(bad)).collect();
            assert!(result.is_err(), "should reject {bad:?}");
        }
    }
}
