//! Trace events.

use rescheck_cnf::Lit;
use std::fmt;

/// One record of a resolve trace.
///
/// See the [crate documentation](crate) for the role each event plays in
/// the unsatisfiability proof.
///
/// # Examples
///
/// ```
/// use rescheck_trace::TraceEvent;
///
/// let e = TraceEvent::Learned { id: 7, sources: vec![0, 2, 5] };
/// assert_eq!(e.to_string(), "r 7 3 0 2 5");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum TraceEvent {
    /// A learned clause was produced by resolving `sources[0]` with
    /// `sources[1]`, the result with `sources[2]`, and so on.
    Learned {
        /// The ID assigned to the learned clause.
        id: u64,
        /// Resolve-source clause IDs, in resolution order. At least two.
        sources: Vec<u64>,
    },
    /// A variable was assigned at decision level 0.
    LevelZero {
        /// The literal that became **true** (its sign encodes the value).
        lit: Lit,
        /// The ID of the antecedent (unit) clause that implied it.
        antecedent: u64,
    },
    /// The solver found this clause conflicting at decision level 0 and
    /// concluded UNSAT.
    FinalConflict {
        /// The ID of the final conflicting clause.
        id: u64,
    },
}

impl TraceEvent {
    /// Returns the clause ID this event defines or references at top level.
    pub fn primary_id(&self) -> Option<u64> {
        match self {
            TraceEvent::Learned { id, .. } => Some(*id),
            TraceEvent::FinalConflict { id } => Some(*id),
            TraceEvent::LevelZero { .. } => None,
        }
    }

    /// Borrows this event as an [`EventRef`].
    pub fn as_ref(&self) -> EventRef<'_> {
        match self {
            TraceEvent::Learned { id, sources } => EventRef::Learned {
                id: *id,
                sources: sources.as_slice(),
            },
            TraceEvent::LevelZero { lit, antecedent } => EventRef::LevelZero {
                lit: *lit,
                antecedent: *antecedent,
            },
            TraceEvent::FinalConflict { id } => EventRef::FinalConflict { id: *id },
        }
    }
}

/// A borrowed view of one trace record.
///
/// The streaming decoders hand out `EventRef`s whose `sources` slice
/// aliases a buffer that is reused for the next record, so consumers that
/// only need one event at a time (the checker's counting and resolution
/// passes) pay zero heap allocations per event. Call
/// [`EventRef::to_owned`] to detach a record worth keeping.
///
/// # Examples
///
/// ```
/// use rescheck_trace::{EventRef, TraceEvent};
///
/// let owned = TraceEvent::Learned { id: 7, sources: vec![0, 2, 5] };
/// let borrowed = owned.as_ref();
/// assert_eq!(borrowed, EventRef::Learned { id: 7, sources: &[0, 2, 5] });
/// assert_eq!(borrowed.to_owned(), owned);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventRef<'a> {
    /// A learned clause was produced by resolving `sources[0]` with
    /// `sources[1]`, the result with `sources[2]`, and so on.
    Learned {
        /// The ID assigned to the learned clause.
        id: u64,
        /// Resolve-source clause IDs, in resolution order. At least two.
        sources: &'a [u64],
    },
    /// A variable was assigned at decision level 0.
    LevelZero {
        /// The literal that became **true** (its sign encodes the value).
        lit: Lit,
        /// The ID of the antecedent (unit) clause that implied it.
        antecedent: u64,
    },
    /// The solver found this clause conflicting at decision level 0 and
    /// concluded UNSAT.
    FinalConflict {
        /// The ID of the final conflicting clause.
        id: u64,
    },
}

impl EventRef<'_> {
    /// Returns the clause ID this event defines or references at top level.
    pub fn primary_id(&self) -> Option<u64> {
        match self {
            EventRef::Learned { id, .. } => Some(*id),
            EventRef::FinalConflict { id } => Some(*id),
            EventRef::LevelZero { .. } => None,
        }
    }

    /// Copies the borrowed record into an owned [`TraceEvent`].
    pub fn to_owned(&self) -> TraceEvent {
        match *self {
            EventRef::Learned { id, sources } => TraceEvent::Learned {
                id,
                sources: sources.to_vec(),
            },
            EventRef::LevelZero { lit, antecedent } => TraceEvent::LevelZero { lit, antecedent },
            EventRef::FinalConflict { id } => TraceEvent::FinalConflict { id },
        }
    }
}

impl fmt::Display for TraceEvent {
    /// Formats the event exactly as one line of the ASCII trace format
    /// (without the trailing newline).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Learned { id, sources } => {
                write!(f, "r {id} {}", sources.len())?;
                for s in sources {
                    write!(f, " {s}")?;
                }
                Ok(())
            }
            TraceEvent::LevelZero { lit, antecedent } => {
                write!(f, "v {} {antecedent}", lit.to_dimacs())
            }
            TraceEvent::FinalConflict { id } => write!(f, "f {id}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_ascii_lines() {
        assert_eq!(
            TraceEvent::Learned {
                id: 3,
                sources: vec![1, 2]
            }
            .to_string(),
            "r 3 2 1 2"
        );
        assert_eq!(
            TraceEvent::LevelZero {
                lit: Lit::from_dimacs(-4),
                antecedent: 9
            }
            .to_string(),
            "v -4 9"
        );
        assert_eq!(TraceEvent::FinalConflict { id: 12 }.to_string(), "f 12");
    }

    #[test]
    fn primary_id() {
        assert_eq!(
            TraceEvent::Learned {
                id: 3,
                sources: vec![]
            }
            .primary_id(),
            Some(3)
        );
        assert_eq!(TraceEvent::FinalConflict { id: 12 }.primary_id(), Some(12));
        assert_eq!(
            TraceEvent::LevelZero {
                lit: Lit::from_dimacs(1),
                antecedent: 0
            }
            .primary_id(),
            None
        );
    }
}
