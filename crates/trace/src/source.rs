//! Re-iterable trace sources for checkers.

use crate::{
    AsciiReader, BinaryReader, BlockDecoder, EventRef, MemorySink, SliceDecoder, TraceEvent,
    TraceMap, BINARY_MAGIC,
};
use rescheck_cnf::READ_BUFFER_BYTES;
use std::fs::File;
use std::io::{self, BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

/// Convenience alias: trace reading reports [`io::Error`]s, with parse
/// problems wrapped as [`io::ErrorKind::InvalidData`].
pub type ReadTraceError = io::Error;

/// A source of trace events that can be streamed **more than once**.
///
/// The breadth-first checker makes two passes over the trace — a counting
/// pass and the resolution pass (paper §3.3) — so a source must be able to
/// restart. In-memory traces restart trivially; file traces reopen the
/// file.
///
/// # Examples
///
/// ```
/// use rescheck_trace::{MemorySink, TraceSink, TraceSource};
///
/// let mut sink = MemorySink::new();
/// sink.final_conflict(3)?;
/// let pass1 = sink.events_iter()?.count();
/// let pass2 = sink.events_iter()?.count();
/// assert_eq!(pass1, pass2);
/// # Ok::<(), std::io::Error>(())
/// ```
pub trait TraceSource {
    /// Starts a fresh pass over the events, in emission order.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying storage cannot be (re)opened.
    /// Individual items are `Err` when a record is malformed.
    fn events_iter(&self) -> io::Result<Box<dyn Iterator<Item = io::Result<TraceEvent>> + '_>>;

    /// Size of the encoded trace in bytes, when known.
    ///
    /// In-memory traces have no encoding, so they report `None`.
    fn encoded_size(&self) -> Option<u64> {
        None
    }

    /// Streams every event through `visit` as a borrowed [`EventRef`], in
    /// emission order.
    ///
    /// This is the zero-copy counterpart of [`TraceSource::events_iter`]:
    /// sources that can avoid it (in-memory slices, binary files through
    /// [`BlockDecoder`]) hand out views into existing or reused storage
    /// instead of allocating an owned [`TraceEvent`] per record. The
    /// default implementation adapts `events_iter`, so implementing it is
    /// optional.
    ///
    /// # Errors
    ///
    /// Propagates read/parse errors, and whatever error `visit` returns —
    /// the traversal stops at the first `Err`.
    fn visit_events(
        &self,
        visit: &mut dyn FnMut(EventRef<'_>) -> io::Result<()>,
    ) -> io::Result<()> {
        for event in self.events_iter()? {
            let event = event?;
            visit(event.as_ref())?;
        }
        Ok(())
    }

    /// The memory-mapped backing of this source, established on first
    /// call and shared by every subsequent pass.
    ///
    /// Only binary file traces have one; everything else (in-memory
    /// sinks, ASCII files) returns `None` and keeps streaming. `None`
    /// is also the graceful degradation for maps that cannot be
    /// established (unreadable file, malformed header): the streaming
    /// paths then surface the precise error. `prefer_mmap: false`
    /// requests the buffered backing, as does the
    /// [`crate::NO_MMAP_ENV`] environment variable; the decoded events
    /// are identical either way.
    fn trace_map(&self, prefer_mmap: bool) -> Option<&TraceMap> {
        let _ = prefer_mmap;
        None
    }
}

/// Shared zero-copy visit for sources backed by an event slice.
fn visit_slice(
    events: &[TraceEvent],
    visit: &mut dyn FnMut(EventRef<'_>) -> io::Result<()>,
) -> io::Result<()> {
    for event in events {
        visit(event.as_ref())?;
    }
    Ok(())
}

impl TraceSource for MemorySink {
    fn events_iter(&self) -> io::Result<Box<dyn Iterator<Item = io::Result<TraceEvent>> + '_>> {
        Ok(Box::new(self.events().iter().cloned().map(Ok)))
    }

    fn visit_events(
        &self,
        visit: &mut dyn FnMut(EventRef<'_>) -> io::Result<()>,
    ) -> io::Result<()> {
        visit_slice(self.events(), visit)
    }
}

impl TraceSource for [TraceEvent] {
    fn events_iter(&self) -> io::Result<Box<dyn Iterator<Item = io::Result<TraceEvent>> + '_>> {
        Ok(Box::new(self.iter().cloned().map(Ok)))
    }

    fn visit_events(
        &self,
        visit: &mut dyn FnMut(EventRef<'_>) -> io::Result<()>,
    ) -> io::Result<()> {
        visit_slice(self, visit)
    }
}

impl TraceSource for Vec<TraceEvent> {
    fn events_iter(&self) -> io::Result<Box<dyn Iterator<Item = io::Result<TraceEvent>> + '_>> {
        Ok(Box::new(self.iter().cloned().map(Ok)))
    }

    fn visit_events(
        &self,
        visit: &mut dyn FnMut(EventRef<'_>) -> io::Result<()>,
    ) -> io::Result<()> {
        visit_slice(self, visit)
    }
}

impl<T: TraceSource + ?Sized> TraceSource for &T {
    fn events_iter(&self) -> io::Result<Box<dyn Iterator<Item = io::Result<TraceEvent>> + '_>> {
        (**self).events_iter()
    }

    fn encoded_size(&self) -> Option<u64> {
        (**self).encoded_size()
    }

    fn visit_events(
        &self,
        visit: &mut dyn FnMut(EventRef<'_>) -> io::Result<()>,
    ) -> io::Result<()> {
        (**self).visit_events(visit)
    }

    fn trace_map(&self, prefer_mmap: bool) -> Option<&TraceMap> {
        (**self).trace_map(prefer_mmap)
    }
}

/// On-disk encodings of a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TraceFormat {
    /// The human-readable line format of [`crate::AsciiWriter`].
    Ascii,
    /// The compact varint format of [`crate::BinaryWriter`].
    Binary,
}

/// A trace stored in a file, in either format.
///
/// Without a map, each pass reopens the file, so the breadth-first
/// checker's two passes never require the whole trace in memory — the
/// property the paper's breadth-first approach depends on. Once a
/// checker establishes a [`TraceMap`] via
/// [`TraceSource::trace_map`], every subsequent pass (streaming,
/// offset iteration, cursor fetches) reads the shared mapped bytes
/// instead; clones of the `FileTrace` share the same established map,
/// which is what lets a daemon's trace cache amortize the mapping
/// across jobs.
#[derive(Clone, Debug)]
pub struct FileTrace {
    path: PathBuf,
    format: TraceFormat,
    map: OnceLock<Option<Arc<TraceMap>>>,
}

impl FileTrace {
    /// Opens a trace file, detecting the format from its first bytes.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be opened or is empty.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut head = [0u8; 4];
        let mut file = File::open(&path)?;
        let n = file.read(&mut head)?;
        let format = if n == 4 && head == BINARY_MAGIC {
            TraceFormat::Binary
        } else {
            TraceFormat::Ascii
        };
        Ok(FileTrace {
            path,
            format,
            map: OnceLock::new(),
        })
    }

    /// Opens a trace file with an explicit format (no sniffing).
    pub fn with_format(path: impl AsRef<Path>, format: TraceFormat) -> Self {
        FileTrace {
            path: path.as_ref().to_path_buf(),
            format,
            map: OnceLock::new(),
        }
    }

    /// The detected or declared format.
    pub fn format(&self) -> TraceFormat {
        self.format
    }

    /// The underlying path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The already-established map, if any — never establishes one.
    pub(crate) fn established_map(&self) -> Option<&TraceMap> {
        self.map.get().and_then(|m| m.as_deref())
    }
}

impl TraceSource for FileTrace {
    fn events_iter(&self) -> io::Result<Box<dyn Iterator<Item = io::Result<TraceEvent>> + '_>> {
        if let Some(map) = self.established_map() {
            let mut decoder = SliceDecoder::new(map.bytes())?;
            return Ok(Box::new(std::iter::from_fn(move || {
                match decoder.next_event() {
                    Ok(Some(event)) => Some(Ok(event.to_owned())),
                    Ok(None) => None,
                    Err(e) => Some(Err(e)),
                }
            })));
        }
        let file = File::open(&self.path)?;
        match self.format {
            TraceFormat::Ascii => Ok(Box::new(AsciiReader::new(BufReader::with_capacity(
                READ_BUFFER_BYTES,
                file,
            )))),
            // The block decoder buffers internally, so the file handle is
            // passed through unwrapped.
            TraceFormat::Binary => Ok(Box::new(BlockDecoder::new(file)?.into_events())),
        }
    }

    fn encoded_size(&self) -> Option<u64> {
        std::fs::metadata(&self.path).ok().map(|m| m.len())
    }

    fn visit_events(
        &self,
        visit: &mut dyn FnMut(EventRef<'_>) -> io::Result<()>,
    ) -> io::Result<()> {
        match self.format {
            // ASCII parsing allocates per line anyway; reuse the iterator.
            TraceFormat::Ascii => {
                for event in self.events_iter()? {
                    let event = event?;
                    visit(event.as_ref())?;
                }
                Ok(())
            }
            TraceFormat::Binary => {
                if let Some(map) = self.established_map() {
                    let mut decoder = SliceDecoder::new(map.bytes())?;
                    while let Some(event) = decoder.next_event()? {
                        visit(event)?;
                    }
                    return Ok(());
                }
                let mut decoder = BlockDecoder::new(File::open(&self.path)?)?;
                while let Some(event) = decoder.next_event()? {
                    visit(event)?;
                }
                Ok(())
            }
        }
    }

    fn trace_map(&self, prefer_mmap: bool) -> Option<&TraceMap> {
        if self.format != TraceFormat::Binary {
            return None;
        }
        self.map
            .get_or_init(|| {
                let map = if prefer_mmap {
                    TraceMap::open(&self.path)
                } else {
                    TraceMap::open_buffered(&self.path)
                };
                // Failure caches None: callers fall back to the
                // streaming paths, which report the precise error.
                map.ok().map(Arc::new)
            })
            .as_deref()
    }
}

/// Collects every event of a source into memory.
///
/// # Errors
///
/// Propagates the first read or parse error.
pub fn collect_events<S: TraceSource + ?Sized>(source: &S) -> io::Result<Vec<TraceEvent>> {
    source.events_iter()?.collect()
}

/// Reads a whole trace from any [`BufRead`] in the given format.
///
/// # Errors
///
/// Propagates read and parse errors.
pub fn read_all<R: BufRead>(reader: R, format: TraceFormat) -> io::Result<Vec<TraceEvent>> {
    match format {
        TraceFormat::Ascii => AsciiReader::new(reader).collect(),
        TraceFormat::Binary => BinaryReader::new(reader)?.collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AsciiWriter, BinaryWriter, TraceSink};
    use rescheck_cnf::Lit;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Learned {
                id: 4,
                sources: vec![0, 1, 2],
            },
            TraceEvent::LevelZero {
                lit: Lit::from_dimacs(-1),
                antecedent: 4,
            },
            TraceEvent::FinalConflict { id: 3 },
        ]
    }

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("rescheck-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn memory_sources_restart() {
        let events = sample();
        let sink: MemorySink = events.clone().into();
        assert_eq!(collect_events(&sink).unwrap(), events);
        assert_eq!(collect_events(&sink).unwrap(), events);
        assert_eq!(collect_events(&events).unwrap(), events);
        assert_eq!(collect_events(&events[..]).unwrap(), events);
        assert_eq!(sink.encoded_size(), None);
    }

    #[test]
    fn file_trace_detects_ascii() {
        let path = tmp_path("detect.txt");
        {
            let file = File::create(&path).unwrap();
            let mut w = AsciiWriter::new(file);
            for e in &sample() {
                w.event(e).unwrap();
            }
            w.flush().unwrap();
        }
        let trace = FileTrace::open(&path).unwrap();
        assert_eq!(trace.format(), TraceFormat::Ascii);
        assert_eq!(collect_events(&trace).unwrap(), sample());
        assert!(trace.encoded_size().unwrap() > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_trace_detects_binary_and_restarts() {
        let path = tmp_path("detect.bin");
        {
            let file = File::create(&path).unwrap();
            let mut w = BinaryWriter::new(file).unwrap();
            for e in &sample() {
                w.event(e).unwrap();
            }
            w.flush().unwrap();
        }
        let trace = FileTrace::open(&path).unwrap();
        assert_eq!(trace.format(), TraceFormat::Binary);
        // Two passes, as the breadth-first checker requires.
        assert_eq!(collect_events(&trace).unwrap(), sample());
        assert_eq!(collect_events(&trace).unwrap(), sample());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn with_format_overrides_sniffing() {
        let path = tmp_path("override.txt");
        std::fs::write(&path, "f 1\n").unwrap();
        let trace = FileTrace::with_format(&path, TraceFormat::Ascii);
        assert_eq!(trace.path(), path.as_path());
        assert_eq!(
            collect_events(&trace).unwrap(),
            vec![TraceEvent::FinalConflict { id: 1 }]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_all_both_formats() {
        let events = sample();
        let mut ascii = Vec::new();
        let mut aw = AsciiWriter::new(&mut ascii);
        for e in &events {
            aw.event(e).unwrap();
        }
        assert_eq!(
            read_all(io::Cursor::new(ascii), TraceFormat::Ascii).unwrap(),
            events
        );

        let mut bin = Vec::new();
        let mut bw = BinaryWriter::new(&mut bin).unwrap();
        for e in &events {
            bw.event(e).unwrap();
        }
        assert_eq!(
            read_all(io::Cursor::new(bin), TraceFormat::Binary).unwrap(),
            events
        );
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(FileTrace::open("/definitely/not/here.trace").is_err());
    }

    fn visit_all<S: TraceSource + ?Sized>(source: &S) -> Vec<TraceEvent> {
        let mut events = Vec::new();
        source
            .visit_events(&mut |event| {
                events.push(event.to_owned());
                Ok(())
            })
            .unwrap();
        events
    }

    #[test]
    fn visit_events_matches_owned_iterator_on_all_sources() {
        let events = sample();
        let sink: MemorySink = events.clone().into();
        assert_eq!(visit_all(&sink), events);
        assert_eq!(visit_all(&events), events);
        assert_eq!(visit_all(&events[..]), events);
        assert_eq!(visit_all(&&events), events);

        for (name, format) in [
            ("visit.txt", TraceFormat::Ascii),
            ("visit.rtb", TraceFormat::Binary),
        ] {
            let path = tmp_path(name);
            let file = File::create(&path).unwrap();
            match format {
                TraceFormat::Ascii => {
                    let mut w = AsciiWriter::new(file);
                    for e in &events {
                        w.event(e).unwrap();
                    }
                    w.flush().unwrap();
                }
                TraceFormat::Binary => {
                    let mut w = BinaryWriter::new(file).unwrap();
                    for e in &events {
                        w.event(e).unwrap();
                    }
                    w.flush().unwrap();
                }
            }
            let trace = FileTrace::open(&path).unwrap();
            assert_eq!(trace.format(), format);
            assert_eq!(visit_all(&trace), events, "{format:?}");
            assert_eq!(collect_events(&trace).unwrap(), events, "{format:?}");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn established_map_matches_streaming_decode() {
        let path = tmp_path("mapped.rtb");
        {
            let file = File::create(&path).unwrap();
            let mut w = BinaryWriter::new(file).unwrap();
            for e in &sample() {
                w.event(e).unwrap();
            }
            w.flush().unwrap();
        }
        let trace = FileTrace::open(&path).unwrap();
        assert!(trace.established_map().is_none());
        // ASCII traces and repeated calls behave.
        let map = trace.trace_map(true).expect("binary file trace maps");
        assert_eq!(map.accounted_bytes(), trace.encoded_size().unwrap());
        assert!(trace.trace_map(true).is_some());
        assert_eq!(collect_events(&trace).unwrap(), sample());
        assert_eq!(visit_all(&trace), sample());

        let buffered = FileTrace::open(&path).unwrap();
        let map = buffered.trace_map(false).unwrap();
        assert!(!map.is_mmap());
        assert_eq!(collect_events(&buffered).unwrap(), sample());
        std::fs::remove_file(&path).ok();

        let ascii = tmp_path("mapped.txt");
        std::fs::write(&ascii, "f 1\n").unwrap();
        let trace = FileTrace::open(&ascii).unwrap();
        assert!(trace.trace_map(true).is_none());
        std::fs::remove_file(&ascii).ok();
    }

    #[test]
    fn visit_events_stops_at_visitor_error() {
        let events = sample();
        let mut seen = 0usize;
        let err = events
            .visit_events(&mut |_| {
                seen += 1;
                if seen == 2 {
                    Err(io::Error::other("stop here"))
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
        assert_eq!(seen, 2);
        assert_eq!(err.to_string(), "stop here");
    }
}
