//! Deterministic mutators over the binary trace encoding.
//!
//! Differential fuzzing needs corrupted-but-plausible traces: streams
//! that exercise the decoder's and checker's rejection paths without ever
//! being allowed to panic. This module provides four mutation operators
//! over an encoded binary trace (the `RTB1` format of [`crate::binary`]),
//! each deterministic for a given [`SplitMix64`] state:
//!
//! - [`Mutation::BitFlip`] — flip one bit anywhere after the magic;
//! - [`Mutation::TruncateTail`] — cut the stream short, possibly mid-record;
//! - [`Mutation::SwapSourceLists`] — structurally swap the resolve-source
//!   lists of two learned-clause records (the stream stays decodable, the
//!   *semantics* are corrupted);
//! - [`Mutation::CorruptVarint`] — replace one encoded integer with an
//!   over-long LEB128 encoding the strict reader must reject.
//!
//! A mutator returns `None` when the stream is too small to apply it
//! (e.g. swapping source lists needs two learned records); it never
//! returns bytes equal to its input.

use crate::binary::{BinaryReader, BinaryWriter};
use crate::{TraceEvent, TraceSink};
use rescheck_cnf::SplitMix64;
use std::io::Cursor;

/// One mutation operator over encoded binary trace bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mutation {
    /// Flip a single random bit after the 4-byte magic.
    BitFlip,
    /// Truncate the stream at a random point after the magic.
    TruncateTail,
    /// Swap the source lists of two distinct learned-clause records.
    SwapSourceLists,
    /// Re-encode one integer as an invalid over-long varint.
    CorruptVarint,
}

/// Every mutation operator, in the order campaigns cycle through them.
pub const ALL_MUTATIONS: [Mutation; 4] = [
    Mutation::BitFlip,
    Mutation::TruncateTail,
    Mutation::SwapSourceLists,
    Mutation::CorruptVarint,
];

impl std::fmt::Display for Mutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mutation::BitFlip => f.write_str("bit-flip"),
            Mutation::TruncateTail => f.write_str("truncate-tail"),
            Mutation::SwapSourceLists => f.write_str("swap-source-lists"),
            Mutation::CorruptVarint => f.write_str("corrupt-varint"),
        }
    }
}

const MAGIC_LEN: usize = 4;

/// Applies `mutation` to an encoded binary trace, drawing randomness from
/// `rng`.
///
/// Returns `None` when the stream is too small for the operator (fewer
/// than two learned records for [`Mutation::SwapSourceLists`], nothing
/// after the magic for the byte-level operators, or an undecodable input
/// for the structural operators). The returned bytes always differ from
/// the input.
///
/// # Examples
///
/// ```
/// use rescheck_cnf::SplitMix64;
/// use rescheck_trace::{mutate, BinaryWriter, Mutation, TraceSink};
///
/// let mut bytes = Vec::new();
/// let mut w = BinaryWriter::new(&mut bytes)?;
/// w.learned(2, &[0, 1])?;
/// w.final_conflict(2)?;
/// drop(w);
///
/// let mut rng = SplitMix64::new(7);
/// let mutated = mutate::apply(&bytes, Mutation::BitFlip, &mut rng).unwrap();
/// assert_ne!(mutated, bytes);
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn apply(bytes: &[u8], mutation: Mutation, rng: &mut SplitMix64) -> Option<Vec<u8>> {
    match mutation {
        Mutation::BitFlip => bit_flip(bytes, rng),
        Mutation::TruncateTail => truncate_tail(bytes, rng),
        Mutation::SwapSourceLists => swap_source_lists(bytes, rng),
        Mutation::CorruptVarint => corrupt_varint(bytes, rng),
    }
}

fn bit_flip(bytes: &[u8], rng: &mut SplitMix64) -> Option<Vec<u8>> {
    if bytes.len() <= MAGIC_LEN {
        return None;
    }
    let mut out = bytes.to_vec();
    let pos = rng.range_usize(MAGIC_LEN..out.len());
    let bit = rng.below(8) as u8;
    out[pos] ^= 1 << bit;
    Some(out)
}

fn truncate_tail(bytes: &[u8], rng: &mut SplitMix64) -> Option<Vec<u8>> {
    if bytes.len() <= MAGIC_LEN + 1 {
        return None;
    }
    // Keep at least the magic, cut at least one byte.
    let keep = rng.range_usize(MAGIC_LEN..bytes.len());
    Some(bytes[..keep].to_vec())
}

/// Decodes the stream; `None` if it is not a well-formed binary trace
/// (structural mutators need record boundaries).
fn decode(bytes: &[u8]) -> Option<Vec<TraceEvent>> {
    BinaryReader::new(Cursor::new(bytes))
        .ok()?
        .collect::<std::io::Result<Vec<_>>>()
        .ok()
}

fn encode(events: &[TraceEvent]) -> Vec<u8> {
    let mut w = BinaryWriter::new(Vec::new()).expect("writing to a Vec cannot fail");
    for e in events {
        w.event(e).expect("writing to a Vec cannot fail");
    }
    w.into_inner()
}

fn swap_source_lists(bytes: &[u8], rng: &mut SplitMix64) -> Option<Vec<u8>> {
    let mut events = decode(bytes)?;
    let learned: Vec<usize> = events
        .iter()
        .enumerate()
        .filter_map(|(i, e)| matches!(e, TraceEvent::Learned { .. }).then_some(i))
        .collect();
    if learned.len() < 2 {
        return None;
    }
    // Draw two distinct learned records with different source lists, so
    // the swap is guaranteed to change the stream.
    let mut candidates: Vec<(usize, usize)> = Vec::new();
    for (n, &i) in learned.iter().enumerate() {
        for &j in &learned[n + 1..] {
            let (TraceEvent::Learned { sources: a, .. }, TraceEvent::Learned { sources: b, .. }) =
                (&events[i], &events[j])
            else {
                unreachable!("filtered to learned records above");
            };
            if a != b {
                candidates.push((i, j));
            }
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let (i, j) = candidates[rng.range_usize(0..candidates.len())];
    // Swap the source lists, keeping the ids in place.
    let (head, tail) = events.split_at_mut(j);
    let (TraceEvent::Learned { sources: a, .. }, TraceEvent::Learned { sources: b, .. }) =
        (&mut head[i], &mut tail[0])
    else {
        unreachable!("candidate indices point at learned records");
    };
    std::mem::swap(a, b);
    Some(encode(&events))
}

fn corrupt_varint(bytes: &[u8], rng: &mut SplitMix64) -> Option<Vec<u8>> {
    let events = decode(bytes)?;
    if events.is_empty() {
        return None;
    }
    // Re-encode the stream, replacing one integer of one record with an
    // 11-byte all-continuation varint the strict reader rejects.
    let victim = rng.range_usize(0..events.len());
    let mut out = encode(&events[..victim]);
    // Tag byte of the victim record, then the poisoned integer where its
    // first varint (id / literal code) belongs.
    let tag = match events[victim] {
        TraceEvent::Learned { .. } => crate::binary::TAG_LEARNED,
        TraceEvent::LevelZero { .. } => crate::binary::TAG_LEVEL_ZERO,
        TraceEvent::FinalConflict { .. } => crate::binary::TAG_FINAL,
    };
    out.push(tag);
    out.extend_from_slice(&[0x80; 11]);
    // The reader aborts on the poisoned varint, so nothing after it needs
    // to stay well-formed; keep the remaining records anyway to preserve
    // the stream's length profile.
    out.extend_from_slice(&encode(&events[victim + 1..])[MAGIC_LEN..]);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescheck_cnf::Lit;

    fn sample_trace() -> Vec<u8> {
        let mut bytes = Vec::new();
        let mut w = BinaryWriter::new(&mut bytes).unwrap();
        w.learned(4, &[0, 1, 2]).unwrap();
        w.learned(5, &[4, 3]).unwrap();
        w.level_zero(Lit::from_dimacs(-2), 5).unwrap();
        w.final_conflict(5).unwrap();
        let _ = w.into_inner();
        bytes
    }

    /// Decoding a mutant must either succeed or fail cleanly — an
    /// `Err`, never a panic.
    fn decodes_or_cleanly_rejects(bytes: &[u8]) -> bool {
        match BinaryReader::new(Cursor::new(bytes)) {
            Ok(reader) => reader.collect::<std::io::Result<Vec<_>>>().is_ok(),
            Err(_) => false,
        }
    }

    #[test]
    fn every_mutation_changes_the_bytes() {
        let original = sample_trace();
        for mutation in ALL_MUTATIONS {
            for seed in 0..50 {
                let mut rng = SplitMix64::new(seed);
                let mutated = apply(&original, mutation, &mut rng)
                    .unwrap_or_else(|| panic!("{mutation} inapplicable to the sample"));
                assert_ne!(mutated, original, "{mutation} seed {seed} was a no-op");
                // Never a panic: decoding returns a verdict either way.
                let _ = decodes_or_cleanly_rejects(&mutated);
            }
        }
    }

    #[test]
    fn mutations_are_deterministic() {
        let original = sample_trace();
        for mutation in ALL_MUTATIONS {
            let a = apply(&original, mutation, &mut SplitMix64::new(99));
            let b = apply(&original, mutation, &mut SplitMix64::new(99));
            assert_eq!(a, b, "{mutation}");
        }
    }

    #[test]
    fn truncation_always_rejects_or_loses_events() {
        let original = sample_trace();
        let full = decode(&original).unwrap();
        for seed in 0..50 {
            let mut rng = SplitMix64::new(seed);
            let mutated = apply(&original, Mutation::TruncateTail, &mut rng).unwrap();
            assert!(mutated.len() < original.len());
            // A failed `new` means the magic itself was truncated: also
            // a clean reject.
            if let Ok(reader) = BinaryReader::new(Cursor::new(mutated.as_slice())) {
                if let Ok(events) = reader.collect::<std::io::Result<Vec<_>>>() {
                    // A clean decode must have lost at least the
                    // trailing final-conflict record.
                    assert!(events.len() < full.len());
                }
            }
        }
    }

    #[test]
    fn corrupt_varint_always_fails_decode() {
        let original = sample_trace();
        for seed in 0..50 {
            let mut rng = SplitMix64::new(seed);
            let mutated = apply(&original, Mutation::CorruptVarint, &mut rng).unwrap();
            assert!(
                !decodes_or_cleanly_rejects(&mutated),
                "over-long varint must be rejected (seed {seed})"
            );
        }
    }

    #[test]
    fn swap_keeps_stream_decodable_but_changes_semantics() {
        let original = sample_trace();
        let before = decode(&original).unwrap();
        for seed in 0..50 {
            let mut rng = SplitMix64::new(seed);
            let mutated = apply(&original, Mutation::SwapSourceLists, &mut rng).unwrap();
            let after = decode(&mutated).expect("swap preserves well-formedness");
            assert_eq!(after.len(), before.len());
            assert_ne!(after, before);
            // Same multiset of ids: only the source lists moved.
            let ids = |evs: &[TraceEvent]| -> Vec<Option<u64>> {
                evs.iter().map(|e| e.primary_id()).collect()
            };
            assert_eq!(ids(&after), ids(&before));
        }
    }

    #[test]
    fn inapplicable_mutations_return_none() {
        // Empty trace: nothing to flip or swap.
        let mut empty = Vec::new();
        let _w = BinaryWriter::new(&mut empty).unwrap();
        let mut rng = SplitMix64::new(1);
        assert!(apply(&empty, Mutation::BitFlip, &mut rng).is_none());
        assert!(apply(&empty, Mutation::TruncateTail, &mut rng).is_none());
        assert!(apply(&empty, Mutation::SwapSourceLists, &mut rng).is_none());
        assert!(apply(&empty, Mutation::CorruptVarint, &mut rng).is_none());

        // One learned record: swapping needs two distinct lists.
        let mut one = Vec::new();
        let mut w = BinaryWriter::new(&mut one).unwrap();
        w.learned(3, &[0, 1]).unwrap();
        let _ = w.into_inner();
        assert!(apply(&one, Mutation::SwapSourceLists, &mut rng).is_none());

        // Two learned records with identical source lists: still no swap.
        let mut same = Vec::new();
        let mut w = BinaryWriter::new(&mut same).unwrap();
        w.learned(3, &[0, 1]).unwrap();
        w.learned(4, &[0, 1]).unwrap();
        let _ = w.into_inner();
        assert!(apply(&same, Mutation::SwapSourceLists, &mut rng).is_none());

        // Garbage input: structural mutators need a decodable stream.
        assert!(apply(b"GARBAGE-NOT-A-TRACE", Mutation::SwapSourceLists, &mut rng).is_none());
        assert!(apply(b"GARBAGE-NOT-A-TRACE", Mutation::CorruptVarint, &mut rng).is_none());
    }
}
