//! Shareable in-memory traces for parallel checking.
//!
//! The parallel checkers need several threads to iterate **one** trace at
//! the same time: the racing portfolio hands the same trace to a
//! depth-first and a breadth-first worker, and the sharded breadth-first
//! pass 1 splits the event stream across counting workers. A
//! [`TraceSnapshot`] is an immutable, atomically reference-counted event
//! vector that is `Send + Sync` and clones in O(1), and
//! [`TraceSnapshot::chunks`] carves it into [`TraceChunk`]s — contiguous,
//! index-tagged windows that workers can take ownership of without
//! copying any event data.
//!
//! A snapshot is one of **two** ways to share one trace across threads.
//! It holds *decoded* events, so capturing it costs a full decode plus
//! an owned allocation per record — the right trade when the events
//! were already in memory (a solver's [`crate::MemorySink`]). For
//! binary *file* traces, a [`crate::TraceMap`] shares the *encoded*
//! bytes instead: workers decode their own disjoint shard of the
//! mapped slice (see [`crate::BlockIndex::shard_ranges`]), and nothing
//! is copied up front. Snapshots of a mapped `FileTrace` still work —
//! `capture` streams through the established map — but the sharded
//! checkers prefer decoding from the map directly.

use crate::{OffsetEventsIter, RandomAccessTrace, TraceCursor, TraceEvent, TraceSource};
use std::io;
use std::sync::Arc;

/// An immutable, thread-shareable copy of a trace.
///
/// The offset of each event (for [`RandomAccessTrace`]) is its index, as
/// for the other in-memory sources.
///
/// # Examples
///
/// ```
/// use rescheck_trace::{MemorySink, TraceSink, TraceSnapshot, TraceSource};
///
/// let mut sink = MemorySink::new();
/// sink.learned(5, &[0, 1])?;
/// sink.final_conflict(5)?;
///
/// let snap = TraceSnapshot::capture(&sink)?;
/// let handle = snap.clone(); // O(1): shares the same events
/// std::thread::scope(|s| {
///     s.spawn(move || assert_eq!(handle.len(), 2));
/// });
/// assert_eq!(snap.events_iter()?.count(), 2);
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct TraceSnapshot {
    events: Arc<[TraceEvent]>,
    encoded_size: Option<u64>,
}

impl TraceSnapshot {
    /// Captures a snapshot by streaming `source` once.
    ///
    /// The snapshot remembers the source's `encoded_size`, so checkers
    /// report the same `trace_bytes` as they would for the original.
    ///
    /// # Errors
    ///
    /// Propagates the first read or parse error from the source.
    pub fn capture<S: TraceSource + ?Sized>(source: &S) -> io::Result<Self> {
        let events: Vec<TraceEvent> = source.events_iter()?.collect::<io::Result<_>>()?;
        Ok(TraceSnapshot {
            events: events.into(),
            encoded_size: source.encoded_size(),
        })
    }

    /// Wraps an event vector directly (no encoded size).
    pub fn from_events(events: Vec<TraceEvent>) -> Self {
        TraceSnapshot {
            events: events.into(),
            encoded_size: None,
        }
    }

    /// The events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` for an event-free trace.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Splits the snapshot into at most `n` contiguous chunks of
    /// near-equal size, covering every event exactly once and in order.
    ///
    /// Returns fewer than `n` chunks when there are fewer than `n`
    /// events, and an empty vector for an empty trace. Chunks share the
    /// snapshot's storage — no events are copied.
    pub fn chunks(&self, n: usize) -> Vec<TraceChunk> {
        let total = self.events.len();
        if total == 0 || n == 0 {
            return Vec::new();
        }
        let per = total.div_ceil(n);
        let mut out = Vec::with_capacity(total.div_ceil(per));
        let mut start = 0;
        while start < total {
            let end = (start + per).min(total);
            out.push(TraceChunk {
                events: Arc::clone(&self.events),
                start,
                end,
            });
            start = end;
        }
        out
    }
}

impl From<Vec<TraceEvent>> for TraceSnapshot {
    fn from(events: Vec<TraceEvent>) -> Self {
        TraceSnapshot::from_events(events)
    }
}

impl TraceSource for TraceSnapshot {
    fn events_iter(&self) -> io::Result<Box<dyn Iterator<Item = io::Result<TraceEvent>> + '_>> {
        self.events[..].events_iter()
    }

    fn encoded_size(&self) -> Option<u64> {
        self.encoded_size
    }
}

impl RandomAccessTrace for TraceSnapshot {
    fn offset_events(&self) -> io::Result<OffsetEventsIter<'_>> {
        self.events[..].offset_events()
    }

    fn open_cursor(&self) -> io::Result<Box<dyn TraceCursor + '_>> {
        self.events[..].open_cursor()
    }
}

/// An owned, `Send` window into a [`TraceSnapshot`].
///
/// A chunk knows the global index of its first event, so sharded workers
/// can report per-event positions that merge back into the sequential
/// order.
#[derive(Clone, Debug)]
pub struct TraceChunk {
    events: Arc<[TraceEvent]>,
    start: usize,
    end: usize,
}

impl TraceChunk {
    /// Global index (within the snapshot) of this chunk's first event.
    pub fn first_index(&self) -> u64 {
        self.start as u64
    }

    /// The chunk's events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events[self.start..self.end]
    }

    /// Number of events in the chunk.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns `true` if the chunk holds no events.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemorySink, TraceSink};
    use rescheck_cnf::Lit;

    fn sample() -> Vec<TraceEvent> {
        (0..10)
            .map(|i| TraceEvent::Learned {
                id: 100 + i,
                sources: vec![i, i + 1],
            })
            .chain([
                TraceEvent::LevelZero {
                    lit: Lit::from_dimacs(-3),
                    antecedent: 109,
                },
                TraceEvent::FinalConflict { id: 109 },
            ])
            .collect()
    }

    #[test]
    fn snapshot_is_send_sync_and_shares_storage() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceSnapshot>();
        assert_send_sync::<TraceChunk>();

        let snap = TraceSnapshot::from_events(sample());
        let clone = snap.clone();
        assert!(std::ptr::eq(
            snap.events().as_ptr(),
            clone.events().as_ptr()
        ));
    }

    #[test]
    fn capture_preserves_events_and_size() {
        let mut sink = MemorySink::new();
        sink.learned(5, &[0, 1]).unwrap();
        sink.final_conflict(5).unwrap();
        let snap = TraceSnapshot::capture(&sink).unwrap();
        assert_eq!(snap.events(), sink.events());
        assert_eq!(snap.encoded_size(), sink.encoded_size());
        assert_eq!(snap.len(), 2);
        assert!(!snap.is_empty());
    }

    #[test]
    fn chunks_partition_in_order() {
        let events = sample();
        let snap = TraceSnapshot::from_events(events.clone());
        for n in 1..=events.len() + 3 {
            let chunks = snap.chunks(n);
            assert!(chunks.len() <= n);
            let mut rebuilt = Vec::new();
            let mut next_index = 0u64;
            for c in &chunks {
                assert_eq!(c.first_index(), next_index);
                assert_eq!(c.len(), c.events().len());
                assert!(!c.is_empty());
                next_index += c.len() as u64;
                rebuilt.extend_from_slice(c.events());
            }
            assert_eq!(rebuilt, events);
        }
    }

    #[test]
    fn degenerate_chunkings() {
        assert!(TraceSnapshot::from_events(Vec::new()).chunks(4).is_empty());
        let snap = TraceSnapshot::from_events(sample());
        assert!(snap.chunks(0).is_empty());
    }

    #[test]
    fn snapshot_is_a_random_access_source() {
        let events = sample();
        let snap: TraceSnapshot = events.clone().into();
        let streamed: Vec<TraceEvent> = snap
            .events_iter()
            .unwrap()
            .collect::<io::Result<_>>()
            .unwrap();
        assert_eq!(streamed, events);
        let mut cursor = snap.open_cursor().unwrap();
        assert_eq!(cursor.event_at(3).unwrap(), events[3]);
        let pairs: Vec<(u64, TraceEvent)> = snap
            .offset_events()
            .unwrap()
            .collect::<io::Result<_>>()
            .unwrap();
        assert_eq!(pairs.len(), events.len());
    }
}
