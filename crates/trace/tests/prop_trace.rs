//! Property-based tests of the trace encodings: arbitrary event streams
//! survive both encodings byte-exactly, and random access agrees with
//! streaming.

use proptest::prelude::*;
use rescheck_cnf::Lit;
use rescheck_trace::{
    read_all, AsciiWriter, BinaryWriter, MemorySink, RandomAccessTrace, TraceEvent, TraceFormat,
    TraceSink, TraceSource,
};

fn event_strategy() -> impl Strategy<Value = TraceEvent> {
    prop_oneof![
        (any::<u64>(), prop::collection::vec(any::<u64>(), 2..12))
            .prop_map(|(id, sources)| TraceEvent::Learned { id, sources }),
        ((1i64..100_000), any::<bool>(), any::<u64>()).prop_map(|(v, neg, antecedent)| {
            TraceEvent::LevelZero {
                lit: Lit::from_dimacs(if neg { -v } else { v }),
                antecedent,
            }
        }),
        any::<u64>().prop_map(|id| TraceEvent::FinalConflict { id }),
    ]
}

fn encode_ascii(events: &[TraceEvent]) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = AsciiWriter::new(&mut buf);
    for e in events {
        w.event(e).unwrap();
    }
    assert_eq!(w.bytes_written(), buf.len() as u64);
    buf
}

fn encode_binary(events: &[TraceEvent]) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = BinaryWriter::new(&mut buf).unwrap();
    for e in events {
        w.event(e).unwrap();
    }
    assert_eq!(w.bytes_written(), buf.len() as u64);
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ascii_roundtrip(events in prop::collection::vec(event_strategy(), 0..40)) {
        let buf = encode_ascii(&events);
        let decoded = read_all(std::io::Cursor::new(buf), TraceFormat::Ascii).unwrap();
        prop_assert_eq!(decoded, events);
    }

    #[test]
    fn binary_roundtrip(events in prop::collection::vec(event_strategy(), 0..40)) {
        let buf = encode_binary(&events);
        let decoded = read_all(std::io::Cursor::new(buf), TraceFormat::Binary).unwrap();
        prop_assert_eq!(decoded, events);
    }

    #[test]
    fn memory_random_access_matches_streaming(
        events in prop::collection::vec(event_strategy(), 1..30),
    ) {
        let sink: MemorySink = events.clone().into();
        let pairs: Vec<(u64, TraceEvent)> = sink
            .offset_events()
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        let streamed: Vec<TraceEvent> = sink
            .events_iter()
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        prop_assert_eq!(
            pairs.iter().map(|(_, e)| e.clone()).collect::<Vec<_>>(),
            streamed
        );
        let mut cursor = sink.open_cursor().unwrap();
        for (offset, event) in pairs {
            prop_assert_eq!(cursor.event_at(offset).unwrap(), event);
        }
    }

    /// Decoding truncated binary never panics; it errors or yields a
    /// prefix of the events.
    #[test]
    fn truncated_binary_never_panics(
        events in prop::collection::vec(event_strategy(), 1..20),
        cut_back in 1usize..32,
    ) {
        let buf = encode_binary(&events);
        let cut = buf.len().saturating_sub(cut_back).max(4);
        let truncated = buf[..cut].to_vec();
        match read_all(std::io::Cursor::new(truncated), TraceFormat::Binary) {
            Ok(prefix) => prop_assert!(prefix.len() <= events.len()),
            Err(_) => {}
        }
    }

    /// Random byte corruption of ASCII traces never panics the decoder.
    #[test]
    fn corrupted_ascii_never_panics(
        events in prop::collection::vec(event_strategy(), 1..20),
        position in any::<prop::sample::Index>(),
        byte in any::<u8>(),
    ) {
        let mut buf = encode_ascii(&events);
        let i = position.index(buf.len());
        buf[i] = byte;
        let _ = read_all(std::io::Cursor::new(buf), TraceFormat::Ascii);
    }

    /// Random byte corruption of binary traces never panics the decoder.
    #[test]
    fn corrupted_binary_never_panics(
        events in prop::collection::vec(event_strategy(), 1..20),
        position in any::<prop::sample::Index>(),
        byte in any::<u8>(),
    ) {
        let mut buf = encode_binary(&events);
        let i = 4 + position.index(buf.len() - 4); // keep the magic intact
        buf[i] = byte;
        let _ = read_all(std::io::Cursor::new(buf), TraceFormat::Binary);
    }
}
