//! Randomized tests of the trace encodings: arbitrary event streams
//! survive both encodings byte-exactly, and random access agrees with
//! streaming. Driven by the in-house [`SplitMix64`] generator (seeded
//! loops, reproducible from the printed seed); `heavy-tests` raises the
//! case count.

use rescheck_cnf::{Lit, SplitMix64};
use rescheck_trace::{
    mutate, read_all, AsciiWriter, BinaryWriter, FileTrace, MemorySink, RandomAccessTrace,
    SliceDecoder, TraceEvent, TraceFormat, TraceSink, TraceSource,
};

const CASES: u64 = if cfg!(feature = "heavy-tests") {
    1024
} else {
    128
};

fn random_event(rng: &mut SplitMix64) -> TraceEvent {
    match rng.below(3) {
        0 => {
            let len = rng.range_usize(2..12);
            TraceEvent::Learned {
                id: rng.next_u64(),
                sources: (0..len).map(|_| rng.next_u64()).collect(),
            }
        }
        1 => {
            let v = rng.range_u32(1..100_000) as i64;
            TraceEvent::LevelZero {
                lit: Lit::from_dimacs(if rng.gen_bool(0.5) { -v } else { v }),
                antecedent: rng.next_u64(),
            }
        }
        _ => TraceEvent::FinalConflict { id: rng.next_u64() },
    }
}

fn random_events(rng: &mut SplitMix64, min: u64, max: u64) -> Vec<TraceEvent> {
    let len = min + rng.below(max - min);
    (0..len).map(|_| random_event(rng)).collect()
}

fn encode_ascii(events: &[TraceEvent]) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = AsciiWriter::new(&mut buf);
    for e in events {
        w.event(e).unwrap();
    }
    assert_eq!(w.bytes_written(), buf.len() as u64);
    buf
}

fn encode_binary(events: &[TraceEvent]) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = BinaryWriter::new(&mut buf).unwrap();
    for e in events {
        w.event(e).unwrap();
    }
    assert_eq!(w.bytes_written(), buf.len() as u64);
    buf
}

#[test]
fn ascii_roundtrip() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let events = random_events(&mut rng, 0, 40);
        let buf = encode_ascii(&events);
        let decoded = read_all(std::io::Cursor::new(buf), TraceFormat::Ascii).unwrap();
        assert_eq!(decoded, events, "seed {seed}");
    }
}

#[test]
fn binary_roundtrip() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let events = random_events(&mut rng, 0, 40);
        let buf = encode_binary(&events);
        let decoded = read_all(std::io::Cursor::new(buf), TraceFormat::Binary).unwrap();
        assert_eq!(decoded, events, "seed {seed}");
    }
}

#[test]
fn memory_random_access_matches_streaming() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let events = random_events(&mut rng, 1, 30);
        let sink: MemorySink = events.clone().into();
        let pairs: Vec<(u64, TraceEvent)> = sink
            .offset_events()
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        let streamed: Vec<TraceEvent> = sink
            .events_iter()
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(
            pairs.iter().map(|(_, e)| e.clone()).collect::<Vec<_>>(),
            streamed,
            "seed {seed}"
        );
        let mut cursor = sink.open_cursor().unwrap();
        for (offset, event) in pairs {
            assert_eq!(cursor.event_at(offset).unwrap(), event, "seed {seed}");
        }
    }
}

/// Decoding truncated binary never panics; it errors or yields a
/// prefix of the events.
#[test]
fn truncated_binary_never_panics() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let events = random_events(&mut rng, 1, 20);
        let cut_back = rng.range_usize(1..32);
        let buf = encode_binary(&events);
        let cut = buf.len().saturating_sub(cut_back).max(4);
        let truncated = buf[..cut].to_vec();
        if let Ok(prefix) = read_all(std::io::Cursor::new(truncated), TraceFormat::Binary) {
            assert!(prefix.len() <= events.len(), "seed {seed}")
        }
    }
}

/// Random byte corruption of ASCII traces never panics the decoder.
#[test]
fn corrupted_ascii_never_panics() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let events = random_events(&mut rng, 1, 20);
        let mut buf = encode_ascii(&events);
        let i = rng.range_usize(0..buf.len());
        buf[i] = rng.next_u64() as u8;
        let _ = read_all(std::io::Cursor::new(buf), TraceFormat::Ascii);
    }
}

/// Decodes a byte slice the way the mapped backend does, collecting
/// owned events so the result is comparable to [`read_all`].
fn slice_decode(bytes: &[u8]) -> std::io::Result<Vec<TraceEvent>> {
    let mut decoder = SliceDecoder::new(bytes)?;
    let mut out = Vec::new();
    while let Some(event) = decoder.next_event()? {
        out.push(event.to_owned());
    }
    Ok(out)
}

/// Differential fuzz of the mapped decoder: every [`mutate`] operator
/// applied to every seeded trace must draw the same verdict (and the
/// same events, when accepted) from [`SliceDecoder`] as from the
/// buffered [`read_all`] path — and neither may panic.
#[test]
fn mutants_decode_identically_mapped_and_buffered() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let events = random_events(&mut rng, 1, 20);
        let pristine = encode_binary(&events);
        let mut cases = vec![pristine.clone()];
        for mutation in mutate::ALL_MUTATIONS {
            if let Some(mutated) = mutate::apply(&pristine, mutation, &mut rng) {
                cases.push(mutated);
            }
        }
        for (i, bytes) in cases.iter().enumerate() {
            let buffered = read_all(std::io::Cursor::new(bytes.clone()), TraceFormat::Binary);
            let mapped = slice_decode(bytes);
            match (buffered, mapped) {
                (Ok(b), Ok(m)) => assert_eq!(b, m, "seed {seed} case {i}"),
                (Err(_), Err(_)) => {}
                (b, m) => panic!(
                    "seed {seed} case {i}: verdicts diverge (buffered {:?}, mapped {:?})",
                    b.map(|e| e.len()),
                    m.map(|e| e.len()),
                ),
            }
        }
    }
}

/// The two [`rescheck_trace::TraceMap`] backings — `mmap` and the
/// buffered `RESCHECK_NO_MMAP` fallback — expose identical bytes and
/// decode to identical events for seeded file traces.
#[test]
fn map_backings_decode_identical_events() {
    let dir = std::env::temp_dir();
    for seed in 0..CASES.min(32) {
        let mut rng = SplitMix64::new(seed);
        let events = random_events(&mut rng, 1, 30);
        let bytes = encode_binary(&events);
        let path = dir.join(format!(
            "rescheck-prop-map-{}-{seed}.rtb",
            std::process::id()
        ));
        std::fs::write(&path, &bytes).unwrap();

        // One handle per backing: a FileTrace caches the first map it
        // establishes, so parity needs two independent opens.
        let mapped = FileTrace::open(&path).unwrap();
        let buffered = FileTrace::open(&path).unwrap();
        let a = mapped.trace_map(true).expect("binary traces map");
        let b = buffered.trace_map(false).expect("buffered backing");
        assert!(!b.is_mmap());
        assert_eq!(a.bytes(), b.bytes(), "seed {seed}");
        assert_eq!(a.accounted_bytes(), b.accounted_bytes(), "seed {seed}");

        let ea: Vec<TraceEvent> = mapped
            .events_iter()
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        let eb: Vec<TraceEvent> = buffered
            .events_iter()
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(ea, events, "seed {seed}");
        assert_eq!(eb, events, "seed {seed}");
        std::fs::remove_file(&path).ok();
    }
}

/// Random byte corruption of binary traces never panics the decoder.
#[test]
fn corrupted_binary_never_panics() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let events = random_events(&mut rng, 1, 20);
        let mut buf = encode_binary(&events);
        let i = 4 + rng.range_usize(0..buf.len() - 4); // keep the magic intact
        buf[i] = rng.next_u64() as u8;
        let _ = read_all(std::io::Cursor::new(buf), TraceFormat::Binary);
    }
}
