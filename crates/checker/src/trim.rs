//! Proof trimming: shrink a trace to the clauses the proof needs.
//!
//! The depth-first checker "can tell what clauses are needed for this
//! proof of unsatisfiability" (paper §3.2). This module turns that
//! observation into an artifact: given a formula and a trace, it emits a
//! **trimmed trace** containing only the learned clauses reachable from
//! the empty-clause derivation (plus the level-0 records and the final
//! conflict), preserving generation order so the result still checks
//! under every strategy. Trimmed traces are what you archive: the same
//! proof, minus the learned clauses the search produced but never used.

use crate::error::CheckError;
use crate::model::validate_learned;
use crate::outcome::UnsatCore;
use rescheck_cnf::Cnf;
use rescheck_obs::{Event, NullObserver, Observer, Phase};
use rescheck_trace::{TraceEvent, TraceSource};
use std::collections::{HashMap, HashSet};

/// The result of trimming a trace.
#[derive(Clone, Debug)]
pub struct TrimmedTrace {
    /// The surviving events, in their original order.
    pub events: Vec<TraceEvent>,
    /// Original clauses referenced by the surviving proof.
    pub core: UnsatCore,
    /// Learned clauses kept.
    pub kept_learned: u64,
    /// Learned clauses dropped as unreachable from the proof.
    pub dropped_learned: u64,
}

impl TrimmedTrace {
    /// Fraction of learned clauses kept, in percent.
    pub fn kept_percent(&self) -> f64 {
        let total = self.kept_learned + self.dropped_learned;
        if total == 0 {
            100.0
        } else {
            100.0 * self.kept_learned as f64 / total as f64
        }
    }
}

/// Trims `trace` to the learned clauses reachable from the final
/// conflicting clause and the level-0 antecedents.
///
/// Trimming performs the *structural* half of checking (ID validation and
/// reachability over the resolve-source DAG, including cycle detection)
/// but does not re-derive clauses; run any checking strategy on the
/// result to validate the resolutions themselves. A trimmed trace checks
/// if and only if the original does.
///
/// # Errors
///
/// Fails on unreadable traces, malformed or duplicate records, missing
/// final conflicts, unknown clause references and cyclic proofs.
///
/// # Examples
///
/// ```
/// use rescheck_checker::{check_unsat_claim, trim_trace, CheckConfig, Strategy};
/// use rescheck_cnf::Cnf;
/// use rescheck_solver::{Solver, SolverConfig};
/// use rescheck_trace::MemorySink;
///
/// let mut cnf = Cnf::new();
/// cnf.add_dimacs_clause(&[1]);
/// cnf.add_dimacs_clause(&[-1]);
/// let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
/// let mut trace = MemorySink::new();
/// assert!(solver.solve_traced(&mut trace)?.is_unsat());
///
/// let trimmed = trim_trace(&cnf, &trace)?;
/// // The trimmed trace still checks.
/// check_unsat_claim(&cnf, &trimmed.events, Strategy::BreadthFirst, &CheckConfig::default())?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn trim_trace<S: TraceSource + ?Sized>(
    cnf: &Cnf,
    trace: &S,
) -> Result<TrimmedTrace, CheckError> {
    trim_trace_observed(cnf, trace, &mut NullObserver)
}

/// [`trim_trace`] with an [`Observer`] receiving the `check:pass1` phase
/// timer and the `trim.kept_learned` / `trim.dropped_learned` gauges.
///
/// # Errors
///
/// See [`trim_trace`].
pub fn trim_trace_observed<S: TraceSource + ?Sized>(
    cnf: &Cnf,
    trace: &S,
    obs: &mut dyn Observer,
) -> Result<TrimmedTrace, CheckError> {
    let num_original = cnf.num_clauses();
    let pass1 = Phase::start("check:pass1", obs);

    // Pass 1: collect the structure.
    let mut sources: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut roots: Vec<u64> = Vec::new();
    let mut seen_vars: HashSet<u32> = HashSet::new();
    let mut final_id: Option<u64> = None;
    for event in trace.events_iter()? {
        match event? {
            TraceEvent::Learned { id, sources: srcs } => {
                validate_learned(id, srcs.len(), num_original, |c| sources.contains_key(&c))?;
                sources.insert(id, srcs);
            }
            TraceEvent::LevelZero { lit, antecedent } => {
                if !seen_vars.insert(lit.var().index() as u32) {
                    return Err(CheckError::DuplicateLevelZero { var: lit.var() });
                }
                roots.push(antecedent);
            }
            TraceEvent::FinalConflict { id } => {
                if final_id.is_none() {
                    final_id = Some(id);
                    roots.push(id);
                }
            }
        }
    }
    let final_id = final_id.ok_or(CheckError::NoFinalConflict)?;
    pass1.finish(obs);

    // Pass 2: reachability with cycle detection.
    let mut needed: HashSet<u64> = HashSet::new();
    let mut used_originals = vec![false; num_original];
    let mut gray: HashSet<u64> = HashSet::new();
    for &root in &roots {
        if root < num_original as u64 {
            used_originals[root as usize] = true;
            continue;
        }
        if needed.contains(&root) {
            continue;
        }
        let mut stack: Vec<(u64, Option<u64>)> = vec![(root, None)];
        while let Some(&(cur, parent)) = stack.last() {
            if cur < num_original as u64 || needed.contains(&cur) {
                stack.pop();
                continue;
            }
            if gray.contains(&cur) {
                gray.remove(&cur);
                needed.insert(cur);
                stack.pop();
                continue;
            }
            gray.insert(cur);
            let srcs = sources.get(&cur).ok_or(CheckError::UnknownClause {
                id: cur,
                referenced_by: parent,
            })?;
            for &s in srcs {
                if s < num_original as u64 {
                    used_originals[s as usize] = true;
                } else if gray.contains(&s) {
                    return Err(CheckError::CyclicProof { id: s });
                } else if !needed.contains(&s) {
                    stack.push((s, Some(cur)));
                }
            }
        }
    }

    // Pass 3: re-stream, keeping what survives.
    let mut events: Vec<TraceEvent> = Vec::new();
    let mut kept = 0u64;
    let mut dropped = 0u64;
    let mut emitted_final = false;
    for event in trace.events_iter()? {
        match event? {
            e @ TraceEvent::Learned { .. } => {
                let id = e.primary_id().expect("learned events have ids");
                if needed.contains(&id) {
                    kept += 1;
                    events.push(e);
                } else {
                    dropped += 1;
                }
            }
            e @ TraceEvent::LevelZero { .. } => events.push(e),
            TraceEvent::FinalConflict { id } if id == final_id && !emitted_final => {
                emitted_final = true;
                events.push(TraceEvent::FinalConflict { id });
            }
            TraceEvent::FinalConflict { .. } => {}
        }
    }

    let core_ids: Vec<usize> = used_originals
        .iter()
        .enumerate()
        .filter(|(_, &u)| u)
        .map(|(i, _)| i)
        .collect();

    obs.observe(&Event::GaugeSet {
        name: "trim.kept_learned",
        value: kept as f64,
    });
    obs.observe(&Event::GaugeSet {
        name: "trim.dropped_learned",
        value: dropped as f64,
    });

    Ok(TrimmedTrace {
        events,
        core: UnsatCore::new(core_ids, cnf),
        kept_learned: kept,
        dropped_learned: dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{check_unsat_claim, CheckConfig};
    use crate::outcome::Strategy;
    use rescheck_cnf::Lit;
    use rescheck_solver::{Solver, SolverConfig};
    use rescheck_trace::{MemorySink, TraceSink};

    fn pigeonhole(holes: usize) -> Cnf {
        let pigeons = holes + 1;
        let mut cnf = Cnf::new();
        let lit =
            |p: usize, h: usize| rescheck_cnf::Lit::positive(rescheck_cnf::Var::new(p * holes + h));
        for p in 0..pigeons {
            cnf.add_clause((0..holes).map(|h| lit(p, h)));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    cnf.add_clause([!lit(p1, h), !lit(p2, h)]);
                }
            }
        }
        cnf
    }

    #[test]
    fn trimmed_real_traces_still_check_under_all_strategies() {
        let cnf = pigeonhole(5);
        let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
        let mut trace = MemorySink::new();
        assert!(solver.solve_traced(&mut trace).unwrap().is_unsat());
        let trimmed = trim_trace(&cnf, &trace).unwrap();
        assert_eq!(
            trimmed.kept_learned + trimmed.dropped_learned,
            solver.stats().learned_clauses
        );
        for strategy in [
            Strategy::DepthFirst,
            Strategy::BreadthFirst,
            Strategy::Hybrid,
        ] {
            check_unsat_claim(&cnf, &trimmed.events, strategy, &CheckConfig::default())
                .unwrap_or_else(|e| panic!("{strategy}: {e}"));
        }
    }

    #[test]
    fn unreachable_learned_clauses_are_dropped() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]);
        cnf.add_dimacs_clause(&[-1, 2]);
        cnf.add_dimacs_clause(&[-2]);
        cnf.add_dimacs_clause(&[3, 4]);
        cnf.add_dimacs_clause(&[-3, 4]);
        let mut sink = MemorySink::new();
        sink.learned(5, &[3, 4]).unwrap(); // never used by the proof
        sink.level_zero(Lit::from_dimacs(1), 0).unwrap();
        sink.level_zero(Lit::from_dimacs(2), 1).unwrap();
        sink.final_conflict(2).unwrap();

        let trimmed = trim_trace(&cnf, &sink).unwrap();
        assert_eq!(trimmed.kept_learned, 0);
        assert_eq!(trimmed.dropped_learned, 1);
        assert_eq!(trimmed.kept_percent(), 0.0);
        assert_eq!(trimmed.core.clause_ids, vec![0, 1, 2]);
        assert!(trimmed
            .events
            .iter()
            .all(|e| !matches!(e, TraceEvent::Learned { .. })));
    }

    #[test]
    fn trimming_preserves_event_order() {
        let cnf = pigeonhole(4);
        let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
        let mut trace = MemorySink::new();
        assert!(solver.solve_traced(&mut trace).unwrap().is_unsat());
        let trimmed = trim_trace(&cnf, &trace).unwrap();
        // Surviving learned events appear in the same relative order as
        // in the original trace.
        let original_ids: Vec<u64> = trace
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Learned { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        let trimmed_ids: Vec<u64> = trimmed
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Learned { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        let mut cursor = 0;
        for id in trimmed_ids {
            cursor = original_ids[cursor..]
                .iter()
                .position(|&o| o == id)
                .expect("order preserved")
                + cursor
                + 1;
        }
    }

    #[test]
    fn trimming_is_idempotent() {
        let cnf = pigeonhole(4);
        let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
        let mut trace = MemorySink::new();
        assert!(solver.solve_traced(&mut trace).unwrap().is_unsat());
        let once = trim_trace(&cnf, &trace).unwrap();
        let twice = trim_trace(&cnf, &once.events).unwrap();
        assert_eq!(once.events, twice.events);
        assert_eq!(twice.dropped_learned, 0);
        assert_eq!(once.core, twice.core);
    }

    #[test]
    fn missing_final_conflict_is_rejected() {
        let cnf = pigeonhole(3);
        let sink = MemorySink::new();
        assert!(matches!(
            trim_trace(&cnf, &sink).unwrap_err(),
            CheckError::NoFinalConflict
        ));
    }

    #[test]
    fn cyclic_proofs_are_rejected() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]);
        let mut sink = MemorySink::new();
        sink.learned(1, &[2, 0]).unwrap();
        sink.learned(2, &[1, 0]).unwrap();
        sink.final_conflict(1).unwrap();
        assert!(matches!(
            trim_trace(&cnf, &sink).unwrap_err(),
            CheckError::CyclicProof { .. }
        ));
    }

    #[test]
    fn trim_core_matches_depth_first_core() {
        let cnf = pigeonhole(5);
        let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
        let mut trace = MemorySink::new();
        assert!(solver.solve_traced(&mut trace).unwrap().is_unsat());
        let trimmed = trim_trace(&cnf, &trace).unwrap();
        let df =
            check_unsat_claim(&cnf, &trace, Strategy::DepthFirst, &CheckConfig::default()).unwrap();
        // The DF core only contains originals the *derivation* touched;
        // the trim core additionally pins level-0 antecedents, so it is a
        // superset.
        let df_core: std::collections::HashSet<_> =
            df.core.unwrap().clause_ids.into_iter().collect();
        let trim_core: std::collections::HashSet<_> =
            trimmed.core.clause_ids.iter().copied().collect();
        assert!(df_core.is_subset(&trim_core));
    }
}
