//! The breadth-first checking strategy (paper §3.3).
//!
//! Learned clauses are rebuilt in the order the solver generated them, so
//! every resolve source is already available when it is needed. A first
//! pass over the trace counts how many times each learned clause is used
//! as a resolve source; during the resolution pass a clause is **freed as
//! soon as its use count reaches zero** (unless it is pinned for the
//! final derivation). The checker therefore never holds more clauses than
//! the solver itself did — the guarantee that lets it finish instances
//! where the depth-first strategy runs out of memory.
//!
//! As a side effect, the breadth-first strategy verifies *every* learned
//! clause, not just those on the proof path.
//!
//! Both passes are factored into reusable pieces — [`Pass1Tables`] and
//! [`BfResolveState`] — shared verbatim with the parallel breadth-first
//! checker in [`crate::parallel`]; running the identical per-event code
//! is what makes the parallel statistics bit-identical to the sequential
//! ones.

use crate::api::CheckConfig;
use crate::arena::ClauseArena;
use crate::cache::OriginalCache;
use crate::cancel::CancelFlag;
use crate::error::CheckError;
use crate::final_phase::{derive_empty_clause, ClauseProvider};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::kernel::{KernelStats, ResolutionKernel};
use crate::memory::{MemoryMeter, LEVEL_ZERO_RECORD_BYTES, USE_COUNT_BYTES};
use crate::model::{
    finish_visit, park_check_error, table_capacity_hint, validate_learned, LevelZeroMap,
};
use crate::outcome::{CheckOutcome, CheckStats, Strategy};
use crate::resolve::normalize_literals;
use crate::scratch::{kernel_stats_since, CheckScratch};
use rescheck_cnf::{Cnf, Lit};
use rescheck_obs::{Event, Observer, Phase};
use rescheck_trace::{EventRef, TraceEvent, TraceSource};
use std::sync::Arc;
use std::time::Instant;

/// Everything pass 1 learns from the trace: use counts, the set of
/// defined learned ids, the level-0 assignment, the final-conflict list
/// and the pin set.
///
/// The `absorb_*` methods perform the per-event validation in trace
/// order. The sequential pass calls them directly; the sharded pass of
/// [`crate::parallel`] replays compact per-event records through the
/// same methods after merging, so both reject a malformed trace with the
/// identical first error.
#[derive(Default)]
pub(crate) struct Pass1Tables {
    pub use_counts: FxHashMap<u64, u32>,
    pub defined: FxHashSet<u64>,
    pub level_zero: LevelZeroMap,
    pub pinned: FxHashSet<u64>,
    pub final_ids: Vec<u64>,
}

impl Pass1Tables {
    /// Pre-sizes the per-clause tables for roughly `additional` more
    /// learned-clause entries (a hint derived from the encoded trace
    /// size; see [`table_capacity_hint`]).
    pub(crate) fn reserve(&mut self, additional: usize) {
        self.use_counts.reserve(additional);
        self.defined.reserve(additional);
    }

    /// Absorbs a learned-clause record (without its source counting —
    /// counting is the shardable part and is done by the caller).
    pub(crate) fn absorb_learned(
        &mut self,
        id: u64,
        num_sources: usize,
        num_original: usize,
    ) -> Result<(), CheckError> {
        validate_learned(id, num_sources, num_original, |c| self.defined.contains(&c))?;
        self.defined.insert(id);
        self.use_counts.entry(id).or_insert(0);
        Ok(())
    }

    /// Absorbs a level-0 assignment record, pinning its antecedent.
    pub(crate) fn absorb_level_zero(
        &mut self,
        lit: Lit,
        antecedent: u64,
        num_original: usize,
    ) -> Result<(), CheckError> {
        self.level_zero.insert(lit, antecedent)?;
        if antecedent >= num_original as u64 {
            self.pinned.insert(antecedent);
        }
        Ok(())
    }

    /// Absorbs a final-conflict record. Deliberately does **not** pin the
    /// id: only the first final conflict starts the empty-clause
    /// derivation, and pinning the others would keep dead clauses
    /// resident for the whole resolution pass (see [`finish`]).
    ///
    /// [`finish`]: Pass1Tables::finish
    pub(crate) fn absorb_final(&mut self, id: u64) {
        self.final_ids.push(id);
    }

    /// Closes pass 1: selects the derivation's start clause and pins it.
    ///
    /// Earlier versions pinned *every* `FinalConflict` id even though the
    /// derivation only ever starts from the first one, so duplicate or
    /// extra final-conflict records kept dead clauses resident and
    /// inflated `peak_memory_bytes` — defeating the bounded-memory
    /// guarantee this strategy exists for. Only the start id is pinned
    /// now.
    pub(crate) fn finish(&mut self, num_original: usize) -> Result<u64, CheckError> {
        let start_id = *self.final_ids.first().ok_or(CheckError::NoFinalConflict)?;
        if start_id >= num_original as u64 {
            self.pinned.insert(start_id);
        }
        Ok(start_id)
    }

    /// Accounted bytes of the tables this strategy keeps resident.
    pub(crate) fn resident_bytes(&self) -> u64 {
        self.use_counts.len() as u64 * USE_COUNT_BYTES
            + self.level_zero.len() as u64 * LEVEL_ZERO_RECORD_BYTES
    }
}

/// Runs pass 1 sequentially over a streaming source.
pub(crate) fn sequential_pass1<S: TraceSource + ?Sized>(
    trace: &S,
    num_original: usize,
    cancel: &CancelFlag,
) -> Result<(Pass1Tables, u64), CheckError> {
    let mut tables = Pass1Tables::default();
    if let Some(encoded) = trace.encoded_size() {
        tables.reserve(table_capacity_hint(encoded));
    }
    let mut seen: u64 = 0;
    let mut parked = None;
    let result = trace.visit_events(&mut |event| {
        seen += 1;
        let step = (|| -> Result<(), CheckError> {
            if seen.is_multiple_of(crate::depth_first::PROGRESS_STRIDE) {
                cancel.check()?;
            }
            match event {
                EventRef::Learned { id, sources } => {
                    tables.absorb_learned(id, sources.len(), num_original)?;
                    for &s in sources {
                        if s >= num_original as u64 {
                            *tables.use_counts.entry(s).or_insert(0) += 1;
                        }
                    }
                }
                EventRef::LevelZero { lit, antecedent } => {
                    tables.absorb_level_zero(lit, antecedent, num_original)?;
                }
                EventRef::FinalConflict { id } => tables.absorb_final(id),
            }
            Ok(())
        })();
        step.map_err(|e| park_check_error(&mut parked, e))
    });
    finish_visit(parked, result)?;
    let start_id = tables.finish(num_original)?;
    Ok((tables, start_id))
}

/// The resolution pass (pass 2) plus the final empty-clause phase.
///
/// Feed it every trace event in order via [`handle_event`], then call
/// [`into_outcome`]. The parallel checker drives the same state from a
/// pipelined reader thread.
///
/// [`handle_event`]: BfResolveState::handle_event
/// [`into_outcome`]: BfResolveState::into_outcome
pub(crate) struct BfResolveState<'a> {
    cnf: &'a Cnf,
    num_original: usize,
    tables: Pass1Tables,
    /// Live learned clauses (borrowed from the job's scratch); slots are
    /// recycled the moment a clause's last use is done.
    arena: &'a mut ClauseArena,
    /// Chain resolver; scratch reused across every learned clause.
    kernel: &'a mut ResolutionKernel,
    originals: &'a mut OriginalCache,
    /// Kernel counters at job start, for per-job delta gauges.
    kernel_base: KernelStats,
    pub meter: MemoryMeter,
    cancel: CancelFlag,
    pub resolutions: u64,
    pub clauses_built: u64,
}

impl<'a> BfResolveState<'a> {
    pub(crate) fn new(
        cnf: &'a Cnf,
        tables: Pass1Tables,
        meter: MemoryMeter,
        config: &CheckConfig,
        scratch: &'a mut CheckScratch,
    ) -> Self {
        let kernel_base = scratch.start_run(config.original_cache_bytes);
        let (kernel, arena, originals) = scratch.parts();
        BfResolveState {
            cnf,
            num_original: cnf.num_clauses(),
            tables,
            arena,
            kernel,
            originals,
            kernel_base,
            meter,
            cancel: config.cancel.clone(),
            resolutions: 0,
            clauses_built: 0,
        }
    }

    fn fetch_original(&mut self, id: u64) -> Arc<[Lit]> {
        if let Some(c) = self.originals.get(id) {
            return c;
        }
        // Promote from the warm tier when a previous job on this formula
        // left the normalized clause behind; the insert below charges the
        // current meter identically either way.
        let lits: Arc<[Lit]> = self.originals.take_warm(id).unwrap_or_else(|| {
            Arc::from(normalize_literals(
                self.cnf
                    .clause(id as usize)
                    .expect("in range")
                    .iter()
                    .copied(),
            ))
        });
        self.originals.insert(id, &lits, &mut self.meter);
        lits
    }

    /// Seeds (step 0) or folds (later steps) one source clause into the
    /// kernel, with breadth-first availability semantics: a learned
    /// source that is defined but not yet built is a forward reference.
    fn feed_source(&mut self, target: u64, step: usize, source: u64) -> Result<(), CheckError> {
        if source < self.num_original as u64 {
            let clause = self.fetch_original(source);
            if step == 0 {
                self.kernel.begin(&clause);
                return Ok(());
            }
            self.kernel.fold(&clause)
        } else {
            // Split borrow: the arena slice is read while the kernel's
            // disjoint scratch buffers are written.
            let Some(clause) = self.arena.get(source) else {
                return Err(if self.tables.defined.contains(&source) {
                    CheckError::ForwardReference { id: target, source }
                } else {
                    CheckError::UnknownClause {
                        id: source,
                        referenced_by: Some(target),
                    }
                });
            };
            if step == 0 {
                self.kernel.begin(clause);
                return Ok(());
            }
            self.kernel.fold(clause)
        }
        .map_err(|failure| CheckError::NotResolvable {
            target: Some(target),
            step,
            with: source,
            failure,
        })?;
        self.resolutions += 1;
        Ok(())
    }

    /// Processes one trace event of the resolution pass. Non-`Learned`
    /// events are ignored (pass 1 already consumed them).
    pub(crate) fn handle_event(
        &mut self,
        event: &TraceEvent,
        obs: &mut dyn Observer,
    ) -> Result<(), CheckError> {
        let TraceEvent::Learned { id, sources } = event else {
            return Ok(());
        };
        self.handle_learned(*id, sources, obs)
    }

    /// Rebuilds one learned clause from a borrowed source list — the
    /// allocation-free core of [`handle_event`], called directly by the
    /// streaming visitor of [`run`].
    ///
    /// [`handle_event`]: BfResolveState::handle_event
    pub(crate) fn handle_learned(
        &mut self,
        id: u64,
        sources: &[u64],
        obs: &mut dyn Observer,
    ) -> Result<(), CheckError> {
        for (step, &s) in sources.iter().enumerate() {
            self.feed_source(id, step, s)?;
        }
        obs.observe(&Event::HistRecord {
            name: "check.resolve.chain_len",
            value: sources.len() as u64,
        });
        self.clauses_built += 1;
        if self
            .clauses_built
            .is_multiple_of(crate::depth_first::PROGRESS_STRIDE)
        {
            self.cancel.check()?;
            obs.observe(&Event::Progress {
                phase: "check:resolve",
                done: self.clauses_built,
                unit: "clauses",
                detail: None,
            });
        }

        // Release sources whose last use this was — before storing the
        // resolvent, so it can reuse a just-freed arena extent.
        for &s in sources {
            if s >= self.num_original as u64 && !self.tables.pinned.contains(&s) {
                let count = self.tables.use_counts.get_mut(&s).expect("counted");
                *count -= 1;
                if *count == 0 {
                    self.arena.remove(s, &mut self.meter);
                }
            }
        }

        // Store the new clause unless it is already dead on arrival
        // (the clause-length histogram samples only stored resolvents).
        let remaining = self.tables.use_counts.get(&id).copied().unwrap_or(0);
        if remaining > 0 || self.tables.pinned.contains(&id) {
            let lits = self.kernel.finish();
            let clause_len = lits.len() as u64;
            self.arena.insert(id, lits, &mut self.meter)?;
            obs.observe(&Event::HistRecord {
                name: "check.resolve.clause_len",
                value: clause_len,
            });
        }
        Ok(())
    }

    /// Runs the final empty-clause phase and assembles the outcome.
    pub(crate) fn into_outcome(
        mut self,
        start_id: u64,
        strategy: Strategy,
        started: Instant,
        trace_bytes: Option<u64>,
        obs: &mut dyn Observer,
    ) -> Result<CheckOutcome, CheckError> {
        let final_phase = Phase::start("final-phase", obs);
        let level_zero = std::mem::take(&mut self.tables.level_zero);
        let final_stats = derive_empty_clause(start_id, &level_zero, &mut self)?;
        final_phase.finish(obs);

        let stats = CheckStats {
            strategy,
            learned_in_trace: self.tables.defined.len() as u64,
            clauses_built: self.clauses_built,
            resolutions: self.resolutions + final_stats.resolutions,
            peak_memory_bytes: self.meter.peak(),
            runtime: started.elapsed(),
            trace_bytes,
        };
        crate::depth_first::emit_check_gauges(obs, &stats, self.tables.use_counts.len() as u64);
        crate::depth_first::emit_kernel_gauges(
            obs,
            &kernel_stats_since(&self.kernel.stats(), &self.kernel_base),
            self.arena.charged_bytes(),
            self.arena.reuse_hits(),
        );
        Ok(CheckOutcome { core: None, stats })
    }
}

/// The final derivation fetches pinned learned clauses from the arena
/// and originals through the accounted cache.
impl ClauseProvider for BfResolveState<'_> {
    fn clause_into(&mut self, id: u64, out: &mut Vec<Lit>) -> Result<(), CheckError> {
        if id < self.num_original as u64 {
            let clause = self.fetch_original(id);
            out.clear();
            out.extend_from_slice(&clause);
            return Ok(());
        }
        let Some(clause) = self.arena.get(id) else {
            return Err(CheckError::UnknownClause {
                id,
                referenced_by: None,
            });
        };
        out.clear();
        out.extend_from_slice(clause);
        Ok(())
    }
}

pub(crate) fn run<S: TraceSource + ?Sized>(
    cnf: &Cnf,
    trace: &S,
    config: &CheckConfig,
    obs: &mut dyn Observer,
) -> Result<CheckOutcome, CheckError> {
    let mut scratch = CheckScratch::new();
    run_scoped(cnf, trace, config, &mut scratch, obs)
}

/// [`run`] against caller-owned scratch buffers; see
/// [`crate::depth_first::run_scoped`] and the [`crate::scratch`] docs.
pub(crate) fn run_scoped<S: TraceSource + ?Sized>(
    cnf: &Cnf,
    trace: &S,
    config: &CheckConfig,
    scratch: &mut CheckScratch,
    obs: &mut dyn Observer,
) -> Result<CheckOutcome, CheckError> {
    let start = Instant::now();
    let num_original = cnf.num_clauses();
    let mut meter = MemoryMeter::new(config.memory_limit);

    let pass1 = Phase::start("check:pass1", obs);
    let (tables, start_id) = sequential_pass1(trace, num_original, &config.cancel)?;
    // Accounting for the bookkeeping tables the strategy keeps resident.
    meter.alloc(tables.resident_bytes())?;
    pass1.finish(obs);

    let resolve_phase = Phase::start("check:resolve", obs);
    let mut state = BfResolveState::new(cnf, tables, meter, config, scratch);
    let mut parked = None;
    let result = trace.visit_events(&mut |event| {
        let EventRef::Learned { id, sources } = event else {
            return Ok(());
        };
        state
            .handle_learned(id, sources, &mut *obs)
            .map_err(|e| park_check_error(&mut parked, e))
    });
    finish_visit(parked, result)?;
    resolve_phase.finish(obs);

    state.into_outcome(
        start_id,
        Strategy::BreadthFirst,
        start,
        trace.encoded_size(),
        obs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::clause_bytes;
    use rescheck_obs::NullObserver;
    use rescheck_trace::{MemorySink, TraceSink};

    #[test]
    fn accepts_learned_clause_proof_and_builds_everything() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1, 2]);
        cnf.add_dimacs_clause(&[1, -2]);
        cnf.add_dimacs_clause(&[-1, 2]);
        cnf.add_dimacs_clause(&[-1, -2]);
        let mut sink = MemorySink::new();
        sink.learned(4, &[0, 1]).unwrap(); // (1)
        sink.learned(5, &[2, 3]).unwrap(); // (-1)
        sink.level_zero(Lit::from_dimacs(1), 4).unwrap();
        sink.final_conflict(5).unwrap();

        let outcome = run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap();
        assert!(outcome.core.is_none());
        assert_eq!(outcome.stats.clauses_built, 2);
        assert_eq!(outcome.stats.learned_in_trace, 2);
        assert!((outcome.stats.built_percent() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn builds_even_unneeded_clauses() {
        // Unlike depth-first, an invalid *irrelevant* learned clause is
        // still caught.
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]); // 0
        cnf.add_dimacs_clause(&[-1, 2]); // 1
        cnf.add_dimacs_clause(&[-2]); // 2
        cnf.add_dimacs_clause(&[3, 4]); // 3
        cnf.add_dimacs_clause(&[5, 6]); // 4 — shares nothing with 3
        let mut sink = MemorySink::new();
        sink.learned(5, &[3, 4]).unwrap(); // invalid resolution
        sink.level_zero(Lit::from_dimacs(1), 0).unwrap();
        sink.level_zero(Lit::from_dimacs(2), 1).unwrap();
        sink.final_conflict(2).unwrap();

        let err = run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap_err();
        assert!(matches!(
            err,
            CheckError::NotResolvable {
                target: Some(5),
                ..
            }
        ));
    }

    #[test]
    fn forward_reference_is_rejected() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1, 2]);
        cnf.add_dimacs_clause(&[1, -2]);
        cnf.add_dimacs_clause(&[-1, 2]);
        cnf.add_dimacs_clause(&[-1, -2]);
        let mut sink = MemorySink::new();
        // #4 uses #5 before it is defined.
        sink.learned(4, &[5, 0]).unwrap();
        sink.learned(5, &[2, 3]).unwrap();
        sink.final_conflict(4).unwrap();
        let err = run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap_err();
        assert!(matches!(
            err,
            CheckError::ForwardReference { id: 4, source: 5 }
        ));
    }

    #[test]
    fn unknown_source_is_rejected() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]);
        let mut sink = MemorySink::new();
        sink.learned(1, &[0, 42]).unwrap();
        sink.final_conflict(1).unwrap();
        let err = run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap_err();
        assert!(matches!(err, CheckError::UnknownClause { id: 42, .. }));
    }

    #[test]
    fn peak_memory_reflects_freeing() {
        // A long chain where each learned clause is used exactly once:
        // breadth-first should hold O(1) clauses, depth-first holds all.
        let mut cnf = Cnf::new();
        let n = 64i64;
        cnf.add_dimacs_clause(&[1]); // 0: (x1)
        for i in 1..n {
            cnf.add_dimacs_clause(&[-i, i + 1]); // i: xi → xi+1
        }
        cnf.add_dimacs_clause(&[-n]); // n: (¬xn)
        let mut sink = MemorySink::new();
        // Learned chain: #n+1 = r(0, 1) = (x2), #n+2 = r(#n+1, 2) = (x3)…
        let mut prev = 0u64;
        for i in 1..n {
            let next_id = (n + i) as u64;
            sink.learned(next_id, &[prev, i as u64]).unwrap();
            prev = next_id;
        }
        // prev is now (xn); level 0: xn by prev; final conflict (¬xn).
        sink.level_zero(Lit::from_dimacs(n), prev).unwrap();
        sink.final_conflict(n as u64).unwrap();

        let bf = run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap();
        let df = crate::depth_first::run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver)
            .unwrap();
        assert!(
            bf.stats.peak_memory_bytes < df.stats.peak_memory_bytes,
            "bf {} vs df {}",
            bf.stats.peak_memory_bytes,
            df.stats.peak_memory_bytes
        );
        assert_eq!(bf.stats.clauses_built, (n - 1) as u64);
    }

    #[test]
    fn extra_final_conflicts_do_not_inflate_peak_memory() {
        // Regression for the pinning bug: every FinalConflict id used to
        // be pinned forever even though the derivation only starts from
        // the first one, so extra final conflicts kept dead clauses
        // resident and defeated the bounded-memory guarantee.
        let mut cnf = Cnf::new();
        let n = 32i64;
        cnf.add_dimacs_clause(&[1]);
        for i in 1..n {
            cnf.add_dimacs_clause(&[-i, i + 1]);
        }
        cnf.add_dimacs_clause(&[-n]);
        let build = |extra_finals: bool| {
            let mut sink = MemorySink::new();
            let mut prev = 0u64;
            for i in 1..n {
                let next_id = (n + i) as u64;
                sink.learned(next_id, &[prev, i as u64]).unwrap();
                // Redundant extra final-conflict records naming mid-chain
                // learned clauses: they must not stay resident.
                if extra_finals && i > 1 {
                    sink.final_conflict(next_id - 1).unwrap();
                }
                prev = next_id;
            }
            sink.level_zero(Lit::from_dimacs(n), prev).unwrap();
            sink
        };
        // The clean trace and the one with extra final conflicts must now
        // report the same clause residency; the first final conflict must
        // still drive the derivation.
        let mut clean = build(false);
        clean.final_conflict(n as u64).unwrap();
        let mut noisy = build(true);
        let mut noisy_events = noisy.into_events();
        // Put the real final conflict *first* so the derivation is
        // unchanged; the extra records come later.
        let insert_at = noisy_events
            .iter()
            .position(|e| matches!(e, rescheck_trace::TraceEvent::FinalConflict { .. }))
            .unwrap();
        noisy_events.insert(
            insert_at,
            rescheck_trace::TraceEvent::FinalConflict { id: n as u64 },
        );
        noisy = noisy_events.into();

        let clean_out = run(&cnf, &clean, &CheckConfig::default(), &mut NullObserver).unwrap();
        let noisy_out = run(&cnf, &noisy, &CheckConfig::default(), &mut NullObserver).unwrap();
        assert_eq!(
            clean_out.stats.peak_memory_bytes, noisy_out.stats.peak_memory_bytes,
            "extra final conflicts must not pin dead clauses"
        );
    }

    #[test]
    fn original_cache_is_charged_to_the_meter() {
        // With many distinct original clauses in play, the accounted peak
        // must include the cached normalized originals.
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1, 2]);
        cnf.add_dimacs_clause(&[1, -2]);
        cnf.add_dimacs_clause(&[-1, 2]);
        cnf.add_dimacs_clause(&[-1, -2]);
        let mut sink = MemorySink::new();
        sink.learned(4, &[0, 1]).unwrap();
        sink.learned(5, &[2, 3]).unwrap();
        sink.level_zero(Lit::from_dimacs(1), 4).unwrap();
        sink.final_conflict(5).unwrap();

        let outcome = run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap();
        // Tables: 6 use-count entries would be at most 6; the four cached
        // originals alone cost 4 * clause_bytes(2) = 128 bytes, far above
        // the bookkeeping noise — the old accounting reported none of it.
        let cached_originals = 4 * clause_bytes(2);
        assert!(
            outcome.stats.peak_memory_bytes >= cached_originals,
            "peak {} must include {} bytes of cached originals",
            outcome.stats.peak_memory_bytes,
            cached_originals
        );
    }

    #[test]
    fn cancellation_stops_the_check() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]);
        cnf.add_dimacs_clause(&[-1]);
        let mut sink = MemorySink::new();
        sink.level_zero(Lit::from_dimacs(1), 0).unwrap();
        sink.final_conflict(1).unwrap();
        let config = CheckConfig {
            cancel: CancelFlag::armed(),
            ..CheckConfig::default()
        };
        config.cancel.cancel();
        // The trace is tiny so stride points are never reached — the
        // check succeeds. A longer trace hits the stride and stops.
        let mut big = MemorySink::new();
        let mut cnf2 = Cnf::new();
        let n = 4096i64;
        cnf2.add_dimacs_clause(&[1]);
        for i in 1..n {
            cnf2.add_dimacs_clause(&[-i, i + 1]);
        }
        cnf2.add_dimacs_clause(&[-n]);
        let mut prev = 0u64;
        for i in 1..n {
            let next_id = (n + i) as u64;
            big.learned(next_id, &[prev, i as u64]).unwrap();
            prev = next_id;
        }
        big.level_zero(Lit::from_dimacs(n), prev).unwrap();
        big.final_conflict(n as u64).unwrap();
        let err = run(&cnf2, &big, &config, &mut NullObserver).unwrap_err();
        assert!(matches!(err, CheckError::Cancelled));
    }

    #[test]
    fn missing_final_conflict_is_rejected() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]);
        let sink = MemorySink::new();
        let err = run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap_err();
        assert!(matches!(err, CheckError::NoFinalConflict));
    }

    #[test]
    fn memory_limit_applies() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]);
        cnf.add_dimacs_clause(&[-1]);
        let mut sink = MemorySink::new();
        sink.level_zero(Lit::from_dimacs(1), 0).unwrap();
        sink.final_conflict(1).unwrap();
        let config = CheckConfig {
            memory_limit: Some(1),
            ..CheckConfig::default()
        };
        let err = run(&cnf, &sink, &config, &mut NullObserver).unwrap_err();
        assert!(matches!(err, CheckError::MemoryLimitExceeded { .. }));
    }
}
