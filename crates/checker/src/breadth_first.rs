//! The breadth-first checking strategy (paper §3.3).
//!
//! Learned clauses are rebuilt in the order the solver generated them, so
//! every resolve source is already available when it is needed. A first
//! pass over the trace counts how many times each learned clause is used
//! as a resolve source; during the resolution pass a clause is **freed as
//! soon as its use count reaches zero** (unless it is pinned for the
//! final derivation). The checker therefore never holds more clauses than
//! the solver itself did — the guarantee that lets it finish instances
//! where the depth-first strategy runs out of memory.
//!
//! As a side effect, the breadth-first strategy verifies *every* learned
//! clause, not just those on the proof path.

use crate::api::CheckConfig;
use crate::error::CheckError;
use crate::final_phase::{derive_empty_clause, ClauseProvider};
use crate::memory::{clause_bytes, MemoryMeter, LEVEL_ZERO_RECORD_BYTES, USE_COUNT_BYTES};
use crate::model::{validate_learned, LevelZeroMap};
use crate::outcome::{CheckOutcome, CheckStats, Strategy};
use crate::resolve::{normalize_literals, resolve_sorted};
use rescheck_cnf::{Cnf, Lit};
use rescheck_obs::{Event, Observer, Phase};
use rescheck_trace::{TraceEvent, TraceSource};
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::time::Instant;

pub(crate) fn run<S: TraceSource + ?Sized>(
    cnf: &Cnf,
    trace: &S,
    config: &CheckConfig,
    obs: &mut dyn Observer,
) -> Result<CheckOutcome, CheckError> {
    let start = Instant::now();
    let num_original = cnf.num_clauses();
    let mut meter = MemoryMeter::new(config.memory_limit);

    let pass1 = Phase::start("check:pass1", obs);
    // ---- Pass 1: count resolve-source uses; collect the level-0
    // assignment, the final conflict, and the pin set.
    let mut use_counts: HashMap<u64, u32> = HashMap::new();
    let mut defined: HashSet<u64> = HashSet::new();
    let mut level_zero = LevelZeroMap::default();
    let mut pinned: HashSet<u64> = HashSet::new();
    let mut final_ids: Vec<u64> = Vec::new();

    for event in trace.events_iter()? {
        match event? {
            TraceEvent::Learned { id, sources } => {
                validate_learned(id, &sources, num_original, |c| defined.contains(&c))?;
                defined.insert(id);
                use_counts.entry(id).or_insert(0);
                for &s in &sources {
                    if s >= num_original as u64 {
                        *use_counts.entry(s).or_insert(0) += 1;
                    }
                }
            }
            TraceEvent::LevelZero { lit, antecedent } => {
                level_zero.insert(lit, antecedent)?;
                if antecedent >= num_original as u64 {
                    pinned.insert(antecedent);
                }
            }
            TraceEvent::FinalConflict { id } => {
                final_ids.push(id);
                if id >= num_original as u64 {
                    pinned.insert(id);
                }
            }
        }
    }

    let start_id = *final_ids.first().ok_or(CheckError::NoFinalConflict)?;

    // Accounting for the bookkeeping tables the strategy keeps resident.
    meter.alloc(
        use_counts.len() as u64 * USE_COUNT_BYTES
            + level_zero.len() as u64 * LEVEL_ZERO_RECORD_BYTES,
    )?;
    pass1.finish(obs);

    let resolve_phase = Phase::start("check:resolve", obs);
    // ---- Pass 2: rebuild learned clauses in generation order, freeing
    // clauses whose uses are exhausted.
    let mut live: HashMap<u64, Rc<[Lit]>> = HashMap::new();
    let mut original_cache: HashMap<u64, Rc<[Lit]>> = HashMap::new();
    let mut resolutions: u64 = 0;
    let mut clauses_built: u64 = 0;

    let fetch = |id: u64,
                 parent: u64,
                 cnf: &Cnf,
                 live: &HashMap<u64, Rc<[Lit]>>,
                 cache: &mut HashMap<u64, Rc<[Lit]>>,
                 defined: &HashSet<u64>|
     -> Result<Rc<[Lit]>, CheckError> {
        if id < num_original as u64 {
            if let Some(c) = cache.get(&id) {
                return Ok(c.clone());
            }
            let lits: Rc<[Lit]> = Rc::from(normalize_literals(
                cnf.clause(id as usize).expect("in range").iter().copied(),
            ));
            cache.insert(id, lits.clone());
            return Ok(lits);
        }
        match live.get(&id) {
            Some(c) => Ok(c.clone()),
            None if defined.contains(&id) => Err(CheckError::ForwardReference {
                id: parent,
                source: id,
            }),
            None => Err(CheckError::UnknownClause {
                id,
                referenced_by: Some(parent),
            }),
        }
    };

    for event in trace.events_iter()? {
        let TraceEvent::Learned { id, sources } = event? else {
            continue;
        };
        let mut acc: Vec<Lit> =
            fetch(sources[0], id, cnf, &live, &mut original_cache, &defined)?.to_vec();
        for (step, &s) in sources.iter().enumerate().skip(1) {
            let right = fetch(s, id, cnf, &live, &mut original_cache, &defined)?;
            acc = resolve_sorted(&acc, &right).map_err(|failure| CheckError::NotResolvable {
                target: Some(id),
                step,
                with: s,
                failure,
            })?;
            resolutions += 1;
        }
        clauses_built += 1;
        if clauses_built.is_multiple_of(crate::depth_first::PROGRESS_STRIDE) {
            obs.observe(&Event::Progress {
                phase: "check:resolve",
                done: clauses_built,
                unit: "clauses",
                detail: None,
            });
        }

        // Release sources whose last use this was.
        for &s in &sources {
            if s >= num_original as u64 && !pinned.contains(&s) {
                let count = use_counts.get_mut(&s).expect("counted in pass 1");
                *count -= 1;
                if *count == 0 {
                    if let Some(freed) = live.remove(&s) {
                        meter.free(clause_bytes(freed.len()));
                    }
                }
            }
        }

        // Store the new clause unless it is already dead on arrival.
        let remaining = use_counts.get(&id).copied().unwrap_or(0);
        if remaining > 0 || pinned.contains(&id) {
            meter.alloc(clause_bytes(acc.len()))?;
            live.insert(id, Rc::from(acc));
        }
    }

    resolve_phase.finish(obs);

    // ---- Final phase: derive the empty clause from the pinned clauses.
    let final_phase = Phase::start("final-phase", obs);
    let mut provider = PinnedProvider {
        cnf,
        num_original,
        live: &live,
        original_cache: &mut original_cache,
    };
    let final_stats = derive_empty_clause(start_id, &level_zero, &mut provider)?;
    final_phase.finish(obs);

    let stats = CheckStats {
        strategy: Strategy::BreadthFirst,
        learned_in_trace: defined.len() as u64,
        clauses_built,
        resolutions: resolutions + final_stats.resolutions,
        peak_memory_bytes: meter.peak(),
        runtime: start.elapsed(),
        trace_bytes: trace.encoded_size(),
    };
    crate::depth_first::emit_check_gauges(obs, &stats, use_counts.len() as u64);

    Ok(CheckOutcome { core: None, stats })
}

/// Serves the final derivation from the pinned clause table.
struct PinnedProvider<'a> {
    cnf: &'a Cnf,
    num_original: usize,
    live: &'a HashMap<u64, Rc<[Lit]>>,
    original_cache: &'a mut HashMap<u64, Rc<[Lit]>>,
}

impl ClauseProvider for PinnedProvider<'_> {
    fn clause(&mut self, id: u64) -> Result<Rc<[Lit]>, CheckError> {
        if id < self.num_original as u64 {
            if let Some(c) = self.original_cache.get(&id) {
                return Ok(c.clone());
            }
            let lits: Rc<[Lit]> = Rc::from(normalize_literals(
                self.cnf
                    .clause(id as usize)
                    .expect("in range")
                    .iter()
                    .copied(),
            ));
            self.original_cache.insert(id, lits.clone());
            return Ok(lits);
        }
        self.live
            .get(&id)
            .cloned()
            .ok_or(CheckError::UnknownClause {
                id,
                referenced_by: None,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescheck_obs::NullObserver;
    use rescheck_trace::{MemorySink, TraceSink};

    #[test]
    fn accepts_learned_clause_proof_and_builds_everything() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1, 2]);
        cnf.add_dimacs_clause(&[1, -2]);
        cnf.add_dimacs_clause(&[-1, 2]);
        cnf.add_dimacs_clause(&[-1, -2]);
        let mut sink = MemorySink::new();
        sink.learned(4, &[0, 1]).unwrap(); // (1)
        sink.learned(5, &[2, 3]).unwrap(); // (-1)
        sink.level_zero(Lit::from_dimacs(1), 4).unwrap();
        sink.final_conflict(5).unwrap();

        let outcome = run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap();
        assert!(outcome.core.is_none());
        assert_eq!(outcome.stats.clauses_built, 2);
        assert_eq!(outcome.stats.learned_in_trace, 2);
        assert!((outcome.stats.built_percent() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn builds_even_unneeded_clauses() {
        // Unlike depth-first, an invalid *irrelevant* learned clause is
        // still caught.
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]); // 0
        cnf.add_dimacs_clause(&[-1, 2]); // 1
        cnf.add_dimacs_clause(&[-2]); // 2
        cnf.add_dimacs_clause(&[3, 4]); // 3
        cnf.add_dimacs_clause(&[5, 6]); // 4 — shares nothing with 3
        let mut sink = MemorySink::new();
        sink.learned(5, &[3, 4]).unwrap(); // invalid resolution
        sink.level_zero(Lit::from_dimacs(1), 0).unwrap();
        sink.level_zero(Lit::from_dimacs(2), 1).unwrap();
        sink.final_conflict(2).unwrap();

        let err = run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap_err();
        assert!(matches!(
            err,
            CheckError::NotResolvable {
                target: Some(5),
                ..
            }
        ));
    }

    #[test]
    fn forward_reference_is_rejected() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1, 2]);
        cnf.add_dimacs_clause(&[1, -2]);
        cnf.add_dimacs_clause(&[-1, 2]);
        cnf.add_dimacs_clause(&[-1, -2]);
        let mut sink = MemorySink::new();
        // #4 uses #5 before it is defined.
        sink.learned(4, &[5, 0]).unwrap();
        sink.learned(5, &[2, 3]).unwrap();
        sink.final_conflict(4).unwrap();
        let err = run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap_err();
        assert!(matches!(
            err,
            CheckError::ForwardReference { id: 4, source: 5 }
        ));
    }

    #[test]
    fn unknown_source_is_rejected() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]);
        let mut sink = MemorySink::new();
        sink.learned(1, &[0, 42]).unwrap();
        sink.final_conflict(1).unwrap();
        let err = run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap_err();
        assert!(matches!(err, CheckError::UnknownClause { id: 42, .. }));
    }

    #[test]
    fn peak_memory_reflects_freeing() {
        // A long chain where each learned clause is used exactly once:
        // breadth-first should hold O(1) clauses, depth-first holds all.
        let mut cnf = Cnf::new();
        let n = 64i64;
        cnf.add_dimacs_clause(&[1]); // 0: (x1)
        for i in 1..n {
            cnf.add_dimacs_clause(&[-i, i + 1]); // i: xi → xi+1
        }
        cnf.add_dimacs_clause(&[-n]); // n: (¬xn)
        let mut sink = MemorySink::new();
        // Learned chain: #n+1 = r(0, 1) = (x2), #n+2 = r(#n+1, 2) = (x3)…
        let mut prev = 0u64;
        for i in 1..n {
            let next_id = (n + i) as u64;
            sink.learned(next_id, &[prev, i as u64]).unwrap();
            prev = next_id;
        }
        // prev is now (xn); level 0: xn by prev; final conflict (¬xn).
        sink.level_zero(Lit::from_dimacs(n), prev).unwrap();
        sink.final_conflict(n as u64).unwrap();

        let bf = run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap();
        let df = crate::depth_first::run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver)
            .unwrap();
        assert!(
            bf.stats.peak_memory_bytes < df.stats.peak_memory_bytes,
            "bf {} vs df {}",
            bf.stats.peak_memory_bytes,
            df.stats.peak_memory_bytes
        );
        assert_eq!(bf.stats.clauses_built, (n - 1) as u64);
    }

    #[test]
    fn missing_final_conflict_is_rejected() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]);
        let sink = MemorySink::new();
        let err = run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap_err();
        assert!(matches!(err, CheckError::NoFinalConflict));
    }

    #[test]
    fn memory_limit_applies() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]);
        cnf.add_dimacs_clause(&[-1]);
        let mut sink = MemorySink::new();
        sink.level_zero(Lit::from_dimacs(1), 0).unwrap();
        sink.final_conflict(1).unwrap();
        let config = CheckConfig {
            memory_limit: Some(1),
        };
        let err = run(&cnf, &sink, &config, &mut NullObserver).unwrap_err();
        assert!(matches!(err, CheckError::MemoryLimitExceeded { .. }));
    }
}
