//! In-memory model of a resolve trace, with validation.

use crate::cancel::CancelFlag;
use crate::error::CheckError;
use crate::fxhash::FxHashMap;
use crate::memory::{trace_record_bytes, LEVEL_ZERO_RECORD_BYTES};
use rescheck_cnf::{Lit, Var};
use rescheck_trace::{EventRef, TraceSource};
use std::io;

/// Parks a `CheckError` raised inside a `TraceSource::visit_events`
/// closure and returns the sentinel `io::Error` that aborts the
/// traversal. Pair with [`finish_visit`], which recovers the parked error
/// in preference to the sentinel.
pub(crate) fn park_check_error(slot: &mut Option<CheckError>, err: CheckError) -> io::Error {
    *slot = Some(err);
    io::Error::other("trace visit aborted by check failure")
}

/// Resolves the outcome of a `visit_events` traversal: a parked check
/// failure wins over the traversal result (whose error would be the
/// sentinel in that case); otherwise a genuine I/O error is wrapped as
/// [`CheckError::Trace`].
pub(crate) fn finish_visit(
    parked: Option<CheckError>,
    result: io::Result<()>,
) -> Result<(), CheckError> {
    if let Some(err) = parked {
        return Err(err);
    }
    result.map_err(CheckError::Trace)
}

/// Rough entry-count hint for pre-sizing id-keyed tables from the encoded
/// trace size. Binary learned records average well above 8 bytes each, so
/// this only mildly over-reserves; the cap keeps a short trace that lies
/// about its size (or a future giant one) from reserving gigabytes up
/// front.
pub(crate) fn table_capacity_hint(encoded_bytes: u64) -> usize {
    (encoded_bytes / 8).min(1 << 21) as usize
}

/// The recorded level-0 assignment of one variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct VarRecord {
    /// Chronological position in the level-0 trail (0 = first assigned).
    pub order: usize,
    /// The literal that became true.
    pub lit: Lit,
    /// The antecedent clause that implied it.
    pub antecedent: u64,
}

/// The level-0 assignment, keyed by variable.
#[derive(Clone, Debug, Default)]
pub(crate) struct LevelZeroMap {
    records: FxHashMap<u32, VarRecord>,
}

impl LevelZeroMap {
    pub(crate) fn insert(&mut self, lit: Lit, antecedent: u64) -> Result<(), CheckError> {
        let order = self.records.len();
        let key = lit.var().index() as u32;
        if self.records.contains_key(&key) {
            return Err(CheckError::DuplicateLevelZero { var: lit.var() });
        }
        self.records.insert(
            key,
            VarRecord {
                order,
                lit,
                antecedent,
            },
        );
        Ok(())
    }

    pub(crate) fn get(&self, var: Var) -> Option<&VarRecord> {
        self.records.get(&(var.index() as u32))
    }

    pub(crate) fn len(&self) -> usize {
        self.records.len()
    }

    /// Iterates over all records (no particular order).
    pub(crate) fn records(&self) -> impl Iterator<Item = &VarRecord> {
        self.records.values()
    }
}

/// A fully loaded trace: what the depth-first checker keeps in memory.
#[derive(Clone, Debug, Default)]
pub(crate) struct FullTrace {
    /// Learned clause ID → its resolve sources, in order.
    pub sources: FxHashMap<u64, Vec<u64>>,
    /// The recorded level-0 assignment.
    pub level_zero: LevelZeroMap,
    /// Final conflicting clause IDs (the paper records one; we accept
    /// several and use the first).
    pub final_ids: Vec<u64>,
    /// Accounted bytes for holding this structure resident.
    pub trace_bytes: u64,
}

/// Loads and validates a whole trace.
///
/// Checks performed here (shared by both strategies on their first pass):
/// learned IDs must not collide with original clause IDs or with each
/// other, each learned clause needs at least two resolve sources, and no
/// variable may have two level-0 records.
pub(crate) fn load_full<S: TraceSource + ?Sized>(
    source: &S,
    num_original: usize,
    cancel: &CancelFlag,
) -> Result<FullTrace, CheckError> {
    let mut full = FullTrace::default();
    if let Some(encoded) = source.encoded_size() {
        full.sources.reserve(table_capacity_hint(encoded));
    }
    let mut seen: u64 = 0;
    let mut parked: Option<CheckError> = None;
    let result = source.visit_events(&mut |event| {
        seen += 1;
        let step = (|| -> Result<(), CheckError> {
            if seen.is_multiple_of(crate::depth_first::PROGRESS_STRIDE) {
                cancel.check()?;
            }
            match event {
                EventRef::Learned { id, sources } => {
                    validate_learned(id, sources.len(), num_original, |candidate| {
                        full.sources.contains_key(&candidate)
                    })?;
                    full.trace_bytes += trace_record_bytes(sources.len());
                    full.sources.insert(id, sources.to_vec());
                }
                EventRef::LevelZero { lit, antecedent } => {
                    full.level_zero.insert(lit, antecedent)?;
                    full.trace_bytes += LEVEL_ZERO_RECORD_BYTES;
                }
                EventRef::FinalConflict { id } => full.final_ids.push(id),
            }
            Ok(())
        })();
        step.map_err(|e| park_check_error(&mut parked, e))
    });
    finish_visit(parked, result)?;
    Ok(full)
}

/// Validates one learned-clause record against the shared rules.
///
/// Takes only the source *count*, not the list — the sharded pass 1 of
/// the parallel breadth-first checker validates from compact per-event
/// records that do not retain source lists.
pub(crate) fn validate_learned(
    id: u64,
    num_sources: usize,
    num_original: usize,
    already_defined: impl Fn(u64) -> bool,
) -> Result<(), CheckError> {
    if id < num_original as u64 {
        return Err(CheckError::LearnedIdCollidesWithOriginal { id });
    }
    if already_defined(id) {
        return Err(CheckError::DuplicateLearnedId { id });
    }
    if num_sources < 2 {
        return Err(CheckError::Trace(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("learned clause #{id} has fewer than two resolve sources"),
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescheck_trace::{MemorySink, TraceEvent};

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    #[test]
    fn loads_all_event_kinds() {
        let events = vec![
            TraceEvent::Learned {
                id: 3,
                sources: vec![0, 1],
            },
            TraceEvent::LevelZero {
                lit: lit(-2),
                antecedent: 3,
            },
            TraceEvent::FinalConflict { id: 2 },
        ];
        let sink: MemorySink = events.into();
        let full = load_full(&sink, 3, &CancelFlag::default()).unwrap();
        assert_eq!(full.sources.get(&3), Some(&vec![0, 1]));
        assert_eq!(full.final_ids, vec![2]);
        let rec = full.level_zero.get(Var::from_dimacs(2)).unwrap();
        assert_eq!(rec.lit, lit(-2));
        assert_eq!(rec.antecedent, 3);
        assert_eq!(rec.order, 0);
        assert_eq!(full.level_zero.len(), 1);
        assert!(full.trace_bytes > 0);
    }

    #[test]
    fn level_zero_order_is_chronological() {
        let mut map = LevelZeroMap::default();
        map.insert(lit(1), 0).unwrap();
        map.insert(lit(-3), 1).unwrap();
        assert_eq!(map.get(Var::from_dimacs(1)).unwrap().order, 0);
        assert_eq!(map.get(Var::from_dimacs(3)).unwrap().order, 1);
        assert!(map.get(Var::from_dimacs(2)).is_none());
    }

    #[test]
    fn duplicate_level_zero_is_rejected() {
        let mut map = LevelZeroMap::default();
        map.insert(lit(1), 0).unwrap();
        let err = map.insert(lit(-1), 2).unwrap_err();
        assert!(matches!(err, CheckError::DuplicateLevelZero { .. }));
    }

    #[test]
    fn duplicate_learned_id_is_rejected() {
        let events = vec![
            TraceEvent::Learned {
                id: 5,
                sources: vec![0, 1],
            },
            TraceEvent::Learned {
                id: 5,
                sources: vec![1, 2],
            },
        ];
        let sink: MemorySink = events.into();
        let err = load_full(&sink, 3, &CancelFlag::default()).unwrap_err();
        assert!(matches!(err, CheckError::DuplicateLearnedId { id: 5 }));
    }

    #[test]
    fn collision_with_original_is_rejected() {
        let events = vec![TraceEvent::Learned {
            id: 2,
            sources: vec![0, 1],
        }];
        let sink: MemorySink = events.into();
        let err = load_full(&sink, 3, &CancelFlag::default()).unwrap_err();
        assert!(matches!(
            err,
            CheckError::LearnedIdCollidesWithOriginal { id: 2 }
        ));
    }

    #[test]
    fn too_few_sources_is_rejected() {
        let events = vec![TraceEvent::Learned {
            id: 9,
            sources: vec![0],
        }];
        let sink: MemorySink = events.into();
        assert!(matches!(
            load_full(&sink, 3, &CancelFlag::default()).unwrap_err(),
            CheckError::Trace(_)
        ));
    }

    #[test]
    fn empty_trace_loads_empty() {
        let sink = MemorySink::new();
        let full = load_full(&sink, 0, &CancelFlag::default()).unwrap();
        assert!(full.sources.is_empty());
        assert!(full.final_ids.is_empty());
        assert_eq!(full.trace_bytes, 0);
    }
}
