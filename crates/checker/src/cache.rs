//! A memory-accounted cache of normalized original clauses.
//!
//! Every strategy normalizes original clauses (sort + dedup literals)
//! before resolving with them, and caches the result keyed by clause id.
//! The cache used to be a plain `HashMap` that was never charged to the
//! [`MemoryMeter`], so the accounted peak under-reported real residency —
//! on core-heavy instances by the size of the touched original clauses.
//!
//! [`OriginalCache`] fixes that: every cached clause is charged
//! [`clause_bytes`] to the meter, the cache can be capped, and eviction
//! is FIFO (insertion order) so the accounted peak stays deterministic —
//! `HashMap` iteration order is randomized per process and must not leak
//! into the byte accounting.
//!
//! The cache treats the meter's budget as *spare* capacity: if charging a
//! clause would exceed the memory limit, entries are evicted to make
//! room, and if that is not enough the clause is simply not cached. A
//! cache can therefore never cause a [`MemoryLimitExceeded`] failure —
//! it only ever trades budget headroom for speed.
//!
//! [`MemoryLimitExceeded`]: crate::CheckError::MemoryLimitExceeded

use crate::fxhash::FxHashMap;
use crate::memory::{clause_bytes, MemoryMeter};
use rescheck_cnf::Lit;
use std::collections::VecDeque;
use std::rc::Rc;

pub(crate) struct OriginalCache {
    map: FxHashMap<u64, Rc<[Lit]>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<u64>,
    /// Accounted bytes currently held by the cache.
    bytes: u64,
    /// Optional hard cap on `bytes`, independent of the meter's budget.
    cap: Option<u64>,
}

impl OriginalCache {
    pub(crate) fn new(cap: Option<u64>) -> Self {
        OriginalCache {
            map: FxHashMap::default(),
            order: VecDeque::new(),
            bytes: 0,
            cap,
        }
    }

    pub(crate) fn get(&self, id: u64) -> Option<Rc<[Lit]>> {
        self.map.get(&id).cloned()
    }

    /// Offers a freshly normalized clause to the cache, charging the
    /// meter on success. Never fails: under pressure it evicts oldest
    /// entries first, and skips caching when the clause cannot fit.
    pub(crate) fn insert(&mut self, id: u64, clause: &Rc<[Lit]>, meter: &mut MemoryMeter) {
        if self.map.contains_key(&id) {
            return;
        }
        let cost = clause_bytes(clause.len());
        if self.cap.is_some_and(|cap| cost > cap) {
            return;
        }
        while self.cap.is_some_and(|cap| self.bytes + cost > cap) {
            if !self.evict_one(meter) {
                return;
            }
        }
        while meter.alloc(cost).is_err() {
            if !self.evict_one(meter) {
                return;
            }
        }
        self.bytes += cost;
        self.order.push_back(id);
        self.map.insert(id, Rc::clone(clause));
    }

    /// Evicts the oldest entry, refunding its bytes. Returns `false` when
    /// the cache is already empty.
    fn evict_one(&mut self, meter: &mut MemoryMeter) -> bool {
        let Some(id) = self.order.pop_front() else {
            return false;
        };
        let clause = self.map.remove(&id).expect("order and map agree");
        let cost = clause_bytes(clause.len());
        self.bytes -= cost;
        meter.free(cost);
        true
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    #[cfg(test)]
    pub(crate) fn bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clause(lits: &[i64]) -> Rc<[Lit]> {
        lits.iter()
            .map(|&d| Lit::from_dimacs(d))
            .collect::<Vec<_>>()
            .into()
    }

    #[test]
    fn charges_the_meter() {
        let mut meter = MemoryMeter::unlimited();
        let mut cache = OriginalCache::new(None);
        let c = clause(&[1, 2]);
        cache.insert(0, &c, &mut meter);
        assert_eq!(meter.current(), clause_bytes(2));
        assert_eq!(cache.get(0).as_deref(), Some(c.as_ref()));
        // Reinsertion is a no-op (no double charge).
        cache.insert(0, &c, &mut meter);
        assert_eq!(meter.current(), clause_bytes(2));
    }

    #[test]
    fn fifo_eviction_under_cap() {
        // Cap fits exactly two 1-literal clauses.
        let cap = 2 * clause_bytes(1);
        let mut meter = MemoryMeter::unlimited();
        let mut cache = OriginalCache::new(Some(cap));
        for id in 0..3u64 {
            cache.insert(id, &clause(&[id as i64 + 1]), &mut meter);
        }
        // Oldest (id 0) was evicted; 1 and 2 remain.
        assert!(cache.get(0).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_some());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.bytes(), cap);
        assert_eq!(meter.current(), cap);
    }

    #[test]
    fn never_exceeds_the_meter_budget() {
        // Budget fits one clause; the cache must evict rather than fail,
        // and skip caching entirely when nothing can be evicted.
        let mut meter = MemoryMeter::with_limit(clause_bytes(1));
        let mut cache = OriginalCache::new(None);
        cache.insert(0, &clause(&[1]), &mut meter);
        assert!(cache.get(0).is_some());
        cache.insert(1, &clause(&[2]), &mut meter);
        assert!(cache.get(0).is_none(), "oldest evicted to make room");
        assert!(cache.get(1).is_some());
        // A clause that can never fit is skipped without error.
        cache.insert(2, &clause(&[1, 2, 3, 4, 5, 6, 7, 8]), &mut meter);
        assert!(cache.get(2).is_none());
        assert!(meter.current() <= clause_bytes(1));
    }

    #[test]
    fn oversized_clause_is_not_cached() {
        let mut meter = MemoryMeter::unlimited();
        let mut cache = OriginalCache::new(Some(clause_bytes(1)));
        cache.insert(0, &clause(&[1, 2]), &mut meter);
        assert!(cache.get(0).is_none());
        assert_eq!(meter.current(), 0);
    }
}
