//! A memory-accounted cache of normalized original clauses.
//!
//! Every strategy normalizes original clauses (sort + dedup literals)
//! before resolving with them, and caches the result keyed by clause id.
//! The cache used to be a plain `HashMap` that was never charged to the
//! [`MemoryMeter`], so the accounted peak under-reported real residency —
//! on core-heavy instances by the size of the touched original clauses.
//!
//! [`OriginalCache`] fixes that: every cached clause is charged
//! [`clause_bytes`] to the meter, the cache can be capped, and eviction
//! is FIFO (insertion order) so the accounted peak stays deterministic —
//! `HashMap` iteration order is randomized per process and must not leak
//! into the byte accounting.
//!
//! The cache treats the meter's budget as *spare* capacity: if charging a
//! clause would exceed the memory limit, entries are evicted to make
//! room, and if that is not enough the clause is simply not cached. A
//! cache can therefore never cause a [`MemoryLimitExceeded`] failure —
//! it only ever trades budget headroom for speed.
//!
//! # The warm tier
//!
//! When a cache outlives one job inside a reused
//! [`CheckScratch`](crate::CheckScratch), its entries are *demoted* to a
//! warm tier at job start ([`begin_job`]): they keep their normalized
//! literals but are **uncharged** — the finished job's meter is gone and
//! the next job's meter has charged nothing. On first touch the next job
//! takes the clause back out of the warm tier ([`take_warm`]) and
//! re-inserts it through the ordinary charged path, paying the identical
//! [`clause_bytes`] at the identical first-touch point a cold run would.
//! Per-job accounting is therefore a pure function of the access
//! sequence: peak bytes are bit-identical warm vs cold, and the shared
//! cache is never double-charged across back-to-back jobs on the same
//! formula.
//!
//! [`MemoryLimitExceeded`]: crate::CheckError::MemoryLimitExceeded
//! [`begin_job`]: OriginalCache::begin_job
//! [`take_warm`]: OriginalCache::take_warm

use crate::fxhash::FxHashMap;
use crate::memory::{clause_bytes, MemoryMeter};
use rescheck_cnf::Lit;
use std::collections::VecDeque;
use std::sync::Arc;

#[derive(Default)]
pub(crate) struct OriginalCache {
    map: FxHashMap<u64, Arc<[Lit]>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<u64>,
    /// Accounted bytes currently held by the cache.
    bytes: u64,
    /// Optional hard cap on `bytes`, independent of the meter's budget.
    cap: Option<u64>,
    /// Demoted entries from earlier jobs on the same formula: normalized
    /// but **not charged** to any meter. Promoted back through
    /// [`OriginalCache::insert`] on first touch.
    warm: FxHashMap<u64, Arc<[Lit]>>,
    /// Lifetime count of normalizations saved by the warm tier.
    warm_hits: u64,
}

impl OriginalCache {
    pub(crate) fn new(cap: Option<u64>) -> Self {
        OriginalCache {
            map: FxHashMap::default(),
            order: VecDeque::new(),
            bytes: 0,
            cap,
            warm: FxHashMap::default(),
            warm_hits: 0,
        }
    }

    pub(crate) fn get(&self, id: u64) -> Option<Arc<[Lit]>> {
        self.map.get(&id).cloned()
    }

    /// Offers a freshly normalized clause to the cache, charging the
    /// meter on success. Never fails: under pressure it evicts oldest
    /// entries first, and skips caching when the clause cannot fit.
    pub(crate) fn insert(&mut self, id: u64, clause: &Arc<[Lit]>, meter: &mut MemoryMeter) {
        if self.map.contains_key(&id) {
            return;
        }
        let cost = clause_bytes(clause.len());
        if self.cap.is_some_and(|cap| cost > cap) {
            return;
        }
        while self.cap.is_some_and(|cap| self.bytes + cost > cap) {
            if !self.evict_one(meter) {
                return;
            }
        }
        while meter.alloc(cost).is_err() {
            if !self.evict_one(meter) {
                return;
            }
        }
        self.bytes += cost;
        self.order.push_back(id);
        self.map.insert(id, Arc::clone(clause));
    }

    /// Evicts the oldest entry, refunding its bytes. Returns `false` when
    /// the cache is already empty.
    fn evict_one(&mut self, meter: &mut MemoryMeter) -> bool {
        let Some(id) = self.order.pop_front() else {
            return false;
        };
        let clause = self.map.remove(&id).expect("order and map agree");
        let cost = clause_bytes(clause.len());
        self.bytes -= cost;
        meter.free(cost);
        true
    }

    /// Starts a new job on the **same formula**: demotes every charged
    /// entry to the warm tier and zeroes the per-job byte accounting.
    /// The outgoing job's meter is dropped with the job, so nothing is
    /// refunded; the incoming job's meter has charged nothing yet.
    pub(crate) fn begin_job(&mut self, cap: Option<u64>) {
        self.warm.extend(self.map.drain());
        self.order.clear();
        self.bytes = 0;
        self.cap = cap;
    }

    /// Drops every entry, warm and charged — the scratch is about to be
    /// used on a *different* formula, whose clause ids mean other things.
    pub(crate) fn reset(&mut self, cap: Option<u64>) {
        self.map.clear();
        self.order.clear();
        self.warm.clear();
        self.bytes = 0;
        self.cap = cap;
    }

    /// Takes a demoted clause out of the warm tier, if present. The
    /// caller re-offers it through [`OriginalCache::insert`], which is
    /// where (and only where) the current job's meter gets charged.
    pub(crate) fn take_warm(&mut self, id: u64) -> Option<Arc<[Lit]>> {
        let hit = self.warm.remove(&id);
        if hit.is_some() {
            self.warm_hits += 1;
        }
        hit
    }

    /// Lifetime count of normalizations the warm tier saved.
    pub(crate) fn warm_hits(&self) -> u64 {
        self.warm_hits
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    #[cfg(test)]
    pub(crate) fn bytes(&self) -> u64 {
        self.bytes
    }

    #[cfg(test)]
    pub(crate) fn warm_len(&self) -> usize {
        self.warm.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clause(lits: &[i64]) -> Arc<[Lit]> {
        lits.iter()
            .map(|&d| Lit::from_dimacs(d))
            .collect::<Vec<_>>()
            .into()
    }

    #[test]
    fn charges_the_meter() {
        let mut meter = MemoryMeter::unlimited();
        let mut cache = OriginalCache::new(None);
        let c = clause(&[1, 2]);
        cache.insert(0, &c, &mut meter);
        assert_eq!(meter.current(), clause_bytes(2));
        assert_eq!(cache.get(0).as_deref(), Some(c.as_ref()));
        // Reinsertion is a no-op (no double charge).
        cache.insert(0, &c, &mut meter);
        assert_eq!(meter.current(), clause_bytes(2));
    }

    #[test]
    fn fifo_eviction_under_cap() {
        // Cap fits exactly two 1-literal clauses.
        let cap = 2 * clause_bytes(1);
        let mut meter = MemoryMeter::unlimited();
        let mut cache = OriginalCache::new(Some(cap));
        for id in 0..3u64 {
            cache.insert(id, &clause(&[id as i64 + 1]), &mut meter);
        }
        // Oldest (id 0) was evicted; 1 and 2 remain.
        assert!(cache.get(0).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_some());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.bytes(), cap);
        assert_eq!(meter.current(), cap);
    }

    #[test]
    fn never_exceeds_the_meter_budget() {
        // Budget fits one clause; the cache must evict rather than fail,
        // and skip caching entirely when nothing can be evicted.
        let mut meter = MemoryMeter::with_limit(clause_bytes(1));
        let mut cache = OriginalCache::new(None);
        cache.insert(0, &clause(&[1]), &mut meter);
        assert!(cache.get(0).is_some());
        cache.insert(1, &clause(&[2]), &mut meter);
        assert!(cache.get(0).is_none(), "oldest evicted to make room");
        assert!(cache.get(1).is_some());
        // A clause that can never fit is skipped without error.
        cache.insert(2, &clause(&[1, 2, 3, 4, 5, 6, 7, 8]), &mut meter);
        assert!(cache.get(2).is_none());
        assert!(meter.current() <= clause_bytes(1));
    }

    #[test]
    fn oversized_clause_is_not_cached() {
        let mut meter = MemoryMeter::unlimited();
        let mut cache = OriginalCache::new(Some(clause_bytes(1)));
        cache.insert(0, &clause(&[1, 2]), &mut meter);
        assert!(cache.get(0).is_none());
        assert_eq!(meter.current(), 0);
    }

    #[test]
    fn begin_job_demotes_without_charging() {
        let mut meter = MemoryMeter::unlimited();
        let mut cache = OriginalCache::new(None);
        cache.insert(0, &clause(&[1, 2]), &mut meter);
        cache.insert(1, &clause(&[3]), &mut meter);

        // New job, fresh meter: nothing charged, entries demoted.
        let mut meter2 = MemoryMeter::unlimited();
        cache.begin_job(None);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.bytes(), 0);
        assert_eq!(cache.warm_len(), 2);

        // First touch promotes through the charged path — the same cost
        // at the same point a cold run would pay it.
        let warm = cache.take_warm(0).expect("demoted entry");
        cache.insert(0, &warm, &mut meter2);
        assert_eq!(meter2.current(), clause_bytes(2));
        assert_eq!(cache.warm_hits(), 1);
        assert_eq!(cache.warm_len(), 1);
        assert!(cache.take_warm(0).is_none(), "promotion consumes the entry");
    }

    #[test]
    fn reset_clears_the_warm_tier_too() {
        let mut meter = MemoryMeter::unlimited();
        let mut cache = OriginalCache::new(None);
        cache.insert(0, &clause(&[1]), &mut meter);
        cache.begin_job(None);
        assert_eq!(cache.warm_len(), 1);
        cache.reset(None);
        assert_eq!(cache.warm_len(), 0);
        assert!(cache.take_warm(0).is_none());
    }
}
