//! The final empty-clause derivation, shared by both strategies.
//!
//! This implements the constructive half of Proposition 3 (paper §2.2):
//! starting from the final conflicting clause — all of whose literals are
//! false at decision level 0 — repeatedly resolve away the **most
//! recently assigned** variable using its recorded antecedent. Because
//! literals are chosen in reverse chronological order, no variable is
//! chosen twice and the derivation reaches the empty clause within
//! `n` resolutions.

use crate::error::{BadAntecedentReason, CheckError};
use crate::model::LevelZeroMap;
use crate::resolve::resolve_on;
use rescheck_cnf::Lit;

/// Supplies clauses by trace ID during the final derivation.
///
/// The depth-first checker builds requested clauses on demand; the
/// breadth-first checker serves them from its table of pinned clauses.
/// Clauses are written into a caller-owned buffer so providers backed by
/// the arena store need not allocate or refcount per fetch.
pub(crate) trait ClauseProvider {
    /// Replaces `out`'s contents with the (sorted, duplicate-free)
    /// literals of clause `id`.
    fn clause_into(&mut self, id: u64, out: &mut Vec<Lit>) -> Result<(), CheckError>;
}

/// Outcome counters of the final derivation.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct FinalPhaseStats {
    /// Resolution steps performed in the final derivation.
    pub resolutions: u64,
}

/// Derives the empty clause from `start_id`, validating every step.
pub(crate) fn derive_empty_clause(
    start_id: u64,
    level_zero: &LevelZeroMap,
    provider: &mut dyn ClauseProvider,
) -> Result<FinalPhaseStats, CheckError> {
    let mut clause: Vec<Lit> = Vec::new();
    provider.clause_into(start_id, &mut clause)?;

    // The claimed final conflicting clause must actually be conflicting:
    // every literal falsified by the recorded level-0 assignment.
    for &l in clause.iter() {
        match level_zero.get(l.var()) {
            Some(rec) if rec.lit == !l => {}
            _ => {
                return Err(CheckError::FinalClauseNotConflicting {
                    id: start_id,
                    var: l.var(),
                })
            }
        }
    }

    let mut stats = FinalPhaseStats::default();
    let mut ante: Vec<Lit> = Vec::new();
    // Reverse-chronological selection guarantees ≤ one resolution per
    // recorded variable; anything beyond that bound is a broken proof.
    let bound = level_zero.len() as u64 + 1;

    while !clause.is_empty() {
        if stats.resolutions >= bound {
            return Err(CheckError::NonterminatingProof);
        }

        // choose_literal: the literal assigned last (Fig. 2 / Prop. 3).
        let mut latest: Option<(usize, Lit)> = None;
        for &l in clause.iter() {
            let rec = level_zero
                .get(l.var())
                .ok_or(CheckError::MissingLevelZero { var: l.var() })?;
            if latest.is_none_or(|(order, _)| rec.order > order) {
                latest = Some((rec.order, l));
            }
        }
        let (order, lit) = latest.expect("non-empty clause has a latest literal");
        let var = lit.var();
        let rec = *level_zero.get(var).expect("checked above");
        let ante_id = rec.antecedent;
        provider.clause_into(ante_id, &mut ante)?;

        // The antecedent must really be the antecedent of `var`: it
        // contains the implied literal, and every other literal was
        // falsified by *earlier* level-0 assignments (i.e. the clause was
        // unit when the implication happened).
        if !ante.contains(&rec.lit) {
            return Err(CheckError::BadAntecedent {
                var,
                antecedent: ante_id,
                reason: BadAntecedentReason::MissingImpliedLiteral,
            });
        }
        for &other in ante.iter() {
            if other.var() == var {
                continue;
            }
            let orec = level_zero
                .get(other.var())
                .ok_or(CheckError::BadAntecedent {
                    var,
                    antecedent: ante_id,
                    reason: BadAntecedentReason::LiteralNotFalsified { var: other.var() },
                })?;
            if orec.lit != !other {
                return Err(CheckError::BadAntecedent {
                    var,
                    antecedent: ante_id,
                    reason: BadAntecedentReason::LiteralNotFalsified { var: other.var() },
                });
            }
            if orec.order >= order {
                return Err(CheckError::BadAntecedent {
                    var,
                    antecedent: ante_id,
                    reason: BadAntecedentReason::OrderViolation { var: other.var() },
                });
            }
        }

        clause = resolve_on(&clause, &ante, var).map_err(|failure| CheckError::NotResolvable {
            target: None,
            step: stats.resolutions as usize,
            with: ante_id,
            failure,
        })?;
        stats.resolutions += 1;
    }

    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::normalize_literals;
    use std::collections::HashMap;

    /// A provider backed by a fixed table.
    struct Table(HashMap<u64, Vec<Lit>>);

    impl ClauseProvider for Table {
        fn clause_into(&mut self, id: u64, out: &mut Vec<Lit>) -> Result<(), CheckError> {
            let lits = self.0.get(&id).ok_or(CheckError::UnknownClause {
                id,
                referenced_by: None,
            })?;
            out.clear();
            out.extend_from_slice(lits);
            Ok(())
        }
    }

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    fn clause(ds: &[i64]) -> Vec<Lit> {
        normalize_literals(ds.iter().map(|&d| lit(d)))
    }

    /// Level-0 trail: x1 by clause 0, then x2 by clause 1 = (¬x1 ∨ x2).
    /// Final conflict: clause 2 = (¬x1 ∨ ¬x2).
    fn simple_setup() -> (LevelZeroMap, Table) {
        let mut lz = LevelZeroMap::default();
        lz.insert(lit(1), 0).unwrap();
        lz.insert(lit(2), 1).unwrap();
        let mut table = HashMap::new();
        table.insert(0, clause(&[1]));
        table.insert(1, clause(&[-1, 2]));
        table.insert(2, clause(&[-1, -2]));
        (lz, Table(table))
    }

    #[test]
    fn derives_empty_clause() {
        let (lz, mut table) = simple_setup();
        let stats = derive_empty_clause(2, &lz, &mut table).unwrap();
        // ¬x2 first (assigned later), then ¬x1: 3 resolutions total
        // (final ∘ ante(x2) → ¬x1; ∘ ante(x1) → ⊥)... counting: clause
        // (¬1 ¬2) ⊗ (¬1 2) = (¬1); (¬1) ⊗ (1) = ⊥ → 2 resolutions.
        assert_eq!(stats.resolutions, 2);
    }

    #[test]
    fn empty_start_clause_needs_no_resolution() {
        let mut lz = LevelZeroMap::default();
        lz.insert(lit(1), 0).unwrap();
        let mut table = HashMap::new();
        table.insert(7u64, clause(&[]));
        let stats = derive_empty_clause(7, &lz, &mut Table(table)).unwrap();
        assert_eq!(stats.resolutions, 0);
    }

    #[test]
    fn final_clause_with_true_literal_is_rejected() {
        let (lz, mut table) = simple_setup();
        table.0.insert(2, clause(&[1, -2])); // x1 is true at level 0
        let err = derive_empty_clause(2, &lz, &mut table).unwrap_err();
        assert!(matches!(
            err,
            CheckError::FinalClauseNotConflicting { id: 2, .. }
        ));
    }

    #[test]
    fn final_clause_with_unassigned_var_is_rejected() {
        let (lz, mut table) = simple_setup();
        table.0.insert(2, clause(&[-1, -2, -3])); // x3 unassigned
        let err = derive_empty_clause(2, &lz, &mut table).unwrap_err();
        assert!(matches!(err, CheckError::FinalClauseNotConflicting { .. }));
    }

    #[test]
    fn antecedent_missing_implied_literal_is_rejected() {
        let (_, mut table) = simple_setup();
        // Re-point x2's antecedent at a clause that does not contain x2.
        let lz = {
            let mut fresh = LevelZeroMap::default();
            fresh.insert(lit(1), 0).unwrap();
            fresh.insert(lit(2), 3).unwrap();
            fresh
        };
        table.0.insert(3, clause(&[-1]));
        let err = derive_empty_clause(2, &lz, &mut table).unwrap_err();
        assert!(matches!(
            err,
            CheckError::BadAntecedent {
                reason: BadAntecedentReason::MissingImpliedLiteral,
                ..
            }
        ));
    }

    #[test]
    fn antecedent_order_violation_is_rejected() {
        // x2 assigned first but its antecedent mentions x1 (assigned later).
        let mut lz = LevelZeroMap::default();
        lz.insert(lit(2), 1).unwrap(); // order 0
        lz.insert(lit(1), 0).unwrap(); // order 1
        let mut table = HashMap::new();
        table.insert(0u64, clause(&[1]));
        table.insert(1u64, clause(&[-1, 2]));
        table.insert(2u64, clause(&[-1, -2]));
        let err = derive_empty_clause(2, &lz, &mut Table(table)).unwrap_err();
        // The latest-assigned var is x1 (order 1) with antecedent 0 = (x1):
        // fine; resolving gives (¬x2); then x2's antecedent (¬x1 ∨ 2) has
        // x1 with order 1 >= 0 → order violation.
        assert!(matches!(
            err,
            CheckError::BadAntecedent {
                reason: BadAntecedentReason::OrderViolation { .. },
                ..
            }
        ));
    }

    #[test]
    fn antecedent_with_unfalsified_literal_is_rejected() {
        let mut lz = LevelZeroMap::default();
        lz.insert(lit(1), 0).unwrap();
        lz.insert(lit(2), 1).unwrap();
        let mut table = HashMap::new();
        table.insert(0u64, clause(&[1]));
        // Antecedent of x2 contains x3 which has no record.
        table.insert(1u64, clause(&[-3, 2]));
        table.insert(2u64, clause(&[-1, -2]));
        let err = derive_empty_clause(2, &lz, &mut Table(table)).unwrap_err();
        assert!(matches!(
            err,
            CheckError::BadAntecedent {
                reason: BadAntecedentReason::LiteralNotFalsified { .. },
                ..
            }
        ));
    }

    #[test]
    fn missing_clause_is_reported() {
        let (lz, mut table) = simple_setup();
        table.0.remove(&1);
        let err = derive_empty_clause(2, &lz, &mut table).unwrap_err();
        assert!(matches!(err, CheckError::UnknownClause { id: 1, .. }));
    }
}
