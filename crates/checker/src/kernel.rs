//! The mark-array resolution kernel: allocation-free chain resolution.
//!
//! The checker's hot loop — "resolve the distance clause with each
//! antecedent in order" (§3.2 of the paper) — previously called
//! [`resolve_sorted`](crate::resolve_sorted) once per antecedent. Each
//! call allocated a fresh resolvent `Vec` and re-merged the whole
//! accumulator, so a chain of `k` antecedents cost O(k·|acc|) literal
//! visits and `k` heap allocations. This kernel resolves the *entire*
//! chain against a variable-indexed stamp store instead: the seed clause
//! is marked into the store, every antecedent is folded in
//! O(|antecedent|), and the sorted resolvent is materialized exactly once
//! at the end. Total work for a chain with literal mass `L` is O(L + |r|
//! log |r|) for a resolvent `r`, and all scratch buffers are reused
//! across chains, so steady-state resolution performs **zero heap
//! allocations** (tracked by [`KernelStats::scratch_grows`]).
//!
//! The fold replicates `resolve_sorted`'s two-pointer merge semantics
//! bit-for-bit — including its behaviour on tautological inputs, where a
//! clause may contain both phases of a variable. `resolve_sorted` pairs
//! each antecedent literal with the *smallest-code unpaired* literal of
//! the same variable in the accumulator: equal literals merge, opposite
//! literals clash (both are consumed), and unpaired literals pass
//! through. The kernel reproduces this with two stamps per literal:
//! `present` (is this literal in the accumulator, stamped with the chain
//! generation) and `paired` (was this literal already paired during the
//! current fold, stamped with a fold sequence number). Bumping the
//! generation or the sequence number invalidates every stamp in O(1), so
//! nothing is ever cleared eagerly.
//!
//! # The SWAR stamp layout
//!
//! The default [`KernelMode::Swar`] packs all four stamps of a variable —
//! present/paired for each phase, 16 bits each — into **one `u64` lane
//! word** per variable. Probing a variable is then a single load and a
//! couple of XOR/mask operations on the packed lanes (SIMD-within-a-
//! register), where the original layout took up to four spread-out `u64`
//! loads across two code-indexed arrays. The lane store is also 4× denser
//! (8 bytes per variable instead of 32), which is worth more than the
//! arithmetic on cache-bound traces. The price is 16-bit stamps: when a
//! counter wraps, the kernel re-establishes the invariant explicitly — a
//! full lane-store flush at a chain boundary for the generation, a
//! targeted un-pairing sweep over the accumulator for a mid-chain fold
//! sequence wrap — both amortized over 65 534 chains/folds.
//!
//! [`KernelMode::Scalar`] keeps the original dual `u64` arrays; it is
//! retained as the comparison baseline for `BENCH_resolve.json`'s
//! SWAR-on/off row and as a second implementation for differential
//! testing. `resolve_sorted` remains the ultimate oracle;
//! `tests/kernel_diff.rs` drives random chains through both modes and
//! asserts identical resolvents and identical failures.

use crate::resolve::ResolveFailure;
use rescheck_cnf::{Lit, Var};

/// Counters describing the kernel's work and scratch-memory behaviour.
///
/// `scratch_grows` is the allocation-freedom witness: it increments only
/// when the kernel's scratch footprint (mark arrays plus literal
/// buffers) grows. Once the kernel has seen the widest chain of a run it
/// stops incrementing, proving the steady state allocates nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Number of chains resolved (one per [`ResolutionKernel::begin`]).
    pub chains: u64,
    /// Total antecedent literals folded into accumulators.
    pub literals_folded: u64,
    /// Number of times the scratch footprint grew (reallocations).
    pub scratch_grows: u64,
    /// Peak scratch footprint in bytes across the kernel's lifetime.
    pub scratch_high_water: u64,
}

/// Which stamp layout a [`ResolutionKernel`] probes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KernelMode {
    /// One packed `u64` per variable holding all four 16-bit stamps;
    /// single-load probes. The default.
    #[default]
    Swar,
    /// The original layout: two code-indexed `u64` arrays with 64-bit
    /// stamps. Kept as the benchmark baseline and differential twin.
    Scalar,
}

/// Lane offsets inside a packed SWAR word. Phase `pos` is the
/// smaller-code literal, so it is probed first to preserve
/// `resolve_sorted`'s smallest-code pairing order.
const PRESENT_POS: u32 = 0;
const PRESENT_NEG: u32 = 16;
const PAIRED_POS: u32 = 32;
const PAIRED_NEG: u32 = 48;
const LANE: u64 = 0xFFFF;

/// Resolves chains of clauses against a variable-indexed mark store.
///
/// Usage: [`begin`](Self::begin) with the seed clause, then
/// [`fold`](Self::fold) each antecedent in order (each fold enforces the
/// exactly-one-clash invariant and reports the pivot variable), then
/// [`finish`](Self::finish) to materialize the sorted resolvent.
///
/// All clauses handed to the kernel must be normalized (sorted,
/// duplicate-free), as produced by
/// [`normalize_literals`](crate::normalize_literals).
///
/// # Examples
///
/// ```
/// use rescheck_checker::kernel::ResolutionKernel;
/// use rescheck_checker::normalize_literals;
/// use rescheck_cnf::Lit;
///
/// let mut k = ResolutionKernel::new();
/// // (x + y) resolved with (¬y + z) gives (x + z).
/// k.begin(&normalize_literals([Lit::from_dimacs(1), Lit::from_dimacs(2)]));
/// let pivot = k
///     .fold(&normalize_literals([Lit::from_dimacs(-2), Lit::from_dimacs(3)]))
///     .unwrap();
/// assert_eq!(pivot.to_dimacs(), 2);
/// assert_eq!(
///     k.finish(),
///     normalize_literals([Lit::from_dimacs(1), Lit::from_dimacs(3)])
/// );
/// ```
#[derive(Debug, Default)]
pub struct ResolutionKernel {
    mode: KernelMode,
    /// SWAR lane store: `marks[var]` packs present/paired for both
    /// phases, 16 bits each (see the module docs for the layout).
    marks: Vec<u64>,
    /// SWAR chain stamp; 0 is never valid (flushed lanes hold 0).
    generation16: u16,
    /// SWAR fold stamp; 0 is never valid.
    fold_seq16: u16,
    /// Scalar mode: `present[code] == generation` iff the literal with
    /// that code is in the current accumulator.
    present: Vec<u64>,
    /// Scalar mode: `paired[code] == fold_seq` iff the literal was paired
    /// during the current fold.
    paired: Vec<u64>,
    /// Scalar stamp for the current chain; bumping it empties the
    /// accumulator.
    generation: u64,
    /// Scalar globally monotone stamp; bumping it "unpairs" everything.
    fold_seq: u64,
    /// Insertion-ordered accumulator literals; may contain entries whose
    /// `present` stamp has since been cleared (lazy deletion).
    lits: Vec<Lit>,
    /// Resolvent buffer returned by [`finish`](Self::finish).
    out: Vec<Lit>,
    /// Clashing variables found by the current fold.
    clash: Vec<Var>,
    stats: KernelStats,
    /// Last observed scratch footprint in bytes, for growth tracking.
    footprint: u64,
}

impl ResolutionKernel {
    /// Creates a kernel with empty scratch buffers in the default
    /// ([`KernelMode::Swar`]) mode.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a kernel probing the given stamp layout.
    pub fn with_mode(mode: KernelMode) -> Self {
        ResolutionKernel {
            mode,
            ..Self::default()
        }
    }

    /// The stamp layout this kernel probes.
    pub fn mode(&self) -> KernelMode {
        self.mode
    }

    /// Starts a new chain seeded with `seed`'s literals.
    ///
    /// Any in-progress chain is discarded (its stamps are invalidated in
    /// O(1) by bumping the generation).
    pub fn begin(&mut self, seed: &[Lit]) {
        debug_assert!(
            seed.windows(2).all(|w| w[0] < w[1]),
            "seed clause not normalized"
        );
        self.lits.clear();
        match self.mode {
            KernelMode::Swar => self.begin_swar(seed),
            KernelMode::Scalar => self.begin_scalar(seed),
        }
        self.stats.chains += 1;
        self.note_footprint();
    }

    fn begin_scalar(&mut self, seed: &[Lit]) {
        self.generation += 1;
        self.fold_seq += 1;
        if let Some(max) = seed.iter().map(|l| l.code() | 1).max() {
            if max >= self.present.len() {
                self.present.resize(max + 1, 0);
                self.paired.resize(max + 1, 0);
            }
        }
        let generation = self.generation;
        for &l in seed {
            self.present[l.code()] = generation;
            self.lits.push(l);
        }
    }

    fn begin_swar(&mut self, seed: &[Lit]) {
        // Both 16-bit stamps advance at the chain boundary; a wrap of
        // either re-establishes "no lane holds the current stamp" the
        // explicit way — by flushing the lane store.
        let (gen, fseq) = (
            self.generation16.wrapping_add(1),
            self.fold_seq16.wrapping_add(1),
        );
        if gen == 0 || fseq == 0 {
            self.marks.fill(0);
            self.generation16 = 1;
            self.fold_seq16 = 1;
        } else {
            self.generation16 = gen;
            self.fold_seq16 = fseq;
        }
        if let Some(max) = seed.iter().map(|l| l.var().index()).max() {
            if max >= self.marks.len() {
                self.marks.resize(max + 1, 0);
            }
        }
        let gen = self.generation16 as u64;
        for &l in seed {
            let v = l.var().index();
            let (pshift, dshift) = lane_shifts(l);
            // Mark present with the fresh generation and clear the paired
            // lane: a stale 16-bit pairing stamp could otherwise collide
            // with a future fold sequence number (0 never matches).
            self.marks[v] =
                (self.marks[v] & !((LANE << pshift) | (LANE << dshift))) | (gen << pshift);
            self.lits.push(l);
        }
    }

    /// Folds one antecedent into the accumulator.
    ///
    /// Performs exactly the per-variable pairing `resolve_sorted` does:
    /// each antecedent literal pairs with the smallest-code unpaired
    /// accumulator literal of its variable — merging if equal, clashing
    /// (both consumed) if opposite — or joins the accumulator if no
    /// partner is available.
    ///
    /// Returns the pivot variable eliminated by this step.
    ///
    /// # Errors
    ///
    /// Returns [`ResolveFailure`] when the step has zero clashing
    /// variables or more than one, with `clashing_vars` identical to what
    /// [`resolve_sorted`](crate::resolve_sorted) would report for the
    /// same pair of clauses.
    pub fn fold(&mut self, antecedent: &[Lit]) -> Result<Var, ResolveFailure> {
        debug_assert!(
            antecedent.windows(2).all(|w| w[0] < w[1]),
            "antecedent clause not normalized"
        );
        self.clash.clear();
        match self.mode {
            KernelMode::Swar => self.fold_swar(antecedent),
            KernelMode::Scalar => self.fold_scalar(antecedent),
        }
        self.stats.literals_folded += antecedent.len() as u64;
        self.note_footprint();
        if self.clash.len() == 1 {
            Ok(self.clash[0])
        } else {
            Err(ResolveFailure {
                clashing_vars: self.clash.clone(),
            })
        }
    }

    fn fold_scalar(&mut self, antecedent: &[Lit]) {
        self.fold_seq += 1;
        if let Some(max) = antecedent.iter().map(|l| l.code() | 1).max() {
            if max >= self.present.len() {
                self.present.resize(max + 1, 0);
                self.paired.resize(max + 1, 0);
            }
        }
        let generation = self.generation;
        let fold_seq = self.fold_seq;
        for &l in antecedent {
            let code = l.code();
            let positive = code & !1;
            let negative = positive | 1;
            // The smallest-code literal of this variable that is in the
            // accumulator and not yet paired during this fold.
            let head = if self.present[positive] == generation && self.paired[positive] != fold_seq
            {
                Some(positive)
            } else if self.present[negative] == generation && self.paired[negative] != fold_seq {
                Some(negative)
            } else {
                None
            };
            match head {
                // Shared literal: merged, output once.
                Some(h) if h == code => self.paired[h] = fold_seq,
                // Opposite phases: a clash, both literals consumed.
                Some(h) => {
                    self.present[h] = 0;
                    self.clash.push(l.var());
                }
                // No partner: the antecedent literal passes through.
                None => {
                    self.present[code] = generation;
                    self.paired[code] = fold_seq;
                    self.lits.push(l);
                }
            }
        }
    }

    fn fold_swar(&mut self, antecedent: &[Lit]) {
        let fseq = self.fold_seq16.wrapping_add(1);
        self.fold_seq16 = if fseq == 0 {
            // Mid-chain wrap: the accumulator must survive, so instead of
            // flushing we un-pair exactly the lanes a stale stamp could
            // live in — every variable ever touched by this chain is in
            // `lits` (lazily-deleted entries included).
            const PAIRED_LANES: u64 = (LANE << PAIRED_POS) | (LANE << PAIRED_NEG);
            for i in 0..self.lits.len() {
                let v = self.lits[i].var().index();
                self.marks[v] &= !PAIRED_LANES;
            }
            1
        } else {
            fseq
        };
        if let Some(max) = antecedent.iter().map(|l| l.var().index()).max() {
            if max >= self.marks.len() {
                self.marks.resize(max + 1, 0);
            }
        }
        let gen = self.generation16 as u64;
        let fseq = self.fold_seq16 as u64;
        // Broadcast word: XOR-ing it against a lane word zeroes the
        // present lanes that match the generation and the paired lanes
        // that match the fold stamp — one load + one XOR probes all four
        // stamps of the variable.
        let broadcast = (gen << PRESENT_POS)
            | (gen << PRESENT_NEG)
            | (fseq << PAIRED_POS)
            | (fseq << PAIRED_NEG);
        for &l in antecedent {
            let v = l.var().index();
            let probe = self.marks[v] ^ broadcast;
            let pos_head = probe & (LANE << PRESENT_POS) == 0 && probe & (LANE << PAIRED_POS) != 0;
            let neg_head = probe & (LANE << PRESENT_NEG) == 0 && probe & (LANE << PAIRED_NEG) != 0;
            let own_neg = l.is_negative();
            // Positive is the smaller code, so it is the head when both
            // phases are live and unpaired.
            match (pos_head, neg_head) {
                (false, false) => {
                    // No partner: the antecedent literal passes through.
                    let (pshift, dshift) = lane_shifts(l);
                    self.marks[v] = (self.marks[v] & !((LANE << pshift) | (LANE << dshift)))
                        | (gen << pshift)
                        | (fseq << dshift);
                    self.lits.push(l);
                }
                (true, _) if !own_neg => {
                    // Head is the positive literal and so is ours: merge.
                    self.marks[v] = (self.marks[v] & !(LANE << PAIRED_POS)) | (fseq << PAIRED_POS);
                }
                (_, true) if own_neg && !pos_head => {
                    // Head is the negative literal and so is ours: merge.
                    self.marks[v] = (self.marks[v] & !(LANE << PAIRED_NEG)) | (fseq << PAIRED_NEG);
                }
                _ => {
                    // Head is the opposite phase: a clash, consumed.
                    let head_shift = if pos_head { PRESENT_POS } else { PRESENT_NEG };
                    self.marks[v] &= !(LANE << head_shift);
                    self.clash.push(l.var());
                }
            }
        }
    }

    /// Materializes the chain's resolvent as a sorted, duplicate-free
    /// literal slice.
    ///
    /// Consumes the chain: the returned slice stays valid until the next
    /// call on the kernel, and a fresh [`begin`](Self::begin) is needed
    /// to start the next chain.
    pub fn finish(&mut self) -> &[Lit] {
        self.out.clear();
        match self.mode {
            KernelMode::Swar => {
                let gen = self.generation16 as u64;
                for i in 0..self.lits.len() {
                    let l = self.lits[i];
                    let v = l.var().index();
                    let (pshift, _) = lane_shifts(l);
                    if (self.marks[v] >> pshift) & LANE == gen {
                        // Unmark on emit so lazily-deleted duplicates are
                        // skipped.
                        self.marks[v] &= !(LANE << pshift);
                        self.out.push(l);
                    }
                }
            }
            KernelMode::Scalar => {
                let generation = self.generation;
                for i in 0..self.lits.len() {
                    let l = self.lits[i];
                    if self.present[l.code()] == generation {
                        self.present[l.code()] = 0;
                        self.out.push(l);
                    }
                }
            }
        }
        self.out.sort_unstable();
        self.note_footprint();
        &self.out
    }

    /// Returns the kernel's lifetime counters.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Updates `scratch_grows`/`scratch_high_water` from current buffer
    /// capacities.
    fn note_footprint(&mut self) {
        use std::mem::size_of;
        let bytes = (self.marks.capacity() * size_of::<u64>()
            + self.present.capacity() * size_of::<u64>()
            + self.paired.capacity() * size_of::<u64>()
            + self.lits.capacity() * size_of::<Lit>()
            + self.out.capacity() * size_of::<Lit>()
            + self.clash.capacity() * size_of::<Var>()) as u64;
        if bytes > self.footprint {
            self.footprint = bytes;
            self.stats.scratch_grows += 1;
            self.stats.scratch_high_water = bytes;
        }
    }
}

/// (present, paired) lane shifts for a literal's phase.
#[inline]
fn lane_shifts(l: Lit) -> (u32, u32) {
    if l.is_negative() {
        (PRESENT_NEG, PAIRED_NEG)
    } else {
        (PRESENT_POS, PAIRED_POS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::{normalize_literals, resolve_sorted};

    const BOTH_MODES: [KernelMode; 2] = [KernelMode::Swar, KernelMode::Scalar];

    fn lits(ds: &[i64]) -> Vec<Lit> {
        normalize_literals(ds.iter().map(|&d| Lit::from_dimacs(d)))
    }

    /// Resolves a two-clause chain through the kernel in `mode`.
    fn kernel_pair_mode(
        mode: KernelMode,
        a: &[i64],
        b: &[i64],
    ) -> Result<Vec<Lit>, ResolveFailure> {
        let mut k = ResolutionKernel::with_mode(mode);
        k.begin(&lits(a));
        k.fold(&lits(b))?;
        Ok(k.finish().to_vec())
    }

    /// Resolves a two-clause chain in the default mode.
    fn kernel_pair(a: &[i64], b: &[i64]) -> Result<Vec<Lit>, ResolveFailure> {
        kernel_pair_mode(KernelMode::default(), a, b)
    }

    #[test]
    fn paper_example() {
        for mode in BOTH_MODES {
            assert_eq!(
                kernel_pair_mode(mode, &[1, 2], &[-2, 3]).unwrap(),
                lits(&[1, 3])
            );
        }
    }

    #[test]
    fn unit_resolution_to_empty_clause() {
        for mode in BOTH_MODES {
            assert!(kernel_pair_mode(mode, &[5], &[-5]).unwrap().is_empty());
        }
    }

    #[test]
    fn shared_literals_are_merged_once() {
        for mode in BOTH_MODES {
            assert_eq!(
                kernel_pair_mode(mode, &[1, 2, 3], &[-3, 1, 4]).unwrap(),
                lits(&[1, 2, 4])
            );
        }
    }

    #[test]
    fn no_clash_is_an_error() {
        let err = kernel_pair(&[1, 2], &[3, 4]).unwrap_err();
        assert!(err.clashing_vars.is_empty());
    }

    #[test]
    fn double_clash_is_an_error() {
        for mode in BOTH_MODES {
            let err = kernel_pair_mode(mode, &[1, 2], &[-1, -2]).unwrap_err();
            assert_eq!(
                err.clashing_vars,
                vec![Var::from_dimacs(1), Var::from_dimacs(2)]
            );
        }
    }

    #[test]
    fn fold_reports_the_pivot() {
        for mode in BOTH_MODES {
            let mut k = ResolutionKernel::with_mode(mode);
            k.begin(&lits(&[1, -2, 4]));
            assert_eq!(k.fold(&lits(&[2, 5])).unwrap(), Var::from_dimacs(2));
            assert_eq!(k.finish(), lits(&[1, 4, 5]));
        }
    }

    #[test]
    fn long_chain_matches_iterated_oracle() {
        // Seed (p1 + x1), antecedents (¬p_i + p_{i+1} + x_{i+1}).
        for mode in BOTH_MODES {
            let mut acc = lits(&[100, 1]);
            let mut k = ResolutionKernel::with_mode(mode);
            k.begin(&acc);
            for i in 1..40i64 {
                let ant = lits(&[-(100 + i - 1), 100 + i, i + 1]);
                acc = resolve_sorted(&acc, &ant).unwrap();
                assert_eq!(
                    k.fold(&ant).unwrap(),
                    Var::from_dimacs((100 + i - 1) as u32)
                );
            }
            assert_eq!(k.finish(), acc);
        }
    }

    /// The per-variable pairing case table that distinguishes the kernel
    /// from a naive "negation present → clash" mark scheme. Each case is
    /// checked against the oracle, in both modes.
    #[test]
    fn tautological_inputs_match_the_oracle() {
        let cases: &[(&[i64], &[i64])] = &[
            (&[7, -7], &[-7]),    // clash on x7, ¬x7 survives
            (&[7, -7], &[7]),     // no clash, both survive
            (&[-7], &[7, -7]),    // clash on x7, ¬x7 re-emitted
            (&[9], &[7, -7]),     // no clash, tautology passes through
            (&[7], &[7, -7]),     // no clash, both phases in output
            (&[7, -7], &[7, -7]), // both merge, no clash
        ];
        for mode in BOTH_MODES {
            for (a, b) in cases {
                let oracle = resolve_sorted(&lits(a), &lits(b));
                let ours = kernel_pair_mode(mode, a, b);
                assert_eq!(ours, oracle, "{mode:?} diverged on a={a:?} b={b:?}");
            }
        }
    }

    #[test]
    fn scratch_growth_stops_in_steady_state() {
        let mut k = ResolutionKernel::new();
        let seed = lits(&[1, 2, 3]);
        let ant = lits(&[-3, 4]);
        for _ in 0..3 {
            k.begin(&seed);
            k.fold(&ant).unwrap();
            k.finish();
        }
        let warm = k.stats();
        for _ in 0..100 {
            k.begin(&seed);
            k.fold(&ant).unwrap();
            k.finish();
        }
        let steady = k.stats();
        assert_eq!(steady.scratch_grows, warm.scratch_grows);
        assert_eq!(steady.scratch_high_water, warm.scratch_high_water);
        assert_eq!(steady.chains, warm.chains + 100);
        assert_eq!(steady.literals_folded, warm.literals_folded + 200);
    }

    #[test]
    fn kernel_is_reusable_after_a_failed_fold() {
        for mode in BOTH_MODES {
            let mut k = ResolutionKernel::with_mode(mode);
            k.begin(&lits(&[1, 2]));
            assert!(k.fold(&lits(&[3, 4])).is_err());
            // The failed chain leaves no residue in the next one.
            k.begin(&lits(&[5]));
            k.fold(&lits(&[-5, 6])).unwrap();
            assert_eq!(k.finish(), lits(&[6]));
        }
    }

    #[test]
    fn finish_without_folds_returns_the_seed() {
        for mode in BOTH_MODES {
            let mut k = ResolutionKernel::with_mode(mode);
            k.begin(&lits(&[3, -1, 2]));
            assert_eq!(k.finish(), lits(&[-1, 2, 3]));
        }
    }

    #[test]
    fn generation_wrap_flushes_stale_stamps() {
        // Drive the 16-bit generation around its full range; a literal
        // marked 65 535 chains ago must not look present afterwards.
        let mut k = ResolutionKernel::with_mode(KernelMode::Swar);
        k.begin(&lits(&[42]));
        assert_eq!(k.finish(), lits(&[42]));
        for _ in 0..=u16::MAX as usize {
            k.begin(&lits(&[1]));
            // No finish: x42's stamp from the first chain goes stale
            // rather than being cleared on emit.
        }
        // If the wrap left x42's old stamp matching the recycled
        // generation, this chain would wrongly see x42 present and merge
        // instead of passing it through.
        k.begin(&lits(&[7]));
        k.fold(&lits(&[-7, 42])).unwrap();
        assert_eq!(k.finish(), lits(&[42]));
    }

    #[test]
    fn mid_chain_fold_seq_wrap_preserves_the_accumulator() {
        // One chain with more folds than the 16-bit fold stamp can count:
        // the wrap must un-pair without flushing the accumulator.
        let n = u16::MAX as i64 + 40;
        let mut k = ResolutionKernel::with_mode(KernelMode::Swar);
        k.begin(&lits(&[1]));
        for i in 1..=n {
            // (¬p_i ∨ p_{i+1}): clash on p_i, deposit p_{i+1}.
            k.fold(&lits(&[-i, i + 1])).unwrap();
        }
        assert_eq!(k.finish(), lits(&[n + 1]));
    }

    #[test]
    fn fold_seq_wrap_does_not_resurrect_stale_pairings() {
        // Exercise the targeted un-pair sweep with a tautological
        // accumulator, where pairing order is what distinguishes the
        // kernel from a naive mark scheme.
        let mut k = ResolutionKernel::with_mode(KernelMode::Swar);
        k.begin(&lits(&[1]));
        for i in 1..=u16::MAX as i64 {
            k.fold(&lits(&[-i, i + 1])).unwrap();
        }
        // Right after the wrap, fold a tautological antecedent and check
        // against the oracle on the same pair.
        let acc = k.finish().to_vec();
        let taut = lits(&[-(u16::MAX as i64 + 1), u16::MAX as i64 + 1]);
        let oracle = resolve_sorted(&acc, &taut);
        let mut k2 = ResolutionKernel::with_mode(KernelMode::Swar);
        k2.begin(&acc);
        let ours = k2.fold(&taut).map(|_| k2.finish().to_vec());
        assert_eq!(ours.ok(), oracle.ok());
    }

    #[test]
    fn modes_report_their_layout() {
        assert_eq!(ResolutionKernel::new().mode(), KernelMode::Swar);
        assert_eq!(
            ResolutionKernel::with_mode(KernelMode::Scalar).mode(),
            KernelMode::Scalar
        );
    }
}
