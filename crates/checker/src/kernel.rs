//! The mark-array resolution kernel: allocation-free chain resolution.
//!
//! The checker's hot loop — "resolve the distance clause with each
//! antecedent in order" (§3.2 of the paper) — previously called
//! [`resolve_sorted`](crate::resolve_sorted) once per antecedent. Each
//! call allocated a fresh resolvent `Vec` and re-merged the whole
//! accumulator, so a chain of `k` antecedents cost O(k·|acc|) literal
//! visits and `k` heap allocations. This kernel resolves the *entire*
//! chain against a pair of variable-indexed stamp arrays instead: the
//! seed clause is marked into the array, every antecedent is folded in
//! O(|antecedent|), and the sorted resolvent is materialized exactly once
//! at the end. Total work for a chain with literal mass `L` is O(L + |r|
//! log |r|) for a resolvent `r`, and all scratch buffers are reused
//! across chains, so steady-state resolution performs **zero heap
//! allocations** (tracked by [`KernelStats::scratch_grows`]).
//!
//! The fold replicates `resolve_sorted`'s two-pointer merge semantics
//! bit-for-bit — including its behaviour on tautological inputs, where a
//! clause may contain both phases of a variable. `resolve_sorted` pairs
//! each antecedent literal with the *smallest-code unpaired* literal of
//! the same variable in the accumulator: equal literals merge, opposite
//! literals clash (both are consumed), and unpaired literals pass
//! through. The kernel reproduces this with two stamps per literal code:
//! `present` (is this literal in the accumulator, stamped with the chain
//! generation) and `paired` (was this literal already paired during the
//! current fold, stamped with a global fold sequence number). Bumping the
//! generation or the sequence number invalidates every stamp in O(1), so
//! nothing is ever cleared eagerly.
//!
//! `resolve_sorted` is retained untouched as the differential-testing
//! oracle; `tests/kernel_diff.rs` drives random chains through both and
//! asserts identical resolvents and identical failures.

use crate::resolve::ResolveFailure;
use rescheck_cnf::{Lit, Var};

/// Counters describing the kernel's work and scratch-memory behaviour.
///
/// `scratch_grows` is the allocation-freedom witness: it increments only
/// when the kernel's scratch footprint (mark arrays plus literal
/// buffers) grows. Once the kernel has seen the widest chain of a run it
/// stops incrementing, proving the steady state allocates nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Number of chains resolved (one per [`ResolutionKernel::begin`]).
    pub chains: u64,
    /// Total antecedent literals folded into accumulators.
    pub literals_folded: u64,
    /// Number of times the scratch footprint grew (reallocations).
    pub scratch_grows: u64,
    /// Peak scratch footprint in bytes across the kernel's lifetime.
    pub scratch_high_water: u64,
}

/// Resolves chains of clauses against a variable-indexed mark array.
///
/// Usage: [`begin`](Self::begin) with the seed clause, then
/// [`fold`](Self::fold) each antecedent in order (each fold enforces the
/// exactly-one-clash invariant and reports the pivot variable), then
/// [`finish`](Self::finish) to materialize the sorted resolvent.
///
/// All clauses handed to the kernel must be normalized (sorted,
/// duplicate-free), as produced by
/// [`normalize_literals`](crate::normalize_literals).
///
/// # Examples
///
/// ```
/// use rescheck_checker::kernel::ResolutionKernel;
/// use rescheck_checker::normalize_literals;
/// use rescheck_cnf::Lit;
///
/// let mut k = ResolutionKernel::new();
/// // (x + y) resolved with (¬y + z) gives (x + z).
/// k.begin(&normalize_literals([Lit::from_dimacs(1), Lit::from_dimacs(2)]));
/// let pivot = k
///     .fold(&normalize_literals([Lit::from_dimacs(-2), Lit::from_dimacs(3)]))
///     .unwrap();
/// assert_eq!(pivot.to_dimacs(), 2);
/// assert_eq!(
///     k.finish(),
///     normalize_literals([Lit::from_dimacs(1), Lit::from_dimacs(3)])
/// );
/// ```
#[derive(Debug, Default)]
pub struct ResolutionKernel {
    /// `present[code] == generation` iff the literal with that code is in
    /// the current accumulator.
    present: Vec<u64>,
    /// `paired[code] == fold_seq` iff the literal was paired (merged with
    /// or added by an antecedent literal) during the current fold.
    paired: Vec<u64>,
    /// Stamp for the current chain; bumping it empties the accumulator.
    generation: u64,
    /// Globally monotone stamp; bumping it "unpairs" every literal.
    fold_seq: u64,
    /// Insertion-ordered accumulator literals; may contain entries whose
    /// `present` stamp has since been cleared (lazy deletion).
    lits: Vec<Lit>,
    /// Resolvent buffer returned by [`finish`](Self::finish).
    out: Vec<Lit>,
    /// Clashing variables found by the current fold.
    clash: Vec<Var>,
    stats: KernelStats,
    /// Last observed scratch footprint in bytes, for growth tracking.
    footprint: u64,
}

impl ResolutionKernel {
    /// Creates a kernel with empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new chain seeded with `seed`'s literals.
    ///
    /// Any in-progress chain is discarded (its stamps are invalidated in
    /// O(1) by bumping the generation).
    pub fn begin(&mut self, seed: &[Lit]) {
        debug_assert!(
            seed.windows(2).all(|w| w[0] < w[1]),
            "seed clause not normalized"
        );
        self.generation += 1;
        self.fold_seq += 1;
        self.lits.clear();
        self.ensure_marks(seed);
        let generation = self.generation;
        for &l in seed {
            self.present[l.code()] = generation;
            self.lits.push(l);
        }
        self.stats.chains += 1;
        self.note_footprint();
    }

    /// Folds one antecedent into the accumulator.
    ///
    /// Performs exactly the per-variable pairing `resolve_sorted` does:
    /// each antecedent literal pairs with the smallest-code unpaired
    /// accumulator literal of its variable — merging if equal, clashing
    /// (both consumed) if opposite — or joins the accumulator if no
    /// partner is available.
    ///
    /// Returns the pivot variable eliminated by this step.
    ///
    /// # Errors
    ///
    /// Returns [`ResolveFailure`] when the step has zero clashing
    /// variables or more than one, with `clashing_vars` identical to what
    /// [`resolve_sorted`](crate::resolve_sorted) would report for the
    /// same pair of clauses.
    pub fn fold(&mut self, antecedent: &[Lit]) -> Result<Var, ResolveFailure> {
        debug_assert!(
            antecedent.windows(2).all(|w| w[0] < w[1]),
            "antecedent clause not normalized"
        );
        self.fold_seq += 1;
        self.ensure_marks(antecedent);
        self.clash.clear();
        let generation = self.generation;
        let fold_seq = self.fold_seq;
        for &l in antecedent {
            let code = l.code();
            let positive = code & !1;
            let negative = positive | 1;
            // The smallest-code literal of this variable that is in the
            // accumulator and not yet paired during this fold.
            let head = if self.present[positive] == generation && self.paired[positive] != fold_seq
            {
                Some(positive)
            } else if self.present[negative] == generation && self.paired[negative] != fold_seq {
                Some(negative)
            } else {
                None
            };
            match head {
                // Shared literal: merged, output once.
                Some(h) if h == code => self.paired[h] = fold_seq,
                // Opposite phases: a clash, both literals consumed.
                Some(h) => {
                    self.present[h] = 0;
                    self.clash.push(l.var());
                }
                // No partner: the antecedent literal passes through.
                None => {
                    self.present[code] = generation;
                    self.paired[code] = fold_seq;
                    self.lits.push(l);
                }
            }
        }
        self.stats.literals_folded += antecedent.len() as u64;
        self.note_footprint();
        if self.clash.len() == 1 {
            Ok(self.clash[0])
        } else {
            Err(ResolveFailure {
                clashing_vars: self.clash.clone(),
            })
        }
    }

    /// Materializes the chain's resolvent as a sorted, duplicate-free
    /// literal slice.
    ///
    /// Consumes the chain: the returned slice stays valid until the next
    /// call on the kernel, and a fresh [`begin`](Self::begin) is needed
    /// to start the next chain.
    pub fn finish(&mut self) -> &[Lit] {
        self.out.clear();
        let generation = self.generation;
        for i in 0..self.lits.len() {
            let l = self.lits[i];
            if self.present[l.code()] == generation {
                // Unmark on emit so lazily-deleted duplicates are skipped.
                self.present[l.code()] = 0;
                self.out.push(l);
            }
        }
        self.out.sort_unstable();
        self.note_footprint();
        &self.out
    }

    /// Returns the kernel's lifetime counters.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Grows the mark arrays to cover every literal of `lits`' variables.
    fn ensure_marks(&mut self, lits: &[Lit]) {
        // `code | 1` covers both phases of the literal's variable.
        if let Some(max) = lits.iter().map(|l| l.code() | 1).max() {
            if max >= self.present.len() {
                self.present.resize(max + 1, 0);
                self.paired.resize(max + 1, 0);
            }
        }
    }

    /// Updates `scratch_grows`/`scratch_high_water` from current buffer
    /// capacities.
    fn note_footprint(&mut self) {
        use std::mem::size_of;
        let bytes = (self.present.capacity() * size_of::<u64>()
            + self.paired.capacity() * size_of::<u64>()
            + self.lits.capacity() * size_of::<Lit>()
            + self.out.capacity() * size_of::<Lit>()
            + self.clash.capacity() * size_of::<Var>()) as u64;
        if bytes > self.footprint {
            self.footprint = bytes;
            self.stats.scratch_grows += 1;
            self.stats.scratch_high_water = bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::{normalize_literals, resolve_sorted};

    fn lits(ds: &[i64]) -> Vec<Lit> {
        normalize_literals(ds.iter().map(|&d| Lit::from_dimacs(d)))
    }

    /// Resolves a two-clause chain through the kernel.
    fn kernel_pair(a: &[i64], b: &[i64]) -> Result<Vec<Lit>, ResolveFailure> {
        let mut k = ResolutionKernel::new();
        k.begin(&lits(a));
        k.fold(&lits(b))?;
        Ok(k.finish().to_vec())
    }

    #[test]
    fn paper_example() {
        assert_eq!(kernel_pair(&[1, 2], &[-2, 3]).unwrap(), lits(&[1, 3]));
    }

    #[test]
    fn unit_resolution_to_empty_clause() {
        assert!(kernel_pair(&[5], &[-5]).unwrap().is_empty());
    }

    #[test]
    fn shared_literals_are_merged_once() {
        assert_eq!(
            kernel_pair(&[1, 2, 3], &[-3, 1, 4]).unwrap(),
            lits(&[1, 2, 4])
        );
    }

    #[test]
    fn no_clash_is_an_error() {
        let err = kernel_pair(&[1, 2], &[3, 4]).unwrap_err();
        assert!(err.clashing_vars.is_empty());
    }

    #[test]
    fn double_clash_is_an_error() {
        let err = kernel_pair(&[1, 2], &[-1, -2]).unwrap_err();
        assert_eq!(
            err.clashing_vars,
            vec![Var::from_dimacs(1), Var::from_dimacs(2)]
        );
    }

    #[test]
    fn fold_reports_the_pivot() {
        let mut k = ResolutionKernel::new();
        k.begin(&lits(&[1, -2, 4]));
        assert_eq!(k.fold(&lits(&[2, 5])).unwrap(), Var::from_dimacs(2));
        assert_eq!(k.finish(), lits(&[1, 4, 5]));
    }

    #[test]
    fn long_chain_matches_iterated_oracle() {
        // Seed (p1 + x1), antecedents (¬p_i + p_{i+1} + x_{i+1}).
        let mut acc = lits(&[100, 1]);
        let mut k = ResolutionKernel::new();
        k.begin(&acc);
        for i in 1..40i64 {
            let ant = lits(&[-(100 + i - 1), 100 + i, i + 1]);
            acc = resolve_sorted(&acc, &ant).unwrap();
            assert_eq!(
                k.fold(&ant).unwrap(),
                Var::from_dimacs((100 + i - 1) as u32)
            );
        }
        assert_eq!(k.finish(), acc);
    }

    /// The per-variable pairing case table that distinguishes the kernel
    /// from a naive "negation present → clash" mark scheme. Each case is
    /// checked against the oracle.
    #[test]
    fn tautological_inputs_match_the_oracle() {
        let cases: &[(&[i64], &[i64])] = &[
            (&[7, -7], &[-7]),    // clash on x7, ¬x7 survives
            (&[7, -7], &[7]),     // no clash, both survive
            (&[-7], &[7, -7]),    // clash on x7, ¬x7 re-emitted
            (&[9], &[7, -7]),     // no clash, tautology passes through
            (&[7], &[7, -7]),     // no clash, both phases in output
            (&[7, -7], &[7, -7]), // both merge, no clash
        ];
        for (a, b) in cases {
            let oracle = resolve_sorted(&lits(a), &lits(b));
            let ours = kernel_pair(a, b);
            assert_eq!(ours, oracle, "diverged on a={a:?} b={b:?}");
        }
    }

    #[test]
    fn scratch_growth_stops_in_steady_state() {
        let mut k = ResolutionKernel::new();
        let seed = lits(&[1, 2, 3]);
        let ant = lits(&[-3, 4]);
        for _ in 0..3 {
            k.begin(&seed);
            k.fold(&ant).unwrap();
            k.finish();
        }
        let warm = k.stats();
        for _ in 0..100 {
            k.begin(&seed);
            k.fold(&ant).unwrap();
            k.finish();
        }
        let steady = k.stats();
        assert_eq!(steady.scratch_grows, warm.scratch_grows);
        assert_eq!(steady.scratch_high_water, warm.scratch_high_water);
        assert_eq!(steady.chains, warm.chains + 100);
        assert_eq!(steady.literals_folded, warm.literals_folded + 200);
    }

    #[test]
    fn kernel_is_reusable_after_a_failed_fold() {
        let mut k = ResolutionKernel::new();
        k.begin(&lits(&[1, 2]));
        assert!(k.fold(&lits(&[3, 4])).is_err());
        // The failed chain leaves no residue in the next one.
        k.begin(&lits(&[5]));
        k.fold(&lits(&[-5, 6])).unwrap();
        assert_eq!(k.finish(), lits(&[6]));
    }

    #[test]
    fn finish_without_folds_returns_the_seed() {
        let mut k = ResolutionKernel::new();
        k.begin(&lits(&[3, -1, 2]));
        assert_eq!(k.finish(), lits(&[-1, 2, 3]));
    }
}
