//! A hand-rolled FxHash-style hasher for the checker's hot tables.
//!
//! The standard library's default `SipHash` is DoS-resistant but costs
//! tens of cycles per `u64` key; the checker's id → clause and id →
//! use-count maps are keyed by trace-internal integers that an adversary
//! cannot choose independently of the trace contents the checker fully
//! validates anyway, so the collision-flooding defence buys nothing
//! here. This is the classic Firefox/rustc "Fx" multiply-rotate hash:
//! one rotate, one xor, one multiply per word.
//!
//! Determinism is a feature, not just a speed-up: `HashMap`'s per-process
//! random seed made iteration order differ between runs, and every place
//! the checker iterates a hot map (e.g. the hybrid strategy's root set)
//! now behaves identically across runs and `--jobs` values.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// The multiplier from the FxHash family (a 64-bit odd constant with a
/// good avalanche profile under multiply).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-word-at-a-time multiply-rotate hasher.
#[derive(Clone, Copy, Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Builds [`FxHasher`]s from a fixed (deterministic) state.
#[derive(Clone, Copy, Default)]
pub(crate) struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashMap` keyed through [`FxHasher`].
pub(crate) type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed through [`FxHasher`].
pub(crate) type FxHashSet<K> = HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_behave_like_std_maps() {
        let mut map: FxHashMap<u64, &str> = FxHashMap::default();
        map.insert(7, "seven");
        map.insert(7, "seven again");
        map.insert(1 << 40, "big");
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(&7), Some(&"seven again"));
        assert_eq!(map.remove(&(1 << 40)), Some("big"));
        assert!(!map.contains_key(&(1 << 40)));
    }

    #[test]
    fn hashing_is_deterministic_across_builders() {
        let a = FxBuildHasher.hash_one(0xdead_beef_u64);
        let b = FxBuildHasher.hash_one(0xdead_beef_u64);
        assert_eq!(a, b);
        assert_ne!(a, FxBuildHasher.hash_one(0xdead_bee0_u64));
    }

    #[test]
    fn byte_stream_tail_is_hashed() {
        let mut h1 = FxHasher::default();
        h1.write(b"0123456789ab");
        let mut h2 = FxHasher::default();
        h2.write(b"0123456789ac");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn sets_dedup() {
        let mut set: FxHashSet<u64> = FxHashSet::default();
        assert!(set.insert(3));
        assert!(!set.insert(3));
        assert!(set.contains(&3));
    }
}
