//! The hybrid checking strategy — the paper's future work, realized.
//!
//! The conclusion of the paper asks for "a checker that has the advantage
//! of both the depth-first and breadth-first approaches without suffering
//! from their respective shortcomings", suggesting "a depth-first
//! algorithm for the graph on disk". This module is that algorithm:
//!
//! 1. **Index pass** (streaming): record each learned clause's *offset*
//!    in the encoded trace — 16 bytes per learned clause instead of its
//!    whole source list.
//! 2. **Reachability pass** (random access): walk the resolve-source DAG
//!    backwards from the final conflicting clause and the level-0
//!    antecedents, counting, for every *needed* clause, how many needed
//!    clauses consume it. Source lists are re-read from the trace on
//!    demand and never kept.
//! 3. **Build pass** (random access): construct only the needed clauses,
//!    depth-first; a clause is freed the moment its last needed consumer
//!    has been built (breadth-first's memory discipline applied to
//!    depth-first's clause subset).
//! 4. The final empty-clause derivation runs over the pinned clauses.
//!
//! Like depth-first, it builds only the clauses the proof touches (and
//! therefore also yields an unsat core); like breadth-first, its resident
//! memory excludes the trace and is bounded by live clauses plus small
//! per-clause bookkeeping.

use crate::api::CheckConfig;
use crate::arena::ClauseArena;
use crate::cache::OriginalCache;
use crate::error::CheckError;
use crate::final_phase::{derive_empty_clause, ClauseProvider};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::kernel::ResolutionKernel;
use crate::memory::{MemoryMeter, INDEX_ENTRY_BYTES, LEVEL_ZERO_RECORD_BYTES, USE_COUNT_BYTES};
use crate::model::{validate_learned, LevelZeroMap};
use crate::outcome::{CheckOutcome, CheckStats, Strategy, UnsatCore};
use crate::resolve::normalize_literals;
use rescheck_cnf::{Cnf, Lit};
use rescheck_obs::{Event, Observer, Phase};
use rescheck_trace::{RandomAccessTrace, TraceCursor, TraceEvent};
use std::sync::Arc;
use std::time::Instant;

pub(crate) fn run<S: RandomAccessTrace + ?Sized>(
    cnf: &Cnf,
    trace: &S,
    config: &CheckConfig,
    obs: &mut dyn Observer,
) -> Result<CheckOutcome, CheckError> {
    let start = Instant::now();
    let num_original = cnf.num_clauses();
    let mut meter = MemoryMeter::new(config.memory_limit);

    let pass1 = Phase::start("check:pass1", obs);
    // ---- Pass 1: offset index + level-0 records + pins.
    let mut index: FxHashMap<u64, u64> = FxHashMap::default();
    let mut level_zero = LevelZeroMap::default();
    let mut pinned: Vec<u64> = Vec::new();
    let mut final_ids: Vec<u64> = Vec::new();
    let mut seen: u64 = 0;
    for item in trace.offset_events()? {
        seen += 1;
        if seen.is_multiple_of(crate::depth_first::PROGRESS_STRIDE) {
            config.cancel.check()?;
        }
        let (offset, event) = item?;
        match event {
            TraceEvent::Learned { id, sources } => {
                validate_learned(id, sources.len(), num_original, |c| index.contains_key(&c))?;
                index.insert(id, offset);
            }
            TraceEvent::LevelZero { lit, antecedent } => {
                level_zero.insert(lit, antecedent)?;
                if antecedent >= num_original as u64 {
                    pinned.push(antecedent);
                }
            }
            // The final derivation starts from the *first* final conflict
            // only; pinning every recorded one would keep clauses the
            // proof never revisits resident for the whole run.
            TraceEvent::FinalConflict { id } => final_ids.push(id),
        }
    }
    let start_id = *final_ids.first().ok_or(CheckError::NoFinalConflict)?;
    if start_id >= num_original as u64 {
        pinned.push(start_id);
    }
    meter.alloc(
        index.len() as u64 * INDEX_ENTRY_BYTES + level_zero.len() as u64 * LEVEL_ZERO_RECORD_BYTES,
    )?;
    pass1.finish(obs);

    let mut cursor = trace.open_cursor()?;
    let sources_of = |cursor: &mut dyn TraceCursor,
                      index: &FxHashMap<u64, u64>,
                      id: u64,
                      parent: Option<u64>|
     -> Result<Vec<u64>, CheckError> {
        let offset = *index.get(&id).ok_or(CheckError::UnknownClause {
            id,
            referenced_by: parent,
        })?;
        match cursor.event_at(offset).map_err(CheckError::Trace)? {
            TraceEvent::Learned { id: got, sources } if got == id => Ok(sources),
            _ => Err(CheckError::Trace(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("trace offset for clause #{id} no longer addresses its record"),
            ))),
        }
    };

    // ---- Pass 2: reachability + use counts over the needed subgraph.
    let resolve_phase = Phase::start("check:resolve", obs);
    let pinned_set: FxHashSet<u64> = pinned
        .iter()
        .copied()
        .filter(|&id| id >= num_original as u64)
        .collect();
    let mut use_counts: FxHashMap<u64, u32> = FxHashMap::default();
    let mut visited: FxHashSet<u64> = FxHashSet::default();
    let mut gray: FxHashSet<u64> = FxHashSet::default();
    let mut steps: u64 = 0;
    for &root in &pinned_set {
        if visited.contains(&root) {
            continue;
        }
        // Iterative DFS with gray marking for cycle detection.
        let mut stack: Vec<(u64, Option<u64>)> = vec![(root, None)];
        while let Some(&(cur, parent)) = stack.last() {
            steps += 1;
            if steps.is_multiple_of(crate::depth_first::PROGRESS_STRIDE) {
                config.cancel.check()?;
            }
            if cur < num_original as u64 || visited.contains(&cur) {
                stack.pop();
                continue;
            }
            if gray.contains(&cur) {
                // Children expanded: mark done.
                gray.remove(&cur);
                visited.insert(cur);
                stack.pop();
                continue;
            }
            gray.insert(cur);
            let sources = sources_of(&mut *cursor, &index, cur, parent)?;
            for &s in &sources {
                if s >= num_original as u64 {
                    *use_counts.entry(s).or_insert(0) += 1;
                    if gray.contains(&s) {
                        return Err(CheckError::CyclicProof { id: s });
                    }
                    if !visited.contains(&s) {
                        stack.push((s, Some(cur)));
                    }
                }
            }
        }
    }
    let needed = visited.len();
    meter.alloc(needed as u64 * USE_COUNT_BYTES)?;

    // ---- Pass 3: depth-first build over the needed subgraph, freeing
    // clauses as their last use completes.
    let mut arena = ClauseArena::new();
    let mut kernel = ResolutionKernel::new();
    let mut original_cache = OriginalCache::new(config.original_cache_bytes);
    let mut used_originals = vec![false; num_original];
    let mut resolutions: u64 = 0;
    let mut clauses_built: u64 = 0;

    // Build in reverse topological order discovered by a second DFS (the
    // graph is now known to be acyclic).
    let mut build_order: Vec<u64> = Vec::with_capacity(needed);
    {
        let mut expanded: FxHashSet<u64> = FxHashSet::default();
        let mut placed: FxHashSet<u64> = FxHashSet::default();
        for &root in &pinned_set {
            let mut stack: Vec<u64> = vec![root];
            while let Some(&cur) = stack.last() {
                if cur < num_original as u64 || placed.contains(&cur) {
                    stack.pop();
                    continue;
                }
                if expanded.contains(&cur) {
                    placed.insert(cur);
                    build_order.push(cur);
                    stack.pop();
                    continue;
                }
                expanded.insert(cur);
                for &s in &sources_of(&mut *cursor, &index, cur, Some(cur))? {
                    if s >= num_original as u64 && !placed.contains(&s) {
                        stack.push(s);
                    }
                }
            }
        }
    }

    let fetch_original = |id: u64,
                          cache: &mut OriginalCache,
                          used: &mut Vec<bool>,
                          meter: &mut MemoryMeter|
     -> Arc<[Lit]> {
        used[id as usize] = true;
        if let Some(c) = cache.get(id) {
            return c;
        }
        let lits: Arc<[Lit]> = Arc::from(normalize_literals(
            cnf.clause(id as usize).expect("in range").iter().copied(),
        ));
        cache.insert(id, &lits, meter);
        lits
    };

    for id in build_order {
        let sources = sources_of(&mut *cursor, &index, id, None)?;
        obs.observe(&Event::HistRecord {
            name: "check.resolve.chain_len",
            value: sources.len() as u64,
        });
        for (step, &s) in sources.iter().enumerate() {
            let folded = if s < num_original as u64 {
                let clause =
                    fetch_original(s, &mut original_cache, &mut used_originals, &mut meter);
                if step == 0 {
                    kernel.begin(&clause);
                    continue;
                }
                kernel.fold(&clause)
            } else {
                let Some(clause) = arena.get(s) else {
                    return Err(CheckError::UnknownClause {
                        id: s,
                        referenced_by: Some(id),
                    });
                };
                if step == 0 {
                    kernel.begin(clause);
                    continue;
                }
                kernel.fold(clause)
            };
            folded.map_err(|failure| CheckError::NotResolvable {
                target: Some(id),
                step,
                with: s,
                failure,
            })?;
            resolutions += 1;
        }
        clauses_built += 1;
        if clauses_built.is_multiple_of(crate::depth_first::PROGRESS_STRIDE) {
            config.cancel.check()?;
            obs.observe(&Event::Progress {
                phase: "check:resolve",
                done: clauses_built,
                unit: "clauses",
                detail: None,
            });
        }

        // Consume the sources: free any clause whose needed uses are done
        // — before storing the resolvent, so it can reuse the extent.
        for &s in &sources {
            if s >= num_original as u64 && !pinned_set.contains(&s) {
                let count = use_counts.get_mut(&s).expect("counted in pass 2");
                *count -= 1;
                if *count == 0 {
                    arena.remove(s, &mut meter);
                }
            }
        }
        let still_used = pinned_set.contains(&id) || use_counts.get(&id).copied().unwrap_or(0) > 0;
        if still_used {
            let lits = kernel.finish();
            let clause_len = lits.len() as u64;
            arena.insert(id, lits, &mut meter)?;
            obs.observe(&Event::HistRecord {
                name: "check.resolve.clause_len",
                value: clause_len,
            });
        }
    }

    resolve_phase.finish(obs);

    // ---- Final phase over the pinned clauses.
    let final_phase = Phase::start("final-phase", obs);
    struct HybridProvider<'a> {
        cnf: &'a Cnf,
        num_original: usize,
        arena: &'a ClauseArena,
        original_cache: &'a mut OriginalCache,
        used_originals: &'a mut Vec<bool>,
        meter: &'a mut MemoryMeter,
    }
    impl ClauseProvider for HybridProvider<'_> {
        fn clause_into(&mut self, id: u64, out: &mut Vec<Lit>) -> Result<(), CheckError> {
            if id < self.num_original as u64 {
                self.used_originals[id as usize] = true;
                if let Some(c) = self.original_cache.get(id) {
                    out.clear();
                    out.extend_from_slice(&c);
                    return Ok(());
                }
                let lits: Arc<[Lit]> = Arc::from(normalize_literals(
                    self.cnf
                        .clause(id as usize)
                        .expect("in range")
                        .iter()
                        .copied(),
                ));
                self.original_cache.insert(id, &lits, self.meter);
                out.clear();
                out.extend_from_slice(&lits);
                return Ok(());
            }
            let Some(clause) = self.arena.get(id) else {
                return Err(CheckError::UnknownClause {
                    id,
                    referenced_by: None,
                });
            };
            out.clear();
            out.extend_from_slice(clause);
            Ok(())
        }
    }
    let mut provider = HybridProvider {
        cnf,
        num_original,
        arena: &arena,
        original_cache: &mut original_cache,
        used_originals: &mut used_originals,
        meter: &mut meter,
    };
    let final_stats = derive_empty_clause(start_id, &level_zero, &mut provider)?;
    final_phase.finish(obs);

    let core_ids: Vec<usize> = used_originals
        .iter()
        .enumerate()
        .filter(|(_, &u)| u)
        .map(|(i, _)| i)
        .collect();

    let stats = CheckStats {
        strategy: Strategy::Hybrid,
        learned_in_trace: index.len() as u64,
        clauses_built,
        resolutions: resolutions + final_stats.resolutions,
        peak_memory_bytes: meter.peak(),
        runtime: start.elapsed(),
        trace_bytes: trace.encoded_size(),
    };
    crate::depth_first::emit_check_gauges(obs, &stats, use_counts.len() as u64);
    crate::depth_first::emit_kernel_gauges(
        obs,
        &kernel.stats(),
        arena.charged_bytes(),
        arena.reuse_hits(),
    );

    Ok(CheckOutcome {
        core: Some(UnsatCore::new(core_ids, cnf)),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescheck_obs::NullObserver;
    use rescheck_trace::{MemorySink, TraceSink};

    fn learned_proof() -> (Cnf, MemorySink) {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1, 2]);
        cnf.add_dimacs_clause(&[1, -2]);
        cnf.add_dimacs_clause(&[-1, 2]);
        cnf.add_dimacs_clause(&[-1, -2]);
        let mut sink = MemorySink::new();
        sink.learned(4, &[0, 1]).unwrap(); // (1)
        sink.learned(5, &[2, 3]).unwrap(); // (-1)
        sink.level_zero(Lit::from_dimacs(1), 4).unwrap();
        sink.final_conflict(5).unwrap();
        (cnf, sink)
    }

    #[test]
    fn accepts_learned_clause_proof_with_core() {
        let (cnf, sink) = learned_proof();
        let outcome = run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap();
        assert_eq!(outcome.stats.strategy, Strategy::Hybrid);
        assert_eq!(outcome.stats.clauses_built, 2);
        let core = outcome.core.unwrap();
        assert_eq!(core.clause_ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn skips_unneeded_clauses_like_depth_first() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]);
        cnf.add_dimacs_clause(&[-1, 2]);
        cnf.add_dimacs_clause(&[-2]);
        cnf.add_dimacs_clause(&[3, 4]);
        cnf.add_dimacs_clause(&[-4, 5]);
        let mut sink = MemorySink::new();
        sink.learned(5, &[3, 4]).unwrap(); // irrelevant to the proof
        sink.level_zero(Lit::from_dimacs(1), 0).unwrap();
        sink.level_zero(Lit::from_dimacs(2), 1).unwrap();
        sink.final_conflict(2).unwrap();
        let outcome = run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap();
        assert_eq!(outcome.stats.clauses_built, 0);
        assert_eq!(outcome.core.unwrap().clause_ids, vec![0, 1, 2]);
    }

    #[test]
    fn missing_final_conflict_is_rejected() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]);
        let sink = MemorySink::new();
        assert!(matches!(
            run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap_err(),
            CheckError::NoFinalConflict
        ));
    }

    #[test]
    fn cycles_are_detected() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]);
        let mut sink = MemorySink::new();
        sink.learned(1, &[2, 0]).unwrap();
        sink.learned(2, &[1, 0]).unwrap();
        sink.final_conflict(1).unwrap();
        assert!(matches!(
            run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap_err(),
            CheckError::CyclicProof { .. }
        ));
    }

    #[test]
    fn invalid_resolution_is_attributed() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1, 2]);
        cnf.add_dimacs_clause(&[3, 4]);
        let mut sink = MemorySink::new();
        sink.learned(2, &[0, 1]).unwrap();
        sink.final_conflict(2).unwrap();
        let err = run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap_err();
        assert!(matches!(
            err,
            CheckError::NotResolvable {
                target: Some(2),
                ..
            }
        ));
    }

    #[test]
    fn memory_limit_applies() {
        let (cnf, sink) = learned_proof();
        let config = CheckConfig {
            memory_limit: Some(8),
            ..CheckConfig::default()
        };
        assert!(matches!(
            run(&cnf, &sink, &config, &mut NullObserver).unwrap_err(),
            CheckError::MemoryLimitExceeded { .. }
        ));
    }

    #[test]
    fn frees_mid_chain_clauses() {
        // A long chain where every learned clause is used exactly once:
        // hybrid must not hold them all simultaneously.
        let mut cnf = Cnf::new();
        let n = 64i64;
        cnf.add_dimacs_clause(&[1]);
        for i in 1..n {
            cnf.add_dimacs_clause(&[-i, i + 1]);
        }
        cnf.add_dimacs_clause(&[-n]);
        let mut sink = MemorySink::new();
        let mut prev = 0u64;
        for i in 1..n {
            let next_id = (n + i) as u64;
            sink.learned(next_id, &[prev, i as u64]).unwrap();
            prev = next_id;
        }
        sink.level_zero(Lit::from_dimacs(n), prev).unwrap();
        sink.final_conflict(n as u64).unwrap();

        let hybrid = run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap();
        let df = crate::depth_first::run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver)
            .unwrap();
        assert!(
            hybrid.stats.peak_memory_bytes < df.stats.peak_memory_bytes,
            "hybrid {} vs df {}",
            hybrid.stats.peak_memory_bytes,
            df.stats.peak_memory_bytes
        );
        assert_eq!(hybrid.stats.clauses_built, df.stats.clauses_built);
    }
}
