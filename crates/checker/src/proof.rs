//! Resolution-proof analytics.
//!
//! Beyond validating a proof, the resolution DAG itself carries
//! information: how deep the derivation is, how many resolutions it
//! performs, how much of the solver's learning it actually uses. These
//! metrics quantify the paper's observations (e.g. that xor-heavy
//! `longmult` proofs are long, §4) and are cheap to compute — a
//! structural pass, no clause construction.

use crate::error::CheckError;
use crate::model::load_full;
use rescheck_cnf::Cnf;
use rescheck_trace::TraceSource;
use std::collections::HashMap;
use std::fmt;

/// Structural measurements of a resolution proof.
///
/// # Examples
///
/// ```
/// use rescheck_checker::proof_stats;
/// use rescheck_cnf::Cnf;
/// use rescheck_solver::{Solver, SolverConfig};
/// use rescheck_trace::MemorySink;
///
/// let mut cnf = Cnf::new();
/// cnf.add_dimacs_clause(&[1]);
/// cnf.add_dimacs_clause(&[-1]);
/// let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
/// let mut trace = MemorySink::new();
/// assert!(solver.solve_traced(&mut trace)?.is_unsat());
/// let stats = proof_stats(&cnf, &trace)?;
/// assert_eq!(stats.learned_total, 0); // unit conflict needs no learning
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ProofStats {
    /// Learned clauses recorded in the trace.
    pub learned_total: u64,
    /// Learned clauses reachable from the empty-clause derivation.
    pub needed: u64,
    /// Resolution steps in the needed derivations (excluding the final
    /// phase): `Σ (sources − 1)` over needed clauses.
    pub derivation_resolutions: u64,
    /// Upper bound on final-phase resolutions (one per level-0 record).
    pub final_phase_bound: u64,
    /// Longest source chain: the height of the needed DAG, counting
    /// original clauses as height 0.
    pub depth: u64,
    /// Largest resolve-source list among needed clauses.
    pub max_sources: usize,
    /// Mean resolve-source list length among needed clauses.
    pub avg_sources: f64,
    /// Original clauses referenced by the needed subgraph.
    pub core_clauses: usize,
}

impl ProofStats {
    /// Fraction of recorded learned clauses the proof needs, in percent.
    pub fn needed_percent(&self) -> f64 {
        if self.learned_total == 0 {
            100.0
        } else {
            100.0 * self.needed as f64 / self.learned_total as f64
        }
    }
}

impl fmt::Display for ProofStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "proof: {}/{} learned clauses needed ({:.1}%), depth {}, \
             {} derivation resolutions (≤{} final), sources avg {:.1} max {}, \
             core {} clauses",
            self.needed,
            self.learned_total,
            self.needed_percent(),
            self.depth,
            self.derivation_resolutions,
            self.final_phase_bound,
            self.avg_sources,
            self.max_sources,
            self.core_clauses,
        )
    }
}

/// Computes [`ProofStats`] for a trace without rebuilding any clause.
///
/// # Errors
///
/// Fails on unreadable/malformed traces, missing final conflicts,
/// unknown clause references and cyclic proofs — the same structural
/// checks the checkers perform.
pub fn proof_stats<S: TraceSource + ?Sized>(
    cnf: &Cnf,
    trace: &S,
) -> Result<ProofStats, CheckError> {
    let num_original = cnf.num_clauses();
    let full = load_full(trace, num_original, &crate::cancel::CancelFlag::default())?;
    let start = *full.final_ids.first().ok_or(CheckError::NoFinalConflict)?;

    // Roots: the final conflicting clause plus every level-0 antecedent.
    let mut roots: Vec<u64> = vec![start];
    for record in full.level_zero.records() {
        roots.push(record.antecedent);
    }

    // Iterative post-order DFS computing heights.
    let mut height: HashMap<u64, u64> = HashMap::new();
    let mut gray: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut used_originals = vec![false; num_original];
    let mut derivation_resolutions = 0u64;
    let mut max_sources = 0usize;
    let mut source_sum = 0u64;

    for &root in &roots {
        if root < num_original as u64 {
            used_originals[root as usize] = true;
            continue;
        }
        if height.contains_key(&root) {
            continue;
        }
        let mut stack: Vec<(u64, Option<u64>)> = vec![(root, None)];
        while let Some(&(cur, parent)) = stack.last() {
            if cur < num_original as u64 || height.contains_key(&cur) {
                stack.pop();
                continue;
            }
            let sources = full.sources.get(&cur).ok_or(CheckError::UnknownClause {
                id: cur,
                referenced_by: parent,
            })?;
            if gray.contains(&cur) {
                // Children done: fold.
                let mut h = 0u64;
                for &s in sources {
                    if s < num_original as u64 {
                        used_originals[s as usize] = true;
                    } else {
                        h = h.max(*height.get(&s).expect("child finished"));
                    }
                }
                height.insert(cur, h + 1);
                gray.remove(&cur);
                derivation_resolutions += sources.len() as u64 - 1;
                max_sources = max_sources.max(sources.len());
                source_sum += sources.len() as u64;
                stack.pop();
                continue;
            }
            gray.insert(cur);
            for &s in sources {
                if s >= num_original as u64 && !height.contains_key(&s) {
                    if gray.contains(&s) {
                        return Err(CheckError::CyclicProof { id: s });
                    }
                    stack.push((s, Some(cur)));
                }
            }
        }
    }

    let needed = height.len() as u64;
    let depth = height.values().copied().max().unwrap_or(0);
    Ok(ProofStats {
        learned_total: full.sources.len() as u64,
        needed,
        derivation_resolutions,
        final_phase_bound: full.level_zero.len() as u64,
        depth,
        max_sources,
        avg_sources: if needed == 0 {
            0.0
        } else {
            source_sum as f64 / needed as f64
        },
        core_clauses: used_originals.iter().filter(|&&u| u).count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescheck_cnf::Lit;
    use rescheck_solver::{Solver, SolverConfig};
    use rescheck_trace::{MemorySink, TraceSink};

    #[test]
    fn handwritten_proof_metrics() {
        // One learned clause #3 = r(#0,#1), used as the level-0
        // antecedent of x1; the final conflict sits on original #2.
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1, 2]); // 0
        cnf.add_dimacs_clause(&[-2, 3]); // 1
        cnf.add_dimacs_clause(&[-3, -1]); // 2
        let mut sink = MemorySink::new();
        sink.learned(3, &[0, 1]).unwrap(); // (1 3), height 1
        sink.level_zero(Lit::from_dimacs(1), 3).unwrap();
        sink.final_conflict(2).unwrap();

        let stats = proof_stats(&cnf, &sink).unwrap();
        assert_eq!(stats.learned_total, 1);
        assert_eq!(stats.needed, 1);
        assert_eq!(stats.depth, 1);
        assert_eq!(stats.derivation_resolutions, 1);
        assert_eq!(stats.final_phase_bound, 1);
        assert_eq!(stats.max_sources, 2);
        assert_eq!(stats.core_clauses, 3);
        assert!((stats.needed_percent() - 100.0).abs() < 1e-9);
        assert!(stats.to_string().contains("depth 1"));
    }

    #[test]
    fn chained_heights_accumulate() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]); // 0
        cnf.add_dimacs_clause(&[-1, 2]); // 1
        cnf.add_dimacs_clause(&[-2, 3]); // 2
        cnf.add_dimacs_clause(&[-3]); // 3
        let mut sink = MemorySink::new();
        sink.learned(4, &[0, 1]).unwrap(); // (2), height 1
        sink.learned(5, &[4, 2]).unwrap(); // (3), height 2
        sink.learned(6, &[5, 3]).unwrap(); // (), height 3 — as a clause id
        sink.final_conflict(6).unwrap();
        let stats = proof_stats(&cnf, &sink).unwrap();
        assert_eq!(stats.depth, 3);
        assert_eq!(stats.needed, 3);
        assert_eq!(stats.derivation_resolutions, 3);
    }

    #[test]
    fn unused_learned_clauses_are_not_needed() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]);
        cnf.add_dimacs_clause(&[-1]);
        cnf.add_dimacs_clause(&[2, 3]);
        cnf.add_dimacs_clause(&[2, -3]);
        let mut sink = MemorySink::new();
        sink.learned(4, &[2, 3]).unwrap(); // unused
        sink.level_zero(Lit::from_dimacs(1), 0).unwrap();
        sink.final_conflict(1).unwrap();
        let stats = proof_stats(&cnf, &sink).unwrap();
        assert_eq!(stats.learned_total, 1);
        assert_eq!(stats.needed, 0);
        assert_eq!(stats.needed_percent(), 0.0);
        assert_eq!(stats.core_clauses, 2);
        assert_eq!(stats.avg_sources, 0.0);
    }

    #[test]
    fn real_traces_have_consistent_metrics() {
        let mut cnf = Cnf::new();
        // PHP(5,4) inline.
        let lit =
            |p: usize, h: usize| rescheck_cnf::Lit::positive(rescheck_cnf::Var::new(p * 4 + h));
        for p in 0..5 {
            cnf.add_clause((0..4).map(|h| lit(p, h)));
        }
        for h in 0..4 {
            for p1 in 0..5 {
                for p2 in p1 + 1..5 {
                    cnf.add_clause([!lit(p1, h), !lit(p2, h)]);
                }
            }
        }
        let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
        let mut trace = MemorySink::new();
        assert!(solver.solve_traced(&mut trace).unwrap().is_unsat());
        let stats = proof_stats(&cnf, &trace).unwrap();
        assert_eq!(stats.learned_total, solver.stats().learned_clauses);
        assert!(stats.needed <= stats.learned_total);
        assert!(stats.depth >= 1);
        assert!(stats.core_clauses <= cnf.num_clauses());
        // Consistent with the depth-first checker's count.
        let outcome =
            crate::api::check_depth_first(&cnf, &trace, &crate::api::CheckConfig::default())
                .unwrap();
        assert!(stats.needed >= outcome.stats.clauses_built);
    }

    #[test]
    fn cyclic_proofs_are_rejected() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]);
        let mut sink = MemorySink::new();
        sink.learned(1, &[2, 0]).unwrap();
        sink.learned(2, &[1, 0]).unwrap();
        sink.final_conflict(1).unwrap();
        assert!(matches!(
            proof_stats(&cnf, &sink).unwrap_err(),
            CheckError::CyclicProof { .. }
        ));
    }

    #[test]
    fn missing_final_conflict_is_rejected() {
        let cnf = Cnf::new();
        let sink = MemorySink::new();
        assert!(matches!(
            proof_stats(&cnf, &sink).unwrap_err(),
            CheckError::NoFinalConflict
        ));
    }
}
