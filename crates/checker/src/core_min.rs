//! Iterative unsatisfiable-core minimization (paper §4, Table 3).
//!
//! The original clauses used by a depth-first proof form an unsatisfiable
//! core. Solving *that* core and checking the new proof usually shrinks it
//! further; the paper iterates this up to 30 times or until a fixed point
//! where "all the clauses are needed for the proof".

use crate::api::{check_depth_first, CheckConfig};
use crate::error::CheckError;
use crate::outcome::UnsatCore;
use rescheck_cnf::Cnf;
use rescheck_solver::{SolveResult, Solver, SolverConfig};
use rescheck_trace::MemorySink;
use std::error::Error;
use std::fmt;

/// The size of the core after one iteration (one row cell of Table 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreIteration {
    /// Original clauses remaining in the core.
    pub num_clauses: usize,
    /// Distinct variables those clauses mention.
    pub num_vars: usize,
}

/// The result of iterated core extraction.
#[derive(Clone, Debug)]
pub struct CoreMinimization {
    /// Core size after each iteration, in order.
    pub iterations: Vec<CoreIteration>,
    /// IDs of the final core's clauses **in the input formula**.
    pub core_ids: Vec<usize>,
    /// `true` if iteration stopped because the core stopped shrinking.
    pub reached_fixed_point: bool,
}

impl CoreMinimization {
    /// The final core as an [`UnsatCore`] over the input formula.
    pub fn final_core(&self, cnf: &Cnf) -> UnsatCore {
        UnsatCore::new(self.core_ids.clone(), cnf)
    }
}

/// Ways core minimization can fail.
#[derive(Debug)]
pub enum MinimizeError {
    /// The input (or an intermediate core — impossible unless something is
    /// buggy) turned out satisfiable.
    Satisfiable,
    /// A solve hit its conflict budget before finishing.
    BudgetExhausted,
    /// A proof failed to check.
    Check(CheckError),
    /// Writing the in-memory trace failed (cannot happen in practice).
    Io(std::io::Error),
}

impl fmt::Display for MinimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MinimizeError::Satisfiable => {
                f.write_str("formula is satisfiable; it has no unsatisfiable core")
            }
            MinimizeError::BudgetExhausted => {
                f.write_str("solver conflict budget exhausted during core minimization")
            }
            MinimizeError::Check(e) => write!(f, "proof check failed: {e}"),
            MinimizeError::Io(e) => write!(f, "trace I/O failed: {e}"),
        }
    }
}

impl Error for MinimizeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MinimizeError::Check(e) => Some(e),
            MinimizeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckError> for MinimizeError {
    fn from(e: CheckError) -> Self {
        MinimizeError::Check(e)
    }
}

impl From<std::io::Error> for MinimizeError {
    fn from(e: std::io::Error) -> Self {
        MinimizeError::Io(e)
    }
}

/// Iteratively shrinks the unsatisfiable core of `cnf`.
///
/// Each iteration solves the current core with a fresh solver, checks the
/// proof depth-first, and keeps only the original clauses the proof used.
/// Stops after `max_iterations` or at a fixed point (no shrinkage), the
/// stopping rule of the paper's Table 3.
///
/// # Errors
///
/// Fails if the formula is satisfiable, a solve exceeds its conflict
/// budget, or — indicating a bug — a generated proof does not check.
///
/// # Examples
///
/// ```
/// use rescheck_checker::minimize_core;
/// use rescheck_cnf::Cnf;
/// use rescheck_solver::SolverConfig;
///
/// let mut cnf = Cnf::new();
/// cnf.add_dimacs_clause(&[1]);
/// cnf.add_dimacs_clause(&[-1]);
/// cnf.add_dimacs_clause(&[2, 3]); // irrelevant
/// let result = minimize_core(&cnf, &SolverConfig::default(), 30)?;
/// assert_eq!(result.core_ids, vec![0, 1]);
/// assert!(result.reached_fixed_point);
/// # Ok::<(), rescheck_checker::MinimizeError>(())
/// ```
pub fn minimize_core(
    cnf: &Cnf,
    solver_cfg: &SolverConfig,
    max_iterations: usize,
) -> Result<CoreMinimization, MinimizeError> {
    // `current_ids[i]` maps clause `i` of the working formula back to its
    // ID in the input formula.
    let mut current_ids: Vec<usize> = (0..cnf.num_clauses()).collect();
    let mut current = cnf.clone();
    let mut iterations = Vec::new();
    let mut reached_fixed_point = false;

    for _ in 0..max_iterations {
        let mut solver = Solver::from_cnf(&current, solver_cfg.clone());
        let mut trace = MemorySink::new();
        match solver.solve_traced(&mut trace)? {
            SolveResult::Unsatisfiable => {}
            SolveResult::Satisfiable(_) => return Err(MinimizeError::Satisfiable),
            SolveResult::Unknown => return Err(MinimizeError::BudgetExhausted),
        }
        let outcome = check_depth_first(&current, &trace, &CheckConfig::default())?;
        let core = outcome.core.expect("depth-first yields a core");

        let next_ids: Vec<usize> = core
            .clause_ids
            .iter()
            .map(|&pos| current_ids[pos])
            .collect();
        iterations.push(CoreIteration {
            num_clauses: core.num_clauses(),
            num_vars: core.num_vars(),
        });

        if next_ids.len() == current_ids.len() {
            reached_fixed_point = true;
            current_ids = next_ids;
            break;
        }
        current = cnf.subformula(next_ids.iter().copied());
        current_ids = next_ids;
    }

    Ok(CoreMinimization {
        iterations,
        core_ids: current_ids,
        reached_fixed_point,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pigeonhole PHP(n+1, n) padded with irrelevant satisfiable clauses.
    fn padded_php(holes: usize, padding: usize) -> (Cnf, usize) {
        let pigeons = holes + 1;
        let mut cnf = Cnf::new();
        let lit =
            |p: usize, h: usize| rescheck_cnf::Lit::positive(rescheck_cnf::Var::new(p * holes + h));
        for p in 0..pigeons {
            cnf.add_clause((0..holes).map(|h| lit(p, h)));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    cnf.add_clause([!lit(p1, h), !lit(p2, h)]);
                }
            }
        }
        let php_clauses = cnf.num_clauses();
        let base = pigeons * holes;
        for i in 0..padding {
            let a = rescheck_cnf::Var::new(base + 2 * i);
            let b = rescheck_cnf::Var::new(base + 2 * i + 1);
            cnf.add_clause([a.positive(), b.positive()]);
        }
        (cnf, php_clauses)
    }

    #[test]
    fn padding_is_removed_from_the_core() {
        let (cnf, php_clauses) = padded_php(3, 20);
        let result = minimize_core(&cnf, &SolverConfig::default(), 30).unwrap();
        // The padding clauses can never participate in the proof.
        assert!(result.core_ids.iter().all(|&id| id < php_clauses));
        assert!(!result.iterations.is_empty());
        // Iteration sizes never grow.
        for w in result.iterations.windows(2) {
            assert!(w[1].num_clauses <= w[0].num_clauses);
        }
        let core = result.final_core(&cnf);
        assert_eq!(core.num_clauses(), result.core_ids.len());
    }

    #[test]
    fn final_core_is_still_unsat() {
        let (cnf, _) = padded_php(3, 10);
        let result = minimize_core(&cnf, &SolverConfig::default(), 5).unwrap();
        let sub = cnf.subformula(result.core_ids.iter().copied());
        let mut solver = Solver::from_cnf(&sub, SolverConfig::default());
        assert!(solver.solve().is_unsat());
    }

    #[test]
    fn satisfiable_input_is_an_error() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1, 2]);
        let err = minimize_core(&cnf, &SolverConfig::default(), 3).unwrap_err();
        assert!(matches!(err, MinimizeError::Satisfiable));
        assert!(err.to_string().contains("satisfiable"));
    }

    #[test]
    fn zero_iterations_returns_input_ids() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]);
        cnf.add_dimacs_clause(&[-1]);
        let result = minimize_core(&cnf, &SolverConfig::default(), 0).unwrap();
        assert_eq!(result.core_ids, vec![0, 1]);
        assert!(result.iterations.is_empty());
        assert!(!result.reached_fixed_point);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let (cnf, _) = padded_php(5, 0);
        let cfg = SolverConfig {
            conflict_limit: Some(1),
            ..SolverConfig::default()
        };
        let err = minimize_core(&cnf, &cfg, 3).unwrap_err();
        assert!(matches!(err, MinimizeError::BudgetExhausted));
    }
}
