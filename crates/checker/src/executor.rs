//! The work-stealing executor behind [`Strategy::ParallelDag`]
//! (`Strategy` = [`crate::Strategy`]): schedules the dense dependency
//! graph of [`crate::dag`] across `jobs` workers and commits results
//! through a single monotone watermark.
//!
//! ## Scheduling
//!
//! Each worker owns a deque (a `Mutex`-guarded ring with an atomic
//! length for the lock-free emptiness fast path — the std-only stand-in
//! for a Chase-Lev deque, since the checker crate forbids `unsafe`).
//! The owner pushes and pops at the back (LIFO, cache-warm); thieves
//! steal from the front (FIFO, oldest first). A node becomes ready when
//! its last learned source publishes, and is pushed by whichever worker
//! performed that final in-degree decrement. Idle workers park on a
//! condvar; the run terminates when every worker is parked and every
//! deque is empty.
//!
//! ## Determinism: the commit watermark
//!
//! Workers resolve nodes in whatever order the steals happen to produce,
//! but *observable effects* — memory charges and frees, the resolution
//! and clauses-built counters, memory-limit and cancellation errors —
//! happen only at **commit time**, and nodes commit strictly in trace
//! order: after publishing, a worker drains the watermark while the next
//! uncommitted node is resolved. Every commit replays the exact
//! free-sources-then-store accounting of the breadth-first pass, so
//! `peak_memory_bytes`, `resolutions` and `clauses_built` are a pure
//! function of the trace, bit-identical for every `--jobs` value.
//!
//! ## Errors
//!
//! Failures land on a shared error board keyed by node index, and the
//! reported error is the one with the smallest index — the same "first
//! failure in trace order" the sequential pass reports (a node can only
//! fail if all its ancestors succeeded, so the minimum is exactly the
//! sequential first error). Workers prune any popped node above the
//! current minimum errored index, and a panic inside a worker is caught
//! and boarded as [`CheckError::WorkerPanic`] instead of aborting.

use crate::api::CheckConfig;
use crate::dag::{Dag, ORIGINAL_TAG};
use crate::error::CheckError;
use crate::kernel::{KernelStats, ResolutionKernel};
use crate::memory::{clause_bytes, MemoryMeter};
use rescheck_cnf::Lit;
use rescheck_obs::{Event, EventBuffer, Observer};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, PoisonError, RwLock};
use std::thread;

/// Everything the executor hands back on success.
pub(crate) struct ExecResult {
    /// The meter after every commit (its peak is the reported stat).
    pub meter: MemoryMeter,
    /// Resolution steps performed across all committed nodes.
    pub resolutions: u64,
    /// Nodes committed (every learned clause, on success).
    pub clauses_built: u64,
    /// Completion slots; pinned nodes still hold their clause for the
    /// final phase, free-at-last-use already emptied the rest.
    pub slots: Vec<Option<Box<[Lit]>>>,
}

/// One worker's deque: owner pushes/pops the back, thieves pop the
/// front. `len` mirrors the ring length so scans skip empty queues
/// without touching the lock.
struct WorkerQueue {
    ring: Mutex<VecDeque<u32>>,
    len: AtomicUsize,
}

/// Commit-side state, advanced only under the watermark lock.
struct CommitState {
    /// Next node index to commit (the watermark).
    next: u32,
    meter: MemoryMeter,
    resolutions: u64,
    clauses_built: u64,
    /// Remaining uses per node before its clause can be freed.
    use_remaining: Vec<u32>,
    /// Commit-side metric samples (stored-clause lengths), replayed
    /// after the join.
    buffer: EventBuffer,
}

/// Parked-worker bookkeeping under the idle lock.
struct Idle {
    sleeping: usize,
    done: bool,
}

/// State shared by all workers through the scope.
struct Shared<'d> {
    dag: &'d Dag,
    jobs: usize,
    /// Published resolvents, write-once then read-shared; emptied by the
    /// committer at last use.
    slots: Vec<RwLock<Option<Box<[Lit]>>>>,
    /// Outstanding learned sources per node; the final decrement
    /// schedules the node.
    indeg: Vec<AtomicU32>,
    /// Set (release) after a node's resolvent is published.
    resolved: Vec<AtomicBool>,
    queues: Vec<WorkerQueue>,
    commit: Mutex<CommitState>,
    /// Smallest errored node index, `u32::MAX` when none.
    min_error: AtomicU32,
    errors: Mutex<Vec<(u32, CheckError)>>,
    idle: Mutex<Idle>,
    parked: Condvar,
}

/// Every lock here guards state that stays consistent across a panicking
/// holder (workers never panic mid-update on purpose; a poisoned run is
/// already failing through the error board), so poison is stripped
/// rather than cascaded.
fn unpoison<G>(r: Result<G, PoisonError<G>>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

impl<'d> Shared<'d> {
    fn record_error(&self, node: u32, err: CheckError) {
        self.min_error.fetch_min(node, Ordering::AcqRel);
        unpoison(self.errors.lock()).push((node, err));
    }

    /// Pushes a ready node onto worker `w`'s deque and wakes a sleeper.
    fn push_ready(&self, w: usize, node: u32, high_water: &mut usize) {
        let q = &self.queues[w];
        {
            let mut ring = unpoison(q.ring.lock());
            ring.push_back(node);
            let l = ring.len();
            q.len.store(l, Ordering::Release);
            *high_water = (*high_water).max(l);
        }
        if self.jobs > 1 {
            let idle = unpoison(self.idle.lock());
            if idle.sleeping > 0 {
                self.parked.notify_one();
            }
        }
    }

    /// Pops the back of the worker's own deque.
    fn pop_own(&self, w: usize) -> Option<u32> {
        let q = &self.queues[w];
        if q.len.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut ring = unpoison(q.ring.lock());
        let node = ring.pop_back();
        q.len.store(ring.len(), Ordering::Release);
        node
    }

    /// Steals the front of another worker's deque.
    fn steal_from(&self, victim: usize) -> Option<u32> {
        let q = &self.queues[victim];
        if q.len.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut ring = unpoison(q.ring.lock());
        let node = ring.pop_front();
        q.len.store(ring.len(), Ordering::Release);
        node
    }

    fn any_queue_nonempty(&self) -> bool {
        self.queues
            .iter()
            .any(|q| q.len.load(Ordering::Acquire) != 0)
    }

    /// Commits every consecutively-resolved node at the watermark,
    /// replaying breadth-first's free-then-store accounting in trace
    /// order. Called with the watermark lock held; errors (memory limit,
    /// cancellation) are boarded at the exact node index where the
    /// sequential pass would raise them.
    fn drain_watermark(&self, g: &mut CommitState, cancel: &crate::cancel::CancelFlag) {
        let total = self.dag.nodes.len() as u32;
        while g.next < total {
            let i = g.next as usize;
            if !self.resolved[i].load(Ordering::Acquire) {
                break;
            }
            let node = &self.dag.nodes[i];
            // Free sources whose last use this was — before storing the
            // resolvent, exactly like the breadth-first pass.
            for &s in self.dag.sources(g.next) {
                if s & ORIGINAL_TAG != 0 {
                    continue;
                }
                let j = s as usize;
                g.use_remaining[j] -= 1;
                if g.use_remaining[j] == 0 && !self.dag.nodes[j].pinned {
                    if let Some(freed) = unpoison(self.slots[j].write()).take() {
                        g.meter.free(clause_bytes(freed.len()));
                    }
                }
            }
            if node.stored {
                let len = unpoison(self.slots[i].read())
                    .as_ref()
                    .map(|b| b.len())
                    .expect("resolved node has a published clause");
                if let Err(e) = g.meter.alloc(clause_bytes(len)) {
                    self.record_error(g.next, e);
                    break;
                }
                g.buffer.observe(&Event::HistRecord {
                    name: "check.resolve.clause_len",
                    value: len as u64,
                });
            } else {
                // Dead on arrival: verified, never stored.
                unpoison(self.slots[i].write()).take();
            }
            g.resolutions += node.resolutions();
            g.clauses_built += 1;
            g.next += 1;
            if g.clauses_built
                .is_multiple_of(crate::depth_first::PROGRESS_STRIDE)
            {
                if let Err(e) = cancel.check() {
                    self.record_error(g.next, e);
                    break;
                }
            }
        }
    }
}

/// Per-worker counters returned through the join.
struct WorkerReport {
    resolved: u64,
    steals: u64,
    queue_high_water: usize,
    kernel: KernelStats,
    buffer: EventBuffer,
}

/// One worker's main loop.
fn worker_loop(shared: &Shared<'_>, w: usize, cancel: &crate::cancel::CancelFlag) -> WorkerReport {
    let mut kernel = ResolutionKernel::new();
    let mut report = WorkerReport {
        resolved: 0,
        steals: 0,
        queue_high_water: 0,
        kernel: KernelStats::default(),
        buffer: EventBuffer::new(),
    };
    'run: loop {
        // Find work: own deque first, then steal round-robin.
        let mut node = shared.pop_own(w);
        if node.is_none() && shared.jobs > 1 {
            for k in 1..shared.jobs {
                if let Some(stolen) = shared.steal_from((w + k) % shared.jobs) {
                    report.steals += 1;
                    node = Some(stolen);
                    break;
                }
            }
        }
        let Some(node) = node else {
            // Park until new work arrives; the last sleeper with every
            // deque empty declares the run finished.
            let mut idle = unpoison(shared.idle.lock());
            loop {
                if idle.done {
                    break 'run;
                }
                if shared.any_queue_nonempty() {
                    continue 'run;
                }
                idle.sleeping += 1;
                if idle.sleeping == shared.jobs {
                    idle.done = true;
                    shared.parked.notify_all();
                    break 'run;
                }
                idle = unpoison(shared.parked.wait(idle));
                idle.sleeping -= 1;
            }
        };
        process_node(shared, w, node, &mut kernel, &mut report, cancel);
    }
    report.kernel = kernel.stats();
    report
}

/// Resolves one node, publishes or boards the result, schedules newly
/// ready dependents and advances the watermark.
fn process_node(
    shared: &Shared<'_>,
    w: usize,
    node: u32,
    kernel: &mut ResolutionKernel,
    report: &mut WorkerReport,
    cancel: &crate::cancel::CancelFlag,
) {
    // A smaller-index error already decides the run; this node's
    // outcome cannot be observed, so skip its work entirely.
    if shared.min_error.load(Ordering::Acquire) < node {
        return;
    }
    let meta = &shared.dag.nodes[node as usize];
    let srcs = shared.dag.sources(node);
    let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<Box<[Lit]>, CheckError> {
        for (step, &s) in srcs.iter().enumerate() {
            let fold = if s & ORIGINAL_TAG != 0 {
                let clause = &shared.dag.originals[(s & !ORIGINAL_TAG) as usize];
                if step == 0 {
                    kernel.begin(clause);
                    continue;
                }
                kernel.fold(clause)
            } else {
                let guard = unpoison(shared.slots[s as usize].read());
                let clause = guard
                    .as_ref()
                    .expect("scheduled only after every learned source published");
                if step == 0 {
                    kernel.begin(clause);
                    continue;
                }
                kernel.fold(clause)
            };
            fold.map_err(|failure| CheckError::NotResolvable {
                target: Some(meta.id),
                step,
                with: shared.dag.source_id(s),
                failure,
            })?;
        }
        if let Some(stop) = shared.dag.structural {
            if stop.node == node {
                // The truncated prefix folded cleanly; the missing
                // source is the step the sequential pass fails at.
                return Err(stop.to_error(meta.id));
            }
        }
        Ok(kernel.finish().into())
    }));
    let lits = match outcome {
        Ok(Ok(lits)) => lits,
        Ok(Err(e)) => {
            shared.record_error(node, e);
            return;
        }
        Err(payload) => {
            shared.record_error(
                node,
                CheckError::WorkerPanic {
                    what: crate::parallel::panic_message(
                        &format!("parallel-dag worker {w}"),
                        payload.as_ref(),
                    ),
                },
            );
            return;
        }
    };
    report.buffer.observe(&Event::HistRecord {
        name: "check.resolve.chain_len",
        value: srcs.len() as u64,
    });
    report.resolved += 1;

    // Publish, then release dependents whose last source this was.
    *unpoison(shared.slots[node as usize].write()) = Some(lits);
    shared.resolved[node as usize].store(true, Ordering::Release);
    for &d in shared.dag.dependents(node) {
        if shared.indeg[d as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
            shared.push_ready(w, d, &mut report.queue_high_water);
        }
    }

    // Advance the watermark past everything now consecutively resolved.
    let mut g = unpoison(shared.commit.lock());
    shared.drain_watermark(&mut g, cancel);
}

/// The single-worker fast path: trace order is already a topological
/// order (edges only point backward), so one thread walks the nodes in
/// order with plain vectors — no spawns, no locks, no atomics. Each
/// node commits immediately after it resolves, which is exactly the
/// watermark's trace-order commit with the watermark always at the
/// cursor, so every counter and the meter's peak are bit-identical to
/// the threaded path. Panics in the resolution closure are still
/// caught and surfaced as [`CheckError::WorkerPanic`], matching the
/// threaded path's behavior for any worker count.
fn execute_inline(
    dag: &Dag,
    meter: MemoryMeter,
    config: &CheckConfig,
    obs: &mut dyn Observer,
) -> Result<ExecResult, CheckError> {
    let total = dag.nodes.len();
    let mut slots: Vec<Option<Box<[Lit]>>> = (0..total).map(|_| None).collect();
    let mut use_remaining: Vec<u32> = dag.nodes.iter().map(|n| n.use_count).collect();
    let mut meter = meter;
    let mut resolutions = 0u64;
    let mut clauses_built = 0u64;
    let mut kernel = ResolutionKernel::new();
    let cancel = &config.cancel;
    for i in 0..total {
        let node = i as u32;
        let meta = &dag.nodes[i];
        let srcs = dag.sources(node);
        let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<Box<[Lit]>, CheckError> {
            for (step, &s) in srcs.iter().enumerate() {
                let clause: &[Lit] = if s & ORIGINAL_TAG != 0 {
                    &dag.originals[(s & !ORIGINAL_TAG) as usize]
                } else {
                    slots[s as usize]
                        .as_deref()
                        .expect("trace-order walk resolves sources before dependents")
                };
                if step == 0 {
                    kernel.begin(clause);
                    continue;
                }
                kernel
                    .fold(clause)
                    .map_err(|failure| CheckError::NotResolvable {
                        target: Some(meta.id),
                        step,
                        with: dag.source_id(s),
                        failure,
                    })?;
            }
            if let Some(stop) = dag.structural {
                if stop.node == node {
                    return Err(stop.to_error(meta.id));
                }
            }
            Ok(kernel.finish().into())
        }));
        let lits = match outcome {
            Ok(Ok(lits)) => lits,
            Ok(Err(e)) => return Err(e),
            Err(payload) => {
                return Err(CheckError::WorkerPanic {
                    what: crate::parallel::panic_message("parallel-dag worker 0", payload.as_ref()),
                })
            }
        };
        obs.observe(&Event::HistRecord {
            name: "check.resolve.chain_len",
            value: srcs.len() as u64,
        });

        // Commit: free last-use sources, then store — the same order as
        // `drain_watermark`, hence the same meter peak.
        for &s in srcs {
            if s & ORIGINAL_TAG != 0 {
                continue;
            }
            let j = s as usize;
            use_remaining[j] -= 1;
            if use_remaining[j] == 0 && !dag.nodes[j].pinned {
                if let Some(freed) = slots[j].take() {
                    meter.free(clause_bytes(freed.len()));
                }
            }
        }
        if meta.stored {
            meter.alloc(clause_bytes(lits.len()))?;
            obs.observe(&Event::HistRecord {
                name: "check.resolve.clause_len",
                value: lits.len() as u64,
            });
            slots[i] = Some(lits);
        }
        resolutions += meta.resolutions();
        clauses_built += 1;
        if clauses_built.is_multiple_of(crate::depth_first::PROGRESS_STRIDE) {
            cancel.check()?;
        }
    }

    obs.observe(&Event::HistRecord {
        name: "check.executor.resolved_per_worker",
        value: total as u64,
    });
    obs.observe(&Event::HistRecord {
        name: "check.executor.steals_per_worker",
        value: 0,
    });
    obs.observe(&Event::HistRecord {
        name: "check.executor.queue_high_water",
        value: 0,
    });
    obs.observe(&Event::GaugeSet {
        name: "check.executor.workers",
        value: 1.0,
    });
    obs.observe(&Event::GaugeSet {
        name: "check.executor.steals",
        value: 0.0,
    });
    crate::depth_first::emit_kernel_gauges(obs, &kernel.stats(), 0, 0);

    Ok(ExecResult {
        meter,
        resolutions,
        clauses_built,
        slots,
    })
}

/// Runs the executor over a built DAG and returns the committed totals.
///
/// On a trace defect (or an injected worker panic) the minimum-index
/// board entry is returned — the identical error the sequential
/// breadth-first pass reports for the same trace.
pub(crate) fn execute(
    dag: &Dag,
    jobs: usize,
    meter: MemoryMeter,
    config: &CheckConfig,
    obs: &mut dyn Observer,
) -> Result<ExecResult, CheckError> {
    let total = dag.nodes.len();
    let jobs = jobs.max(1);
    if jobs == 1 {
        return execute_inline(dag, meter, config, obs);
    }
    let shared = Shared {
        dag,
        jobs,
        slots: (0..total).map(|_| RwLock::new(None)).collect(),
        indeg: dag.nodes.iter().map(|n| AtomicU32::new(n.indeg)).collect(),
        resolved: (0..total).map(|_| AtomicBool::new(false)).collect(),
        queues: (0..jobs)
            .map(|_| WorkerQueue {
                ring: Mutex::new(VecDeque::new()),
                len: AtomicUsize::new(0),
            })
            .collect(),
        commit: Mutex::new(CommitState {
            next: 0,
            meter,
            resolutions: 0,
            clauses_built: 0,
            use_remaining: dag.nodes.iter().map(|n| n.use_count).collect(),
            buffer: EventBuffer::new(),
        }),
        min_error: AtomicU32::new(u32::MAX),
        errors: Mutex::new(Vec::new()),
        idle: Mutex::new(Idle {
            sleeping: 0,
            done: false,
        }),
        parked: Condvar::new(),
    };
    // Seed the deques with every source-free node, round-robin so all
    // workers start busy.
    for (i, n) in dag.nodes.iter().enumerate() {
        if n.indeg == 0 {
            let q = &shared.queues[i % jobs];
            let mut ring = unpoison(q.ring.lock());
            ring.push_back(i as u32);
            q.len.store(ring.len(), Ordering::Release);
        }
    }

    let cancel = &config.cancel;
    let reports = thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|w| {
                let shared = &shared;
                scope.spawn(move || worker_loop(shared, w, cancel))
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(w, h)| {
                crate::parallel::join_or_internal(&format!("parallel-dag worker {w}"), h.join())
            })
            .collect::<Result<Vec<_>, _>>()
    })?;

    // The minimum-index board entry is the sequential first error.
    let mut errors = unpoison(shared.errors.lock());
    if !errors.is_empty() {
        let min = errors
            .iter()
            .enumerate()
            .min_by_key(|(_, (node, _))| *node)
            .map(|(pos, _)| pos)
            .expect("non-empty");
        return Err(errors.swap_remove(min).1);
    }
    drop(errors);

    let commit = unpoison(shared.commit.lock()).next;
    if (commit as usize) != total {
        // Unreachable for a well-formed build (edges always point
        // backward), kept as a structured failure rather than a hang.
        return Err(CheckError::WorkerPanic {
            what: "parallel-dag executor stalled before completing the graph".to_string(),
        });
    }

    // Per-worker attribution and aggregate executor gauges.
    let mut kernel_total = KernelStats::default();
    let mut steals_total = 0u64;
    for report in &reports {
        report.buffer.replay(obs);
        obs.observe(&Event::HistRecord {
            name: "check.executor.resolved_per_worker",
            value: report.resolved,
        });
        obs.observe(&Event::HistRecord {
            name: "check.executor.steals_per_worker",
            value: report.steals,
        });
        obs.observe(&Event::HistRecord {
            name: "check.executor.queue_high_water",
            value: report.queue_high_water as u64,
        });
        steals_total += report.steals;
        kernel_total.chains += report.kernel.chains;
        kernel_total.literals_folded += report.kernel.literals_folded;
        kernel_total.scratch_grows += report.kernel.scratch_grows;
        kernel_total.scratch_high_water = kernel_total
            .scratch_high_water
            .max(report.kernel.scratch_high_water);
    }
    obs.observe(&Event::GaugeSet {
        name: "check.executor.workers",
        value: jobs as f64,
    });
    obs.observe(&Event::GaugeSet {
        name: "check.executor.steals",
        value: steals_total as f64,
    });
    let state = shared
        .commit
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());
    state.buffer.replay(obs);
    crate::depth_first::emit_kernel_gauges(obs, &kernel_total, 0, 0);

    Ok(ExecResult {
        meter: state.meter,
        resolutions: state.resolutions,
        clauses_built: state.clauses_built,
        slots: shared
            .slots
            .into_iter()
            .map(|s| s.into_inner().unwrap_or_else(|e| e.into_inner()))
            .collect(),
    })
}
