//! Deterministic memory accounting for the checkers.
//!
//! Table 2 of the paper compares the **peak memory** of the depth-first
//! and breadth-first strategies (and shows the depth-first one memory-out
//! on the two hardest instances). Reproducing that with OS-level RSS would
//! be noisy and platform-dependent, so the checkers instead *account* the
//! bytes of every clause and trace structure they hold, against an
//! optional budget. The accounting model is simple and documented:
//! [`clause_bytes`] per stored clause, plus per-record costs for the
//! in-memory trace (depth-first only) and the use-count table
//! (breadth-first only).

use crate::CheckError;

/// Accounted bytes for a stored clause of `len` literals.
///
/// 4 bytes per literal plus a fixed overhead for the allocation and the
/// id → clause map entry.
pub(crate) fn clause_bytes(len: usize) -> u64 {
    24 + 4 * len as u64
}

/// Accounted bytes for holding one learned-clause trace record in memory
/// (depth-first strategy: the whole trace is resident).
pub(crate) fn trace_record_bytes(num_sources: usize) -> u64 {
    24 + 8 * num_sources as u64
}

/// Accounted bytes per level-0 variable record.
pub(crate) const LEVEL_ZERO_RECORD_BYTES: u64 = 16;

/// Accounted bytes per entry of the breadth-first use-count table.
pub(crate) const USE_COUNT_BYTES: u64 = 12;

/// Accounted bytes per id → byte-offset index entry (hybrid and
/// disk-backed depth-first strategies: two `u64`s per learned clause).
pub(crate) const INDEX_ENTRY_BYTES: u64 = 16;

/// Accounted bytes per node of the parallel-dag executor's dependency
/// graph: the node record itself plus its completion slot, in-degree
/// counter and id-map entry.
pub(crate) const DAG_NODE_BYTES: u64 = 64;

/// Accounted bytes per resolve-source entry of the parallel-dag
/// dependency graph (the tagged forward edge plus its reverse edge).
pub(crate) const DAG_SOURCE_BYTES: u64 = 8;

/// Page granularity for charging the clause arena's flat literal store.
///
/// The arena grows its literal tail in whole pages and charges the meter
/// for each page once; freed clause slots are recycled through the
/// arena's free list, so pages are never refunded (matching the real
/// allocator behaviour of an arena, which retains capacity).
pub(crate) const ARENA_PAGE_BYTES: u64 = 1024;

/// Accounted bytes per resident arena slot (the id → offset/len index
/// entry), refunded when the clause is freed.
pub(crate) const ARENA_SLOT_BYTES: u64 = 16;

/// A byte meter with an optional hard budget.
///
/// # Examples
///
/// ```
/// use rescheck_checker::MemoryMeter;
///
/// let mut meter = MemoryMeter::with_limit(100);
/// meter.alloc(60)?;
/// meter.free(20);
/// meter.alloc(40)?;
/// assert_eq!(meter.current(), 80);
/// assert_eq!(meter.peak(), 80);
/// assert!(meter.alloc(100).is_err());
/// # Ok::<(), rescheck_checker::CheckError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct MemoryMeter {
    current: u64,
    peak: u64,
    limit: Option<u64>,
}

impl MemoryMeter {
    /// A meter without a budget (it only records the peak).
    pub fn unlimited() -> Self {
        MemoryMeter::default()
    }

    /// A meter that fails allocations beyond `limit` bytes.
    pub fn with_limit(limit: u64) -> Self {
        MemoryMeter {
            limit: Some(limit),
            ..MemoryMeter::default()
        }
    }

    /// A meter with an optional limit.
    pub fn new(limit: Option<u64>) -> Self {
        MemoryMeter {
            limit,
            ..MemoryMeter::default()
        }
    }

    /// Records an allocation.
    ///
    /// # Errors
    ///
    /// Returns [`CheckError::MemoryLimitExceeded`] if the budget would be
    /// exceeded — including when the running total would overflow `u64`,
    /// which an adversarial trace can otherwise use to wrap the counter
    /// and silently bypass the budget in release builds. The accounted
    /// usage is left unchanged on error.
    pub fn alloc(&mut self, bytes: u64) -> Result<(), CheckError> {
        let Some(next) = self.current.checked_add(bytes) else {
            return Err(CheckError::MemoryLimitExceeded {
                limit: self.limit.unwrap_or(u64::MAX),
                required: u64::MAX,
            });
        };
        if let Some(limit) = self.limit {
            if next > limit {
                return Err(CheckError::MemoryLimitExceeded {
                    limit,
                    required: next,
                });
            }
        }
        self.current = next;
        self.peak = self.peak.max(next);
        Ok(())
    }

    /// Records a release.
    pub fn free(&mut self, bytes: u64) {
        debug_assert!(bytes <= self.current, "freeing more than allocated");
        self.current = self.current.saturating_sub(bytes);
    }

    /// Currently accounted bytes.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// High-water mark of accounted bytes.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// The configured limit, if any.
    pub fn limit(&self) -> Option<u64> {
        self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_peak_across_frees() {
        let mut m = MemoryMeter::unlimited();
        m.alloc(100).unwrap();
        m.alloc(50).unwrap();
        m.free(120);
        m.alloc(10).unwrap();
        assert_eq!(m.current(), 40);
        assert_eq!(m.peak(), 150);
        assert_eq!(m.limit(), None);
    }

    #[test]
    fn limit_is_enforced_and_state_preserved() {
        let mut m = MemoryMeter::with_limit(100);
        m.alloc(90).unwrap();
        let err = m.alloc(20).unwrap_err();
        match err {
            CheckError::MemoryLimitExceeded { limit, required } => {
                assert_eq!(limit, 100);
                assert_eq!(required, 110);
            }
            other => panic!("unexpected error {other}"),
        }
        // The failed allocation did not change the accounting.
        assert_eq!(m.current(), 90);
        m.free(50);
        m.alloc(20).unwrap();
    }

    #[test]
    fn overflowing_alloc_is_rejected_not_wrapped() {
        // Regression: `current + bytes` used an unchecked add, so an
        // adversarial trace could wrap the counter past the limit.
        let mut m = MemoryMeter::with_limit(1 << 20);
        m.alloc(100).unwrap();
        let err = m.alloc(u64::MAX).unwrap_err();
        assert!(matches!(err, CheckError::MemoryLimitExceeded { .. }));
        assert_eq!(m.current(), 100);
        assert_eq!(m.peak(), 100);

        // Even an unlimited meter must not wrap its accounting.
        let mut m = MemoryMeter::unlimited();
        m.alloc(100).unwrap();
        assert!(m.alloc(u64::MAX).is_err());
        assert_eq!(m.current(), 100);
    }

    #[test]
    fn new_with_optional_limit() {
        assert_eq!(MemoryMeter::new(Some(5)).limit(), Some(5));
        assert_eq!(MemoryMeter::new(None).limit(), None);
    }

    #[test]
    fn byte_model_is_monotonic_in_length() {
        assert!(clause_bytes(0) < clause_bytes(1));
        assert!(trace_record_bytes(2) < trace_record_bytes(3));
    }
}
