//! The resolution engine.
//!
//! Resolution is the single inference rule of the proof system: two
//! clauses with exactly one variable appearing in opposite phases produce
//! the disjunction of their remaining literals. The checker's soundness
//! rests on [`resolve_sorted`] *failing* when the clash is missing or
//! ambiguous, so the failure carries the offending variables for
//! diagnostics.

use rescheck_cnf::{Lit, Var};
use std::fmt;

/// Why a resolution step was invalid.
///
/// A valid resolution needs **exactly one** clashing variable; this error
/// reports zero or several.
///
/// # Examples
///
/// ```
/// use rescheck_checker::{normalize_literals, resolve_sorted};
/// use rescheck_cnf::Lit;
///
/// let a = normalize_literals([Lit::from_dimacs(1), Lit::from_dimacs(2)]);
/// let b = normalize_literals([Lit::from_dimacs(3)]);
/// let err = resolve_sorted(&a, &b).unwrap_err();
/// assert!(err.clashing_vars.is_empty());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResolveFailure {
    /// The variables that appear in both clauses with opposite phases.
    /// Empty means the clauses cannot be resolved at all; two or more
    /// means the resolvent would be tautological.
    pub clashing_vars: Vec<Var>,
}

impl fmt::Display for ResolveFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clashing_vars.is_empty() {
            f.write_str("no clashing variable between the clauses")
        } else {
            write!(
                f,
                "{} clashing variables ({}) — resolvent would be tautological",
                self.clashing_vars.len(),
                self.clashing_vars
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        }
    }
}

impl std::error::Error for ResolveFailure {}

/// Sorts and deduplicates literals into the canonical form the resolution
/// engine expects.
///
/// # Examples
///
/// ```
/// use rescheck_checker::normalize_literals;
/// use rescheck_cnf::Lit;
///
/// let lits = normalize_literals([Lit::from_dimacs(2), Lit::from_dimacs(-1), Lit::from_dimacs(2)]);
/// assert_eq!(lits.len(), 2);
/// ```
pub fn normalize_literals(lits: impl IntoIterator<Item = Lit>) -> Vec<Lit> {
    let mut v: Vec<Lit> = lits.into_iter().collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Resolves two clauses given as sorted, duplicate-free literal slices.
///
/// Returns the resolvent (sorted, duplicate-free) if there is exactly one
/// clashing variable.
///
/// # Errors
///
/// Returns [`ResolveFailure`] when zero or more than one variable clashes
/// — the independent check the paper builds the checker around ("when
/// `resolve(cl, cl1)` is called, the function should check whether there
/// is one and only one variable appearing in both clauses with different
/// phases", §3.2).
///
/// # Examples
///
/// ```
/// use rescheck_checker::{normalize_literals, resolve_sorted};
/// use rescheck_cnf::Lit;
///
/// // (x + y) resolved with (¬y + z) gives (x + z).
/// let a = normalize_literals([Lit::from_dimacs(1), Lit::from_dimacs(2)]);
/// let b = normalize_literals([Lit::from_dimacs(-2), Lit::from_dimacs(3)]);
/// let r = resolve_sorted(&a, &b)?;
/// assert_eq!(r, normalize_literals([Lit::from_dimacs(1), Lit::from_dimacs(3)]));
/// # Ok::<(), rescheck_checker::ResolveFailure>(())
/// ```
pub fn resolve_sorted(a: &[Lit], b: &[Lit]) -> Result<Vec<Lit>, ResolveFailure> {
    resolve_sorted_pivot(a, b).map(|(out, _)| out)
}

/// Like [`resolve_sorted`], but also returns the clashing (pivot)
/// variable.
///
/// Callers that must validate *which* variable was eliminated — the final
/// empty-clause derivation knows each antecedent's pivot from the level-0
/// assignment record — use this instead of reverse-engineering the pivot
/// from the resolvent.
///
/// # Errors
///
/// Fails exactly like [`resolve_sorted`].
///
/// # Examples
///
/// ```
/// use rescheck_checker::{normalize_literals, resolve_sorted_pivot};
/// use rescheck_cnf::{Lit, Var};
///
/// let a = normalize_literals([Lit::from_dimacs(1), Lit::from_dimacs(2)]);
/// let b = normalize_literals([Lit::from_dimacs(-2), Lit::from_dimacs(3)]);
/// let (r, pivot) = resolve_sorted_pivot(&a, &b)?;
/// assert_eq!(pivot, Var::from_dimacs(2));
/// assert_eq!(r, normalize_literals([Lit::from_dimacs(1), Lit::from_dimacs(3)]));
/// # Ok::<(), rescheck_checker::ResolveFailure>(())
/// ```
pub fn resolve_sorted_pivot(a: &[Lit], b: &[Lit]) -> Result<(Vec<Lit>, Var), ResolveFailure> {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "left clause not sorted");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "right clause not sorted");

    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut clashing: Vec<Var> = Vec::new();
    let mut i = 0;
    let mut j = 0;
    while i < a.len() && j < b.len() {
        let (la, lb) = (a[i], b[j]);
        if la == lb {
            out.push(la);
            i += 1;
            j += 1;
        } else if la.var() == lb.var() {
            // Opposite phases of the same variable: a clash.
            clashing.push(la.var());
            i += 1;
            j += 1;
        } else if la < lb {
            out.push(la);
            i += 1;
        } else {
            out.push(lb);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);

    if clashing.len() == 1 {
        Ok((out, clashing[0]))
    } else {
        Err(ResolveFailure {
            clashing_vars: clashing,
        })
    }
}

/// Resolves two clauses and additionally checks that the clash is on the
/// expected variable.
///
/// Used in the final empty-clause derivation, where the checker knows
/// which variable the antecedent is supposed to eliminate.
///
/// # Errors
///
/// Fails like [`resolve_sorted`], and also when the (unique) clashing
/// variable differs from `expected` — reported as a two-variable clash
/// containing the actual and expected variables.
pub fn resolve_on(a: &[Lit], b: &[Lit], expected: Var) -> Result<Vec<Lit>, ResolveFailure> {
    let (out, actual) = resolve_sorted_pivot(a, b)?;
    if actual != expected {
        return Err(ResolveFailure {
            clashing_vars: vec![actual, expected],
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(ds: &[i64]) -> Vec<Lit> {
        normalize_literals(ds.iter().map(|&d| Lit::from_dimacs(d)))
    }

    #[test]
    fn paper_example() {
        // (x + y)(¬y + z) ⊢ (x + z), the example from §2.1.
        let r = resolve_sorted(&lits(&[1, 2]), &lits(&[-2, 3])).unwrap();
        assert_eq!(r, lits(&[1, 3]));
    }

    #[test]
    fn unit_resolution_to_empty_clause() {
        let r = resolve_sorted(&lits(&[5]), &lits(&[-5])).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn shared_literals_are_merged_once() {
        let r = resolve_sorted(&lits(&[1, 2, 3]), &lits(&[-3, 1, 4])).unwrap();
        assert_eq!(r, lits(&[1, 2, 4]));
    }

    #[test]
    fn no_clash_is_an_error() {
        let err = resolve_sorted(&lits(&[1, 2]), &lits(&[3, 4])).unwrap_err();
        assert!(err.clashing_vars.is_empty());
        assert!(err.to_string().contains("no clashing"));
    }

    #[test]
    fn same_phase_overlap_is_no_clash() {
        let err = resolve_sorted(&lits(&[1, 2]), &lits(&[1, 3])).unwrap_err();
        assert!(err.clashing_vars.is_empty());
    }

    #[test]
    fn double_clash_is_an_error() {
        let err = resolve_sorted(&lits(&[1, 2]), &lits(&[-1, -2])).unwrap_err();
        assert_eq!(err.clashing_vars.len(), 2);
        assert!(err.to_string().contains("tautological"));
    }

    #[test]
    fn resolution_is_commutative() {
        let a = lits(&[1, -2, 4]);
        let b = lits(&[2, 5]);
        assert_eq!(
            resolve_sorted(&a, &b).unwrap(),
            resolve_sorted(&b, &a).unwrap()
        );
    }

    #[test]
    fn resolve_on_accepts_expected_var() {
        let r = resolve_on(&lits(&[1, -2]), &lits(&[2, 3]), Var::from_dimacs(2)).unwrap();
        assert_eq!(r, lits(&[1, 3]));
    }

    #[test]
    fn resolve_on_rejects_unexpected_var() {
        let err = resolve_on(&lits(&[1, -2]), &lits(&[2, 3]), Var::from_dimacs(1)).unwrap_err();
        assert!(err.clashing_vars.contains(&Var::from_dimacs(1)));
        assert!(err.clashing_vars.contains(&Var::from_dimacs(2)));
    }

    #[test]
    fn resolve_on_reports_the_actual_pivot_when_expected_is_absent() {
        // `expected` (x7) appears in neither clause; the error names the
        // variable the step actually eliminated (x2) alongside it.
        let err = resolve_on(&lits(&[1, -2]), &lits(&[2, 3]), Var::from_dimacs(7)).unwrap_err();
        assert_eq!(
            err.clashing_vars,
            vec![Var::from_dimacs(2), Var::from_dimacs(7)]
        );
    }

    #[test]
    fn resolve_on_reports_actual_when_expected_is_only_in_b() {
        // `expected` (x3) is absent from `a` but present in `b` — the
        // exact shape where the old "did `expected` vanish from `a`"
        // heuristic had to guess the actual pivot instead of knowing it.
        let err = resolve_on(&lits(&[1, -2]), &lits(&[2, 3]), Var::from_dimacs(3)).unwrap_err();
        assert_eq!(
            err.clashing_vars,
            vec![Var::from_dimacs(2), Var::from_dimacs(3)]
        );
    }

    #[test]
    fn resolve_on_accepts_tautological_left_clause() {
        // Regression: with a = (x5 + ¬x5) the resolvent still contains
        // variable x5, so the old "did `expected` vanish from the output"
        // heuristic rejected this perfectly valid step — and its recovery
        // scan then reported a degenerate [x5, x5] clash.
        let r = resolve_on(&lits(&[5, -5]), &lits(&[-5]), Var::from_dimacs(5)).unwrap();
        assert_eq!(r, lits(&[-5]));
    }

    #[test]
    fn pivot_variant_agrees_with_resolve_sorted() {
        let a = lits(&[1, -2, 4]);
        let b = lits(&[2, 5]);
        let (out, pivot) = resolve_sorted_pivot(&a, &b).unwrap();
        assert_eq!(out, resolve_sorted(&a, &b).unwrap());
        assert_eq!(pivot, Var::from_dimacs(2));
    }

    #[test]
    fn normalize_sorts_and_dedups() {
        let v = normalize_literals([
            Lit::from_dimacs(3),
            Lit::from_dimacs(-1),
            Lit::from_dimacs(3),
        ]);
        assert_eq!(v, lits(&[-1, 3]));
    }

    #[test]
    fn empty_clause_cannot_resolve() {
        let err = resolve_sorted(&[], &lits(&[1])).unwrap_err();
        assert!(err.clashing_vars.is_empty());
    }
}
