//! The disk-backed depth-first checking strategy.
//!
//! Classic depth-first checking ([`crate::depth_first`]) loads the whole
//! resolve trace into memory before building a single clause, which is
//! exactly what makes it memory-out on hard instances (paper Table 2).
//! This module keeps depth-first's on-demand traversal — only the clauses
//! on the proof path are built, and an unsat core falls out — but leaves
//! the trace **on disk**:
//!
//! 1. **Index pass** (streaming): one pass over the encoded trace records
//!    each learned clause's byte offset in a flat sorted array — 16
//!    accounted bytes per learned clause instead of its whole source list
//!    (24 + 8·n bytes resident under the in-memory model).
//! 2. **Build pass** (random access): the usual iterative depth-first
//!    walk from the final conflicting clause, except that resolve-source
//!    lists are fetched on demand through a [`TraceCursor`] seek. A small
//!    memory-accounted cache keeps hot source lists (each DFS node needs
//!    its list twice: once to push children, once to build) so the
//!    common case costs one positioned read per needed clause.
//!
//! Unlike [`crate::hybrid`], built clauses are *not* freed after their
//! last use — this is plain depth-first with the trace residency removed,
//! so its statistics (`clauses_built`, `resolutions`, the unsat core) are
//! bit-identical to the in-memory depth-first strategy while its peak
//! accounted memory replaces the *decoded*-trace term with `O(index)`.
//!
//! For binary file traces both passes run through the established
//! [`TraceMap`]: the index pass decodes mapped bytes in place and every
//! "positioned read" of the build pass becomes a bounds-checked slice
//! parse at the indexed offset — no seek, no syscall, no read buffer.
//! The map's encoded bytes are charged to the meter up front (the same
//! under `mmap` and the buffered fallback), which is still far below
//! the decoded residency the in-memory strategies account.

use crate::api::CheckConfig;
use crate::arena::ClauseArena;
use crate::cache::OriginalCache;
use crate::cancel::CancelFlag;
use crate::error::CheckError;
use crate::final_phase::{derive_empty_clause, ClauseProvider};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::kernel::ResolutionKernel;
use crate::memory::{trace_record_bytes, MemoryMeter, INDEX_ENTRY_BYTES, LEVEL_ZERO_RECORD_BYTES};
use crate::model::{table_capacity_hint, LevelZeroMap};
use crate::outcome::{CheckOutcome, CheckStats, Strategy, UnsatCore};
use crate::resolve::normalize_literals;
use rescheck_cnf::{Cnf, Lit};
use rescheck_obs::{Event, Observer, Phase};
use rescheck_trace::{RandomAccessTrace, TraceCursor, TraceEvent, TraceMap};
use std::collections::VecDeque;
use std::io;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

/// Learned-clause id → byte offset, stored flat and sorted: half the
/// resident footprint of a hash map at the same entry count, and the
/// 16-byte [`INDEX_ENTRY_BYTES`] accounting matches the layout exactly.
struct FlatIndex {
    entries: Vec<(u64, u64)>,
}

impl FlatIndex {
    /// Sorts the pass-1 entries by id and rejects duplicate definitions.
    fn from_entries(mut entries: Vec<(u64, u64)>) -> Result<Self, CheckError> {
        entries.sort_unstable_by_key(|&(id, _)| id);
        for pair in entries.windows(2) {
            if pair[0].0 == pair[1].0 {
                return Err(CheckError::DuplicateLearnedId { id: pair[0].0 });
            }
        }
        Ok(FlatIndex { entries })
    }

    fn get(&self, id: u64) -> Option<u64> {
        self.entries
            .binary_search_by_key(&id, |&(entry_id, _)| entry_id)
            .ok()
            .map(|pos| self.entries[pos].1)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// A memory-accounted FIFO cache of fetched source lists, mirroring
/// [`OriginalCache`]'s spare-budget discipline: each cached list is
/// charged [`trace_record_bytes`] to the meter, eviction is oldest-first
/// (deterministic accounting), and under pressure the cache evicts or
/// skips rather than ever causing a memory-out itself.
struct SourceCache {
    map: FxHashMap<u64, Rc<[u64]>>,
    order: VecDeque<u64>,
    bytes: u64,
    cap: Option<u64>,
    hits: u64,
}

impl SourceCache {
    fn new(cap: Option<u64>) -> Self {
        SourceCache {
            map: FxHashMap::default(),
            order: VecDeque::new(),
            bytes: 0,
            cap,
            hits: 0,
        }
    }

    fn get(&mut self, id: u64) -> Option<Rc<[u64]>> {
        let found = self.map.get(&id).cloned();
        if found.is_some() {
            self.hits += 1;
        }
        found
    }

    fn insert(&mut self, id: u64, sources: &Rc<[u64]>, meter: &mut MemoryMeter) {
        if self.map.contains_key(&id) {
            return;
        }
        let cost = trace_record_bytes(sources.len());
        if self.cap.is_some_and(|cap| cost > cap) {
            return;
        }
        while self.cap.is_some_and(|cap| self.bytes + cost > cap) {
            if !self.evict_one(meter) {
                return;
            }
        }
        while meter.alloc(cost).is_err() {
            if !self.evict_one(meter) {
                return;
            }
        }
        self.bytes += cost;
        self.order.push_back(id);
        self.map.insert(id, Rc::clone(sources));
    }

    fn evict_one(&mut self, meter: &mut MemoryMeter) -> bool {
        let Some(id) = self.order.pop_front() else {
            return false;
        };
        let sources = self.map.remove(&id).expect("order and map agree");
        let cost = trace_record_bytes(sources.len());
        self.bytes -= cost;
        meter.free(cost);
        true
    }
}

pub(crate) fn run<S: RandomAccessTrace + ?Sized>(
    cnf: &Cnf,
    trace: &S,
    config: &CheckConfig,
    obs: &mut dyn Observer,
) -> Result<CheckOutcome, CheckError> {
    let start = Instant::now();
    let num_original = cnf.num_clauses();
    let mut meter = MemoryMeter::new(config.memory_limit);
    let map = crate::parallel::establish_map(trace, config, obs);
    if let Some(map) = map {
        // The encoded trace stays resident (mapped or buffered) behind
        // the cursor for the whole check; charge it under both backings
        // so the peak is independent of `--no-mmap`.
        meter.alloc(map.accounted_bytes())?;
    }

    // ---- Pass 1: flat offset index + level-0 records + final conflicts.
    let pass1 = Phase::start("check:pass1", obs);
    let mut entries: Vec<(u64, u64)> = Vec::new();
    if let Some(index) = map.and_then(TraceMap::block_index) {
        entries.reserve(index.learned() as usize);
    } else if let Some(encoded) = trace.encoded_size() {
        entries.reserve(table_capacity_hint(encoded));
    }
    let mut level_zero = LevelZeroMap::default();
    let mut final_ids: Vec<u64> = Vec::new();
    let mut seen: u64 = 0;
    for item in trace.offset_events()? {
        seen += 1;
        if seen.is_multiple_of(crate::depth_first::PROGRESS_STRIDE) {
            config.cancel.check()?;
        }
        let (offset, event) = item?;
        match event {
            TraceEvent::Learned { id, sources } => {
                if id < num_original as u64 {
                    return Err(CheckError::LearnedIdCollidesWithOriginal { id });
                }
                if sources.len() < 2 {
                    return Err(CheckError::Trace(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("learned clause #{id} has fewer than two resolve sources"),
                    )));
                }
                meter.alloc(INDEX_ENTRY_BYTES)?;
                entries.push((id, offset));
            }
            TraceEvent::LevelZero { lit, antecedent } => {
                level_zero.insert(lit, antecedent)?;
                meter.alloc(LEVEL_ZERO_RECORD_BYTES)?;
            }
            TraceEvent::FinalConflict { id } => final_ids.push(id),
        }
    }
    let index = FlatIndex::from_entries(entries)?;
    pass1.finish(obs);

    let start_id = *final_ids.first().ok_or(CheckError::NoFinalConflict)?;

    let mut builder = DiskDfBuilder {
        cnf,
        index: &index,
        cursor: trace.open_cursor()?,
        cache: SourceCache::new(config.source_cache_bytes),
        num_original,
        arena: ClauseArena::new(),
        kernel: ResolutionKernel::new(),
        original_cache: OriginalCache::new(config.original_cache_bytes),
        used_originals: vec![false; num_original],
        meter,
        cancel: config.cancel.clone(),
        resolutions: 0,
        clauses_built: 0,
        cursor_reads: 0,
        obs,
    };

    let resolve_phase = Phase::start("check:resolve", &mut *builder.obs);
    builder.build(start_id)?;
    resolve_phase.finish(&mut *builder.obs);

    let final_phase = Phase::start("final-phase", &mut *builder.obs);
    let final_stats = derive_empty_clause(start_id, &level_zero, &mut builder)?;
    final_phase.finish(&mut *builder.obs);

    let core_ids: Vec<usize> = builder
        .used_originals
        .iter()
        .enumerate()
        .filter(|(_, &used)| used)
        .map(|(i, _)| i)
        .collect();
    let core = UnsatCore::new(core_ids, cnf);

    let stats = CheckStats {
        strategy: Strategy::DiskDepthFirst,
        learned_in_trace: index.len() as u64,
        clauses_built: builder.clauses_built,
        resolutions: builder.resolutions + final_stats.resolutions,
        peak_memory_bytes: builder.meter.peak(),
        runtime: start.elapsed(),
        trace_bytes: trace.encoded_size(),
    };
    crate::depth_first::emit_check_gauges(builder.obs, &stats, builder.arena.len() as u64);
    crate::depth_first::emit_kernel_gauges(
        builder.obs,
        &builder.kernel.stats(),
        builder.arena.charged_bytes(),
        builder.arena.reuse_hits(),
    );
    builder.obs.observe(&Event::GaugeSet {
        name: "check.dfd.index_entries",
        value: index.len() as f64,
    });
    builder.obs.observe(&Event::GaugeSet {
        name: "check.dfd.cursor_reads",
        value: builder.cursor_reads as f64,
    });
    builder.obs.observe(&Event::GaugeSet {
        name: "check.dfd.cache_hits",
        value: builder.cache.hits as f64,
    });
    builder.obs.observe(&Event::GaugeSet {
        name: "check.dfd.cache_bytes",
        value: builder.cache.bytes as f64,
    });

    Ok(CheckOutcome {
        core: Some(core),
        stats,
    })
}

/// [`crate::depth_first`]'s `DfBuilder`, with the in-memory source table
/// replaced by cursor fetches through the flat offset index.
struct DiskDfBuilder<'a> {
    cnf: &'a Cnf,
    index: &'a FlatIndex,
    cursor: Box<dyn TraceCursor + 'a>,
    cache: SourceCache,
    num_original: usize,
    arena: ClauseArena,
    kernel: ResolutionKernel,
    original_cache: OriginalCache,
    used_originals: Vec<bool>,
    meter: MemoryMeter,
    cancel: CancelFlag,
    resolutions: u64,
    clauses_built: u64,
    cursor_reads: u64,
    obs: &'a mut dyn Observer,
}

impl DiskDfBuilder<'_> {
    /// Fetches the resolve-source list of learned clause `id`: from the
    /// hot cache when possible, otherwise via one positioned trace read.
    fn sources_of(&mut self, id: u64, referenced_by: Option<u64>) -> Result<Rc<[u64]>, CheckError> {
        if let Some(sources) = self.cache.get(id) {
            return Ok(sources);
        }
        let offset = self
            .index
            .get(id)
            .ok_or(CheckError::UnknownClause { id, referenced_by })?;
        let event = self.cursor.event_at(offset).map_err(CheckError::Trace)?;
        self.cursor_reads += 1;
        match event {
            TraceEvent::Learned { id: got, sources } if got == id => {
                let sources: Rc<[u64]> = sources.into();
                self.cache.insert(id, &sources, &mut self.meter);
                Ok(sources)
            }
            _ => Err(CheckError::Trace(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("trace offset for clause #{id} no longer addresses its record"),
            ))),
        }
    }

    fn original(&mut self, id: u64) -> Arc<[Lit]> {
        self.used_originals[id as usize] = true;
        if let Some(c) = self.original_cache.get(id) {
            return c;
        }
        let clause = self.cnf.clause(id as usize).expect("id < num_original");
        let lits: Arc<[Lit]> = Arc::from(normalize_literals(clause.iter().copied()));
        self.original_cache.insert(id, &lits, &mut self.meter);
        lits
    }

    /// Seeds (step 0) or folds (later steps) one source clause into the
    /// kernel.
    fn feed_source(&mut self, target: u64, step: usize, source: u64) -> Result<(), CheckError> {
        if source < self.num_original as u64 {
            let clause = self.original(source);
            if step == 0 {
                self.kernel.begin(&clause);
                return Ok(());
            }
            self.kernel.fold(&clause)
        } else {
            // Split borrow: the arena slice is read while the kernel's
            // disjoint scratch buffers are written.
            let Some(clause) = self.arena.get(source) else {
                return Err(CheckError::UnknownClause {
                    id: source,
                    referenced_by: Some(target),
                });
            };
            if step == 0 {
                self.kernel.begin(clause);
                return Ok(());
            }
            self.kernel.fold(clause)
        }
        .map_err(|failure| CheckError::NotResolvable {
            target: Some(target),
            step,
            with: source,
            failure,
        })?;
        self.resolutions += 1;
        Ok(())
    }

    /// Builds one learned clause from its already-built sources.
    fn build_one(&mut self, id: u64, sources: &[u64]) -> Result<(), CheckError> {
        for (step, &s) in sources.iter().enumerate() {
            self.feed_source(id, step, s)?;
        }
        let lits = self.kernel.finish();
        let clause_len = lits.len() as u64;
        self.arena.insert(id, lits, &mut self.meter)?;
        self.obs.observe(&Event::HistRecord {
            name: "check.resolve.chain_len",
            value: sources.len() as u64,
        });
        self.obs.observe(&Event::HistRecord {
            name: "check.resolve.clause_len",
            value: clause_len,
        });
        self.clauses_built += 1;
        if self
            .clauses_built
            .is_multiple_of(crate::depth_first::PROGRESS_STRIDE)
        {
            self.cancel.check()?;
            self.obs.observe(&Event::Progress {
                phase: "check:resolve",
                done: self.clauses_built,
                unit: "clauses",
                detail: None,
            });
        }
        Ok(())
    }

    /// Ensures clause `id` (and transitively its sources) is built —
    /// the same iterative gray-marked DFS as the in-memory depth-first
    /// builder, with each node's source list arriving by cursor fetch.
    fn build(&mut self, id: u64) -> Result<(), CheckError> {
        if id < self.num_original as u64 || self.arena.contains(id) {
            return Ok(());
        }
        let mut gray: FxHashSet<u64> = FxHashSet::default();
        let mut stack: Vec<(u64, Option<u64>)> = vec![(id, None)];
        while let Some(&(cur, parent)) = stack.last() {
            if cur < self.num_original as u64 || self.arena.contains(cur) {
                stack.pop();
                continue;
            }
            let sources = self.sources_of(cur, parent)?;
            if gray.contains(&cur) {
                // All dependencies were pushed; if one is still gray
                // the graph has a cycle, otherwise build now.
                for &s in sources.iter() {
                    if s >= self.num_original as u64 && !self.arena.contains(s) && gray.contains(&s)
                    {
                        return Err(CheckError::CyclicProof { id: s });
                    }
                }
                self.build_one(cur, &sources)?;
                stack.pop();
            } else {
                gray.insert(cur);
                for &s in sources.iter() {
                    if s >= self.num_original as u64 && !self.arena.contains(s) {
                        if gray.contains(&s) {
                            return Err(CheckError::CyclicProof { id: s });
                        }
                        stack.push((s, Some(cur)));
                    }
                }
            }
        }
        Ok(())
    }
}

impl ClauseProvider for DiskDfBuilder<'_> {
    fn clause_into(&mut self, id: u64, out: &mut Vec<Lit>) -> Result<(), CheckError> {
        if id < self.num_original as u64 {
            let clause = self.original(id);
            out.clear();
            out.extend_from_slice(&clause);
            return Ok(());
        }
        self.build(id)?;
        let clause = self.arena.get(id).expect("build(id) succeeded");
        out.clear();
        out.extend_from_slice(clause);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescheck_obs::NullObserver;
    use rescheck_trace::{MemorySink, TraceSink};

    fn learned_proof() -> (Cnf, MemorySink) {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1, 2]);
        cnf.add_dimacs_clause(&[1, -2]);
        cnf.add_dimacs_clause(&[-1, 2]);
        cnf.add_dimacs_clause(&[-1, -2]);
        let mut sink = MemorySink::new();
        sink.learned(4, &[0, 1]).unwrap(); // (1)
        sink.learned(5, &[2, 3]).unwrap(); // (-1)
        sink.level_zero(Lit::from_dimacs(1), 4).unwrap();
        sink.final_conflict(5).unwrap();
        (cnf, sink)
    }

    #[test]
    fn accepts_learned_clause_proof_with_core() {
        let (cnf, sink) = learned_proof();
        let outcome = run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap();
        assert_eq!(outcome.stats.strategy, Strategy::DiskDepthFirst);
        assert_eq!(outcome.stats.clauses_built, 2);
        assert_eq!(outcome.stats.learned_in_trace, 2);
        assert_eq!(outcome.core.unwrap().clause_ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn stats_match_in_memory_depth_first() {
        let (cnf, sink) = learned_proof();
        let dfd = run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap();
        let df = crate::depth_first::run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver)
            .unwrap();
        assert_eq!(dfd.stats.clauses_built, df.stats.clauses_built);
        assert_eq!(dfd.stats.resolutions, df.stats.resolutions);
        assert_eq!(dfd.stats.learned_in_trace, df.stats.learned_in_trace);
        assert_eq!(dfd.core, df.core);
    }

    #[test]
    fn builds_only_needed_clauses() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]);
        cnf.add_dimacs_clause(&[-1, 2]);
        cnf.add_dimacs_clause(&[-2]);
        cnf.add_dimacs_clause(&[3, 4]);
        cnf.add_dimacs_clause(&[3, -4]);
        let mut sink = MemorySink::new();
        sink.learned(5, &[3, 4]).unwrap(); // irrelevant to the proof
        sink.level_zero(Lit::from_dimacs(1), 0).unwrap();
        sink.level_zero(Lit::from_dimacs(2), 1).unwrap();
        sink.final_conflict(2).unwrap();
        let outcome = run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap();
        assert_eq!(outcome.stats.clauses_built, 0);
        assert_eq!(outcome.core.unwrap().clause_ids, vec![0, 1, 2]);
    }

    #[test]
    fn duplicate_learned_id_is_rejected() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]);
        let mut sink = MemorySink::new();
        sink.learned(5, &[0, 1]).unwrap();
        sink.learned(5, &[1, 2]).unwrap();
        sink.final_conflict(0).unwrap();
        let err = run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap_err();
        assert!(matches!(err, CheckError::DuplicateLearnedId { id: 5 }));
    }

    #[test]
    fn missing_final_conflict_is_rejected() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]);
        let sink = MemorySink::new();
        assert!(matches!(
            run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap_err(),
            CheckError::NoFinalConflict
        ));
    }

    #[test]
    fn cycles_are_detected() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]);
        let mut sink = MemorySink::new();
        sink.learned(1, &[2, 0]).unwrap();
        sink.learned(2, &[1, 0]).unwrap();
        sink.final_conflict(1).unwrap();
        assert!(matches!(
            run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap_err(),
            CheckError::CyclicProof { .. }
        ));
    }

    #[test]
    fn unknown_source_is_rejected() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]);
        let mut sink = MemorySink::new();
        sink.learned(1, &[0, 42]).unwrap();
        sink.final_conflict(1).unwrap();
        let err = run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap_err();
        assert!(matches!(err, CheckError::UnknownClause { id: 42, .. }));
    }

    #[test]
    fn memory_limit_applies() {
        let (cnf, sink) = learned_proof();
        let config = CheckConfig {
            memory_limit: Some(8),
            ..CheckConfig::default()
        };
        assert!(matches!(
            run(&cnf, &sink, &config, &mut NullObserver).unwrap_err(),
            CheckError::MemoryLimitExceeded { .. }
        ));
    }

    #[test]
    fn cache_serves_repeated_fetches() {
        // A diamond: #4 is a source of both #5 and #6, and each DFS node
        // needs its list twice (expand + build) — without the cache that
        // is several positioned reads, with it most fetches hit.
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1, 2]); // 0
        cnf.add_dimacs_clause(&[-2, 3]); // 1
        cnf.add_dimacs_clause(&[-3, 4]); // 2
        cnf.add_dimacs_clause(&[-3, -4]); // 3
        cnf.add_dimacs_clause(&[-1]); // 4
        let mut sink = MemorySink::new();
        sink.learned(5, &[0, 1]).unwrap(); // (1 3)
        sink.learned(6, &[5, 2]).unwrap(); // (1 4)
        sink.learned(7, &[5, 3]).unwrap(); // (1 -4)
        sink.learned(8, &[6, 7]).unwrap(); // (1)
        sink.level_zero(Lit::from_dimacs(1), 8).unwrap();
        sink.final_conflict(4).unwrap();
        let outcome = run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap();
        assert_eq!(outcome.stats.clauses_built, 4);

        // A zero-byte cache still checks correctly, just with more reads.
        let no_cache = CheckConfig {
            source_cache_bytes: Some(0),
            ..CheckConfig::default()
        };
        let uncached = run(&cnf, &sink, &no_cache, &mut NullObserver).unwrap();
        assert_eq!(uncached.stats.clauses_built, 4);
        assert_eq!(uncached.stats.resolutions, outcome.stats.resolutions);
    }

    #[test]
    fn capped_cache_stays_within_its_budget_share() {
        // The mandatory allocation sequence is identical with or without
        // the cache, so with a cap the accounted peak can exceed the
        // no-cache peak by at most the cap — and the check must pass
        // under a limit of exactly that sum.
        let (cnf, sink) = learned_proof();
        let no_cache = CheckConfig {
            source_cache_bytes: Some(0),
            ..CheckConfig::default()
        };
        let base = run(&cnf, &sink, &no_cache, &mut NullObserver)
            .unwrap()
            .stats
            .peak_memory_bytes;
        let cap = trace_record_bytes(2);
        let config = CheckConfig {
            memory_limit: Some(base + cap),
            source_cache_bytes: Some(cap),
            ..CheckConfig::default()
        };
        let outcome = run(&cnf, &sink, &config, &mut NullObserver).unwrap();
        assert!(outcome.stats.peak_memory_bytes <= base + cap);
    }
}
