//! Top-level checking entry points.

use crate::cancel::CancelFlag;
use crate::error::CheckError;
use crate::outcome::CheckOutcome;
pub use crate::outcome::Strategy;
use crate::scratch::CheckScratch;
use rescheck_cnf::{Assignment, Cnf};
use rescheck_obs::{NullObserver, Observer, Span};
use rescheck_trace::{RandomAccessTrace, TraceSource};
use std::error::Error;
use std::fmt;

/// Options shared by every checking strategy.
///
/// # Examples
///
/// ```
/// use rescheck_checker::CheckConfig;
///
/// let cfg = CheckConfig {
///     memory_limit: Some(800 << 20), // the paper's 800 MB cap
///     jobs: 4,
///     ..CheckConfig::default()
/// };
/// assert!(cfg.memory_limit.is_some());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckConfig {
    /// Accounted-memory budget in bytes; `None` = unlimited.
    ///
    /// The paper ran both checkers with an 800 MB limit, under which the
    /// depth-first strategy fails on the largest instances (Table 2).
    pub memory_limit: Option<u64>,
    /// Worker threads for [`Strategy::ParallelBf`]'s sharded counting
    /// pass and [`Strategy::ParallelDag`]'s executor; `0` picks the
    /// available parallelism (capped at 8). `ParallelDag` treats the
    /// value as a cap and never runs more workers than the machine has
    /// cores — extra threads cannot raise throughput and its stats are
    /// identical for any worker count. Other strategies ignore it
    /// ([`Strategy::Portfolio`] always races exactly two threads).
    pub jobs: usize,
    /// Learned-clause estimate below which the parallel strategies fall
    /// back to plain sequential breadth-first: thread spin-up and
    /// cross-shard merging cost more than they save on small traces
    /// (the reported strategy then says so). Set to `0` to always run
    /// parallel. The estimate comes from the encoded trace size; an
    /// unsized trace source never falls back.
    pub parallel_min_learned: usize,
    /// Cap in bytes on the cache of normalized *original* clauses kept by
    /// the depth-first, hybrid and breadth-first final phases; `None` =
    /// uncapped. The cache is charged to the memory meter either way, but
    /// it only uses budget left over after required clauses — it evicts
    /// (oldest first) rather than ever causing a memory-out.
    pub original_cache_bytes: Option<u64>,
    /// Cap in bytes on [`Strategy::DiskDepthFirst`]'s cache of fetched
    /// resolve-source lists; `None` = uncapped. Same spare-budget
    /// discipline as [`original_cache_bytes`]: charged to the meter,
    /// FIFO-evicted under pressure, never the cause of a memory-out.
    ///
    /// [`original_cache_bytes`]: CheckConfig::original_cache_bytes
    pub source_cache_bytes: Option<u64>,
    /// Request the buffered read-whole-file backing instead of `mmap`
    /// for file traces (the `--no-mmap` CLI flag; the
    /// `RESCHECK_NO_MMAP` environment variable has the same effect).
    /// This controls only how the bytes are *backed* — every map-based
    /// code path (slice decoding, sharded parallel pass 1, cursor
    /// fetches by pointer arithmetic) stays on, so verdicts and stats
    /// are bit-identical across the two settings. The map is charged to
    /// the memory meter identically in both modes.
    pub no_mmap: bool,
    /// Cooperative cancellation handle, polled at progress strides. The
    /// default flag is inert; arm one ([`CancelFlag::armed`]) to be able
    /// to stop a check from another thread.
    pub cancel: CancelFlag,
}

impl Default for CheckConfig {
    /// Unlimited memory, automatic job count, uncapped caches, an inert
    /// cancel flag, and the tuned small-trace fallback threshold.
    fn default() -> Self {
        CheckConfig {
            memory_limit: None,
            jobs: 0,
            original_cache_bytes: None,
            source_cache_bytes: None,
            parallel_min_learned: 4096,
            no_mmap: false,
            cancel: CancelFlag::default(),
        }
    }
}

/// Validates an UNSAT claim with the chosen strategy.
///
/// # Errors
///
/// Returns a [`CheckError`] describing the first invalid proof step — the
/// claim is *not validated* in that case and the solver (or its trace
/// generation) should be considered buggy.
///
/// # Examples
///
/// ```
/// use rescheck_checker::{check_unsat_claim, CheckConfig, Strategy};
/// use rescheck_cnf::Cnf;
/// use rescheck_solver::{Solver, SolverConfig};
/// use rescheck_trace::MemorySink;
///
/// let mut cnf = Cnf::new();
/// cnf.add_dimacs_clause(&[1]);
/// cnf.add_dimacs_clause(&[-1]);
/// let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
/// let mut trace = MemorySink::new();
/// assert!(solver.solve_traced(&mut trace)?.is_unsat());
///
/// for strategy in [
///     Strategy::DepthFirst,
///     Strategy::BreadthFirst,
///     Strategy::Hybrid,
///     Strategy::Portfolio,
///     Strategy::ParallelBf,
///     Strategy::DiskDepthFirst,
///     Strategy::ParallelDag,
/// ] {
///     check_unsat_claim(&cnf, &trace, strategy, &CheckConfig::default())?;
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn check_unsat_claim<S: RandomAccessTrace + Sync + ?Sized>(
    cnf: &Cnf,
    trace: &S,
    strategy: Strategy,
    config: &CheckConfig,
) -> Result<CheckOutcome, CheckError> {
    check_unsat_claim_observed(cnf, trace, strategy, config, &mut NullObserver)
}

/// [`check_unsat_claim`] with an [`Observer`] receiving phase timers
/// (`check:pass1`, `check:resolve`, `final-phase`) nested under a
/// per-strategy span (`check:df`, `check:bf`, `check:hybrid`,
/// `check:portfolio`, `check:pbf`, `check:dfd`), resolution-shape
/// histograms (`check.resolve.chain_len` — resolve sources per learned
/// clause — and `check.resolve.clause_len` — literals in each stored
/// resolvent), progress heartbeats
/// and end-of-run gauges (`check.clauses_built`, `check.resolutions`,
/// `check.use_count_entries`, `check.peak_memory_bytes`), plus the
/// resolution hot path's own accounting: `check.kernel.chains`,
/// `check.kernel.literals_folded`, `check.kernel.scratch_grows`,
/// `check.kernel.scratch_high_water` from the mark-array
/// [`ResolutionKernel`](crate::kernel::ResolutionKernel), and
/// `check.arena.bytes`, `check.arena.reuse_hits` from the arena clause
/// store (`scratch_grows` stalling at a constant while `chains` keeps
/// rising is the observable form of the allocation-free steady state).
/// [`Strategy::DiskDepthFirst`] additionally reports its disk-access
/// accounting: `check.dfd.index_entries` (flat offset-index size),
/// `check.dfd.cursor_reads` (positioned trace reads performed),
/// `check.dfd.cache_hits` and `check.dfd.cache_bytes` (source-list cache
/// effectiveness and residency). Strategies that establish a
/// memory-mapped trace backing ([`Strategy::DiskDepthFirst`],
/// [`Strategy::ParallelBf`], [`Strategy::ParallelDag`] on binary file
/// traces) run it inside a `trace-map` phase and emit `check.map.bytes`
/// (accounted map length) and `check.map.mmap` (1 for the `mmap`
/// backing, 0 for the buffered fallback); the sharded mapped pass 1
/// additionally reports `check.pass1.shards`.
///
/// # Errors
///
/// See [`check_unsat_claim`].
///
/// # Examples
///
/// ```
/// use rescheck_checker::{check_unsat_claim_observed, CheckConfig, Strategy};
/// use rescheck_cnf::Cnf;
/// use rescheck_obs::MetricsSink;
/// use rescheck_solver::{Solver, SolverConfig};
/// use rescheck_trace::MemorySink;
///
/// let mut cnf = Cnf::new();
/// cnf.add_dimacs_clause(&[1]);
/// cnf.add_dimacs_clause(&[-1]);
/// let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
/// let mut trace = MemorySink::new();
/// assert!(solver.solve_traced(&mut trace)?.is_unsat());
///
/// let mut sink = MetricsSink::new();
/// check_unsat_claim_observed(
///     &cnf, &trace, Strategy::Hybrid, &CheckConfig::default(), &mut sink,
/// )?;
/// assert!(sink.registry().phase_seconds("check:pass1").is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn check_unsat_claim_observed<S: RandomAccessTrace + Sync + ?Sized>(
    cnf: &Cnf,
    trace: &S,
    strategy: Strategy,
    config: &CheckConfig,
    obs: &mut dyn Observer,
) -> Result<CheckOutcome, CheckError> {
    // Every strategy runs inside a named span, so the metrics span tree
    // reads `<caller> > check:<strategy> > check:pass1/…`. The span is
    // stopped on the error path too — flight dumps see it close.
    let name = match strategy {
        Strategy::DepthFirst => "check:df",
        Strategy::BreadthFirst => "check:bf",
        Strategy::Hybrid => "check:hybrid",
        Strategy::Portfolio => "check:portfolio",
        Strategy::ParallelBf => "check:pbf",
        Strategy::DiskDepthFirst => "check:dfd",
        Strategy::ParallelDag => "check:pdag",
    };
    let mut span = Span::start(name, obs);
    let result = match strategy {
        Strategy::DepthFirst => crate::depth_first::run(cnf, trace, config, obs),
        Strategy::BreadthFirst => crate::breadth_first::run(cnf, trace, config, obs),
        Strategy::Hybrid => crate::hybrid::run(cnf, trace, config, obs),
        Strategy::Portfolio => crate::parallel::run_portfolio(cnf, trace, config, obs),
        Strategy::ParallelBf => crate::parallel::run_parallel_bf(cnf, trace, config, obs),
        Strategy::DiskDepthFirst => crate::disk_df::run(cnf, trace, config, obs),
        Strategy::ParallelDag => crate::dag::run(cnf, trace, config, obs),
    };
    span.stop(obs);
    result
}

/// [`check_unsat_claim_observed`] against caller-owned scratch buffers,
/// for long-lived processes (the `rescheck serve` daemon) that run many
/// checks and want to reuse the kernel, arena and original-clause cache
/// across jobs instead of rebuilding them per job.
///
/// The single-threaded strategies ([`Strategy::DepthFirst`] and
/// [`Strategy::BreadthFirst`]) run against the provided
/// [`CheckScratch`]; the other strategies spread state across threads
/// and fall back to building their own, exactly like
/// [`check_unsat_claim_observed`] — passing a scratch is never wrong,
/// just not always a speedup.
///
/// Reported stats and accounted memory are bit-identical to the
/// unscoped entry point: reuse trades allocator work, never accounting.
/// See the [`crate::CheckScratch`] docs for the warm-tier rules
/// ([`CheckScratch::begin_job`]).
///
/// # Errors
///
/// See [`check_unsat_claim`].
pub fn check_unsat_claim_scoped<S: RandomAccessTrace + Sync + ?Sized>(
    cnf: &Cnf,
    trace: &S,
    strategy: Strategy,
    config: &CheckConfig,
    scratch: &mut CheckScratch,
    obs: &mut dyn Observer,
) -> Result<CheckOutcome, CheckError> {
    let name = match strategy {
        Strategy::DepthFirst => "check:df",
        Strategy::BreadthFirst => "check:bf",
        Strategy::Hybrid => "check:hybrid",
        Strategy::Portfolio => "check:portfolio",
        Strategy::ParallelBf => "check:pbf",
        Strategy::DiskDepthFirst => "check:dfd",
        Strategy::ParallelDag => "check:pdag",
    };
    let mut span = Span::start(name, obs);
    let result = match strategy {
        Strategy::DepthFirst => crate::depth_first::run_scoped(cnf, trace, config, scratch, obs),
        Strategy::BreadthFirst => {
            crate::breadth_first::run_scoped(cnf, trace, config, scratch, obs)
        }
        Strategy::Hybrid => crate::hybrid::run(cnf, trace, config, obs),
        Strategy::Portfolio => crate::parallel::run_portfolio(cnf, trace, config, obs),
        Strategy::ParallelBf => crate::parallel::run_parallel_bf(cnf, trace, config, obs),
        Strategy::DiskDepthFirst => crate::disk_df::run(cnf, trace, config, obs),
        Strategy::ParallelDag => crate::dag::run(cnf, trace, config, obs),
    };
    span.stop(obs);
    result
}

/// Validates an UNSAT claim with the depth-first strategy (§3.2).
///
/// On success the outcome carries the unsatisfiable core.
///
/// # Errors
///
/// See [`check_unsat_claim`].
pub fn check_depth_first<S: TraceSource + ?Sized>(
    cnf: &Cnf,
    trace: &S,
    config: &CheckConfig,
) -> Result<CheckOutcome, CheckError> {
    crate::depth_first::run(cnf, trace, config, &mut NullObserver)
}

/// Validates an UNSAT claim with the breadth-first strategy (§3.3).
///
/// # Errors
///
/// See [`check_unsat_claim`].
pub fn check_breadth_first<S: TraceSource + ?Sized>(
    cnf: &Cnf,
    trace: &S,
    config: &CheckConfig,
) -> Result<CheckOutcome, CheckError> {
    crate::breadth_first::run(cnf, trace, config, &mut NullObserver)
}

/// Validates an UNSAT claim with the hybrid (on-disk depth-first)
/// strategy — the paper's future-work design: needed-clauses-only like
/// depth-first, bounded clause memory like breadth-first, with the trace
/// left on disk and consulted by random access.
///
/// On success the outcome carries the unsatisfiable core.
///
/// # Errors
///
/// See [`check_unsat_claim`].
pub fn check_hybrid<S: RandomAccessTrace + ?Sized>(
    cnf: &Cnf,
    trace: &S,
    config: &CheckConfig,
) -> Result<CheckOutcome, CheckError> {
    crate::hybrid::run(cnf, trace, config, &mut NullObserver)
}

/// Validates an UNSAT claim with the disk-backed depth-first strategy:
/// depth-first's on-demand traversal (needed clauses only, unsat core as
/// a by-product) with the trace left on disk — one streaming pass builds
/// a flat id → byte-offset index, and resolve-source lists are fetched
/// through a trace cursor when the walk reaches them, with hot lists kept
/// in a memory-accounted cache ([`CheckConfig::source_cache_bytes`]).
///
/// Produces bit-identical `clauses_built` / `resolutions` and the same
/// unsat core as [`check_depth_first`], while the peak accounted memory
/// replaces the resident-trace term with 16 bytes per learned clause —
/// the strategy to reach for when depth-first memory-outs.
///
/// # Errors
///
/// See [`check_unsat_claim`].
pub fn check_disk_depth_first<S: RandomAccessTrace + ?Sized>(
    cnf: &Cnf,
    trace: &S,
    config: &CheckConfig,
) -> Result<CheckOutcome, CheckError> {
    crate::disk_df::run(cnf, trace, config, &mut NullObserver)
}

/// Validates an UNSAT claim by racing the depth-first and breadth-first
/// strategies on two threads; the first verdict wins and cancels the
/// loser. Gives depth-first speed when memory allows and breadth-first
/// robustness when it does not.
///
/// # Errors
///
/// See [`check_unsat_claim`]. If both racers fail, the more fundamental
/// error is reported (a proof defect over a mere memory-out).
pub fn check_portfolio<S: RandomAccessTrace + Sync + ?Sized>(
    cnf: &Cnf,
    trace: &S,
    config: &CheckConfig,
) -> Result<CheckOutcome, CheckError> {
    crate::parallel::run_portfolio(cnf, trace, config, &mut NullObserver)
}

/// Validates an UNSAT claim with the parallel breadth-first strategy:
/// pass 1's use counting is sharded across [`CheckConfig::jobs`] workers
/// and pass 2 decodes the trace on a reader thread that runs ahead of the
/// resolution loop. Returns bit-identical [`CheckStats::resolutions`] and
/// [`CheckStats::clauses_built`] to [`check_breadth_first`], for any
/// worker count.
///
/// [`CheckStats::resolutions`]: crate::CheckStats::resolutions
/// [`CheckStats::clauses_built`]: crate::CheckStats::clauses_built
///
/// # Errors
///
/// See [`check_unsat_claim`].
pub fn check_parallel_bf<S: RandomAccessTrace + Sync + ?Sized>(
    cnf: &Cnf,
    trace: &S,
    config: &CheckConfig,
) -> Result<CheckOutcome, CheckError> {
    crate::parallel::run_parallel_bf(cnf, trace, config, &mut NullObserver)
}

/// Validates an UNSAT claim with the parallel-dag strategy: the trace's
/// learned clauses form a dependency DAG (each depends only on the
/// learned clauses it resolves with), which a work-stealing executor
/// schedules by in-degree across [`CheckConfig::jobs`] workers. A build
/// pass resolves every clause id to a dense index first, so the
/// resolution hot loop performs no hash lookups at all, and completions
/// are committed in trace order so memory accounting replays
/// breadth-first's free-at-last-use discipline deterministically.
///
/// Returns bit-identical [`CheckStats::clauses_built`],
/// [`CheckStats::resolutions`] and [`CheckStats::peak_memory_bytes`] for
/// any worker count, and the same verdict as [`check_breadth_first`].
///
/// [`CheckStats::resolutions`]: crate::CheckStats::resolutions
/// [`CheckStats::clauses_built`]: crate::CheckStats::clauses_built
/// [`CheckStats::peak_memory_bytes`]: crate::CheckStats::peak_memory_bytes
///
/// # Errors
///
/// See [`check_unsat_claim`].
pub fn check_parallel_dag<S: RandomAccessTrace + Sync + ?Sized>(
    cnf: &Cnf,
    trace: &S,
    config: &CheckConfig,
) -> Result<CheckOutcome, CheckError> {
    crate::dag::run(cnf, trace, config, &mut NullObserver)
}

/// A SAT claim that does not hold.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelError {
    /// IDs of the clauses the claimed model fails to satisfy.
    pub falsified_or_undetermined: Vec<usize>,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "claimed model leaves {} clause(s) unsatisfied (first ids: {:?})",
            self.falsified_or_undetermined.len(),
            &self.falsified_or_undetermined[..self.falsified_or_undetermined.len().min(8)]
        )
    }
}

impl Error for ModelError {}

/// Validates a SAT claim: every clause must be satisfied by the model.
///
/// This is the easy direction the paper notes takes linear time for CNF.
/// Clauses that are undetermined (because the model leaves one of their
/// variables unassigned) count as unsatisfied — a valid SAT certificate
/// must determine every clause.
///
/// # Errors
///
/// Returns the IDs of unsatisfied clauses.
///
/// # Examples
///
/// ```
/// use rescheck_checker::check_sat_claim;
/// use rescheck_cnf::{Assignment, Cnf};
///
/// let mut cnf = Cnf::new();
/// cnf.add_dimacs_clause(&[1, -2]);
/// let good = Assignment::from_bools(&[true, true]);
/// assert!(check_sat_claim(&cnf, &good).is_ok());
///
/// let bad = Assignment::from_bools(&[false, true]);
/// let err = check_sat_claim(&cnf, &bad).unwrap_err();
/// assert_eq!(err.falsified_or_undetermined, vec![0]);
/// ```
pub fn check_sat_claim(cnf: &Cnf, model: &Assignment) -> Result<(), ModelError> {
    let bad: Vec<usize> = cnf
        .iter()
        .filter(|(_, c)| rescheck_cnf::evaluate_lits(c, model) != rescheck_cnf::LBool::True)
        .map(|(id, _)| id)
        .collect();
    if bad.is_empty() {
        Ok(())
    } else {
        Err(ModelError {
            falsified_or_undetermined: bad,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescheck_cnf::Lit;
    use rescheck_trace::{MemorySink, TraceSink};

    #[test]
    fn both_strategies_accept_a_valid_proof() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]);
        cnf.add_dimacs_clause(&[-1]);
        let mut sink = MemorySink::new();
        sink.level_zero(Lit::from_dimacs(1), 0).unwrap();
        sink.final_conflict(1).unwrap();
        for strategy in [Strategy::DepthFirst, Strategy::BreadthFirst] {
            let outcome =
                check_unsat_claim(&cnf, &sink, strategy, &CheckConfig::default()).unwrap();
            assert_eq!(outcome.stats.strategy, strategy);
        }
    }

    #[test]
    fn sat_claim_with_partial_model_is_rejected() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1, 2]);
        let partial = Assignment::new(2); // nothing assigned
        let err = check_sat_claim(&cnf, &partial).unwrap_err();
        assert_eq!(err.falsified_or_undetermined, vec![0]);
        assert!(err.to_string().contains("1 clause"));
    }

    #[test]
    fn sat_claim_on_empty_formula_holds() {
        let cnf = Cnf::with_vars(3);
        assert!(check_sat_claim(&cnf, &Assignment::new(3)).is_ok());
    }

    #[test]
    fn config_default_is_unlimited() {
        let cfg = CheckConfig::default();
        assert_eq!(cfg.memory_limit, None);
        assert_eq!(cfg.jobs, 0);
        assert_eq!(cfg.original_cache_bytes, None);
        assert_eq!(cfg.source_cache_bytes, None);
        assert_eq!(cfg.parallel_min_learned, 4096);
        assert!(!cfg.no_mmap);
        assert!(!cfg.cancel.is_cancelled());
    }
}
