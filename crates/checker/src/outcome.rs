//! Results of a successful check.

use rescheck_cnf::Cnf;
use std::fmt;
use std::time::Duration;

/// Which traversal of the resolution graph a check used.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Build only the clauses needed for the proof, on demand (§3.2).
    DepthFirst,
    /// Build every learned clause in generation order, freeing each after
    /// its last use (§3.3).
    BreadthFirst,
    /// Depth-first over the trace left on disk, freeing clauses after
    /// their last needed use — the combination the paper's conclusion
    /// calls for (requires a random-access trace).
    Hybrid,
    /// Race depth-first against breadth-first on two threads and return
    /// the first success, cancelling the loser — depth-first speed when
    /// memory allows, breadth-first robustness when it does not.
    Portfolio,
    /// Breadth-first with a sharded counting pass and a pipelined
    /// resolution pass. Same verdict and same `clauses_built` /
    /// `resolutions` as [`Strategy::BreadthFirst`], regardless of the
    /// worker count.
    ParallelBf,
    /// Depth-first with the trace left on disk: only a flat id → offset
    /// index stays resident and resolve-source lists are fetched on
    /// demand through a trace cursor. Bit-identical statistics and core
    /// to [`Strategy::DepthFirst`], without the `O(trace)` memory term
    /// (requires a random-access trace).
    DiskDepthFirst,
    /// Breadth-first's verification set scheduled as a dependency DAG: a
    /// dense build pass resolves every id to an index once, then a
    /// work-stealing executor rebuilds independent learned clauses
    /// concurrently, committing completions in trace order so clauses
    /// are still freed at their last use. Same verdict and same
    /// `clauses_built` / `resolutions` / `peak_memory_bytes` for any
    /// worker count.
    ParallelDag,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::DepthFirst => f.write_str("depth-first"),
            Strategy::BreadthFirst => f.write_str("breadth-first"),
            Strategy::Hybrid => f.write_str("hybrid"),
            Strategy::Portfolio => f.write_str("portfolio"),
            Strategy::ParallelBf => f.write_str("parallel-bf"),
            Strategy::DiskDepthFirst => f.write_str("disk-depth-first"),
            Strategy::ParallelDag => f.write_str("parallel-dag"),
        }
    }
}

/// An unsatisfiable core: the original clauses a proof actually used.
///
/// A by-product of the depth-first check (paper §3.2): the original
/// clauses touched while deriving the empty clause form a sub-formula
/// that is itself unsatisfiable. Useful for AI planning, FPGA routing and
/// model debugging (paper §4, Table 3).
///
/// # Examples
///
/// ```
/// use rescheck_checker::UnsatCore;
/// use rescheck_cnf::Cnf;
///
/// let mut cnf = Cnf::new();
/// cnf.add_dimacs_clause(&[1]);
/// cnf.add_dimacs_clause(&[-1]);
/// cnf.add_dimacs_clause(&[2, 3]); // irrelevant
/// let core = UnsatCore::new(vec![0, 1], &cnf);
/// assert_eq!(core.num_clauses(), 2);
/// assert_eq!(core.num_vars(), 1);
/// assert_eq!(core.to_subformula(&cnf).num_clauses(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnsatCore {
    /// IDs (positions) of the original clauses used by the proof, sorted.
    pub clause_ids: Vec<usize>,
    num_vars: usize,
}

impl UnsatCore {
    /// Builds a core from the used clause IDs, computing the number of
    /// distinct variables those clauses mention.
    pub fn new(mut clause_ids: Vec<usize>, cnf: &Cnf) -> Self {
        clause_ids.sort_unstable();
        clause_ids.dedup();
        let mut used = vec![false; cnf.num_vars()];
        for &id in &clause_ids {
            if let Some(clause) = cnf.clause(id) {
                for lit in clause {
                    used[lit.var().index()] = true;
                }
            }
        }
        let num_vars = used.iter().filter(|&&u| u).count();
        UnsatCore {
            clause_ids,
            num_vars,
        }
    }

    /// Number of original clauses in the core.
    pub fn num_clauses(&self) -> usize {
        self.clause_ids.len()
    }

    /// Number of distinct variables the core clauses mention.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Extracts the core as a standalone formula over the same variable
    /// space, ready to be solved again (Table 3's iteration).
    pub fn to_subformula(&self, cnf: &Cnf) -> Cnf {
        cnf.subformula(self.clause_ids.iter().copied())
    }
}

/// Measurements of a check run (the per-instance data of Table 2).
#[derive(Clone, Debug)]
pub struct CheckStats {
    /// The strategy that produced these numbers.
    pub strategy: Strategy,
    /// Learned clauses defined by the trace.
    pub learned_in_trace: u64,
    /// Learned clauses actually (re)built by resolution.
    ///
    /// Depth-first builds a subset (Table 2's "Num. Cls Built");
    /// breadth-first builds all of them.
    pub clauses_built: u64,
    /// Total resolution steps performed, including the final derivation.
    pub resolutions: u64,
    /// Peak accounted memory in bytes (see [`crate::MemoryMeter`]).
    pub peak_memory_bytes: u64,
    /// Wall-clock time of the check.
    pub runtime: Duration,
    /// Size of the encoded trace in bytes, when the source knows it.
    pub trace_bytes: Option<u64>,
}

impl CheckStats {
    /// Percentage of learned clauses built (Table 2's "Built%").
    pub fn built_percent(&self) -> f64 {
        if self.learned_in_trace == 0 {
            0.0
        } else {
            100.0 * self.clauses_built as f64 / self.learned_in_trace as f64
        }
    }
}

impl fmt::Display for CheckStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: built {}/{} learned clauses ({:.1}%), {} resolutions, peak {} bytes, {:?}",
            self.strategy,
            self.clauses_built,
            self.learned_in_trace,
            self.built_percent(),
            self.resolutions,
            self.peak_memory_bytes,
            self.runtime,
        )
    }
}

/// The result of a successful UNSAT-claim validation.
#[derive(Clone, Debug)]
pub struct CheckOutcome {
    /// The unsat core, when the strategy produces one (depth-first only).
    pub core: Option<UnsatCore>,
    /// Measurements of the run.
    pub stats: CheckStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_dedups_and_counts_vars() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1, 2]);
        cnf.add_dimacs_clause(&[-2, 3]);
        cnf.add_dimacs_clause(&[4]);
        let core = UnsatCore::new(vec![1, 0, 1], &cnf);
        assert_eq!(core.clause_ids, vec![0, 1]);
        assert_eq!(core.num_clauses(), 2);
        assert_eq!(core.num_vars(), 3); // x1, x2, x3
        let sub = core.to_subformula(&cnf);
        assert_eq!(sub.num_clauses(), 2);
        assert_eq!(sub.num_vars(), cnf.num_vars());
    }

    #[test]
    fn built_percent() {
        let stats = CheckStats {
            strategy: Strategy::DepthFirst,
            learned_in_trace: 200,
            clauses_built: 50,
            resolutions: 0,
            peak_memory_bytes: 0,
            runtime: Duration::ZERO,
            trace_bytes: None,
        };
        assert!((stats.built_percent() - 25.0).abs() < 1e-9);
        assert!(stats.to_string().contains("25.0%"));

        let empty = CheckStats {
            learned_in_trace: 0,
            ..stats
        };
        assert_eq!(empty.built_percent(), 0.0);
    }

    #[test]
    fn strategy_display() {
        assert_eq!(Strategy::DepthFirst.to_string(), "depth-first");
        assert_eq!(Strategy::BreadthFirst.to_string(), "breadth-first");
    }
}
