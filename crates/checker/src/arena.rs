//! The arena clause store: flat literal storage with slot recycling.
//!
//! The strategies previously kept every resident clause as its own
//! `Rc<[Lit]>` behind a SipHash `HashMap` — one heap allocation, one
//! refcount, and pointer-chasing cache misses per clause. The arena
//! replaces that with one flat `Vec<Lit>` holding all resident clauses
//! back to back, plus a dense id → (offset, len) index, so fetching a
//! clause is a hash probe and a contiguous slice.
//!
//! The breadth-first strategy's defining trick — freeing a clause the
//! moment its use count hits zero — maps onto a **free list of extents**:
//! removed slots are recycled best-fit (with the remainder split back
//! onto the list) before the tail grows, so a BF run's literal tail stays
//! proportional to its *live* clause set, not its total clause count.
//!
//! Accounting: the [`MemoryMeter`] is charged in whole
//! [`ARENA_PAGE_BYTES`] pages as the literal tail grows (never refunded —
//! an arena retains its capacity) plus [`ARENA_SLOT_BYTES`] per resident
//! slot (refunded on removal). Both charges are pure functions of the
//! insert/remove sequence, preserving the bit-identical-stats guarantee
//! across `--jobs` values.

use crate::fxhash::FxHashMap;
use crate::memory::{MemoryMeter, ARENA_PAGE_BYTES, ARENA_SLOT_BYTES};
use crate::CheckError;
use rescheck_cnf::Lit;
use std::collections::BTreeMap;

/// Location of one resident clause inside the literal arena.
#[derive(Clone, Copy, Debug)]
struct Slot {
    offset: u32,
    len: u32,
}

/// A flat clause store indexed by trace clause id.
///
/// Offsets are `u32`, capping the arena at 4 Gi literals — far beyond
/// the accounting budgets any strategy runs with.
#[derive(Debug, Default)]
pub(crate) struct ClauseArena {
    /// All resident clauses' literals, back to back.
    lits: Vec<Lit>,
    /// id → slot index for resident clauses.
    slots: FxHashMap<u64, Slot>,
    /// Free extents, keyed by length → start offsets (LIFO per length).
    free: BTreeMap<u32, Vec<u32>>,
    /// Literal-page bytes already charged to the meter.
    charged_pages: u64,
    /// Number of inserts satisfied from the free list.
    reuse_hits: u64,
}

/// Bytes of whole pages needed to hold `lit_count` literals.
fn page_bytes(lit_count: usize) -> u64 {
    let bytes = (lit_count * std::mem::size_of::<Lit>()) as u64;
    bytes.div_ceil(ARENA_PAGE_BYTES) * ARENA_PAGE_BYTES
}

impl ClauseArena {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Stores `clause` under `id`, charging the meter for any new pages
    /// plus one slot.
    ///
    /// Freed extents are reused best-fit before the tail grows; a longer
    /// extent is split and its remainder returned to the free list.
    pub(crate) fn insert(
        &mut self,
        id: u64,
        clause: &[Lit],
        meter: &mut MemoryMeter,
    ) -> Result<(), CheckError> {
        debug_assert!(!self.slots.contains_key(&id), "duplicate arena id {id}");
        let len = clause.len() as u32;
        let offset = match self.take_free(len) {
            Some(offset) => {
                self.reuse_hits += 1;
                self.lits[offset as usize..(offset as usize + clause.len())]
                    .copy_from_slice(clause);
                offset
            }
            None => {
                let offset = self.lits.len() as u32;
                let needed = page_bytes(self.lits.len() + clause.len());
                if needed > self.charged_pages {
                    meter.alloc(needed - self.charged_pages)?;
                    self.charged_pages = needed;
                }
                self.lits.extend_from_slice(clause);
                offset
            }
        };
        meter.alloc(ARENA_SLOT_BYTES)?;
        self.slots.insert(id, Slot { offset, len });
        Ok(())
    }

    /// Returns the clause stored under `id`, if resident.
    pub(crate) fn get(&self, id: u64) -> Option<&[Lit]> {
        self.slots.get(&id).map(|s| {
            let start = s.offset as usize;
            &self.lits[start..start + s.len as usize]
        })
    }

    /// Returns `true` if `id` is resident.
    pub(crate) fn contains(&self, id: u64) -> bool {
        self.slots.contains_key(&id)
    }

    /// Frees the clause stored under `id` (a no-op for absent ids):
    /// refunds its slot bytes and recycles its extent.
    pub(crate) fn remove(&mut self, id: u64, meter: &mut MemoryMeter) {
        if let Some(slot) = self.slots.remove(&id) {
            meter.free(ARENA_SLOT_BYTES);
            if slot.len > 0 {
                self.free.entry(slot.len).or_default().push(slot.offset);
            }
        }
    }

    /// Number of resident clauses.
    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    /// Bytes of literal pages charged to the meter (the arena footprint
    /// gauge).
    pub(crate) fn charged_bytes(&self) -> u64 {
        self.charged_pages
    }

    /// Number of inserts that reused a freed extent instead of growing
    /// the tail.
    pub(crate) fn reuse_hits(&self) -> u64 {
        self.reuse_hits
    }

    /// Empties the arena for reuse by a new job, keeping the literal
    /// tail's allocated capacity but zeroing every accounting field.
    ///
    /// Because `charged_pages` restarts at 0, the next job re-charges
    /// pages to *its* meter exactly as a cold arena would — accounting
    /// stays a pure function of the insert/remove sequence, so per-job
    /// peaks are bit-identical whether the arena came from a warm scratch
    /// pool or was freshly built.
    pub(crate) fn reset(&mut self) {
        self.lits.clear();
        self.slots.clear();
        self.free.clear();
        self.charged_pages = 0;
        self.reuse_hits = 0;
    }

    /// Pops the smallest free extent that fits `len` literals, splitting
    /// off and re-listing any remainder.
    fn take_free(&mut self, len: u32) -> Option<u32> {
        if len == 0 {
            return None;
        }
        let (&extent_len, _) = self.free.range(len..).next()?;
        let offsets = self
            .free
            .get_mut(&extent_len)
            .expect("free-list entry for ranged key");
        let offset = offsets.pop().expect("free-list entries are non-empty");
        if offsets.is_empty() {
            self.free.remove(&extent_len);
        }
        if extent_len > len {
            self.free
                .entry(extent_len - len)
                .or_default()
                .push(offset + len);
        }
        Some(offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescheck_cnf::Lit;

    fn lits(ds: &[i64]) -> Vec<Lit> {
        ds.iter().map(|&d| Lit::from_dimacs(d)).collect()
    }

    #[test]
    fn stores_and_fetches_clauses() {
        let mut arena = ClauseArena::new();
        let mut meter = MemoryMeter::unlimited();
        arena.insert(1, &lits(&[1, 2, 3]), &mut meter).unwrap();
        arena.insert(2, &lits(&[-4]), &mut meter).unwrap();
        assert_eq!(arena.get(1).unwrap(), lits(&[1, 2, 3]).as_slice());
        assert_eq!(arena.get(2).unwrap(), lits(&[-4]).as_slice());
        assert!(arena.get(3).is_none());
        assert!(arena.contains(1));
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn charges_one_page_plus_slots() {
        let mut arena = ClauseArena::new();
        let mut meter = MemoryMeter::unlimited();
        arena.insert(1, &lits(&[1, 2]), &mut meter).unwrap();
        // 8 literal bytes round up to one 1024-byte page, plus one slot.
        assert_eq!(meter.current(), ARENA_PAGE_BYTES + ARENA_SLOT_BYTES);
        arena.insert(2, &lits(&[3, 4]), &mut meter).unwrap();
        // Second clause fits in the already-charged page.
        assert_eq!(meter.current(), ARENA_PAGE_BYTES + 2 * ARENA_SLOT_BYTES);
        assert_eq!(arena.charged_bytes(), ARENA_PAGE_BYTES);
    }

    #[test]
    fn remove_refunds_slots_but_not_pages() {
        let mut arena = ClauseArena::new();
        let mut meter = MemoryMeter::unlimited();
        arena.insert(1, &lits(&[1, 2]), &mut meter).unwrap();
        arena.remove(1, &mut meter);
        assert!(!arena.contains(1));
        assert_eq!(meter.current(), ARENA_PAGE_BYTES);
        // Removing an absent id is a no-op.
        arena.remove(99, &mut meter);
        assert_eq!(meter.current(), ARENA_PAGE_BYTES);
    }

    #[test]
    fn freed_extents_are_reused_before_the_tail_grows() {
        let mut arena = ClauseArena::new();
        let mut meter = MemoryMeter::unlimited();
        arena.insert(1, &lits(&[1, 2, 3]), &mut meter).unwrap();
        arena.remove(1, &mut meter);
        arena.insert(2, &lits(&[4, 5]), &mut meter).unwrap();
        assert_eq!(arena.reuse_hits(), 1);
        assert_eq!(arena.get(2).unwrap(), lits(&[4, 5]).as_slice());
        // The split remainder (1 literal) serves the next short insert.
        arena.insert(3, &lits(&[6]), &mut meter).unwrap();
        assert_eq!(arena.reuse_hits(), 2);
        assert_eq!(arena.get(3).unwrap(), lits(&[6]).as_slice());
        assert_eq!(arena.charged_bytes(), ARENA_PAGE_BYTES);
    }

    #[test]
    fn best_fit_prefers_the_smallest_sufficient_extent() {
        let mut arena = ClauseArena::new();
        let mut meter = MemoryMeter::unlimited();
        arena
            .insert(1, &lits(&[1, 2, 3, 4, 5]), &mut meter)
            .unwrap();
        arena.insert(2, &lits(&[6, 7]), &mut meter).unwrap();
        arena.insert(3, &lits(&[8]), &mut meter).unwrap(); // guards the tail
        arena.remove(1, &mut meter); // free extent of 5
        arena.remove(2, &mut meter); // free extent of 2
        arena.insert(4, &lits(&[9, 10]), &mut meter).unwrap();
        // The 2-extent was chosen, leaving the 5-extent whole.
        assert_eq!(arena.get(4).unwrap(), lits(&[9, 10]).as_slice());
        arena
            .insert(5, &lits(&[11, 12, 13, 14, 15]), &mut meter)
            .unwrap();
        assert_eq!(arena.reuse_hits(), 2);
        assert_eq!(arena.charged_bytes(), ARENA_PAGE_BYTES);
    }

    #[test]
    fn page_boundary_growth_charges_incrementally() {
        let mut arena = ClauseArena::new();
        let mut meter = MemoryMeter::unlimited();
        // 200 literals = 800 bytes: one page.
        let wide: Vec<Lit> = (1..=200).map(Lit::from_dimacs).collect();
        arena.insert(1, &wide, &mut meter).unwrap();
        assert_eq!(arena.charged_bytes(), ARENA_PAGE_BYTES);
        // 200 more push the tail to 1600 bytes: a second page.
        arena.insert(2, &wide, &mut meter).unwrap();
        assert_eq!(arena.charged_bytes(), 2 * ARENA_PAGE_BYTES);
        assert_eq!(meter.current(), 2 * ARENA_PAGE_BYTES + 2 * ARENA_SLOT_BYTES);
    }

    #[test]
    fn empty_clauses_are_representable() {
        let mut arena = ClauseArena::new();
        let mut meter = MemoryMeter::unlimited();
        arena.insert(1, &[], &mut meter).unwrap();
        assert_eq!(arena.get(1).unwrap(), &[] as &[Lit]);
        assert_eq!(meter.current(), ARENA_SLOT_BYTES);
        arena.remove(1, &mut meter);
        assert_eq!(meter.current(), 0);
    }

    #[test]
    fn reset_recharges_like_a_cold_arena() {
        let mut arena = ClauseArena::new();
        let mut meter = MemoryMeter::unlimited();
        arena.insert(1, &lits(&[1, 2, 3]), &mut meter).unwrap();
        arena.remove(1, &mut meter);
        let cold_peak = meter.peak();

        arena.reset();
        assert_eq!(arena.len(), 0);
        assert_eq!(arena.charged_bytes(), 0);
        assert_eq!(arena.reuse_hits(), 0);
        assert!(arena.get(1).is_none());

        // The same insert sequence against a fresh meter charges the
        // identical bytes — reuse is invisible to the accounting.
        let mut meter2 = MemoryMeter::unlimited();
        arena.insert(1, &lits(&[1, 2, 3]), &mut meter2).unwrap();
        arena.remove(1, &mut meter2);
        assert_eq!(meter2.peak(), cold_peak);
    }

    #[test]
    fn memory_limit_stops_page_growth() {
        let mut arena = ClauseArena::new();
        let mut meter = MemoryMeter::with_limit(ARENA_PAGE_BYTES / 2);
        let err = arena.insert(1, &lits(&[1]), &mut meter).unwrap_err();
        assert!(matches!(err, CheckError::MemoryLimitExceeded { .. }));
    }
}
