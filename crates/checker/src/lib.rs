//! An independent resolution-based checker for SAT solver results.
//!
//! This crate is the core contribution of Zhang & Malik, *"Validating SAT
//! Solvers Using an Independent Resolution-Based Checker: Practical
//! Implementations and Other Applications"* (DATE 2003): given the
//! original CNF formula and the *resolve trace* a CDCL solver emitted
//! while claiming UNSAT, the checker independently re-derives the **empty
//! clause** by resolution. If it succeeds, the UNSAT claim is proved; if
//! it fails, the solver (or its trace generation) is buggy, and the
//! checker reports a precise diagnostic of what went wrong.
//!
//! Two traversal strategies over the resolution DAG are provided, exactly
//! as in the paper:
//!
//! - [`check_depth_first`]: builds only the learned clauses on the path to
//!   the empty clause, starting from the final conflicting clause. Faster
//!   (and it discovers an **unsatisfiable core** as a by-product), but it
//!   keeps the whole trace and every built clause in memory, so it can
//!   exceed a memory budget on hard instances.
//! - [`check_breadth_first`]: streams the trace twice — a counting pass,
//!   then a resolution pass that frees each clause as soon as its last use
//!   is done. Slower (it verifies *every* learned clause), but its clause
//!   memory never exceeds what the solver itself used.
//!
//! SAT claims are checked by [`check_sat_claim`] in linear time.
//!
//! The unsat core from the depth-first strategy can be shrunk further by
//! iterating solve → check → extract ([`minimize_core`]), reproducing the
//! paper's Table 3.
//!
//! # Examples
//!
//! ```
//! use rescheck_cnf::Cnf;
//! use rescheck_checker::{check_depth_first, CheckConfig};
//! use rescheck_solver::{Solver, SolverConfig};
//! use rescheck_trace::MemorySink;
//!
//! // (x1 ∨ x2)(x1 ∨ ¬x2)(¬x1 ∨ x2)(¬x1 ∨ ¬x2) is unsatisfiable.
//! let mut cnf = Cnf::new();
//! cnf.add_dimacs_clause(&[1, 2]);
//! cnf.add_dimacs_clause(&[1, -2]);
//! cnf.add_dimacs_clause(&[-1, 2]);
//! cnf.add_dimacs_clause(&[-1, -2]);
//!
//! let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
//! let mut trace = MemorySink::new();
//! let result = solver.solve_traced(&mut trace)?;
//! assert!(result.is_unsat());
//!
//! let outcome = check_depth_first(&cnf, &trace, &CheckConfig::default())?;
//! let core = outcome.core.expect("depth-first always yields a core");
//! assert!(!core.clause_ids.is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agreement;
mod api;
mod arena;
mod breadth_first;
mod cache;
mod cancel;
mod core_min;
mod dag;
mod depth_first;
mod disk_df;
mod error;
mod executor;
mod final_phase;
mod fxhash;
mod hybrid;
pub mod kernel;
mod memory;
mod model;
mod outcome;
mod parallel;
mod proof;
pub mod resolve;
mod scratch;
mod trim;

pub use api::{
    check_breadth_first, check_depth_first, check_disk_depth_first, check_hybrid,
    check_parallel_bf, check_parallel_dag, check_portfolio, check_sat_claim, check_unsat_claim,
    check_unsat_claim_observed, check_unsat_claim_scoped, CheckConfig, ModelError, Strategy,
};
pub use cancel::CancelFlag;
pub use core_min::{minimize_core, CoreIteration, CoreMinimization, MinimizeError};
pub use error::{BadAntecedentReason, CheckError, FailureKind};
pub use kernel::{KernelMode, KernelStats, ResolutionKernel};
pub use memory::MemoryMeter;
pub use outcome::{CheckOutcome, CheckStats, UnsatCore};
pub use proof::{proof_stats, ProofStats};
pub use resolve::{
    normalize_literals, resolve_on, resolve_sorted, resolve_sorted_pivot, ResolveFailure,
};
pub use scratch::{CheckScratch, ScratchPool};
pub use trim::{trim_trace, trim_trace_observed, TrimmedTrace};
