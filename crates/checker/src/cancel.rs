//! Cooperative cancellation of a running check.
//!
//! The racing portfolio ([`crate::Strategy::Portfolio`]) runs two
//! strategies concurrently and stops the loser the moment the winner
//! finishes. There is no safe way to kill a thread, so cancellation is
//! cooperative: each strategy polls a shared flag at its progress-stride
//! points (every [`crate::depth_first::PROGRESS_STRIDE`] clauses, and
//! periodically during trace passes) and bails out with
//! [`CheckError::Cancelled`].

use crate::error::CheckError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shareable, thread-safe cancellation flag.
///
/// The default flag is *unarmed*: it can never fire and costs nothing to
/// poll, so sequential checks pay no synchronisation overhead. An armed
/// flag ([`CancelFlag::armed`]) shares one atomic across clones; setting
/// it through any clone cancels every check polling it.
///
/// # Examples
///
/// ```
/// use rescheck_checker::{CancelFlag, CheckError};
///
/// let flag = CancelFlag::armed();
/// let watcher = flag.clone();
/// assert!(flag.check().is_ok());
/// watcher.cancel();
/// assert!(matches!(flag.check(), Err(CheckError::Cancelled)));
///
/// // The default flag can never fire.
/// assert!(!CancelFlag::default().is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelFlag(Option<Arc<AtomicBool>>);

impl CancelFlag {
    /// A flag that can actually be fired (the default is inert).
    pub fn armed() -> Self {
        CancelFlag(Some(Arc::new(AtomicBool::new(false))))
    }

    /// Requests cancellation. A no-op on an unarmed flag.
    pub fn cancel(&self) {
        if let Some(flag) = &self.0 {
            flag.store(true, Ordering::Relaxed);
        }
    }

    /// Returns `true` once [`cancel`](CancelFlag::cancel) has been called
    /// on this flag or any clone of it.
    pub fn is_cancelled(&self) -> bool {
        self.0
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::Relaxed))
    }

    /// Polls the flag as a checker would.
    ///
    /// # Errors
    ///
    /// Returns [`CheckError::Cancelled`] once the flag has fired.
    pub fn check(&self) -> Result<(), CheckError> {
        if self.is_cancelled() {
            Err(CheckError::Cancelled)
        } else {
            Ok(())
        }
    }
}

/// Two flags are equal when they share the same atomic (or are both
/// unarmed) — clones compare equal, independently armed flags do not.
impl PartialEq for CancelFlag {
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Eq for CancelFlag {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_signal() {
        let a = CancelFlag::armed();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
        assert!(matches!(b.check(), Err(CheckError::Cancelled)));
    }

    #[test]
    fn unarmed_flag_never_fires() {
        let flag = CancelFlag::default();
        flag.cancel();
        assert!(!flag.is_cancelled());
        assert!(flag.check().is_ok());
    }

    #[test]
    fn equality_is_identity() {
        let a = CancelFlag::armed();
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a, CancelFlag::armed());
        assert_eq!(CancelFlag::default(), CancelFlag::default());
        assert_ne!(a, CancelFlag::default());
    }

    #[test]
    fn flag_crosses_threads() {
        let flag = CancelFlag::armed();
        let shared = flag.clone();
        std::thread::scope(|s| {
            s.spawn(move || shared.cancel());
        });
        assert!(flag.is_cancelled());
    }
}
