//! Job-scoped checker scratch: reusable kernels, arenas and caches.
//!
//! A one-shot `rescheck check` builds a [`ResolutionKernel`], a
//! [`ClauseArena`] and an original-clause cache, uses them once, and
//! throws them away with the process. A long-lived validation service
//! (`rescheck serve`) runs thousands of jobs per process, so those
//! buffers are worth keeping: the kernel's mark arrays stay sized for the
//! largest formula seen, the arena's literal tail keeps its capacity, and
//! — when two consecutive jobs check the *same* formula — the normalized
//! original clauses survive as a warm tier.
//!
//! The ownership rules are strict because the accounting must stay
//! deterministic:
//!
//! - A [`CheckScratch`] is owned by exactly one job at a time. The
//!   [`ScratchPool`] hands them out ([`checkout`]) and takes them back
//!   ([`checkin`]); a scratch poisoned by a panicking job is simply
//!   dropped instead of returned.
//! - Every run begins with [`CheckScratch::start_run`] (called inside the
//!   scoped strategy entry points): the arena is reset, the cache is
//!   demoted to its warm tier, and the kernel's stat counters are
//!   snapshotted so per-job metrics report deltas, not lifetime totals.
//! - Warm reuse of cached original clauses requires the caller to
//!   *declare* formula identity via [`CheckScratch::begin_job`] with a
//!   stable token. Two consecutive runs declaring the same token keep the
//!   warm tier; anything else clears it — clause ids from one formula
//!   must never resolve against another.
//! - Accounting is unchanged by reuse: warm promotions are charged to the
//!   current job's [`MemoryMeter`](crate::MemoryMeter) at the same
//!   first-touch point a cold run pays, and the arena re-charges its
//!   pages from zero. Per-job `peak_memory_bytes` is bit-identical warm
//!   vs cold — the invariant the double-charge regression test pins down.
//!
//! [`checkout`]: ScratchPool::checkout
//! [`checkin`]: ScratchPool::checkin

use crate::arena::ClauseArena;
use crate::cache::OriginalCache;
use crate::kernel::{KernelStats, ResolutionKernel};
use std::sync::Mutex;

/// Reusable per-job checker state: kernel, arena and original cache.
///
/// See the [module docs](self) for the ownership and accounting rules.
///
/// # Examples
///
/// ```
/// use rescheck_checker::{CheckScratch, ScratchPool};
///
/// let pool = ScratchPool::new();
/// let mut scratch = pool.checkout();
/// scratch.begin_job(0x1234); // declare which formula the job is for
/// // … run check_unsat_claim_scoped with it …
/// pool.checkin(scratch);
/// assert_eq!(pool.len(), 1);
/// ```
#[derive(Default)]
pub struct CheckScratch {
    kernel: ResolutionKernel,
    arena: ClauseArena,
    originals: OriginalCache,
    /// Formula identity of the current warm-tier contents.
    token: Option<u64>,
    /// Identity declared (via [`CheckScratch::begin_job`]) for the next
    /// run; consumed by [`CheckScratch::start_run`].
    next_token: Option<u64>,
}

impl CheckScratch {
    /// A cold scratch, equivalent to what a one-shot check builds.
    pub fn new() -> Self {
        CheckScratch {
            kernel: ResolutionKernel::new(),
            arena: ClauseArena::new(),
            originals: OriginalCache::new(None),
            token: None,
            next_token: None,
        }
    }

    /// Declares the formula the next run will check, enabling warm reuse
    /// of cached original clauses when `formula_token` matches the
    /// previous run's declaration. The token must be a stable identity of
    /// the formula *content* (the serve daemon hashes the CNF bytes);
    /// runs without a declaration always start cold.
    pub fn begin_job(&mut self, formula_token: u64) {
        self.next_token = Some(formula_token);
    }

    /// Number of original-clause normalizations the warm tier has saved
    /// over this scratch's lifetime.
    pub fn warm_hits(&self) -> u64 {
        self.originals.warm_hits()
    }

    /// Prepares the scratch for one run and returns the kernel-stats
    /// baseline (for per-job delta reporting). Called by the scoped
    /// strategy entry points — defensively, so a caller that forgets
    /// [`CheckScratch::begin_job`] gets a correct cold run, never stale
    /// clauses from another formula.
    pub(crate) fn start_run(&mut self, original_cache_cap: Option<u64>) -> KernelStats {
        self.arena.reset();
        let declared = self.next_token.take();
        if declared.is_some() && declared == self.token {
            // Same formula back to back: keep normalized originals warm.
            self.originals.begin_job(original_cache_cap);
        } else {
            self.originals.reset(original_cache_cap);
        }
        self.token = declared;
        self.kernel.stats()
    }

    /// Splits the scratch into its independently borrowed parts.
    pub(crate) fn parts(
        &mut self,
    ) -> (&mut ResolutionKernel, &mut ClauseArena, &mut OriginalCache) {
        (&mut self.kernel, &mut self.arena, &mut self.originals)
    }
}

/// Reports `now` relative to `base`: monotone counters as deltas, the
/// high-water mark as-is (it is a lifetime peak, not a rate).
pub(crate) fn kernel_stats_since(now: &KernelStats, base: &KernelStats) -> KernelStats {
    KernelStats {
        chains: now.chains - base.chains,
        literals_folded: now.literals_folded - base.literals_folded,
        scratch_grows: now.scratch_grows - base.scratch_grows,
        scratch_high_water: now.scratch_high_water,
    }
}

/// A shared pool of [`CheckScratch`]es for a worker fleet.
///
/// Checkout order is LIFO (most recently returned first), which maximizes
/// the chance that a job on the same formula gets the scratch still warm
/// with its normalized clauses.
#[derive(Default)]
pub struct ScratchPool {
    inner: Mutex<Vec<CheckScratch>>,
}

impl ScratchPool {
    /// An empty pool; scratches are created on demand.
    pub fn new() -> Self {
        ScratchPool::default()
    }

    /// Takes a scratch out of the pool, building a cold one if empty.
    pub fn checkout(&self) -> CheckScratch {
        self.inner
            .lock()
            .expect("scratch pool lock")
            .pop()
            .unwrap_or_default()
    }

    /// Returns a scratch for reuse. Never return a scratch whose job
    /// panicked — drop it instead; its buffers may be mid-mutation.
    pub fn checkin(&self, scratch: CheckScratch) {
        self.inner.lock().expect("scratch pool lock").push(scratch);
    }

    /// Number of idle scratches currently pooled.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("scratch pool lock").len()
    }

    /// Whether the pool currently holds no idle scratch.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{check_unsat_claim_scoped, CheckConfig};
    use crate::outcome::Strategy;
    use rescheck_cnf::{Cnf, Lit};
    use rescheck_obs::NullObserver;
    use rescheck_trace::{MemorySink, TraceSink};

    /// A proof touching several distinct original clauses, so the
    /// original cache actually holds entries worth keeping warm.
    fn fixture() -> (Cnf, MemorySink) {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1, 2]);
        cnf.add_dimacs_clause(&[1, -2]);
        cnf.add_dimacs_clause(&[-1, 2]);
        cnf.add_dimacs_clause(&[-1, -2]);
        let mut sink = MemorySink::new();
        sink.learned(4, &[0, 1]).unwrap(); // (1)
        sink.learned(5, &[2, 3]).unwrap(); // (-1)
        sink.level_zero(Lit::from_dimacs(1), 4).unwrap();
        sink.final_conflict(5).unwrap();
        (cnf, sink)
    }

    /// The satellite regression: two jobs on the same formula from the
    /// same warm scratch must report bit-identical peak bytes — the
    /// shared original-clause cache is never double-charged and never
    /// under-charged.
    #[test]
    fn warm_and_cold_jobs_account_identical_peaks() {
        let (cnf, sink) = fixture();
        let config = CheckConfig::default();
        for strategy in [Strategy::DepthFirst, Strategy::BreadthFirst] {
            let mut scratch = CheckScratch::new();
            scratch.begin_job(42);
            let cold = check_unsat_claim_scoped(
                &cnf,
                &sink,
                strategy,
                &config,
                &mut scratch,
                &mut NullObserver,
            )
            .unwrap();
            scratch.begin_job(42);
            let warm = check_unsat_claim_scoped(
                &cnf,
                &sink,
                strategy,
                &config,
                &mut scratch,
                &mut NullObserver,
            )
            .unwrap();
            assert_eq!(
                cold.stats.peak_memory_bytes, warm.stats.peak_memory_bytes,
                "{strategy}: warm scratch must not change accounted peak"
            );
            assert_eq!(cold.stats.clauses_built, warm.stats.clauses_built);
            assert_eq!(cold.stats.resolutions, warm.stats.resolutions);
            assert!(
                scratch.warm_hits() > 0,
                "{strategy}: warm run must actually reuse normalized originals"
            );
        }
    }

    /// Scoped runs match unscoped one-shot runs exactly — the parity the
    /// serve campaign acceptance test relies on.
    #[test]
    fn scoped_runs_match_one_shot_runs() {
        let (cnf, sink) = fixture();
        let config = CheckConfig::default();
        for strategy in [Strategy::DepthFirst, Strategy::BreadthFirst] {
            let one_shot = crate::api::check_unsat_claim(&cnf, &sink, strategy, &config).unwrap();
            let mut scratch = CheckScratch::new();
            scratch.begin_job(7);
            let scoped = check_unsat_claim_scoped(
                &cnf,
                &sink,
                strategy,
                &config,
                &mut scratch,
                &mut NullObserver,
            )
            .unwrap();
            assert_eq!(
                one_shot.stats.peak_memory_bytes,
                scoped.stats.peak_memory_bytes
            );
            assert_eq!(one_shot.stats.clauses_built, scoped.stats.clauses_built);
            assert_eq!(one_shot.stats.resolutions, scoped.stats.resolutions);
            assert_eq!(
                one_shot.stats.learned_in_trace,
                scoped.stats.learned_in_trace
            );
        }
    }

    /// A different token (or none) must clear the warm tier: ids from one
    /// formula never resolve against another's clauses.
    #[test]
    fn token_change_clears_warm_tier() {
        let (cnf, sink) = fixture();
        // A different formula whose clause ids overlap but mean different
        // literals; its proof must not see formula A's cached clauses.
        let mut cnf_b = Cnf::new();
        cnf_b.add_dimacs_clause(&[3]);
        cnf_b.add_dimacs_clause(&[-3]);
        let mut sink_b = MemorySink::new();
        sink_b.level_zero(Lit::from_dimacs(3), 0).unwrap();
        sink_b.final_conflict(1).unwrap();

        let config = CheckConfig::default();
        let mut scratch = CheckScratch::new();
        scratch.begin_job(1);
        check_unsat_claim_scoped(
            &cnf,
            &sink,
            Strategy::DepthFirst,
            &config,
            &mut scratch,
            &mut NullObserver,
        )
        .unwrap();
        let hits_before = scratch.warm_hits();
        scratch.begin_job(2); // different formula
        check_unsat_claim_scoped(
            &cnf_b,
            &sink_b,
            Strategy::DepthFirst,
            &config,
            &mut scratch,
            &mut NullObserver,
        )
        .unwrap();
        assert_eq!(
            scratch.warm_hits(),
            hits_before,
            "token change must prevent cross-formula reuse"
        );

        // An undeclared run is always cold, even on the same formula.
        let mut undeclared = CheckScratch::new();
        undeclared.begin_job(9);
        check_unsat_claim_scoped(
            &cnf,
            &sink,
            Strategy::DepthFirst,
            &config,
            &mut undeclared,
            &mut NullObserver,
        )
        .unwrap();
        check_unsat_claim_scoped(
            &cnf,
            &sink,
            Strategy::DepthFirst,
            &config,
            &mut undeclared,
            &mut NullObserver,
        )
        .unwrap();
        assert_eq!(undeclared.warm_hits(), 0);
    }

    #[test]
    fn pool_is_lifo_and_grows_on_demand() {
        let pool = ScratchPool::new();
        assert!(pool.is_empty());
        let a = pool.checkout(); // built on demand
        let b = pool.checkout();
        assert_eq!(pool.len(), 0);
        pool.checkin(a);
        pool.checkin(b);
        assert_eq!(pool.len(), 2);
        let _again = pool.checkout();
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn kernel_stats_delta_subtracts_counters() {
        let base = KernelStats {
            chains: 10,
            literals_folded: 100,
            scratch_grows: 3,
            scratch_high_water: 512,
        };
        let now = KernelStats {
            chains: 15,
            literals_folded: 180,
            scratch_grows: 3,
            scratch_high_water: 512,
        };
        let d = kernel_stats_since(&now, &base);
        assert_eq!(d.chains, 5);
        assert_eq!(d.literals_folded, 80);
        assert_eq!(d.scratch_grows, 0);
        assert_eq!(d.scratch_high_water, 512);
    }
}
