//! Checker failure diagnostics.
//!
//! A failed check means the solver — or its trace generation — is buggy.
//! The paper stresses that "the checker can also provide as much
//! information as possible about the failure to help debug the solver"
//! (§3.2); [`CheckError`] is that information.

use crate::resolve::ResolveFailure;
use rescheck_cnf::Var;
use std::error::Error;
use std::fmt;
use std::io;

/// Coarse classification of a [`CheckError`], for callers that need to
/// know *why* a check failed without matching every variant — the CLI
/// maps each kind to a distinct process exit code, and the fuzz harness
/// asserts that corrupted traces always land in
/// [`FailureKind::ProofDefect`], never a panic and never a
/// misclassified I/O or resource error.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// The claimed proof is wrong: a resolution step failed, a clause
    /// reference dangles, the trace is malformed or truncated, etc.
    /// The solver (or its trace generation) should be considered buggy.
    ProofDefect,
    /// A configured resource budget was exhausted before a verdict; the
    /// proof itself was neither validated nor refuted.
    ResourceLimit,
    /// The trace could not be read for environmental reasons (missing
    /// file, permission, device error) — says nothing about the proof.
    Io,
    /// The check was cancelled cooperatively before reaching a verdict.
    Cancelled,
    /// The checker itself misbehaved — a worker thread panicked — so no
    /// verdict was reached. Says nothing about the proof; the *checker*
    /// should be considered buggy. Callers that manage worker fleets (the
    /// serve daemon, the parallel strategies) degrade to this instead of
    /// aborting the process.
    Internal,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::ProofDefect => f.write_str("proof-defect"),
            FailureKind::ResourceLimit => f.write_str("resource-limit"),
            FailureKind::Io => f.write_str("io-error"),
            FailureKind::Cancelled => f.write_str("cancelled"),
            FailureKind::Internal => f.write_str("internal-error"),
        }
    }
}

/// Why a clause failed the antecedent validity check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BadAntecedentReason {
    /// The clause does not contain the literal it supposedly implied.
    MissingImpliedLiteral,
    /// Some other literal of the clause is not falsified by the recorded
    /// level-0 assignment (so the clause was never unit).
    LiteralNotFalsified {
        /// The variable of the offending literal.
        var: Var,
    },
    /// Some other literal's variable was assigned *after* the implied
    /// variable, so the clause could not have been the antecedent at the
    /// time of the implication.
    OrderViolation {
        /// The variable assigned too late.
        var: Var,
    },
}

impl fmt::Display for BadAntecedentReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BadAntecedentReason::MissingImpliedLiteral => {
                f.write_str("clause does not contain the implied literal")
            }
            BadAntecedentReason::LiteralNotFalsified { var } => write!(
                f,
                "literal of {var} is not falsified by the level-0 assignment"
            ),
            BadAntecedentReason::OrderViolation { var } => write!(
                f,
                "{var} was assigned after the implied variable, so the clause was not yet unit"
            ),
        }
    }
}

/// Everything that can go wrong while validating an UNSAT claim.
///
/// Every variant identifies the clause IDs involved, so a failing check
/// pinpoints the first bad step of the claimed proof.
#[derive(Debug)]
pub enum CheckError {
    /// The trace could not be read or parsed.
    Trace(io::Error),
    /// The trace contains no final-conflict record, so there is nothing to
    /// start the empty-clause derivation from.
    NoFinalConflict,
    /// A referenced clause ID is neither an original clause nor a learned
    /// clause defined by the trace.
    UnknownClause {
        /// The unresolvable ID.
        id: u64,
        /// What referenced it (a learned clause ID, or `None` for the
        /// final phase).
        referenced_by: Option<u64>,
    },
    /// The trace defines the same learned clause ID twice.
    DuplicateLearnedId {
        /// The colliding ID.
        id: u64,
    },
    /// A learned-clause ID collides with an original clause ID.
    LearnedIdCollidesWithOriginal {
        /// The colliding ID.
        id: u64,
    },
    /// Two level-0 records assign the same variable.
    DuplicateLevelZero {
        /// The doubly-assigned variable.
        var: Var,
    },
    /// A learned clause references a clause that is defined only later in
    /// the trace (rejected by the breadth-first strategy, which relies on
    /// generation order).
    ForwardReference {
        /// The clause being built.
        id: u64,
        /// The not-yet-defined source.
        source: u64,
    },
    /// The learned-clause dependency graph contains a cycle, so it is not
    /// a proof DAG.
    CyclicProof {
        /// A clause on the cycle.
        id: u64,
    },
    /// A resolution step failed: zero or several clashing variables.
    NotResolvable {
        /// The clause being derived (`None` during the final empty-clause
        /// phase).
        target: Option<u64>,
        /// Index of the failing source within the target's source list.
        step: usize,
        /// The right-hand clause of the failing resolution.
        with: u64,
        /// The underlying resolution failure.
        failure: ResolveFailure,
    },
    /// The final conflicting clause has a literal that is not falsified by
    /// the recorded level-0 assignment, so it is not conflicting at all.
    FinalClauseNotConflicting {
        /// The claimed final conflicting clause.
        id: u64,
        /// A variable whose literal is not falsified.
        var: Var,
    },
    /// A variable needed during the final phase has no level-0 record.
    MissingLevelZero {
        /// The unrecorded variable.
        var: Var,
    },
    /// A recorded antecedent fails the unit-clause check.
    BadAntecedent {
        /// The implied variable.
        var: Var,
        /// The claimed antecedent clause.
        antecedent: u64,
        /// What exactly is wrong with it.
        reason: BadAntecedentReason,
    },
    /// The final empty-clause derivation did not terminate within the
    /// bound guaranteed by reverse-chronological literal selection.
    NonterminatingProof,
    /// The configured memory budget was exceeded (the paper's depth-first
    /// strategy memory-outs on the hardest instances, Table 2).
    MemoryLimitExceeded {
        /// The configured limit in bytes.
        limit: u64,
        /// The accounted requirement that broke it.
        required: u64,
    },
    /// The check was cancelled cooperatively before reaching a verdict —
    /// e.g. because another racer of a checking portfolio already
    /// succeeded. Not a statement about the trace's validity.
    Cancelled,
    /// A checker worker thread panicked. The parallel strategies convert
    /// join failures into this instead of `expect`-aborting the whole
    /// process, so a poisoned worker degrades into a reportable verdict.
    WorkerPanic {
        /// Which worker died and the panic message it died with.
        what: String,
    },
}

impl CheckError {
    /// Classifies this error into a [`FailureKind`].
    ///
    /// Malformed trace *content* (decode failures surfacing as
    /// [`io::ErrorKind::InvalidData`] or [`io::ErrorKind::UnexpectedEof`])
    /// counts as a proof defect: the bytes exist but do not encode a
    /// checkable proof. Every other I/O failure is environmental.
    pub fn kind(&self) -> FailureKind {
        match self {
            CheckError::Trace(e) => match e.kind() {
                io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof => {
                    FailureKind::ProofDefect
                }
                _ => FailureKind::Io,
            },
            CheckError::MemoryLimitExceeded { .. } => FailureKind::ResourceLimit,
            CheckError::Cancelled => FailureKind::Cancelled,
            CheckError::WorkerPanic { .. } => FailureKind::Internal,
            _ => FailureKind::ProofDefect,
        }
    }
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Trace(e) => write!(f, "cannot read trace: {e}"),
            CheckError::NoFinalConflict => {
                f.write_str("trace has no final conflicting clause record")
            }
            CheckError::UnknownClause { id, referenced_by } => match referenced_by {
                Some(parent) => write!(
                    f,
                    "clause #{id}, referenced by learned clause #{parent}, is not defined"
                ),
                None => write!(f, "clause #{id} is not defined"),
            },
            CheckError::DuplicateLearnedId { id } => {
                write!(f, "learned clause #{id} is defined twice")
            }
            CheckError::LearnedIdCollidesWithOriginal { id } => {
                write!(
                    f,
                    "learned clause #{id} collides with an original clause id"
                )
            }
            CheckError::DuplicateLevelZero { var } => {
                write!(f, "variable {var} has two level-0 assignment records")
            }
            CheckError::ForwardReference { id, source } => write!(
                f,
                "learned clause #{id} uses #{source} before it is defined"
            ),
            CheckError::CyclicProof { id } => {
                write!(f, "learned clause #{id} participates in a resolution cycle")
            }
            CheckError::NotResolvable {
                target,
                step,
                with,
                failure,
            } => {
                match target {
                    Some(t) => write!(f, "building learned clause #{t}: ")?,
                    None => f.write_str("deriving the empty clause: ")?,
                }
                write!(
                    f,
                    "resolution step {step} with clause #{with} failed: {failure}"
                )
            }
            CheckError::FinalClauseNotConflicting { id, var } => write!(
                f,
                "final clause #{id} is not conflicting: its literal of {var} is not \
                 falsified at decision level 0"
            ),
            CheckError::MissingLevelZero { var } => write!(
                f,
                "variable {var} is needed for the final derivation but has no level-0 record"
            ),
            CheckError::BadAntecedent {
                var,
                antecedent,
                reason,
            } => write!(
                f,
                "clause #{antecedent} is not a valid antecedent of {var}: {reason}"
            ),
            CheckError::NonterminatingProof => f.write_str(
                "final derivation exceeded its resolution bound without reaching the empty clause",
            ),
            CheckError::MemoryLimitExceeded { limit, required } => write!(
                f,
                "memory limit exceeded: {required} bytes required, limit is {limit}"
            ),
            CheckError::Cancelled => f.write_str("check cancelled before reaching a verdict"),
            CheckError::WorkerPanic { what } => {
                write!(f, "internal checker error: {what}")
            }
        }
    }
}

impl Error for CheckError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckError::Trace(e) => Some(e),
            CheckError::NotResolvable { failure, .. } => Some(failure),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckError {
    fn from(e: io::Error) -> Self {
        CheckError::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_ids() {
        let e = CheckError::UnknownClause {
            id: 7,
            referenced_by: Some(9),
        };
        let s = e.to_string();
        assert!(s.contains("#7") && s.contains("#9"));

        let e = CheckError::UnknownClause {
            id: 7,
            referenced_by: None,
        };
        assert!(e.to_string().contains("#7"));
    }

    #[test]
    fn not_resolvable_includes_cause() {
        let e = CheckError::NotResolvable {
            target: Some(12),
            step: 3,
            with: 4,
            failure: ResolveFailure {
                clashing_vars: vec![],
            },
        };
        assert!(e.to_string().contains("step 3"));
        assert!(e.source().is_some());
    }

    #[test]
    fn bad_antecedent_reasons_format() {
        let v = Var::new(0);
        for reason in [
            BadAntecedentReason::MissingImpliedLiteral,
            BadAntecedentReason::LiteralNotFalsified { var: v },
            BadAntecedentReason::OrderViolation { var: v },
        ] {
            let e = CheckError::BadAntecedent {
                var: v,
                antecedent: 5,
                reason,
            };
            assert!(e.to_string().contains("#5"));
        }
    }

    #[test]
    fn failure_kinds_classify() {
        assert_eq!(CheckError::NoFinalConflict.kind(), FailureKind::ProofDefect);
        assert_eq!(
            CheckError::UnknownClause {
                id: 1,
                referenced_by: None
            }
            .kind(),
            FailureKind::ProofDefect
        );
        assert_eq!(
            CheckError::MemoryLimitExceeded {
                limit: 10,
                required: 20
            }
            .kind(),
            FailureKind::ResourceLimit
        );
        assert_eq!(CheckError::Cancelled.kind(), FailureKind::Cancelled);
        // Malformed trace bytes are a proof defect…
        let bad = CheckError::Trace(io::Error::new(io::ErrorKind::InvalidData, "bad varint"));
        assert_eq!(bad.kind(), FailureKind::ProofDefect);
        let trunc = CheckError::Trace(io::Error::new(io::ErrorKind::UnexpectedEof, "cut"));
        assert_eq!(trunc.kind(), FailureKind::ProofDefect);
        // …but an unreadable file is environmental.
        let env = CheckError::Trace(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert_eq!(env.kind(), FailureKind::Io);
        assert_eq!(FailureKind::Io.to_string(), "io-error");
        assert_eq!(FailureKind::ProofDefect.to_string(), "proof-defect");
        // A panicked worker is the checker's own fault, never the proof's.
        let poisoned = CheckError::WorkerPanic {
            what: "counting worker: index out of bounds".into(),
        };
        assert_eq!(poisoned.kind(), FailureKind::Internal);
        assert!(poisoned.to_string().contains("internal checker error"));
        assert_eq!(FailureKind::Internal.to_string(), "internal-error");
    }

    #[test]
    fn io_error_converts() {
        let e: CheckError = io::Error::new(io::ErrorKind::InvalidData, "boom").into();
        assert!(matches!(e, CheckError::Trace(_)));
        assert!(e.to_string().contains("boom"));
    }
}
