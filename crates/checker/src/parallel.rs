//! Parallel checking: a racing portfolio and a sharded breadth-first
//! checker, built on scoped threads only (the workspace stays free of
//! external dependencies).
//!
//! **Portfolio** ([`Strategy::Portfolio`]): run the depth-first and
//! breadth-first strategies concurrently on the same trace and return
//! the first verdict, cancelling the loser through a [`CancelFlag`]
//! polled at the existing progress strides. Depth-first usually wins on
//! instances that fit in memory; when it memory-outs, breadth-first is
//! already half-way done instead of starting from scratch.
//!
//! **Parallel breadth-first** ([`Strategy::ParallelBf`]): pass 1's use
//! counting is embarrassingly parallel, so a reader thread decodes the
//! trace once and deals event batches round-robin to `jobs` counting
//! workers; their per-shard tables are merged in trace order through the
//! same [`Pass1Tables`] methods the sequential pass uses. This strategy
//! keeps pass 2 on one thread — clause construction is a *partial*
//! order, not a chain, and scheduling it across workers is what
//! [`Strategy::ParallelDag`](crate::Strategy::ParallelDag) does — but
//! its trace *decoding* can be overlapped with resolution: a reader
//! thread runs ahead through a bounded channel while the calling thread
//! drives [`BfResolveState`] — the identical per-event code as the
//! sequential checker, which is what makes `resolutions`,
//! `clauses_built` and `peak_memory_bytes` bit-identical to
//! [`Strategy::BreadthFirst`] for every worker count.
//!
//! On tiny traces the thread spin-up and cross-shard merging cost more
//! than they save, so below an estimated
//! [`CheckConfig::parallel_min_learned`] learned clauses the strategy
//! silently runs the sequential breadth-first code on the calling
//! thread (the verdict and every counter are bit-identical either way).
//!
//! Channel buffers hold at most [`PIPELINE_DEPTH`] batches of
//! [`BATCH_EVENTS`] events and are deliberately not charged to the
//! [`MemoryMeter`]: they are a small transport detail of this
//! implementation, not part of the strategy's clause residency that
//! Table 2 measures.
//!
//! For binary *file* traces pass 1 skips the reader/channel pipeline
//! entirely when the established [`TraceMap`] carries a block index:
//! each worker decodes its own disjoint byte shard of the shared map
//! (see [`rescheck_trace::BlockIndex::shard_ranges`]) straight into the
//! compact merge records, and the shards meet in the identical
//! trace-order replay. The map's bytes are charged to the meter once,
//! up front, so for file traces this strategy's peak exceeds sequential
//! breadth-first's by exactly the encoded trace size — identically
//! across worker counts and across `mmap`/buffered backings. For
//! unmapped sources the peak still equals breadth-first's.

use crate::api::CheckConfig;
use crate::breadth_first::{sequential_pass1, BfResolveState, Pass1Tables};
use crate::cancel::CancelFlag;
use crate::error::{CheckError, FailureKind};
use crate::fxhash::FxHashMap;
use crate::memory::MemoryMeter;
use crate::outcome::{CheckOutcome, Strategy};
use crate::scratch::CheckScratch;
use rescheck_cnf::{Cnf, Lit};
use rescheck_obs::{Event, EventBuffer, Level, Observer, Phase};
use rescheck_trace::{
    BlockIndex, EventRef, RandomAccessTrace, ShardRange, SliceDecoder, TraceEvent, TraceMap,
    TraceSource,
};
use std::any::Any;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

/// Events per batch crossing a channel.
const BATCH_EVENTS: usize = 256;
/// Bounded-channel capacity, in batches, for the pipelined reader.
const PIPELINE_DEPTH: usize = 4;
/// How often the portfolio coordinator polls the caller's cancel flag
/// while waiting for a racer to finish.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Renders a caught panic payload into a printable message. Panics carry
/// `&str` or `String` payloads from `panic!`; anything else (a custom
/// `panic_any`) is reported opaquely rather than dropped.
pub(crate) fn panic_message(who: &str, payload: &(dyn Any + Send)) -> String {
    let what = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    format!("{who} panicked: {what}")
}

/// Converts a thread join result into a structured [`CheckError`]: a
/// panicked worker becomes [`CheckError::WorkerPanic`] (kind
/// [`FailureKind::Internal`]) instead of aborting the whole process, so
/// callers that manage many checks — the serve daemon above all — can
/// fail one job and keep running.
pub(crate) fn join_or_internal<T>(who: &str, joined: thread::Result<T>) -> Result<T, CheckError> {
    joined.map_err(|payload| CheckError::WorkerPanic {
        what: panic_message(who, payload.as_ref()),
    })
}

/// Resolves `config.jobs` to an actual worker count.
pub(crate) fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    } else {
        jobs
    }
}

/// The most workers that can possibly help on this machine. `--jobs` is
/// a cap, not a demand: threads beyond the available cores only add
/// scheduling overhead, never throughput, and the parallel-dag stats
/// are a pure function of the trace anyway, so clamping is observable
/// only as speed.
pub(crate) fn max_useful_workers() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Whether a parallel strategy should step aside for plain sequential
/// breadth-first: the trace's learned-clause count is below
/// [`CheckConfig::parallel_min_learned`]. With an established
/// [`TraceMap`] whose block index scanned cleanly the count is *exact*;
/// otherwise it is estimated from the encoded size, and unsized trace
/// sources never fall back — there is no estimate to compare.
pub(crate) fn small_trace_fallback<S: TraceSource + ?Sized>(
    trace: &S,
    map: Option<&TraceMap>,
    config: &CheckConfig,
    obs: &mut dyn Observer,
) -> bool {
    if config.parallel_min_learned == 0 {
        return false;
    }
    let (hint, how) = match map.and_then(TraceMap::block_index) {
        Some(index) => (index.learned() as usize, "has "),
        None => match trace.encoded_size().map(crate::model::table_capacity_hint) {
            Some(hint) => (hint, "estimates ~"),
            None => return false,
        },
    };
    if hint >= config.parallel_min_learned {
        return false;
    }
    obs.observe(&Event::Message {
        level: Level::Info,
        text: &format!(
            "trace {how}{hint} learned clauses (below parallel_min_learned = {}); \
             running sequential breadth-first",
            config.parallel_min_learned
        ),
    });
    true
}

/// Establishes the trace's shared byte map (when the source supports
/// one) inside a `trace-map` phase and reports what backs it.
pub(crate) fn establish_map<'a, S: TraceSource + ?Sized>(
    trace: &'a S,
    config: &CheckConfig,
    obs: &mut dyn Observer,
) -> Option<&'a TraceMap> {
    let phase = Phase::start("trace-map", obs);
    let map = trace.trace_map(!config.no_mmap);
    if let Some(map) = map {
        obs.observe(&Event::GaugeSet {
            name: "check.map.bytes",
            value: map.accounted_bytes() as f64,
        });
        obs.observe(&Event::GaugeSet {
            name: "check.map.mmap",
            value: map.is_mmap() as u8 as f64,
        });
    }
    phase.finish(obs);
    map
}

// ---------------------------------------------------------------- portfolio

/// Races depth-first against breadth-first; first verdict wins.
pub(crate) fn run_portfolio<S: RandomAccessTrace + Sync + ?Sized>(
    cnf: &Cnf,
    trace: &S,
    config: &CheckConfig,
    obs: &mut dyn Observer,
) -> Result<CheckOutcome, CheckError> {
    let started = Instant::now();
    config.cancel.check()?;

    let df_cancel = CancelFlag::armed();
    let bf_cancel = CancelFlag::armed();
    let cancel_both = || {
        df_cancel.cancel();
        bf_cancel.cancel();
    };

    type RacerReport = (Strategy, Result<CheckOutcome, CheckError>, EventBuffer);
    let (winner, mut errors) = thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<RacerReport>();
        for (strategy, flag) in [
            (Strategy::DepthFirst, &df_cancel),
            (Strategy::BreadthFirst, &bf_cancel),
        ] {
            let tx = tx.clone();
            let mut racer_config = config.clone();
            racer_config.cancel = flag.clone();
            scope.spawn(move || {
                let mut buffer = EventBuffer::new();
                // Racers are joined implicitly by the scope, never by
                // hand, so a panic must be caught *inside* the racer —
                // otherwise the scope would re-panic it on exit and take
                // the whole process down with one poisoned check.
                let run = catch_unwind(AssertUnwindSafe(|| match strategy {
                    Strategy::DepthFirst => {
                        crate::depth_first::run(cnf, trace, &racer_config, &mut buffer)
                    }
                    _ => crate::breadth_first::run(cnf, trace, &racer_config, &mut buffer),
                }));
                let result = run.unwrap_or_else(|payload| {
                    Err(CheckError::WorkerPanic {
                        what: panic_message(&format!("{strategy} racer"), payload.as_ref()),
                    })
                });
                // The coordinator may have stopped listening; that is fine.
                let _ = tx.send((strategy, result, buffer));
            });
        }
        drop(tx);

        let mut winner: Option<(Strategy, CheckOutcome, EventBuffer)> = None;
        let mut errors: Vec<(Strategy, CheckError)> = Vec::new();
        loop {
            match rx.recv_timeout(POLL_INTERVAL) {
                Ok((strategy, Ok(outcome), buffer)) => {
                    if winner.is_none() {
                        cancel_both();
                        winner = Some((strategy, outcome, buffer));
                    }
                }
                // The loser being cancelled is the expected way to lose.
                Ok((_, Err(CheckError::Cancelled), _)) => {}
                Ok((strategy, Err(err), _)) => errors.push((strategy, err)),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if config.cancel.is_cancelled() {
                        cancel_both();
                    }
                }
                // Both racers reported; the scope joins them on exit.
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        (winner, errors)
    });

    config.cancel.check()?;
    if let Some((strategy, outcome, buffer)) = winner {
        let tag = match strategy {
            Strategy::DepthFirst => "df",
            _ => "bf",
        };
        buffer.replay_tagged(tag, obs);
        obs.observe(&Event::Message {
            level: Level::Info,
            text: &format!("portfolio: {strategy} won the race"),
        });
        let mut stats = outcome.stats;
        stats.strategy = Strategy::Portfolio;
        stats.runtime = started.elapsed();
        // Untagged end-of-run gauges, like every other strategy emits.
        obs.observe(&Event::GaugeSet {
            name: "check.clauses_built",
            value: stats.clauses_built as f64,
        });
        obs.observe(&Event::GaugeSet {
            name: "check.resolutions",
            value: stats.resolutions as f64,
        });
        obs.observe(&Event::GaugeSet {
            name: "check.peak_memory_bytes",
            value: stats.peak_memory_bytes as f64,
        });
        return Ok(CheckOutcome {
            core: outcome.core,
            stats,
        });
    }

    // Both racers failed. A proof defect is a stronger verdict than an
    // internal error, which in turn beats running out of budget — so
    // prefer defects, then any non-memory error.
    let pick = errors
        .iter()
        .position(|(_, e)| e.kind() == FailureKind::ProofDefect)
        .or_else(|| {
            errors
                .iter()
                .position(|(_, e)| !matches!(e, CheckError::MemoryLimitExceeded { .. }))
        })
        .unwrap_or(0);
    if errors.is_empty() {
        // Unreachable without a cancelled parent (checked above), but do
        // not panic on it.
        return Err(CheckError::Cancelled);
    }
    Err(errors.swap_remove(pick).1)
}

// ---------------------------------------------------- parallel breadth-first

/// A compact record of one pass-1-relevant event, tagged with its global
/// position in the trace so shards can be merged back into trace order.
/// Learned records keep only the source *count* — the counting itself
/// happened in the shard — so a merge moves O(1) data per event.
enum Meta {
    Learned {
        idx: u64,
        id: u64,
        num_sources: usize,
    },
    LevelZero {
        idx: u64,
        lit: Lit,
        antecedent: u64,
    },
    Final {
        idx: u64,
        id: u64,
    },
}

impl Meta {
    fn idx(&self) -> u64 {
        match *self {
            Meta::Learned { idx, .. } | Meta::LevelZero { idx, .. } | Meta::Final { idx, .. } => {
                idx
            }
        }
    }
}

/// One counting worker: drains batches, counts learned-clause sources
/// locally and keeps a [`Meta`] per event for the ordered merge. The
/// returned [`EventBuffer`] holds the worker's own metrics (batch-size
/// histogram, event-count gauge) under unprefixed names; the coordinator
/// replays it with a `check.worker.N.` prefix for attribution.
fn count_shard(
    rx: mpsc::Receiver<(u64, Vec<TraceEvent>)>,
    num_original: usize,
) -> (Vec<Meta>, FxHashMap<u64, u32>, EventBuffer, Duration) {
    let started = Instant::now();
    let mut buffer = EventBuffer::new();
    let mut metas: Vec<Meta> = Vec::new();
    let mut counts: FxHashMap<u64, u32> = FxHashMap::default();
    for (batch_start, batch) in rx {
        buffer.observe(&Event::HistRecord {
            name: "pass1.batch_events",
            value: batch.len() as u64,
        });
        for (k, event) in batch.into_iter().enumerate() {
            let idx = batch_start + k as u64;
            match event {
                TraceEvent::Learned { id, sources } => {
                    for &s in &sources {
                        if s >= num_original as u64 {
                            *counts.entry(s).or_insert(0) += 1;
                        }
                    }
                    metas.push(Meta::Learned {
                        idx,
                        id,
                        num_sources: sources.len(),
                    });
                }
                TraceEvent::LevelZero { lit, antecedent } => {
                    metas.push(Meta::LevelZero {
                        idx,
                        lit,
                        antecedent,
                    });
                }
                TraceEvent::FinalConflict { id } => metas.push(Meta::Final { idx, id }),
            }
        }
    }
    buffer.observe(&Event::GaugeSet {
        name: "pass1.events",
        value: metas.len() as f64,
    });
    (metas, counts, buffer, started.elapsed())
}

/// Pass 1 sharded across `jobs` workers fed round-robin by one reader.
///
/// The merge replays every shard's [`Meta`] records sorted by trace
/// position through the same [`Pass1Tables`] methods the sequential pass
/// calls, so a malformed trace produces the identical first error. A
/// decode error surfaces only after the records decoded before it have
/// been validated — exactly the order a sequential scan sees.
pub(crate) fn sharded_pass1<S: TraceSource + Sync + ?Sized>(
    trace: &S,
    num_original: usize,
    jobs: usize,
    cancel: &CancelFlag,
    obs: &mut dyn Observer,
) -> Result<(Pass1Tables, u64), CheckError> {
    thread::scope(|scope| -> Result<(Pass1Tables, u64), CheckError> {
        let mut txs = Vec::with_capacity(jobs);
        let mut workers = Vec::with_capacity(jobs);
        for _ in 0..jobs {
            let (tx, rx) = mpsc::sync_channel::<(u64, Vec<TraceEvent>)>(PIPELINE_DEPTH);
            txs.push(tx);
            workers.push(scope.spawn(move || count_shard(rx, num_original)));
        }
        let reader_cancel = cancel.clone();
        let reader = scope.spawn(move || -> (Option<io::Error>, EventBuffer) {
            let mut buffer = EventBuffer::new();
            let iter = match trace.events_iter() {
                Ok(iter) => iter,
                Err(e) => return (Some(e), buffer),
            };
            let mut next_idx: u64 = 0;
            let mut batch_start: u64 = 0;
            let mut batch: Vec<TraceEvent> = Vec::with_capacity(BATCH_EVENTS);
            let mut target = 0usize;
            let mut batch_began = Instant::now();
            for item in iter {
                match item {
                    Ok(event) => {
                        batch.push(event);
                        next_idx += 1;
                        if batch.len() == BATCH_EVENTS {
                            buffer.observe(&Event::HistRecord {
                                name: "check.pass1.decode_us",
                                value: batch_began.elapsed().as_micros() as u64,
                            });
                            if txs[target]
                                .send((batch_start, std::mem::take(&mut batch)))
                                .is_err()
                                || reader_cancel.is_cancelled()
                            {
                                return (None, buffer);
                            }
                            target = (target + 1) % txs.len();
                            batch_start = next_idx;
                            batch_began = Instant::now();
                        }
                    }
                    Err(e) => {
                        // Ship what decoded cleanly first, so validation
                        // errors in it keep precedence over the decode
                        // error — matching the sequential scan.
                        if !batch.is_empty() {
                            let _ = txs[target].send((batch_start, batch));
                        }
                        return (Some(e), buffer);
                    }
                }
            }
            if !batch.is_empty() {
                buffer.observe(&Event::HistRecord {
                    name: "check.pass1.decode_us",
                    value: batch_began.elapsed().as_micros() as u64,
                });
                let _ = txs[target].send((batch_start, batch));
            }
            (None, buffer)
        });

        // Join every thread *before* acting on any one failure: an
        // early return with a panicked-but-unjoined scoped thread would
        // re-panic at scope exit and abort the process instead of
        // reporting the structured internal error.
        let reader_join = reader.join();
        let worker_joins: Vec<_> = workers.into_iter().map(|w| w.join()).collect();

        let (io_err, reader_buffer) = join_or_internal("pass-1 trace reader", reader_join)?;
        reader_buffer.replay(obs);
        let mut metas: Vec<Meta> = Vec::new();
        let mut merged_counts: FxHashMap<u64, u32> = FxHashMap::default();
        for (w, joined) in worker_joins.into_iter().enumerate() {
            let (shard_metas, shard_counts, worker_buffer, wall) =
                join_or_internal(&format!("pass-1 counting worker {w}"), joined)?;
            obs.observe(&Event::GaugeSet {
                name: &format!("check.pass1.shard{w}.events"),
                value: shard_metas.len() as f64,
            });
            // Per-worker attribution: the shard's own metrics land under
            // `check.worker.N.*`, the merged wall-time histogram under a
            // single shared name.
            worker_buffer.replay_prefixed(&format!("check.worker.{w}."), obs);
            obs.observe(&Event::HistRecord {
                name: "check.pass1.worker_wall_us",
                value: wall.as_micros() as u64,
            });
            metas.extend(shard_metas);
            for (id, c) in shard_counts {
                *merged_counts.entry(id).or_insert(0) += c;
            }
        }
        cancel.check()?;

        metas.sort_unstable_by_key(Meta::idx);
        let mut tables = Pass1Tables::default();
        let mut seen: u64 = 0;
        for meta in &metas {
            seen += 1;
            if seen.is_multiple_of(crate::depth_first::PROGRESS_STRIDE) {
                cancel.check()?;
            }
            match *meta {
                Meta::Learned {
                    id, num_sources, ..
                } => tables.absorb_learned(id, num_sources, num_original)?,
                Meta::LevelZero {
                    lit, antecedent, ..
                } => tables.absorb_level_zero(lit, antecedent, num_original)?,
                Meta::Final { id, .. } => tables.absorb_final(id),
            }
        }
        if let Some(e) = io_err {
            return Err(CheckError::Trace(e));
        }
        for (id, c) in merged_counts {
            *tables.use_counts.entry(id).or_insert(0) += c;
        }
        let start_id = tables.finish(num_original)?;
        Ok((tables, start_id))
    })
}

/// One mapped-decode worker: decodes the disjoint byte range
/// `[range.start, range.end)` of the shared map straight into [`Meta`]
/// records and local use counts — no owned events and no channel, just
/// a [`SliceDecoder`] walking borrowed bytes. Event indices are global
/// (`range.first_event` plus the local position), so the coordinator's
/// merge is indistinguishable from [`count_shard`]'s output. A decode
/// error is returned with the global index it occurred at; everything
/// decoded before it is still valid prefix.
#[allow(clippy::type_complexity)]
fn decode_shard(
    bytes: &[u8],
    range: ShardRange,
    num_original: usize,
) -> (
    Vec<Meta>,
    FxHashMap<u64, u32>,
    EventBuffer,
    Duration,
    Option<(u64, io::Error)>,
) {
    let started = Instant::now();
    let mut buffer = EventBuffer::new();
    let mut metas: Vec<Meta> = Vec::new();
    let mut counts: FxHashMap<u64, u32> = FxHashMap::default();
    let mut decoder = SliceDecoder::resume_at(&bytes[..range.end], range.start);
    let mut io_err: Option<(u64, io::Error)> = None;
    let mut local: u64 = 0;
    let mut batch_events: u64 = 0;
    loop {
        let idx = range.first_event + local;
        match decoder.next_event() {
            Ok(Some(event)) => {
                match event {
                    EventRef::Learned { id, sources } => {
                        for &s in sources {
                            if s >= num_original as u64 {
                                *counts.entry(s).or_insert(0) += 1;
                            }
                        }
                        metas.push(Meta::Learned {
                            idx,
                            id,
                            num_sources: sources.len(),
                        });
                    }
                    EventRef::LevelZero { lit, antecedent } => metas.push(Meta::LevelZero {
                        idx,
                        lit,
                        antecedent,
                    }),
                    EventRef::FinalConflict { id } => metas.push(Meta::Final { idx, id }),
                }
                local += 1;
                batch_events += 1;
                if batch_events == BATCH_EVENTS as u64 {
                    buffer.observe(&Event::HistRecord {
                        name: "pass1.batch_events",
                        value: batch_events,
                    });
                    batch_events = 0;
                }
            }
            Ok(None) => break,
            Err(e) => {
                io_err = Some((idx, e));
                break;
            }
        }
    }
    if batch_events > 0 {
        buffer.observe(&Event::HistRecord {
            name: "pass1.batch_events",
            value: batch_events,
        });
    }
    buffer.observe(&Event::GaugeSet {
        name: "pass1.events",
        value: metas.len() as f64,
    });
    (metas, counts, buffer, started.elapsed(), io_err)
}

/// Pass 1 decoded in place from a shared [`TraceMap`]: the block index
/// splits the encoded bytes into per-worker shards at event-aligned
/// boundaries, every worker runs [`decode_shard`] over its own range,
/// and the compact records merge through the identical trace-order
/// replay as [`sharded_pass1`]. No event ever crosses a channel.
///
/// Error semantics match the sequential scan: should a shard hit a
/// decode error (unreachable on a cleanly indexed trace, but handled),
/// only records *before* the earliest error position are validated
/// before the error surfaces.
pub(crate) fn mapped_sharded_pass1(
    map: &TraceMap,
    index: &BlockIndex,
    num_original: usize,
    jobs: usize,
    cancel: &CancelFlag,
    obs: &mut dyn Observer,
) -> Result<(Pass1Tables, u64), CheckError> {
    let ranges = index.shard_ranges(jobs);
    obs.observe(&Event::GaugeSet {
        name: "check.pass1.shards",
        value: ranges.len() as f64,
    });
    let bytes = map.bytes();
    let joins: Vec<_> = thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| scope.spawn(move || decode_shard(bytes, range, num_original)))
            .collect();
        // Join everything before acting on any one failure, as above.
        handles.into_iter().map(|h| h.join()).collect()
    });

    let mut metas: Vec<Meta> = Vec::new();
    let mut merged_counts: FxHashMap<u64, u32> = FxHashMap::default();
    let mut io_err: Option<(u64, io::Error)> = None;
    for (w, joined) in joins.into_iter().enumerate() {
        let (shard_metas, shard_counts, worker_buffer, wall, shard_err) =
            join_or_internal(&format!("pass-1 shard decoder {w}"), joined)?;
        obs.observe(&Event::GaugeSet {
            name: &format!("check.pass1.shard{w}.events"),
            value: shard_metas.len() as f64,
        });
        worker_buffer.replay_prefixed(&format!("check.worker.{w}."), obs);
        obs.observe(&Event::HistRecord {
            name: "check.pass1.worker_wall_us",
            value: wall.as_micros() as u64,
        });
        // A mapped worker decodes and counts in one motion, so its wall
        // time *is* its decode time.
        obs.observe(&Event::HistRecord {
            name: "check.pass1.decode_us",
            value: wall.as_micros() as u64,
        });
        metas.extend(shard_metas);
        for (id, c) in shard_counts {
            *merged_counts.entry(id).or_insert(0) += c;
        }
        if let Some((at, e)) = shard_err {
            if io_err.as_ref().is_none_or(|(prev, _)| at < *prev) {
                io_err = Some((at, e));
            }
        }
    }
    cancel.check()?;

    if let Some((at, _)) = &io_err {
        metas.retain(|m| m.idx() < *at);
    }
    metas.sort_unstable_by_key(Meta::idx);
    let mut tables = Pass1Tables::default();
    let mut seen: u64 = 0;
    for meta in &metas {
        seen += 1;
        if seen.is_multiple_of(crate::depth_first::PROGRESS_STRIDE) {
            cancel.check()?;
        }
        match *meta {
            Meta::Learned {
                id, num_sources, ..
            } => tables.absorb_learned(id, num_sources, num_original)?,
            Meta::LevelZero {
                lit, antecedent, ..
            } => tables.absorb_level_zero(lit, antecedent, num_original)?,
            Meta::Final { id, .. } => tables.absorb_final(id),
        }
    }
    if let Some((_, e)) = io_err {
        return Err(CheckError::Trace(e));
    }
    for (id, c) in merged_counts {
        *tables.use_counts.entry(id).or_insert(0) += c;
    }
    let start_id = tables.finish(num_original)?;
    Ok((tables, start_id))
}

/// Decodes a mapped trace on `jobs` workers and replays every event to
/// `visit` in exact trace order.
///
/// The block index splits the bytes into `4 × jobs` chunks; workers
/// pull chunk numbers from a shared counter, decode each chunk into an
/// owned event vector, and ship it back tagged with its number. The
/// calling thread holds out-of-order arrivals in a small reorder buffer
/// and visits chunks strictly in sequence — so a visitor that builds
/// order-dependent state (the DAG build pass) sees the byte-exact
/// sequential stream while the decode work, the dominant cost of the
/// pass, runs on every worker. Dropping the receiver on a visitor error
/// unblocks the workers, and the scope joins them before returning.
pub(crate) fn mapped_visit_ordered(
    bytes: &[u8],
    index: &BlockIndex,
    jobs: usize,
    visit: &mut dyn FnMut(EventRef<'_>) -> io::Result<()>,
) -> io::Result<()> {
    let chunks = index.shard_ranges(jobs * 4);
    let total = chunks.len();
    let next = std::sync::atomic::AtomicUsize::new(0);
    thread::scope(|scope| -> io::Result<()> {
        type ChunkReport = (usize, Vec<TraceEvent>, Option<io::Error>);
        let (tx, rx) = mpsc::sync_channel::<ChunkReport>(jobs.max(1));
        for _ in 0..jobs.max(1).min(total.max(1)) {
            let tx = tx.clone();
            let next = &next;
            let chunks = &chunks;
            scope.spawn(move || loop {
                let c = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(range) = chunks.get(c) else {
                    return;
                };
                let mut events: Vec<TraceEvent> = Vec::new();
                let mut decoder = SliceDecoder::resume_at(&bytes[..range.end], range.start);
                let err = loop {
                    match decoder.next_event() {
                        Ok(Some(event)) => events.push(event.to_owned()),
                        Ok(None) => break None,
                        Err(e) => break Some(e),
                    }
                };
                let failed = err.is_some();
                if tx.send((c, events, err)).is_err() || failed {
                    return;
                }
            });
        }
        drop(tx);

        let mut pending: std::collections::BTreeMap<usize, (Vec<TraceEvent>, Option<io::Error>)> =
            std::collections::BTreeMap::new();
        let mut next_visit = 0usize;
        for (c, events, err) in rx {
            pending.insert(c, (events, err));
            while let Some((events, err)) = pending.remove(&next_visit) {
                for event in &events {
                    visit(event.as_ref())?;
                }
                if let Some(e) = err {
                    return Err(e);
                }
                next_visit += 1;
            }
            if next_visit == total {
                break;
            }
        }
        if next_visit < total {
            // Unreachable unless a decode worker died without reporting.
            return Err(io::Error::other("parallel trace decode lost a chunk"));
        }
        Ok(())
    })
}

/// Pass 2 with a reader thread decoding ahead of the resolution loop.
///
/// Resolution state stays on the calling thread; only owned event
/// batches cross the channel. Dropping the receiver on a resolution
/// error unblocks the reader, and the scope joins it before returning.
fn pipelined_pass2<S: TraceSource + Sync + ?Sized>(
    trace: &S,
    state: &mut BfResolveState<'_>,
    obs: &mut dyn Observer,
) -> Result<(), CheckError> {
    thread::scope(|scope| -> Result<(), CheckError> {
        let (tx, rx) = mpsc::sync_channel::<Result<Vec<TraceEvent>, io::Error>>(PIPELINE_DEPTH);
        let reader = scope.spawn(move || -> EventBuffer {
            let mut buffer = EventBuffer::new();
            let iter = match trace.events_iter() {
                Ok(iter) => iter,
                Err(e) => {
                    let _ = tx.send(Err(e));
                    return buffer;
                }
            };
            let mut batch: Vec<TraceEvent> = Vec::with_capacity(BATCH_EVENTS);
            let mut batch_began = Instant::now();
            for item in iter {
                match item {
                    Ok(event) => {
                        batch.push(event);
                        if batch.len() == BATCH_EVENTS {
                            buffer.observe(&Event::HistRecord {
                                name: "check.pass2.decode_us",
                                value: batch_began.elapsed().as_micros() as u64,
                            });
                            if tx.send(Ok(std::mem::take(&mut batch))).is_err() {
                                return buffer;
                            }
                            batch_began = Instant::now();
                        }
                    }
                    Err(e) => {
                        // Preserve sequential error order: everything
                        // decoded before the failure is still checked.
                        if !batch.is_empty() {
                            let _ = tx.send(Ok(std::mem::take(&mut batch)));
                        }
                        let _ = tx.send(Err(e));
                        return buffer;
                    }
                }
            }
            if !batch.is_empty() {
                buffer.observe(&Event::HistRecord {
                    name: "check.pass2.decode_us",
                    value: batch_began.elapsed().as_micros() as u64,
                });
                let _ = tx.send(Ok(batch));
            }
            buffer
        });
        // Break (not return) on any error so `rx` drops first, which
        // unblocks the reader before it is joined for its metrics.
        let mut result: Result<(), CheckError> = Ok(());
        'drain: for message in rx {
            match message {
                Ok(batch) => {
                    for event in &batch {
                        if let Err(e) = state.handle_event(event, obs) {
                            result = Err(e);
                            break 'drain;
                        }
                    }
                }
                Err(e) => {
                    result = Err(CheckError::Trace(e));
                    break 'drain;
                }
            }
        }
        match reader.join() {
            Ok(reader_buffer) => reader_buffer.replay(obs),
            Err(payload) => {
                let panic_err = CheckError::WorkerPanic {
                    what: panic_message("pass-2 trace reader", payload.as_ref()),
                };
                // A resolution error found before the panic still wins.
                result = result.and(Err(panic_err));
            }
        }
        result
    })
}

/// The parallel breadth-first checker: sharded pass 1, pipelined pass 2.
pub(crate) fn run_parallel_bf<S: RandomAccessTrace + Sync + ?Sized>(
    cnf: &Cnf,
    trace: &S,
    config: &CheckConfig,
    obs: &mut dyn Observer,
) -> Result<CheckOutcome, CheckError> {
    let started = Instant::now();
    let num_original = cnf.num_clauses();
    let jobs = effective_jobs(config.jobs);
    let map = establish_map(trace, config, obs);
    if small_trace_fallback(trace, map, config, obs) {
        // The sequential code streams through the established map but
        // does not account it, exactly like a direct `--strategy bf`
        // run — so the fallback's counters stay bit-identical to bf.
        let mut outcome = crate::breadth_first::run(cnf, trace, config, obs)?;
        outcome.stats.strategy = Strategy::ParallelBf;
        return Ok(outcome);
    }
    let mut meter = MemoryMeter::new(config.memory_limit);
    if let Some(map) = map {
        // The whole encoded trace is resident (mapped or buffered) for
        // the duration of the check; charge it under both backings so
        // the peak is independent of `--no-mmap`.
        meter.alloc(map.accounted_bytes())?;
    }

    let pass1 = Phase::start("check:pass1", obs);
    obs.observe(&Event::GaugeSet {
        name: "check.jobs",
        value: jobs as f64,
    });
    let index = map.and_then(TraceMap::block_index);
    let (tables, start_id) = match (map, index) {
        (Some(map), Some(index)) if jobs > 1 => {
            mapped_sharded_pass1(map, index, num_original, jobs, &config.cancel, obs)?
        }
        _ if jobs <= 1 => sequential_pass1(trace, num_original, &config.cancel)?,
        _ => sharded_pass1(trace, num_original, jobs, &config.cancel, obs)?,
    };
    meter.alloc(tables.resident_bytes())?;
    pass1.finish(obs);

    let resolve_phase = Phase::start("check:resolve", obs);
    let mut scratch = CheckScratch::new();
    let mut state = BfResolveState::new(cnf, tables, meter, config, &mut scratch);
    pipelined_pass2(trace, &mut state, obs)?;
    resolve_phase.finish(obs);

    state.into_outcome(
        start_id,
        Strategy::ParallelBf,
        started,
        trace.encoded_size(),
        obs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescheck_obs::NullObserver;
    use rescheck_trace::{MemorySink, TraceSink};

    /// An implication-chain instance whose proof uses each learned
    /// clause exactly once — depth-first holds everything, breadth-first
    /// holds O(1) clauses.
    fn chain(n: i64) -> (Cnf, MemorySink) {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]);
        for i in 1..n {
            cnf.add_dimacs_clause(&[-i, i + 1]);
        }
        cnf.add_dimacs_clause(&[-n]);
        let mut sink = MemorySink::new();
        let mut prev = 0u64;
        for i in 1..n {
            let next_id = (n + i) as u64;
            sink.learned(next_id, &[prev, i as u64]).unwrap();
            prev = next_id;
        }
        sink.level_zero(Lit::from_dimacs(n), prev).unwrap();
        sink.final_conflict(n as u64).unwrap();
        (cnf, sink)
    }

    #[test]
    fn portfolio_accepts_a_valid_proof() {
        let (cnf, sink) = chain(16);
        let outcome =
            run_portfolio(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap();
        assert_eq!(outcome.stats.strategy, Strategy::Portfolio);
    }

    #[test]
    fn portfolio_succeeds_where_depth_first_memory_outs() {
        let (cnf, sink) = chain(64);
        let bf_peak =
            crate::breadth_first::run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver)
                .unwrap()
                .stats
                .peak_memory_bytes;
        let df_peak =
            crate::depth_first::run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver)
                .unwrap()
                .stats
                .peak_memory_bytes;
        assert!(bf_peak < df_peak);

        // A budget breadth-first fits in but depth-first does not.
        let config = CheckConfig {
            memory_limit: Some(bf_peak),
            ..CheckConfig::default()
        };
        assert!(matches!(
            crate::depth_first::run(&cnf, &sink, &config, &mut NullObserver).unwrap_err(),
            CheckError::MemoryLimitExceeded { .. }
        ));
        let outcome = run_portfolio(&cnf, &sink, &config, &mut NullObserver).unwrap();
        assert_eq!(outcome.stats.strategy, Strategy::Portfolio);
        // Breadth-first won, so there is no core.
        assert!(outcome.core.is_none());
        assert_eq!(outcome.stats.peak_memory_bytes, bf_peak);
    }

    #[test]
    fn portfolio_reports_proof_defect_over_memory_out() {
        // An invalid resolution plus a tight budget: whichever racer
        // fails however, the reported error is the proof defect.
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1, 2]);
        cnf.add_dimacs_clause(&[3, 4]);
        let mut sink = MemorySink::new();
        sink.learned(2, &[0, 1]).unwrap();
        sink.final_conflict(2).unwrap();
        let err =
            run_portfolio(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap_err();
        assert!(matches!(err, CheckError::NotResolvable { .. }));
    }

    #[test]
    fn portfolio_respects_caller_cancellation() {
        let (cnf, sink) = chain(8);
        let config = CheckConfig {
            cancel: CancelFlag::armed(),
            ..CheckConfig::default()
        };
        config.cancel.cancel();
        let err = run_portfolio(&cnf, &sink, &config, &mut NullObserver).unwrap_err();
        assert!(matches!(err, CheckError::Cancelled));
    }

    #[test]
    fn parallel_bf_stats_match_sequential_for_every_job_count() {
        let (cnf, sink) = chain(300);
        let sequential =
            crate::breadth_first::run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver)
                .unwrap();
        for jobs in [1usize, 2, 3, 4, 7] {
            let config = CheckConfig {
                jobs,
                ..CheckConfig::default()
            };
            let parallel = run_parallel_bf(&cnf, &sink, &config, &mut NullObserver).unwrap();
            assert_eq!(parallel.stats.strategy, Strategy::ParallelBf);
            assert_eq!(
                parallel.stats.resolutions, sequential.stats.resolutions,
                "jobs={jobs}"
            );
            assert_eq!(
                parallel.stats.clauses_built, sequential.stats.clauses_built,
                "jobs={jobs}"
            );
            assert_eq!(
                parallel.stats.learned_in_trace, sequential.stats.learned_in_trace,
                "jobs={jobs}"
            );
            assert_eq!(
                parallel.stats.peak_memory_bytes, sequential.stats.peak_memory_bytes,
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn parallel_bf_attributes_metrics_per_worker() {
        let (cnf, sink) = chain(3000);
        let mut metrics = rescheck_obs::MetricsSink::new();
        let config = CheckConfig {
            jobs: 4,
            ..CheckConfig::default()
        };
        run_parallel_bf(&cnf, &sink, &config, &mut metrics).unwrap();
        let reg = metrics.registry();
        for w in 0..4 {
            assert!(
                reg.gauge(&format!("check.worker.{w}.pass1.events"))
                    .is_some(),
                "missing per-worker event gauge for worker {w}"
            );
            assert!(
                reg.histogram(&format!("check.worker.{w}.pass1.batch_events"))
                    .is_some(),
                "missing per-worker batch histogram for worker {w}"
            );
        }
        let wall = reg.histogram("check.pass1.worker_wall_us").unwrap();
        assert_eq!(wall.count(), 4, "one wall-time sample per worker");
        assert!(reg.histogram("check.pass1.decode_us").is_some());
        assert!(reg.histogram("check.pass2.decode_us").is_some());
    }

    #[test]
    fn parallel_bf_rejects_malformed_traces_like_sequential() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1, 2]);
        cnf.add_dimacs_clause(&[1, -2]);
        cnf.add_dimacs_clause(&[-1, 2]);
        cnf.add_dimacs_clause(&[-1, -2]);

        // Large enough that batches actually reach several shards.
        let build = |mutate: &dyn Fn(&mut Vec<TraceEvent>)| {
            let (big_cnf, sink) = chain(600);
            let mut events = sink.into_events();
            mutate(&mut events);
            (big_cnf, MemorySink::from(events))
        };

        type Mutation = Box<dyn Fn(&mut Vec<TraceEvent>)>;
        let cases: Vec<Mutation> = vec![
            // Duplicate learned id mid-trace.
            Box::new(|events| {
                let dup = events[100].clone();
                events.insert(400, dup);
            }),
            // Forward reference.
            Box::new(|events| {
                if let TraceEvent::Learned { sources, .. } = &mut events[10] {
                    sources[0] = 1_000_000;
                }
            }),
            // Self-referencing clause.
            Box::new(|events| {
                if let TraceEvent::Learned { id, sources } = &mut events[10] {
                    sources[0] = *id;
                }
            }),
            // Empty source list.
            Box::new(|events| {
                if let TraceEvent::Learned { sources, .. } = &mut events[10] {
                    sources.clear();
                }
            }),
        ];
        for (i, mutate) in cases.iter().enumerate() {
            let (big_cnf, sink) = build(mutate.as_ref());
            let sequential = crate::breadth_first::run(
                &big_cnf,
                &sink,
                &CheckConfig::default(),
                &mut NullObserver,
            )
            .unwrap_err();
            let config = CheckConfig {
                jobs: 4,
                ..CheckConfig::default()
            };
            let parallel =
                run_parallel_bf(&big_cnf, &sink, &config, &mut NullObserver).unwrap_err();
            assert_eq!(
                std::mem::discriminant(&parallel),
                std::mem::discriminant(&sequential),
                "case {i}: parallel {parallel:?} vs sequential {sequential:?}"
            );
        }
        let _ = cnf;
    }

    #[test]
    fn effective_jobs_resolution() {
        assert_eq!(effective_jobs(3), 3);
        assert!(effective_jobs(0) >= 1);
        assert!(effective_jobs(0) <= 8);
    }

    /// A trace source whose iterator panics after yielding a prefix of
    /// the events — the injected fault for panic-isolation tests.
    struct PanickingTrace {
        prefix: Vec<TraceEvent>,
    }

    impl TraceSource for PanickingTrace {
        fn events_iter(&self) -> io::Result<Box<dyn Iterator<Item = io::Result<TraceEvent>> + '_>> {
            let mut remaining = self.prefix.clone().into_iter();
            Ok(Box::new(std::iter::from_fn(move || {
                Some(Ok(remaining.next().expect("injected worker panic")))
            })))
        }
    }

    impl RandomAccessTrace for PanickingTrace {
        fn offset_events(&self) -> io::Result<rescheck_trace::OffsetEventsIter<'_>> {
            panic!("injected worker panic");
        }

        fn open_cursor(&self) -> io::Result<Box<dyn rescheck_trace::TraceCursor + '_>> {
            panic!("injected worker panic");
        }
    }

    fn panicking_chain_trace(n: i64, keep: usize) -> (Cnf, PanickingTrace) {
        let (cnf, sink) = chain(n);
        let mut prefix = sink.into_events();
        assert!(keep < prefix.len(), "prefix must cut the trace short");
        prefix.truncate(keep);
        (cnf, PanickingTrace { prefix })
    }

    #[test]
    fn join_or_internal_converts_panics() {
        let joined = thread::spawn(|| panic!("boom {}", 42)).join();
        match join_or_internal::<()>("test worker", joined).unwrap_err() {
            CheckError::WorkerPanic { what } => {
                assert!(what.contains("test worker"), "{what}");
                assert!(what.contains("boom 42"), "{what}");
            }
            other => panic!("unexpected error {other:?}"),
        }
        let ok = join_or_internal("test worker", thread::spawn(|| 7).join());
        assert_eq!(ok.unwrap(), 7);
    }

    #[test]
    fn parallel_bf_reports_worker_panics_as_internal_errors() {
        // The sharded pass-1 reader panics mid-stream. The process used
        // to abort on the `expect` at the join; now the whole check
        // fails with a structured internal error.
        let (cnf, trace) = panicking_chain_trace(600, 300);
        let config = CheckConfig {
            jobs: 4,
            ..CheckConfig::default()
        };
        let err = run_parallel_bf(&cnf, &trace, &config, &mut NullObserver).unwrap_err();
        assert!(matches!(err, CheckError::WorkerPanic { .. }), "{err:?}");
        assert_eq!(err.kind(), FailureKind::Internal);
    }

    #[test]
    fn parallel_dag_reports_worker_panics_as_internal_errors() {
        // Corrupt a built DAG so one node lists *itself* as a learned
        // source: its slot cannot have published when the node resolves,
        // so the slot read panics inside the resolution closure — on the
        // inline single-worker path and inside a spawned worker alike.
        // The executor must catch the unwind and surface a structured
        // internal error (exit 5 at the CLI) instead of aborting.
        for workers in [1usize, 2, 4] {
            let (cnf, sink) = chain(64);
            let (tables, start_id) = crate::breadth_first::sequential_pass1(
                &sink,
                cnf.num_clauses(),
                &CancelFlag::default(),
            )
            .unwrap();
            let mut meter = crate::memory::MemoryMeter::unlimited();
            let mut dag = crate::dag::build(
                &cnf,
                &sink,
                &tables,
                start_id,
                &mut meter,
                &CancelFlag::default(),
            )
            .unwrap();
            let (victim, slot) = dag
                .nodes
                .iter()
                .enumerate()
                .find_map(|(i, n)| {
                    (n.src_start..n.src_end)
                        .find(|&s| dag.srcs[s as usize] & crate::dag::ORIGINAL_TAG == 0)
                        .map(|s| (i as u32, s as usize))
                })
                .expect("chain nodes have learned sources");
            dag.srcs[slot] = victim;
            let err = match crate::executor::execute(
                &dag,
                workers,
                crate::memory::MemoryMeter::unlimited(),
                &CheckConfig::default(),
                &mut NullObserver,
            ) {
                Err(e) => e,
                Ok(_) => panic!("corrupted dag must fail ({workers} workers)"),
            };
            assert!(matches!(err, CheckError::WorkerPanic { .. }), "{err:?}");
            assert_eq!(err.kind(), FailureKind::Internal);
        }
    }

    /// A memory trace that claims a (tiny) encoded size, since
    /// [`MemorySink`] itself reports `None` and thus never falls back.
    struct SizedTrace(MemorySink);

    impl TraceSource for SizedTrace {
        fn events_iter(&self) -> io::Result<Box<dyn Iterator<Item = io::Result<TraceEvent>> + '_>> {
            self.0.events_iter()
        }

        fn encoded_size(&self) -> Option<u64> {
            Some(64)
        }
    }

    impl RandomAccessTrace for SizedTrace {
        fn offset_events(&self) -> io::Result<rescheck_trace::OffsetEventsIter<'_>> {
            self.0.offset_events()
        }

        fn open_cursor(&self) -> io::Result<Box<dyn rescheck_trace::TraceCursor + '_>> {
            self.0.open_cursor()
        }
    }

    #[test]
    fn parallel_strategies_fall_back_to_sequential_bf_on_tiny_traces() {
        // Below the learned-clause estimate threshold both parallel
        // strategies run the sequential breadth-first code (identical
        // verdict and counters, including the accounting model) while
        // still reporting the strategy the caller asked for.
        let (cnf, sink) = chain(32);
        let config = CheckConfig {
            jobs: 4,
            ..CheckConfig::default()
        };
        let trace = SizedTrace(sink);
        let bf = crate::breadth_first::run(&cnf, &trace, &config, &mut NullObserver).unwrap();
        let pbf = run_parallel_bf(&cnf, &trace, &config, &mut NullObserver).unwrap();
        let pdag = crate::dag::run(&cnf, &trace, &config, &mut NullObserver).unwrap();
        assert_eq!(pbf.stats.strategy, Strategy::ParallelBf);
        assert_eq!(pdag.stats.strategy, Strategy::ParallelDag);
        for o in [&pbf, &pdag] {
            assert_eq!(o.stats.clauses_built, bf.stats.clauses_built);
            assert_eq!(o.stats.resolutions, bf.stats.resolutions);
            assert_eq!(o.stats.peak_memory_bytes, bf.stats.peak_memory_bytes);
        }

        // With the threshold disabled the real parallel-dag path runs;
        // its accounting model is its own, but the verdict and work
        // counters still match.
        let config = CheckConfig {
            jobs: 4,
            parallel_min_learned: 0,
            ..CheckConfig::default()
        };
        let pdag = crate::dag::run(&cnf, &trace, &config, &mut NullObserver).unwrap();
        assert_eq!(pdag.stats.clauses_built, bf.stats.clauses_built);
        assert_eq!(pdag.stats.resolutions, bf.stats.resolutions);
    }

    #[test]
    fn portfolio_reports_worker_panics_as_internal_errors() {
        // Both racers panic inside their strategy; each catches its own
        // unwind, so the coordinator reports an internal error instead
        // of the scope re-panicking at exit.
        let (cnf, trace) = panicking_chain_trace(64, 16);
        let err =
            run_portfolio(&cnf, &trace, &CheckConfig::default(), &mut NullObserver).unwrap_err();
        assert!(matches!(err, CheckError::WorkerPanic { .. }), "{err:?}");
        assert_eq!(err.kind(), FailureKind::Internal);
    }
}
