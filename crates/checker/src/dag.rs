//! The parallel-dag checking strategy's dependency graph (pass B) and
//! its top-level driver.
//!
//! The antecedent lists of a resolve trace form a DAG, not a chain: a
//! learned clause depends only on the learned clauses it actually
//! resolves with, so independent clauses can be rebuilt concurrently.
//! This module turns the trace into a dense, index-addressed form of
//! that DAG — one node per learned clause in trace order, a flat tagged
//! source list, and CSR reverse edges — which the work-stealing executor
//! in [`crate::executor`] then schedules by in-degree.
//!
//! Everything id-shaped is resolved to a dense index *here*, once, on
//! the build pass: original antecedents become indices into a
//! pre-normalized clause table, learned antecedents become node indices.
//! The executor's hot loop therefore performs **zero hash lookups** —
//! the decisive difference from the breadth-first pass 2, which pays
//! three to four hash operations per resolve source.
//!
//! ## Error parity with breadth-first
//!
//! Pass 1 is shared verbatim ([`sequential_pass1`] / the sharded variant
//! in [`crate::parallel`]), so malformed-trace errors are identical by
//! construction. The build pass stops at the first *structurally*
//! missing source (a forward reference or an unknown clause — exactly
//! the condition under which breadth-first's pass 2 would fail), records
//! which node and step stopped it, and builds no nodes beyond. The
//! executor still resolves the stopped node's prefix first: a fold
//! failure at an earlier step of the same node outranks the structural
//! error, just as the sequential per-step loop would report it.

use crate::api::CheckConfig;
use crate::breadth_first::{sequential_pass1, Pass1Tables};
use crate::cancel::CancelFlag;
use crate::error::CheckError;
use crate::executor::ExecResult;
use crate::final_phase::{derive_empty_clause, ClauseProvider};
use crate::fxhash::FxHashMap;
use crate::memory::{clause_bytes, MemoryMeter, DAG_NODE_BYTES, DAG_SOURCE_BYTES};
use crate::model::{finish_visit, park_check_error, table_capacity_hint};
use crate::outcome::{CheckOutcome, CheckStats, Strategy};
use crate::parallel::{effective_jobs, mapped_sharded_pass1, sharded_pass1};
use crate::resolve::normalize_literals;
use rescheck_cnf::{Cnf, Lit};
use rescheck_obs::{Event, Observer, Phase};
use rescheck_trace::{BlockIndex, EventRef, RandomAccessTrace, TraceMap, TraceSource};
use std::time::Instant;

/// Tag bit marking a source entry as an index into [`Dag::originals`]
/// rather than a node index. Node counts are validated against this
/// bound during the build.
pub(crate) const ORIGINAL_TAG: u32 = 1 << 31;

/// One learned clause of the trace, in trace order.
#[derive(Clone, Copy, Debug)]
pub(crate) struct DagNode {
    /// The clause id the trace assigned.
    pub id: u64,
    /// Range into [`Dag::srcs`] holding this node's resolve sources.
    pub src_start: u32,
    /// End of the source range (exclusive).
    pub src_end: u32,
    /// Number of learned-source occurrences — the scheduling in-degree.
    pub indeg: u32,
    /// Times this clause is used as a resolve source later in the trace.
    pub use_count: u32,
    /// Whether the final derivation needs this clause kept resident.
    pub pinned: bool,
    /// Whether the resolvent is stored at all (`use_count > 0 || pinned`);
    /// a `false` here is a dead-on-arrival clause, verified then dropped.
    pub stored: bool,
}

impl DagNode {
    /// Resolution steps this node performs (chain length minus the seed).
    pub fn resolutions(&self) -> u64 {
        u64::from(self.src_end - self.src_start).saturating_sub(1)
    }
}

/// Where and why the build pass stopped early: `node`'s source at `step`
/// named a clause that can never be available. Plain data so the
/// executor can reconstruct the precise [`CheckError`] if the node's
/// prefix folds cleanly.
#[derive(Clone, Copy, Debug)]
pub(crate) struct StructuralStop {
    /// Index of the truncated node.
    pub node: u32,
    /// The missing clause id.
    pub missing: u64,
    /// `true` when `missing` is defined later in the trace (a forward
    /// reference); `false` when it is defined nowhere.
    pub forward: bool,
}

impl StructuralStop {
    /// The error breadth-first's pass 2 would report at this point.
    pub fn to_error(self, node_id: u64) -> CheckError {
        if self.forward {
            CheckError::ForwardReference {
                id: node_id,
                source: self.missing,
            }
        } else {
            CheckError::UnknownClause {
                id: self.missing,
                referenced_by: Some(node_id),
            }
        }
    }
}

/// The dense dependency graph the executor schedules.
#[derive(Default)]
pub(crate) struct Dag {
    /// Learned clauses in trace order.
    pub nodes: Vec<DagNode>,
    /// Flat tagged source lists ([`ORIGINAL_TAG`] ⇒ original index,
    /// otherwise node index), sliced per node by `src_start..src_end`.
    pub srcs: Vec<u32>,
    /// CSR offsets into [`Dag::rev_dst`], length `nodes.len() + 1`.
    pub rev_off: Vec<u32>,
    /// Reverse edges: for node `j`, the nodes whose in-degree its
    /// completion decrements (one entry per source occurrence).
    pub rev_dst: Vec<u32>,
    /// Pre-normalized original clauses, in first-reference order.
    pub originals: Vec<Box<[Lit]>>,
    /// Dense original index → trace clause id (for diagnostics).
    pub orig_ids: Vec<u64>,
    /// Original clause id → dense index into [`Dag::originals`].
    pub orig_index: FxHashMap<u64, u32>,
    /// Learned clause id → node index (final-phase lookups only; the
    /// resolution pass never consults it).
    pub id_to_node: FxHashMap<u64, u32>,
    /// Set when the build stopped at a structurally missing source.
    pub structural: Option<StructuralStop>,
}

impl Dag {
    /// The tagged source slice of `node`.
    pub fn sources(&self, node: u32) -> &[u32] {
        let n = &self.nodes[node as usize];
        &self.srcs[n.src_start as usize..n.src_end as usize]
    }

    /// The reverse-edge slice of `node`: dependents to notify when it
    /// completes.
    pub fn dependents(&self, node: u32) -> &[u32] {
        let lo = self.rev_off[node as usize] as usize;
        let hi = self.rev_off[node as usize + 1] as usize;
        &self.rev_dst[lo..hi]
    }

    /// The trace id a tagged source entry refers to.
    pub fn source_id(&self, src: u32) -> u64 {
        if src & ORIGINAL_TAG != 0 {
            self.orig_ids[(src & !ORIGINAL_TAG) as usize]
        } else {
            self.nodes[src as usize].id
        }
    }
}

/// Normalizes and interns one original clause, charging the meter once.
fn intern_original(
    dag: &mut Dag,
    cnf: &Cnf,
    id: u64,
    meter: &mut MemoryMeter,
) -> Result<u32, CheckError> {
    if let Some(&ix) = dag.orig_index.get(&id) {
        return Ok(ix);
    }
    let lits: Box<[Lit]> = normalize_literals(
        cnf.clause(id as usize)
            .expect("id < num_original")
            .iter()
            .copied(),
    )
    .into();
    meter.alloc(clause_bytes(lits.len()))?;
    let ix = dag.originals.len() as u32;
    dag.originals.push(lits);
    dag.orig_ids.push(id);
    dag.orig_index.insert(id, ix);
    Ok(ix)
}

/// Builds the dense DAG from a second streaming pass over the trace.
///
/// Original antecedents are normalized once and charged to the meter
/// up front (first-reference order, then the level-0 antecedents and
/// the start clause for the final phase); the graph metadata is charged
/// per node and per source entry. All charges depend only on the trace,
/// never on the worker count — the first half of the bit-identical
/// `peak_memory_bytes` guarantee.
#[cfg(test)]
pub(crate) fn build<S: TraceSource + ?Sized>(
    cnf: &Cnf,
    trace: &S,
    tables: &Pass1Tables,
    start_id: u64,
    meter: &mut MemoryMeter,
    cancel: &CancelFlag,
) -> Result<Dag, CheckError> {
    build_from(cnf, trace, tables, start_id, meter, cancel, None)
}

/// [`build`], with the trace decode optionally fanned out over the
/// mapped bytes: when `mapped` carries the established map, its block
/// index and a worker count above one, the event stream is produced by
/// [`crate::parallel::mapped_visit_ordered`] — `jobs` workers decode
/// disjoint chunks while this thread replays them in exact trace order
/// through the identical per-event handler. The built graph, every
/// meter charge and every error are byte-for-byte the same as the
/// streaming build's.
pub(crate) fn build_from<S: TraceSource + ?Sized>(
    cnf: &Cnf,
    trace: &S,
    tables: &Pass1Tables,
    start_id: u64,
    meter: &mut MemoryMeter,
    cancel: &CancelFlag,
    mapped: Option<(&TraceMap, &BlockIndex, usize)>,
) -> Result<Dag, CheckError> {
    let num_original = cnf.num_clauses();
    let mut dag = Dag::default();
    // A clean block index knows the exact learned-clause count; the
    // encoded size only estimates it.
    let hint = match mapped {
        Some((_, index, _)) => Some(index.learned() as usize),
        None => trace.encoded_size().map(table_capacity_hint),
    };
    if let Some(hint) = hint {
        dag.nodes.reserve(hint);
        dag.id_to_node.reserve(hint);
    }

    let mut rev_pairs: Vec<(u32, u32)> = Vec::new();
    let mut seen: u64 = 0;
    let mut parked = None;
    let mut handler = |event: EventRef<'_>| {
        let step = (|| -> Result<(), CheckError> {
            let EventRef::Learned { id, sources } = event else {
                return Ok(());
            };
            if dag.structural.is_some() {
                // Nothing past the stop can run; skip the rest cheaply.
                return Ok(());
            }
            seen += 1;
            if seen.is_multiple_of(crate::depth_first::PROGRESS_STRIDE) {
                cancel.check()?;
            }
            if dag.nodes.len() as u32 >= ORIGINAL_TAG {
                return Err(CheckError::Trace(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "trace exceeds the parallel-dag node limit (2^31 learned clauses)",
                )));
            }
            let node = dag.nodes.len() as u32;
            let src_start = dag.srcs.len() as u32;
            let mut indeg = 0u32;
            for &s in sources {
                if s < num_original as u64 {
                    let ix = intern_original(&mut dag, cnf, s, meter)?;
                    dag.srcs.push(ix | ORIGINAL_TAG);
                } else if let Some(&j) = dag.id_to_node.get(&s) {
                    dag.srcs.push(j);
                    rev_pairs.push((j, node));
                    indeg += 1;
                } else {
                    // Truncate at the first structurally missing source;
                    // the executor folds the prefix, then reports this.
                    dag.structural = Some(StructuralStop {
                        node,
                        missing: s,
                        forward: tables.defined.contains(&s),
                    });
                    break;
                }
            }
            let use_count = tables.use_counts.get(&id).copied().unwrap_or(0);
            let pinned = tables.pinned.contains(&id);
            dag.nodes.push(DagNode {
                id,
                src_start,
                src_end: dag.srcs.len() as u32,
                indeg,
                use_count,
                pinned,
                stored: dag.structural.is_none() && (use_count > 0 || pinned),
            });
            if dag.structural.is_none() {
                dag.id_to_node.insert(id, node);
            }
            Ok(())
        })();
        step.map_err(|e| park_check_error(&mut parked, e))
    };
    let result = match mapped {
        Some((map, index, jobs)) if jobs > 1 => {
            crate::parallel::mapped_visit_ordered(map.bytes(), index, jobs, &mut handler)
        }
        _ => trace.visit_events(&mut handler),
    };
    finish_visit(parked, result)?;

    // The final phase fetches the level-0 antecedents and the start
    // clause; intern the original ones now so its lookups are dense too.
    for rec in tables.level_zero.records() {
        if rec.antecedent < num_original as u64 {
            intern_original(&mut dag, cnf, rec.antecedent, meter)?;
        }
    }
    if start_id < num_original as u64 {
        intern_original(&mut dag, cnf, start_id, meter)?;
    }

    // Reverse adjacency as CSR: counting sort over the collected pairs.
    let mut counts = vec![0u32; dag.nodes.len() + 1];
    for &(j, _) in &rev_pairs {
        counts[j as usize + 1] += 1;
    }
    for i in 1..counts.len() {
        counts[i] += counts[i - 1];
    }
    dag.rev_off = counts.clone();
    dag.rev_dst = vec![0u32; rev_pairs.len()];
    let mut fill = counts;
    for &(j, dst) in &rev_pairs {
        dag.rev_dst[fill[j as usize] as usize] = dst;
        fill[j as usize] += 1;
    }

    meter.alloc(
        dag.nodes.len() as u64 * DAG_NODE_BYTES + dag.srcs.len() as u64 * DAG_SOURCE_BYTES,
    )?;
    Ok(dag)
}

/// A [`ClauseProvider`] over the built DAG and the executor's surviving
/// completion slots: originals through the dense pre-normalized table,
/// pinned learned clauses through their node slots.
struct DagProvider<'a> {
    dag: &'a Dag,
    num_original: usize,
    slots: Vec<Option<Box<[Lit]>>>,
}

impl ClauseProvider for DagProvider<'_> {
    fn clause_into(&mut self, id: u64, out: &mut Vec<Lit>) -> Result<(), CheckError> {
        let missing = |id| CheckError::UnknownClause {
            id,
            referenced_by: None,
        };
        let lits: &[Lit] = if id < self.num_original as u64 {
            match self.dag.orig_index.get(&id) {
                Some(&ix) => &self.dag.originals[ix as usize],
                None => return Err(missing(id)),
            }
        } else {
            match self
                .dag
                .id_to_node
                .get(&id)
                .and_then(|&n| self.slots[n as usize].as_deref())
            {
                Some(clause) => clause,
                None => return Err(missing(id)),
            }
        };
        out.clear();
        out.extend_from_slice(lits);
        Ok(())
    }
}

/// The parallel-dag checker: shared pass 1 (sharded when `jobs > 1`), a
/// dense dependency-graph build, the work-stealing resolution pass, and
/// the final empty-clause derivation over the surviving slots.
pub(crate) fn run<S: RandomAccessTrace + Sync + ?Sized>(
    cnf: &Cnf,
    trace: &S,
    config: &CheckConfig,
    obs: &mut dyn Observer,
) -> Result<CheckOutcome, CheckError> {
    let started = Instant::now();
    let num_original = cnf.num_clauses();
    // `--jobs` is a cap: workers beyond the machine's available cores
    // cannot raise throughput (the stats are identical either way), so
    // oversubscribed requests silently run with fewer workers.
    let jobs = effective_jobs(config.jobs).min(crate::parallel::max_useful_workers());
    let map = crate::parallel::establish_map(trace, config, obs);
    if crate::parallel::small_trace_fallback(trace, map, config, obs) {
        let mut outcome = crate::breadth_first::run(cnf, trace, config, obs)?;
        outcome.stats.strategy = Strategy::ParallelDag;
        return Ok(outcome);
    }
    let mut meter = MemoryMeter::new(config.memory_limit);
    if let Some(map) = map {
        // The encoded trace stays resident (mapped or buffered) for the
        // whole check; charging it under both backings keeps the peak
        // independent of `--no-mmap` and of the worker count.
        meter.alloc(map.accounted_bytes())?;
    }

    let pass1 = Phase::start("check:pass1", obs);
    obs.observe(&Event::GaugeSet {
        name: "check.jobs",
        value: jobs as f64,
    });
    let index = map.and_then(TraceMap::block_index);
    let (tables, start_id) = match (map, index) {
        (Some(map), Some(index)) if jobs > 1 => {
            mapped_sharded_pass1(map, index, num_original, jobs, &config.cancel, obs)?
        }
        _ if jobs <= 1 => sequential_pass1(trace, num_original, &config.cancel)?,
        _ => sharded_pass1(trace, num_original, jobs, &config.cancel, obs)?,
    };
    meter.alloc(tables.resident_bytes())?;
    pass1.finish(obs);

    let build_phase = Phase::start("check:dag-build", obs);
    let mapped = map.zip(index).map(|(m, i)| (m, i, jobs));
    let dag = build_from(
        cnf,
        trace,
        &tables,
        start_id,
        &mut meter,
        &config.cancel,
        mapped,
    )?;
    build_phase.finish(obs);

    let resolve_phase = Phase::start("check:resolve", obs);
    let ExecResult {
        meter,
        resolutions,
        clauses_built,
        slots,
    } = crate::executor::execute(&dag, jobs, meter, config, obs)?;
    resolve_phase.finish(obs);

    let final_phase = Phase::start("final-phase", obs);
    let mut provider = DagProvider {
        dag: &dag,
        num_original,
        slots,
    };
    let final_stats = derive_empty_clause(start_id, &tables.level_zero, &mut provider)?;
    final_phase.finish(obs);

    let stats = CheckStats {
        strategy: Strategy::ParallelDag,
        learned_in_trace: tables.defined.len() as u64,
        clauses_built,
        resolutions: resolutions + final_stats.resolutions,
        peak_memory_bytes: meter.peak(),
        runtime: started.elapsed(),
        trace_bytes: trace.encoded_size(),
    };
    crate::depth_first::emit_check_gauges(obs, &stats, tables.use_counts.len() as u64);
    Ok(CheckOutcome { core: None, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breadth_first::sequential_pass1;
    use rescheck_trace::{MemorySink, TraceSink};

    fn chain(n: i64) -> (Cnf, MemorySink) {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]);
        for i in 1..n {
            cnf.add_dimacs_clause(&[-i, i + 1]);
        }
        cnf.add_dimacs_clause(&[-n]);
        let mut sink = MemorySink::new();
        let mut prev = 0u64;
        for i in 1..n {
            let next_id = (n + i) as u64;
            sink.learned(next_id, &[prev, i as u64]).unwrap();
            prev = next_id;
        }
        sink.level_zero(Lit::from_dimacs(n), prev).unwrap();
        sink.final_conflict(n as u64).unwrap();
        (cnf, sink)
    }

    fn build_chain(n: i64) -> (Dag, Pass1Tables) {
        let (cnf, sink) = chain(n);
        let (tables, start_id) =
            sequential_pass1(&sink, cnf.num_clauses(), &CancelFlag::default()).unwrap();
        let mut meter = MemoryMeter::unlimited();
        let dag = build(
            &cnf,
            &sink,
            &tables,
            start_id,
            &mut meter,
            &CancelFlag::default(),
        )
        .unwrap();
        (dag, tables)
    }

    #[test]
    fn chain_trace_builds_a_path_graph() {
        let (dag, _) = build_chain(16);
        assert_eq!(dag.nodes.len(), 15);
        // First node resolves two originals: in-degree 0.
        assert_eq!(dag.nodes[0].indeg, 0);
        // Every later node depends on exactly the previous one.
        for i in 1..dag.nodes.len() {
            assert_eq!(dag.nodes[i].indeg, 1, "node {i}");
            assert_eq!(dag.dependents(i as u32 - 1), &[i as u32]);
        }
        assert!(dag.dependents(dag.nodes.len() as u32 - 1).is_empty());
        // The last node is pinned by the level-0 record; the rest are
        // used exactly once each.
        let last = dag.nodes.last().unwrap();
        assert!(last.pinned && last.stored);
        for n in &dag.nodes[..dag.nodes.len() - 1] {
            assert_eq!(n.use_count, 1);
            assert!(n.stored && !n.pinned);
        }
        assert!(dag.structural.is_none());
    }

    #[test]
    fn source_ids_round_trip_through_the_tags() {
        let (dag, _) = build_chain(8);
        // Node 0's sources are originals 0 and 1.
        let srcs = dag.sources(0);
        assert!(srcs.iter().all(|&s| s & ORIGINAL_TAG != 0));
        assert_eq!(dag.source_id(srcs[0]), 0);
        assert_eq!(dag.source_id(srcs[1]), 1);
        // Node 1's first source is node 0 (learned id 9 for n=8).
        let srcs = dag.sources(1);
        assert_eq!(srcs[0] & ORIGINAL_TAG, 0);
        assert_eq!(dag.source_id(srcs[0]), dag.nodes[0].id);
    }

    #[test]
    fn forward_reference_truncates_the_build() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1, 2]);
        cnf.add_dimacs_clause(&[1, -2]);
        cnf.add_dimacs_clause(&[-1, 2]);
        cnf.add_dimacs_clause(&[-1, -2]);
        let mut sink = MemorySink::new();
        sink.learned(4, &[0, 5]).unwrap(); // #5 not yet defined
        sink.learned(5, &[2, 3]).unwrap();
        sink.final_conflict(4).unwrap();
        let (tables, start_id) = sequential_pass1(&sink, 4, &CancelFlag::default()).unwrap();
        let mut meter = MemoryMeter::unlimited();
        let dag = build(
            &cnf,
            &sink,
            &tables,
            start_id,
            &mut meter,
            &CancelFlag::default(),
        )
        .unwrap();
        let stop = dag.structural.expect("structural stop");
        assert_eq!(stop.node, 0);
        assert_eq!(stop.missing, 5);
        assert!(stop.forward);
        // Only the truncated node exists, with its prefix of one source.
        assert_eq!(dag.nodes.len(), 1);
        assert_eq!(dag.sources(0).len(), 1);
        assert!(matches!(
            stop.to_error(dag.nodes[0].id),
            CheckError::ForwardReference { id: 4, source: 5 }
        ));
    }

    #[test]
    fn unknown_source_is_classified_as_unknown() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]);
        let mut sink = MemorySink::new();
        sink.learned(1, &[0, 42]).unwrap();
        sink.final_conflict(1).unwrap();
        let (tables, start_id) = sequential_pass1(&sink, 1, &CancelFlag::default()).unwrap();
        let mut meter = MemoryMeter::unlimited();
        let dag = build(
            &cnf,
            &sink,
            &tables,
            start_id,
            &mut meter,
            &CancelFlag::default(),
        )
        .unwrap();
        let stop = dag.structural.expect("structural stop");
        assert!(!stop.forward);
        assert!(matches!(
            stop.to_error(1),
            CheckError::UnknownClause {
                id: 42,
                referenced_by: Some(1),
            }
        ));
    }

    #[test]
    fn originals_are_interned_once_and_charged() {
        let (cnf, sink) = chain(8);
        let (tables, start_id) =
            sequential_pass1(&sink, cnf.num_clauses(), &CancelFlag::default()).unwrap();
        let mut meter = MemoryMeter::unlimited();
        let dag = build(
            &cnf,
            &sink,
            &tables,
            start_id,
            &mut meter,
            &CancelFlag::default(),
        )
        .unwrap();
        // Chain antecedents 0..8 plus the final conflict (-n) = 9
        // distinct originals; the level-0 antecedent is learned.
        assert_eq!(dag.originals.len(), 9);
        let clause_cost: u64 = dag.originals.iter().map(|c| clause_bytes(c.len())).sum();
        let meta_cost =
            dag.nodes.len() as u64 * DAG_NODE_BYTES + dag.srcs.len() as u64 * DAG_SOURCE_BYTES;
        assert_eq!(meter.current(), clause_cost + meta_cost);
    }
}
