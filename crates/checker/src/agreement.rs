//! Strategy-agreement oracle: run every checking strategy on the same
//! claim and verify they tell a consistent story.
//!
//! The paper's trust argument rests on the checker being simpler than the
//! solver — but this repo now ships *seven* strategies sharing a hot path,
//! and a bug in any one of them would silently weaken that argument. This
//! module turns the strategies against each other: on a valid trace all
//! seven must accept with class-identical statistics
//! ([`verify_valid_agreement`]); on an arbitrary — possibly corrupted —
//! trace the cross-strategy implications that hold by construction must
//! still hold ([`verify_cross_consistency`]):
//!
//! - depth-first and disk-backed depth-first are the *same traversal* and
//!   must agree bit-for-bit, down to the failure diagnostic;
//! - breadth-first and parallel breadth-first run the same per-event code
//!   path and must agree bit-for-bit;
//! - the parallel-dag executor verifies the same full set of learned
//!   clauses as breadth-first and must agree with it on the verdict and
//!   the work counters, for any worker count;
//! - hybrid verifies the same needed subset as depth-first;
//! - breadth-first validates a superset of what depth-first validates, so
//!   a breadth-first accept implies a depth-first accept;
//! - the portfolio races depth-first against breadth-first, so it accepts
//!   exactly when one of its racers does.
//!
//! Each strategy runs under [`std::panic::catch_unwind`], so a panicking
//! strategy is reported as a [`StrategyRun::Panicked`] disagreement
//! instead of tearing down the differential-fuzzing campaign driving it.

use crate::api::{check_unsat_claim, CheckConfig, Strategy};
use crate::error::{CheckError, FailureKind};
use crate::outcome::CheckOutcome;
use rescheck_cnf::Cnf;
use rescheck_trace::RandomAccessTrace;
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Every checking strategy, in the fixed order the oracle runs them.
pub const ALL_STRATEGIES: [Strategy; 7] = [
    Strategy::DepthFirst,
    Strategy::BreadthFirst,
    Strategy::Hybrid,
    Strategy::Portfolio,
    Strategy::ParallelBf,
    Strategy::DiskDepthFirst,
    Strategy::ParallelDag,
];

/// What one strategy did with the claim.
#[derive(Debug)]
pub enum StrategyRun {
    /// The strategy returned a verdict (accept or a structured error).
    Completed(Result<CheckOutcome, CheckError>),
    /// The strategy panicked; the payload's text is kept for diagnosis.
    Panicked(String),
}

impl StrategyRun {
    /// `true` when the strategy accepted the proof.
    pub fn accepted(&self) -> bool {
        matches!(self, StrategyRun::Completed(Ok(_)))
    }

    /// The successful outcome, if any.
    pub fn outcome(&self) -> Option<&CheckOutcome> {
        match self {
            StrategyRun::Completed(Ok(o)) => Some(o),
            _ => None,
        }
    }

    /// The failure classification, if the run failed.
    pub fn failure_kind(&self) -> Option<FailureKind> {
        match self {
            StrategyRun::Completed(Err(e)) => Some(e.kind()),
            _ => None,
        }
    }

    /// A one-line description of the verdict, stable for a given input —
    /// the unit the differential oracle compares and logs.
    pub fn verdict(&self) -> String {
        match self {
            StrategyRun::Completed(Ok(_)) => "valid".to_string(),
            StrategyRun::Completed(Err(e)) => format!("{}: {e}", e.kind()),
            StrategyRun::Panicked(msg) => format!("panic: {msg}"),
        }
    }
}

/// The verdict of one strategy, labelled with which strategy produced it.
#[derive(Debug)]
pub struct StrategyReport {
    /// The strategy that ran.
    pub strategy: Strategy,
    /// What it did.
    pub run: StrategyRun,
}

/// Runs all seven strategies on the same claim, capturing panics.
///
/// The strategies run sequentially in [`ALL_STRATEGIES`] order, each with
/// a fresh clone of `config`, so a cancellation or memory accounting
/// artifact of one run cannot leak into the next.
pub fn run_all_strategies<S: RandomAccessTrace + Sync + ?Sized>(
    cnf: &Cnf,
    trace: &S,
    config: &CheckConfig,
) -> Vec<StrategyReport> {
    ALL_STRATEGIES
        .iter()
        .map(|&strategy| {
            let result = catch_unwind(AssertUnwindSafe(|| {
                check_unsat_claim(cnf, trace, strategy, &config.clone())
            }));
            let run = match result {
                Ok(outcome) => StrategyRun::Completed(outcome),
                Err(payload) => StrategyRun::Panicked(panic_text(payload.as_ref())),
            };
            StrategyReport { strategy, run }
        })
        .collect()
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Two strategies told different stories about the same claim.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Disagreement {
    /// Short machine-stable label (`verdict-mismatch`, `stats-mismatch`,
    /// `panic`, `implication-violated`, `unexpected-failure-kind`).
    pub kind: &'static str,
    /// Human-readable description naming the strategies involved.
    pub detail: String,
}

impl fmt::Display for Disagreement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

impl Error for Disagreement {}

fn disagree(kind: &'static str, detail: String) -> Disagreement {
    Disagreement { kind, detail }
}

/// The numbers a fully-agreeing run settles on, for campaign logging.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AgreementSummary {
    /// Learned clauses every strategy saw in the trace.
    pub learned_in_trace: u64,
    /// Clauses the needed-subset strategies (df/hybrid/dfd) built.
    pub needed_built: u64,
    /// Resolution steps of the depth-first traversal.
    pub df_resolutions: u64,
    /// Resolution steps of the breadth-first traversal.
    pub bf_resolutions: u64,
}

fn find(reports: &[StrategyReport], strategy: Strategy) -> Option<&StrategyRun> {
    reports
        .iter()
        .find(|r| r.strategy == strategy)
        .map(|r| &r.run)
}

fn require(reports: &[StrategyReport], strategy: Strategy) -> Result<&StrategyRun, Disagreement> {
    find(reports, strategy).ok_or_else(|| {
        disagree(
            "missing-strategy",
            format!("no report for {strategy} in the oracle matrix"),
        )
    })
}

fn no_panics(reports: &[StrategyReport]) -> Result<(), Disagreement> {
    for r in reports {
        if let StrategyRun::Panicked(msg) = &r.run {
            return Err(disagree("panic", format!("{} panicked: {msg}", r.strategy)));
        }
    }
    Ok(())
}

/// One-call agreement check for a synthesized trace — the entry point
/// proof-format interop uses after ingesting a DRAT/LRAT proof: run the
/// full strategy matrix over the in-memory events and require unanimous,
/// class-consistent acceptance.
///
/// # Errors
///
/// The first [`Disagreement`] found, naming the strategies involved.
pub fn verify_synthesized_trace(
    cnf: &Cnf,
    events: &[rescheck_trace::TraceEvent],
    config: &CheckConfig,
) -> Result<AgreementSummary, Disagreement> {
    verify_valid_agreement(&run_all_strategies(cnf, events, config))
}

/// Verifies the oracle matrix of a trace that *should* be valid: every
/// strategy accepts, and the statistics agree within each equivalence
/// class (df = hybrid = dfd on the needed subset, bf = pbf = pdag on the
/// full trace, the portfolio's winner matching one of its racers).
///
/// # Errors
///
/// The first [`Disagreement`] found, naming the strategies involved.
pub fn verify_valid_agreement(
    reports: &[StrategyReport],
) -> Result<AgreementSummary, Disagreement> {
    no_panics(reports)?;
    for r in reports {
        if let StrategyRun::Completed(Err(e)) = &r.run {
            return Err(disagree(
                "verdict-mismatch",
                format!(
                    "{} rejected a trace the oracle expected to be valid: {}: {e}",
                    r.strategy,
                    e.kind()
                ),
            ));
        }
    }
    let outcome = |s: Strategy| -> Result<&CheckOutcome, Disagreement> {
        Ok(require(reports, s)?.outcome().expect("checked above"))
    };
    let df = outcome(Strategy::DepthFirst)?;
    let bf = outcome(Strategy::BreadthFirst)?;
    let hybrid = outcome(Strategy::Hybrid)?;
    let portfolio = outcome(Strategy::Portfolio)?;
    let pbf = outcome(Strategy::ParallelBf)?;
    let dfd = outcome(Strategy::DiskDepthFirst)?;
    let pdag = outcome(Strategy::ParallelDag)?;

    // Everyone parsed the same trace.
    for (name, o) in [
        ("breadth-first", bf),
        ("hybrid", hybrid),
        ("portfolio", portfolio),
        ("parallel-bf", pbf),
        ("disk-depth-first", dfd),
        ("parallel-dag", pdag),
    ] {
        if o.stats.learned_in_trace != df.stats.learned_in_trace {
            return Err(disagree(
                "stats-mismatch",
                format!(
                    "{name} saw {} learned clauses, depth-first saw {}",
                    o.stats.learned_in_trace, df.stats.learned_in_trace
                ),
            ));
        }
    }
    // Disk-backed depth-first is the same traversal as depth-first and
    // must match it bit-for-bit.
    if dfd.stats.clauses_built != df.stats.clauses_built
        || dfd.stats.resolutions != df.stats.resolutions
    {
        return Err(disagree(
            "stats-mismatch",
            format!(
                "disk-depth-first built {}/{} resolutions vs depth-first {}/{}",
                dfd.stats.clauses_built,
                dfd.stats.resolutions,
                df.stats.clauses_built,
                df.stats.resolutions
            ),
        ));
    }
    // Hybrid pins every learned level-0 antecedent up front, while
    // depth-first materialises only the ones the final derivation
    // consumes — so hybrid verifies a (possibly strict) superset of
    // df's needed clauses, and at most what breadth-first builds.
    if hybrid.stats.clauses_built < df.stats.clauses_built
        || hybrid.stats.clauses_built > bf.stats.clauses_built
        || hybrid.stats.resolutions < df.stats.resolutions
        || hybrid.stats.resolutions > bf.stats.resolutions
    {
        return Err(disagree(
            "stats-mismatch",
            format!(
                "hybrid built {}/{} resolutions outside the df..bf envelope ({}/{} .. {}/{})",
                hybrid.stats.clauses_built,
                hybrid.stats.resolutions,
                df.stats.clauses_built,
                df.stats.resolutions,
                bf.stats.clauses_built,
                bf.stats.resolutions
            ),
        ));
    }
    if dfd.core != df.core {
        return Err(disagree(
            "stats-mismatch",
            "disk-depth-first derived a different unsat core than depth-first".to_string(),
        ));
    }
    // Breadth-first builds every learned clause; its parallel variant is
    // bit-identical to it.
    if bf.stats.clauses_built != bf.stats.learned_in_trace {
        return Err(disagree(
            "stats-mismatch",
            format!(
                "breadth-first built {} of {} learned clauses (must build all)",
                bf.stats.clauses_built, bf.stats.learned_in_trace
            ),
        ));
    }
    if pbf.stats.clauses_built != bf.stats.clauses_built
        || pbf.stats.resolutions != bf.stats.resolutions
        || pbf.stats.peak_memory_bytes != bf.stats.peak_memory_bytes
    {
        return Err(disagree(
            "stats-mismatch",
            format!(
                "parallel-bf ({}/{}/{} peak) diverges from breadth-first ({}/{}/{} peak)",
                pbf.stats.clauses_built,
                pbf.stats.resolutions,
                pbf.stats.peak_memory_bytes,
                bf.stats.clauses_built,
                bf.stats.resolutions,
                bf.stats.peak_memory_bytes
            ),
        ));
    }
    // The parallel-dag executor verifies the same full set of learned
    // clauses as breadth-first (its accounting model differs, so peak
    // memory is compared across its own worker counts, not against bf).
    if pdag.stats.clauses_built != bf.stats.clauses_built
        || pdag.stats.resolutions != bf.stats.resolutions
    {
        return Err(disagree(
            "stats-mismatch",
            format!(
                "parallel-dag ({}/{}) diverges from breadth-first ({}/{})",
                pdag.stats.clauses_built,
                pdag.stats.resolutions,
                bf.stats.clauses_built,
                bf.stats.resolutions
            ),
        ));
    }
    // The portfolio's winner is one of its racers.
    if portfolio.stats.resolutions != df.stats.resolutions
        && portfolio.stats.resolutions != bf.stats.resolutions
    {
        return Err(disagree(
            "stats-mismatch",
            format!(
                "portfolio reports {} resolutions, matching neither df ({}) nor bf ({})",
                portfolio.stats.resolutions, df.stats.resolutions, bf.stats.resolutions
            ),
        ));
    }
    Ok(AgreementSummary {
        learned_in_trace: df.stats.learned_in_trace,
        needed_built: df.stats.clauses_built,
        df_resolutions: df.stats.resolutions,
        bf_resolutions: bf.stats.resolutions,
    })
}

/// Verifies the cross-strategy implications on an *arbitrary* trace —
/// the invariants that must hold whether the trace is a pristine solver
/// artifact or a deliberately corrupted mutant:
///
/// - nobody panics;
/// - under an unlimited in-memory configuration nobody fails with a
///   resource or environmental-I/O classification (callers must pass a
///   config without a memory limit, or limit breaches will be reported
///   as disagreements);
/// - depth-first and disk-backed depth-first agree bit-for-bit, down to
///   the failure diagnostic text;
/// - breadth-first, parallel breadth-first and parallel-dag agree the
///   same way;
/// - acceptance respects what each strategy verifies: a breadth-first
///   accept and a hybrid accept each imply a depth-first accept (both
///   verify a superset of depth-first's needed clauses; bf and hybrid
///   themselves are incomparable — bf alone sees defects in unneeded
///   learned clauses, hybrid alone sees dangling level-0 antecedents
///   the final derivation never consumes);
/// - the portfolio accepts exactly when depth-first or breadth-first
///   accepts.
///
/// # Errors
///
/// The first [`Disagreement`] found.
pub fn verify_cross_consistency(reports: &[StrategyReport]) -> Result<(), Disagreement> {
    no_panics(reports)?;
    for r in reports {
        if let Some(
            kind @ (FailureKind::ResourceLimit | FailureKind::Io | FailureKind::Cancelled),
        ) = r.run.failure_kind()
        {
            return Err(disagree(
                "unexpected-failure-kind",
                format!(
                    "{} failed with {kind} under an unlimited in-memory run: {}",
                    r.strategy,
                    r.run.verdict()
                ),
            ));
        }
    }
    let df = require(reports, Strategy::DepthFirst)?;
    let bf = require(reports, Strategy::BreadthFirst)?;
    let hybrid = require(reports, Strategy::Hybrid)?;
    let portfolio = require(reports, Strategy::Portfolio)?;
    let pbf = require(reports, Strategy::ParallelBf)?;
    let dfd = require(reports, Strategy::DiskDepthFirst)?;
    let pdag = require(reports, Strategy::ParallelDag)?;

    // Bit-identical pairs: same traversal ⇒ same verdict text, and on
    // accept, same work counters.
    for (a_name, a, b_name, b) in [
        ("depth-first", df, "disk-depth-first", dfd),
        ("breadth-first", bf, "parallel-bf", pbf),
        ("breadth-first", bf, "parallel-dag", pdag),
    ] {
        if a.verdict() != b.verdict() {
            return Err(disagree(
                "verdict-mismatch",
                format!(
                    "{a_name} said {:?} but {b_name} said {:?}",
                    a.verdict(),
                    b.verdict()
                ),
            ));
        }
        if let (Some(oa), Some(ob)) = (a.outcome(), b.outcome()) {
            if oa.stats.clauses_built != ob.stats.clauses_built
                || oa.stats.resolutions != ob.stats.resolutions
            {
                return Err(disagree(
                    "stats-mismatch",
                    format!(
                        "{a_name} and {b_name} accept with different work: {}/{} vs {}/{}",
                        oa.stats.clauses_built,
                        oa.stats.resolutions,
                        ob.stats.clauses_built,
                        ob.stats.resolutions
                    ),
                ));
            }
        }
    }
    // Depth-first verifies the least: the clauses reachable from the
    // final conflict plus the level-0 antecedents the final derivation
    // actually consumes. Breadth-first additionally verifies every
    // learned clause; hybrid additionally verifies every pinned level-0
    // antecedent (eagerly, including its existence). So bf-accept and
    // hybrid-accept each imply df-accept — but bf and hybrid are
    // *incomparable*: a defect in an unneeded learned clause is visible
    // only to bf, while a dangling level-0 antecedent the derivation
    // never consumes is visible only to hybrid.
    for (strong_name, strong, weak_name, weak) in [
        ("breadth-first", bf, "depth-first", df),
        ("hybrid", hybrid, "depth-first", df),
    ] {
        if strong.accepted() && !weak.accepted() {
            return Err(disagree(
                "implication-violated",
                format!(
                    "{strong_name} accepted but {weak_name} rejected: {:?}",
                    weak.verdict()
                ),
            ));
        }
    }
    // The portfolio accepts exactly when one of its racers does.
    let racer_accepts = df.accepted() || bf.accepted();
    if portfolio.accepted() != racer_accepts {
        return Err(disagree(
            "verdict-mismatch",
            format!(
                "portfolio said {:?} while df said {:?} and bf said {:?}",
                portfolio.verdict(),
                df.verdict(),
                bf.verdict()
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescheck_cnf::Lit;
    use rescheck_solver::{Solver, SolverConfig};
    use rescheck_trace::{MemorySink, TraceSink};

    fn unsat_fixture() -> (Cnf, MemorySink) {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1, 2]);
        cnf.add_dimacs_clause(&[1, -2]);
        cnf.add_dimacs_clause(&[-1, 2]);
        cnf.add_dimacs_clause(&[-1, -2]);
        let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
        let mut sink = MemorySink::new();
        assert!(solver.solve_traced(&mut sink).unwrap().is_unsat());
        (cnf, sink)
    }

    #[test]
    fn valid_trace_agrees_seven_ways() {
        let (cnf, trace) = unsat_fixture();
        let reports = run_all_strategies(&cnf, &trace, &CheckConfig::default());
        assert_eq!(reports.len(), 7);
        let summary = verify_valid_agreement(&reports).unwrap();
        assert!(summary.learned_in_trace >= summary.needed_built);
        verify_cross_consistency(&reports).unwrap();
    }

    #[test]
    fn corrupt_trace_is_consistently_rejected() {
        let (cnf, _) = unsat_fixture();
        // A dangling final-conflict reference: every strategy must
        // reject, and the pairs must reject identically.
        let mut sink = MemorySink::new();
        sink.learned(10, &[0, 1]).unwrap();
        sink.final_conflict(999).unwrap();
        let reports = run_all_strategies(&cnf, &sink, &CheckConfig::default());
        verify_cross_consistency(&reports).unwrap();
        for r in &reports {
            assert_eq!(
                r.run.failure_kind(),
                Some(FailureKind::ProofDefect),
                "{}: {}",
                r.strategy,
                r.run.verdict()
            );
        }
        let err = verify_valid_agreement(&reports).unwrap_err();
        assert_eq!(err.kind, "verdict-mismatch");
        assert!(err.to_string().contains("rejected"));
    }

    #[test]
    fn missing_level_zero_rejections_stay_consistent() {
        // A trace whose final phase needs a level-0 record that is
        // absent: the needed-subset and full-trace strategies may differ
        // in *what* they report, but the pairs must stay bit-identical
        // and the implications must hold.
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]);
        cnf.add_dimacs_clause(&[-1]);
        let mut sink = MemorySink::new();
        sink.final_conflict(1).unwrap(); // no LevelZero for x1
        let reports = run_all_strategies(&cnf, &sink, &CheckConfig::default());
        verify_cross_consistency(&reports).unwrap();
        assert!(reports.iter().all(|r| !r.run.accepted()));
    }

    #[test]
    fn verdict_strings_are_stable() {
        let run = StrategyRun::Completed(Err(CheckError::NoFinalConflict));
        assert_eq!(
            run.verdict(),
            "proof-defect: trace has no final conflicting clause record"
        );
        let ok = StrategyRun::Panicked("boom".to_string());
        assert_eq!(ok.verdict(), "panic: boom");
    }

    #[test]
    fn level_zero_helper_traces_still_agree() {
        // Trivial trace with only level-0 propagation into a conflict.
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]);
        cnf.add_dimacs_clause(&[-1]);
        let mut sink = MemorySink::new();
        sink.level_zero(Lit::from_dimacs(1), 0).unwrap();
        sink.final_conflict(1).unwrap();
        let reports = run_all_strategies(&cnf, &sink, &CheckConfig::default());
        verify_valid_agreement(&reports).unwrap();
        verify_cross_consistency(&reports).unwrap();
    }
}
