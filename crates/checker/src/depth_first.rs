//! The depth-first checking strategy (paper §3.2, Fig. 3).
//!
//! Starting from the final conflicting clause, learned clauses are built
//! by resolution *on demand*, recursively following resolve sources. Only
//! the clauses involved in the empty-clause derivation are ever
//! constructed — between 19% and 90% of the learned clauses in the
//! paper's experiments — and the original clauses touched along the way
//! form an unsatisfiable core.
//!
//! The price is memory: the whole trace plus every built clause stays
//! resident, which is why the paper's depth-first checker memory-outs on
//! the two hardest instances. The same behaviour is reproducible here via
//! [`CheckConfig::memory_limit`](crate::CheckConfig::memory_limit).
//!
//! Clause chains are resolved through the allocation-free
//! [`ResolutionKernel`] and stored in the flat [`ClauseArena`] rather
//! than as per-clause `Rc` allocations.

use crate::api::CheckConfig;
use crate::arena::ClauseArena;
use crate::cache::OriginalCache;
use crate::cancel::CancelFlag;
use crate::error::CheckError;
use crate::final_phase::{derive_empty_clause, ClauseProvider};
use crate::fxhash::FxHashSet;
use crate::kernel::{KernelStats, ResolutionKernel};
use crate::memory::MemoryMeter;
use crate::model::{load_full, FullTrace};
use crate::outcome::{CheckOutcome, CheckStats, Strategy, UnsatCore};
use crate::resolve::normalize_literals;
use crate::scratch::{kernel_stats_since, CheckScratch};
use rescheck_cnf::{Cnf, Lit};
use rescheck_obs::{Event, Observer, Phase};
use rescheck_trace::TraceSource;
use std::sync::Arc;
use std::time::Instant;

/// Progress events are emitted once per this many built clauses; the
/// reporter applies its own (coarser) heartbeat threshold on top.
pub(crate) const PROGRESS_STRIDE: u64 = 1024;

pub(crate) fn run<S: TraceSource + ?Sized>(
    cnf: &Cnf,
    trace: &S,
    config: &CheckConfig,
    obs: &mut dyn Observer,
) -> Result<CheckOutcome, CheckError> {
    let mut scratch = CheckScratch::new();
    run_scoped(cnf, trace, config, &mut scratch, obs)
}

/// [`run`] against caller-owned scratch buffers: the kernel, arena and
/// original cache come from (and survive into) a [`CheckScratch`], so a
/// long-lived service reuses their capacity across jobs instead of
/// rebuilding them per check. Accounting is unchanged — see the
/// [`scratch`](crate::scratch) module docs.
pub(crate) fn run_scoped<S: TraceSource + ?Sized>(
    cnf: &Cnf,
    trace: &S,
    config: &CheckConfig,
    scratch: &mut CheckScratch,
    obs: &mut dyn Observer,
) -> Result<CheckOutcome, CheckError> {
    let start = Instant::now();
    let num_original = cnf.num_clauses();
    let mut meter = MemoryMeter::new(config.memory_limit);

    // The depth-first approach reads the entire trace into main memory.
    let pass1 = Phase::start("check:pass1", obs);
    let full = load_full(trace, num_original, &config.cancel)?;
    meter.alloc(full.trace_bytes)?;
    pass1.finish(obs);

    let start_id = *full.final_ids.first().ok_or(CheckError::NoFinalConflict)?;

    let kernel_base = scratch.start_run(config.original_cache_bytes);
    let (kernel, arena, original_cache) = scratch.parts();
    let mut builder = DfBuilder {
        cnf,
        full: &full,
        num_original,
        arena,
        kernel,
        original_cache,
        used_originals: vec![false; num_original],
        meter,
        cancel: config.cancel.clone(),
        resolutions: 0,
        clauses_built: 0,
        obs,
    };

    // Pre-building the final conflicting clause's dependency cone is the
    // bulk of the resolution work; the remaining level-0 antecedents are
    // built lazily inside the final phase.
    let resolve_phase = Phase::start("check:resolve", &mut *builder.obs);
    builder.build(start_id)?;
    resolve_phase.finish(&mut *builder.obs);

    let final_phase = Phase::start("final-phase", &mut *builder.obs);
    let final_stats = derive_empty_clause(start_id, &full.level_zero, &mut builder)?;
    final_phase.finish(&mut *builder.obs);

    let core_ids: Vec<usize> = builder
        .used_originals
        .iter()
        .enumerate()
        .filter(|(_, &used)| used)
        .map(|(i, _)| i)
        .collect();
    let core = UnsatCore::new(core_ids, cnf);

    let stats = CheckStats {
        strategy: Strategy::DepthFirst,
        learned_in_trace: full.sources.len() as u64,
        clauses_built: builder.clauses_built,
        resolutions: builder.resolutions + final_stats.resolutions,
        peak_memory_bytes: builder.meter.peak(),
        runtime: start.elapsed(),
        trace_bytes: trace.encoded_size(),
    };
    emit_check_gauges(builder.obs, &stats, builder.arena.len() as u64);
    // Per-job deltas, so metrics stay meaningful when the kernel came
    // from a warm scratch with lifetime totals already on the clock.
    emit_kernel_gauges(
        builder.obs,
        &kernel_stats_since(&builder.kernel.stats(), &kernel_base),
        builder.arena.charged_bytes(),
        builder.arena.reuse_hits(),
    );

    Ok(CheckOutcome {
        core: Some(core),
        stats,
    })
}

/// Reports the end-of-run gauges every strategy shares.
pub(crate) fn emit_check_gauges(obs: &mut dyn Observer, stats: &CheckStats, table_entries: u64) {
    obs.observe(&Event::GaugeSet {
        name: "check.clauses_built",
        value: stats.clauses_built as f64,
    });
    obs.observe(&Event::GaugeSet {
        name: "check.resolutions",
        value: stats.resolutions as f64,
    });
    obs.observe(&Event::GaugeSet {
        name: "check.use_count_entries",
        value: table_entries as f64,
    });
    obs.observe(&Event::GaugeSet {
        name: "check.peak_memory_bytes",
        value: stats.peak_memory_bytes as f64,
    });
}

/// Reports the resolution-kernel and clause-arena gauges.
pub(crate) fn emit_kernel_gauges(
    obs: &mut dyn Observer,
    kernel: &KernelStats,
    arena_bytes: u64,
    arena_reuse_hits: u64,
) {
    obs.observe(&Event::GaugeSet {
        name: "check.kernel.chains",
        value: kernel.chains as f64,
    });
    obs.observe(&Event::GaugeSet {
        name: "check.kernel.literals_folded",
        value: kernel.literals_folded as f64,
    });
    obs.observe(&Event::GaugeSet {
        name: "check.kernel.scratch_grows",
        value: kernel.scratch_grows as f64,
    });
    obs.observe(&Event::GaugeSet {
        name: "check.kernel.scratch_high_water",
        value: kernel.scratch_high_water as f64,
    });
    obs.observe(&Event::GaugeSet {
        name: "check.arena.bytes",
        value: arena_bytes as f64,
    });
    obs.observe(&Event::GaugeSet {
        name: "check.arena.reuse_hits",
        value: arena_reuse_hits as f64,
    });
}

/// Builds learned clauses on demand with memoization (the iterative
/// equivalent of Fig. 3's `recursive_build`).
struct DfBuilder<'a> {
    cnf: &'a Cnf,
    full: &'a FullTrace,
    num_original: usize,
    /// Learned clauses built so far (borrowed from the job's scratch).
    arena: &'a mut ClauseArena,
    /// Chain resolver; scratch reused across every build.
    kernel: &'a mut ResolutionKernel,
    /// Normalized original clauses, cached on first use — charged to the
    /// meter like every other resident clause.
    original_cache: &'a mut OriginalCache,
    used_originals: Vec<bool>,
    meter: MemoryMeter,
    cancel: CancelFlag,
    resolutions: u64,
    clauses_built: u64,
    obs: &'a mut dyn Observer,
}

impl DfBuilder<'_> {
    fn original(&mut self, id: u64) -> Arc<[Lit]> {
        self.used_originals[id as usize] = true;
        if let Some(c) = self.original_cache.get(id) {
            return c;
        }
        // A warm scratch may still hold the normalized clause from the
        // previous job on this formula; promoting it re-inserts through
        // the charged path, so this job's meter pays the same bytes at
        // the same point a cold run would.
        let lits: Arc<[Lit]> = self.original_cache.take_warm(id).unwrap_or_else(|| {
            let clause = self.cnf.clause(id as usize).expect("id < num_original");
            Arc::from(normalize_literals(clause.iter().copied()))
        });
        self.original_cache.insert(id, &lits, &mut self.meter);
        lits
    }

    /// Seeds (step 0) or folds (later steps) one source clause into the
    /// kernel.
    fn feed_source(&mut self, target: u64, step: usize, source: u64) -> Result<(), CheckError> {
        if source < self.num_original as u64 {
            let clause = self.original(source);
            if step == 0 {
                self.kernel.begin(&clause);
                return Ok(());
            }
            self.kernel.fold(&clause)
        } else {
            // Split borrow: the arena slice is read while the kernel's
            // disjoint scratch buffers are written.
            let Some(clause) = self.arena.get(source) else {
                return Err(CheckError::UnknownClause {
                    id: source,
                    referenced_by: Some(target),
                });
            };
            if step == 0 {
                self.kernel.begin(clause);
                return Ok(());
            }
            self.kernel.fold(clause)
        }
        .map_err(|failure| CheckError::NotResolvable {
            target: Some(target),
            step,
            with: source,
            failure,
        })?;
        self.resolutions += 1;
        Ok(())
    }

    /// Builds one learned clause from its already-built sources.
    fn build_one(&mut self, id: u64) -> Result<(), CheckError> {
        let sources = &self.full.sources[&id];
        let chain_len = sources.len() as u64;
        for (step, &s) in sources.iter().enumerate() {
            self.feed_source(id, step, s)?;
        }
        let lits = self.kernel.finish();
        let clause_len = lits.len() as u64;
        self.arena.insert(id, lits, &mut self.meter)?;
        self.obs.observe(&Event::HistRecord {
            name: "check.resolve.chain_len",
            value: chain_len,
        });
        self.obs.observe(&Event::HistRecord {
            name: "check.resolve.clause_len",
            value: clause_len,
        });
        self.clauses_built += 1;
        if self
            .clauses_built
            .is_multiple_of(crate::depth_first::PROGRESS_STRIDE)
        {
            self.cancel.check()?;
            self.obs.observe(&Event::Progress {
                phase: "check:resolve",
                done: self.clauses_built,
                unit: "clauses",
                detail: None,
            });
        }
        Ok(())
    }

    /// Ensures clause `id` (and transitively its sources) is built.
    ///
    /// Iterative DFS over the resolve-source DAG with explicit gray
    /// marking, so deep proofs cannot overflow the native stack and
    /// cycles are detected rather than looping.
    fn build(&mut self, id: u64) -> Result<(), CheckError> {
        if id < self.num_original as u64 || self.arena.contains(id) {
            return Ok(());
        }
        let mut gray: FxHashSet<u64> = FxHashSet::default();
        let mut stack: Vec<(u64, Option<u64>)> = vec![(id, None)];
        while let Some(&(cur, parent)) = stack.last() {
            if cur < self.num_original as u64 || self.arena.contains(cur) {
                stack.pop();
                continue;
            }
            let sources = self
                .full
                .sources
                .get(&cur)
                .ok_or(CheckError::UnknownClause {
                    id: cur,
                    referenced_by: parent,
                })?;
            if gray.contains(&cur) {
                // All dependencies were pushed; if one is still gray
                // the graph has a cycle, otherwise build now.
                for &s in sources {
                    if s >= self.num_original as u64 && !self.arena.contains(s) && gray.contains(&s)
                    {
                        return Err(CheckError::CyclicProof { id: s });
                    }
                }
                self.build_one(cur)?;
                stack.pop();
            } else {
                gray.insert(cur);
                for &s in sources {
                    if s >= self.num_original as u64 && !self.arena.contains(s) {
                        if gray.contains(&s) {
                            return Err(CheckError::CyclicProof { id: s });
                        }
                        stack.push((s, Some(cur)));
                    }
                }
            }
        }
        Ok(())
    }
}

impl ClauseProvider for DfBuilder<'_> {
    fn clause_into(&mut self, id: u64, out: &mut Vec<Lit>) -> Result<(), CheckError> {
        if id < self.num_original as u64 {
            let clause = self.original(id);
            out.clear();
            out.extend_from_slice(&clause);
            return Ok(());
        }
        self.build(id)?;
        let clause = self.arena.get(id).expect("build(id) succeeded");
        out.clear();
        out.extend_from_slice(clause);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescheck_obs::NullObserver;
    use rescheck_trace::{MemorySink, TraceEvent, TraceSink};

    /// (x1)(¬x1∨x2)(¬x2): level-0 chain, conflict on clause 2 directly.
    fn chain_trace() -> (Cnf, MemorySink) {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]);
        cnf.add_dimacs_clause(&[-1, 2]);
        cnf.add_dimacs_clause(&[-2]);
        let mut sink = MemorySink::new();
        sink.level_zero(Lit::from_dimacs(1), 0).unwrap();
        sink.level_zero(Lit::from_dimacs(2), 1).unwrap();
        sink.final_conflict(2).unwrap();
        (cnf, sink)
    }

    #[test]
    fn accepts_handwritten_level_zero_proof() {
        let (cnf, sink) = chain_trace();
        let outcome = run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap();
        let core = outcome.core.unwrap();
        assert_eq!(core.clause_ids, vec![0, 1, 2]);
        assert_eq!(outcome.stats.clauses_built, 0); // no learned clauses
        assert_eq!(outcome.stats.resolutions, 2);
    }

    #[test]
    fn accepts_proof_with_learned_clause() {
        // Clauses: (1 2)(1 -2)(-1 2)(-1 -2).
        // Learned #4 = resolve(#0,#1) = (1); learned #5 = resolve(#2,#3)
        // = (-1). Level 0: x1 by #4, conflict on #5.
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1, 2]);
        cnf.add_dimacs_clause(&[1, -2]);
        cnf.add_dimacs_clause(&[-1, 2]);
        cnf.add_dimacs_clause(&[-1, -2]);
        let mut sink = MemorySink::new();
        sink.learned(4, &[0, 1]).unwrap();
        sink.learned(5, &[2, 3]).unwrap();
        sink.level_zero(Lit::from_dimacs(1), 4).unwrap();
        sink.final_conflict(5).unwrap();

        let outcome = run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap();
        assert_eq!(outcome.stats.clauses_built, 2);
        assert_eq!(outcome.stats.learned_in_trace, 2);
        let core = outcome.core.unwrap();
        assert_eq!(core.clause_ids, vec![0, 1, 2, 3]);
        assert_eq!(core.num_vars(), 2);
    }

    #[test]
    fn builds_only_needed_clauses() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]);
        cnf.add_dimacs_clause(&[-1, 2]);
        cnf.add_dimacs_clause(&[-2]);
        cnf.add_dimacs_clause(&[3, 4]);
        cnf.add_dimacs_clause(&[3, -4]);
        let mut sink = MemorySink::new();
        // An irrelevant learned clause that the proof never touches.
        sink.learned(5, &[3, 4]).unwrap();
        sink.level_zero(Lit::from_dimacs(1), 0).unwrap();
        sink.level_zero(Lit::from_dimacs(2), 1).unwrap();
        sink.final_conflict(2).unwrap();

        let outcome = run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap();
        assert_eq!(outcome.stats.clauses_built, 0);
        assert!((outcome.stats.built_percent() - 0.0).abs() < 1e-9);
        // The unused original clauses are not in the core.
        assert_eq!(outcome.core.unwrap().clause_ids, vec![0, 1, 2]);
    }

    #[test]
    fn missing_final_conflict_is_rejected() {
        let (cnf, mut sink) = chain_trace();
        let events: Vec<TraceEvent> = sink
            .events()
            .iter()
            .filter(|e| !matches!(e, TraceEvent::FinalConflict { .. }))
            .cloned()
            .collect();
        sink = events.into();
        let err = run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap_err();
        assert!(matches!(err, CheckError::NoFinalConflict));
    }

    #[test]
    fn unknown_source_is_rejected() {
        let (cnf, mut sink) = chain_trace();
        sink.learned(10, &[0, 99]).unwrap();
        sink.level_zero(Lit::from_dimacs(3), 10).unwrap();
        // Make the proof need clause 10 by pointing a var at it… easier:
        // final conflict on the unknown learned clause id directly.
        let mut events = sink.into_events();
        events.retain(|e| !matches!(e, TraceEvent::FinalConflict { .. }));
        events.push(TraceEvent::FinalConflict { id: 10 });
        let sink: MemorySink = events.into();
        let err = run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap_err();
        assert!(matches!(err, CheckError::UnknownClause { id: 99, .. }));
    }

    #[test]
    fn cyclic_proof_is_rejected() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1]);
        let mut sink = MemorySink::new();
        sink.learned(1, &[2, 0]).unwrap();
        sink.learned(2, &[1, 0]).unwrap();
        sink.final_conflict(1).unwrap();
        let err = run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap_err();
        assert!(matches!(err, CheckError::CyclicProof { .. }));
    }

    #[test]
    fn invalid_resolution_is_rejected_with_target() {
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1, 2]);
        cnf.add_dimacs_clause(&[3, 4]); // shares nothing with clause 0
        let mut sink = MemorySink::new();
        sink.learned(2, &[0, 1]).unwrap();
        sink.final_conflict(2).unwrap();
        let err = run(&cnf, &sink, &CheckConfig::default(), &mut NullObserver).unwrap_err();
        match err {
            CheckError::NotResolvable {
                target: Some(2),
                step: 1,
                with: 1,
                failure,
            } => assert!(failure.clashing_vars.is_empty()),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn memory_limit_reproduces_df_memory_out() {
        let (cnf, sink) = chain_trace();
        let config = CheckConfig {
            memory_limit: Some(1),
            ..CheckConfig::default()
        };
        let err = run(&cnf, &sink, &config, &mut NullObserver).unwrap_err();
        assert!(matches!(err, CheckError::MemoryLimitExceeded { .. }));
    }

    #[test]
    fn diamond_dependencies_are_not_a_cycle() {
        // #4 is a resolve source of both #5 and #6, which merge in #7 —
        // a diamond in the proof DAG. It must build each node once and
        // not be mistaken for a cycle.
        //
        //   #4 = r(#0,#1) = (1 3)
        //   #5 = r(#4,#2) = (1 4)
        //   #6 = r(#4,#3) = (1 -4)
        //   #7 = r(#5,#6) = (1)
        let mut cnf = Cnf::new();
        cnf.add_dimacs_clause(&[1, 2]); // 0
        cnf.add_dimacs_clause(&[-2, 3]); // 1
        cnf.add_dimacs_clause(&[-3, 4]); // 2
        cnf.add_dimacs_clause(&[-3, -4]); // 3
        let mut sink = MemorySink::new();
        sink.learned(4, &[0, 1]).unwrap();
        sink.learned(5, &[4, 2]).unwrap();
        sink.learned(6, &[4, 3]).unwrap();
        sink.learned(7, &[5, 6]).unwrap();

        let full = load_full(&sink, cnf.num_clauses(), &CancelFlag::default()).unwrap();
        let mut scratch = CheckScratch::new();
        let (kernel, arena, original_cache) = scratch.parts();
        let mut builder = DfBuilder {
            cnf: &cnf,
            full: &full,
            num_original: cnf.num_clauses(),
            arena,
            kernel,
            original_cache,
            used_originals: vec![false; cnf.num_clauses()],
            meter: MemoryMeter::unlimited(),
            cancel: CancelFlag::default(),
            resolutions: 0,
            clauses_built: 0,
            obs: &mut NullObserver,
        };
        builder.build(7).unwrap();
        assert_eq!(builder.clauses_built, 4); // each node built exactly once
        assert_eq!(
            builder.arena.get(7).unwrap(),
            normalize_literals([Lit::from_dimacs(1)]).as_slice()
        );
    }
}
