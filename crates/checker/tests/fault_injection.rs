//! Fault injection: corrupt real traces (and formulas) in targeted ways
//! and assert the checker rejects each corruption with a sensible
//! diagnostic. This is the checker's purpose — "if the solver claims that
//! the instance is unsatisfiable but the checker cannot construct an
//! empty clause, then a bug exists in the solver" (paper §1).

use rescheck_checker::{check_unsat_claim, CheckConfig, CheckError, Strategy};
use rescheck_cnf::{Cnf, Lit, Var};
use rescheck_solver::{Solver, SolverConfig};
use rescheck_trace::{MemorySink, TraceEvent, TraceSink};

fn pigeonhole(holes: usize) -> Cnf {
    let pigeons = holes + 1;
    let mut cnf = Cnf::new();
    let lit = |p: usize, h: usize| Lit::positive(Var::new(p * holes + h));
    for p in 0..pigeons {
        cnf.add_clause((0..holes).map(|h| lit(p, h)));
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                cnf.add_clause([!lit(p1, h), !lit(p2, h)]);
            }
        }
    }
    cnf
}

/// A real UNSAT instance plus its genuine trace.
fn solved_instance() -> (Cnf, Vec<TraceEvent>) {
    let cnf = pigeonhole(5);
    let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
    let mut sink = MemorySink::new();
    assert!(solver.solve_traced(&mut sink).unwrap().is_unsat());
    let events = sink.into_events();
    // The corruptions below assume a proof with learned clauses.
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::Learned { .. })));
    (cnf, events)
}

fn both_reject(cnf: &Cnf, events: &[TraceEvent], what: &str) -> Vec<CheckError> {
    [
        Strategy::DepthFirst,
        Strategy::BreadthFirst,
        Strategy::Hybrid,
    ]
    .into_iter()
    .map(|strategy| {
        check_unsat_claim(cnf, &events.to_vec(), strategy, &CheckConfig::default())
            .map(|_| ())
            .expect_err(&format!("{strategy} must reject: {what}"))
    })
    .collect()
}

#[test]
fn genuine_trace_is_accepted() {
    let (cnf, events) = solved_instance();
    for strategy in [
        Strategy::DepthFirst,
        Strategy::BreadthFirst,
        Strategy::Hybrid,
    ] {
        check_unsat_claim(&cnf, &events, strategy, &CheckConfig::default()).unwrap();
    }
}

#[test]
fn dropping_the_final_conflict_is_rejected() {
    let (cnf, mut events) = solved_instance();
    events.retain(|e| !matches!(e, TraceEvent::FinalConflict { .. }));
    for err in both_reject(&cnf, &events, "missing final conflict") {
        assert!(matches!(err, CheckError::NoFinalConflict));
    }
}

#[test]
fn dropping_a_resolve_source_is_rejected() {
    let (cnf, mut events) = solved_instance();
    // Remove one source from the middle of the first long learned clause.
    let target = events
        .iter_mut()
        .find_map(|e| match e {
            TraceEvent::Learned { sources, .. } if sources.len() >= 3 => Some(sources),
            _ => None,
        })
        .expect("a learned clause with ≥3 sources");
    target.remove(1);
    both_reject(&cnf, &events, "dropped resolve source");
}

#[test]
fn swapping_two_resolve_sources_within_a_clause_can_still_check() {
    // Folding resolution is order-sensitive in general, but adjacent
    // swaps sometimes remain valid — the point here is that the checker
    // never *wrongly errors on the genuine order*, and that, when a swap
    // breaks resolvability, it is reported as NotResolvable. We only
    // assert no panic and a deterministic verdict.
    let (cnf, mut events) = solved_instance();
    if let Some(TraceEvent::Learned { sources, .. }) = events
        .iter_mut()
        .find(|e| matches!(e, TraceEvent::Learned { sources, .. } if sources.len() >= 3))
    {
        sources.swap(1, 2);
    }
    for strategy in [
        Strategy::DepthFirst,
        Strategy::BreadthFirst,
        Strategy::Hybrid,
    ] {
        let _ = check_unsat_claim(&cnf, &events, strategy, &CheckConfig::default());
    }
}

#[test]
fn pointing_a_source_at_the_wrong_clause_is_rejected() {
    let (cnf, mut events) = solved_instance();
    if let Some(TraceEvent::Learned { sources, .. }) = events
        .iter_mut()
        .find(|e| matches!(e, TraceEvent::Learned { .. }))
    {
        // Redirect the conflicting-clause source to an unrelated original.
        sources[0] = (sources[0] + 1) % 2;
        sources[0] += 1_000_000; // definitely undefined
    }
    for err in both_reject(&cnf, &events, "wild source id") {
        assert!(matches!(
            err,
            CheckError::UnknownClause { .. } | CheckError::ForwardReference { .. }
        ));
    }
}

#[test]
fn corrupting_level_zero_antecedents_is_rejected() {
    // Corrupting a record the final derivation never touches is not an
    // observable bug (the proof is still valid), so corrupt *all* of
    // them: the derivation must stumble on the ones it does use.
    let (cnf, mut events) = solved_instance();
    let mut changed = 0;
    for e in &mut events {
        if let TraceEvent::LevelZero { antecedent, .. } = e {
            // Point the antecedent at an unrelated original clause.
            *antecedent = (*antecedent + 1) % cnf.num_clauses() as u64;
            changed += 1;
        }
    }
    assert!(changed > 0, "trace has level-zero records");
    both_reject(&cnf, &events, "wrong level-0 antecedents");
}

#[test]
fn flipping_level_zero_values_is_rejected() {
    let (cnf, mut events) = solved_instance();
    for e in &mut events {
        if let TraceEvent::LevelZero { lit, .. } = e {
            *lit = !*lit;
        }
    }
    for err in both_reject(&cnf, &events, "flipped level-0 values") {
        // The final conflicting clause's literals are no longer false.
        assert!(matches!(
            err,
            CheckError::FinalClauseNotConflicting { .. }
                | CheckError::BadAntecedent { .. }
                | CheckError::NotResolvable { .. }
        ));
    }
}

#[test]
fn truncating_the_trace_is_rejected() {
    let (cnf, events) = solved_instance();
    // Cut everything after the first half, then re-append a final
    // conflict record pointing at the old final clause.
    let final_id = events
        .iter()
        .find_map(|e| match e {
            TraceEvent::FinalConflict { id } => Some(*id),
            _ => None,
        })
        .unwrap();
    let mut truncated: Vec<TraceEvent> = events[..events.len() / 2].to_vec();
    truncated.retain(|e| !matches!(e, TraceEvent::FinalConflict { .. }));
    truncated.push(TraceEvent::FinalConflict { id: final_id });
    both_reject(&cnf, &truncated, "truncated trace");
}

#[test]
fn claiming_unsat_for_a_satisfiable_formula_is_rejected() {
    // A buggy solver claims UNSAT for a satisfiable formula by replaying
    // a structurally-valid-looking trace: the checker must not accept any
    // such trace. We fabricate the strongest attempt: resolutions that
    // are locally plausible but must break somewhere because no
    // refutation exists.
    let mut cnf = Cnf::new();
    cnf.add_dimacs_clause(&[1, 2]); // 0
    cnf.add_dimacs_clause(&[-1, 2]); // 1
    cnf.add_dimacs_clause(&[1, -2]); // 2  — satisfiable: x1=x2=true
    let mut sink = MemorySink::new();
    sink.learned(3, &[0, 1]).unwrap(); // (2)
    sink.learned(4, &[0, 2]).unwrap(); // (1)
    sink.level_zero(Lit::from_dimacs(2), 3).unwrap();
    sink.level_zero(Lit::from_dimacs(1), 4).unwrap();
    // Claim clause 2 = (1, -2) is the final conflict; its literal x1 is
    // true at level 0, so it is not conflicting.
    sink.final_conflict(2).unwrap();
    let events = sink.into_events();
    for err in both_reject(&cnf, &events, "UNSAT claim on SAT formula") {
        assert!(matches!(err, CheckError::FinalClauseNotConflicting { .. }));
    }
}

#[test]
fn solving_a_different_formula_is_rejected() {
    // Trace generated for PHP(6,5) checked against PHP(5,4): clause IDs
    // no longer line up; some step must fail.
    let (_, events) = solved_instance(); // PHP(6,5)
    let smaller = pigeonhole(4);
    for strategy in [Strategy::DepthFirst, Strategy::BreadthFirst] {
        assert!(
            check_unsat_claim(&smaller, &events, strategy, &CheckConfig::default()).is_err(),
            "{strategy} must reject a trace for a different formula"
        );
    }
}

#[test]
fn duplicated_learned_event_is_rejected() {
    let (cnf, mut events) = solved_instance();
    let dup = events
        .iter()
        .find(|e| matches!(e, TraceEvent::Learned { .. }))
        .cloned()
        .unwrap();
    events.insert(1, dup.clone());
    events.insert(1, dup);
    for err in both_reject(&cnf, &events, "duplicate learned id") {
        assert!(matches!(err, CheckError::DuplicateLearnedId { .. }));
    }
}

#[test]
fn error_messages_are_actionable() {
    // The diagnostics name the clause IDs involved (paper: "provide as
    // much information as possible about the failure").
    let (cnf, mut events) = solved_instance();
    if let Some(TraceEvent::Learned { sources, .. }) = events
        .iter_mut()
        .find(|e| matches!(e, TraceEvent::Learned { .. }))
    {
        sources[0] = 999_999_999;
    }
    let errs = both_reject(&cnf, &events, "wild id");
    for err in errs {
        let msg = err.to_string();
        assert!(msg.contains("999999999"), "diagnostic was: {msg}");
    }
}
