//! Property-based tests: over random formulas, the solver's claims always
//! survive independent validation, and the resolution engine obeys its
//! algebraic laws.

use proptest::prelude::*;
use rescheck_checker::{
    check_sat_claim, check_unsat_claim, normalize_literals, resolve_sorted, CheckConfig,
    Strategy as CheckStrategy,
};
use rescheck_cnf::{Assignment, Cnf, LBool, Lit, Var};
use rescheck_solver::{SolveResult, Solver, SolverConfig};
use rescheck_trace::MemorySink;

fn clause_strategy(max_vars: u32) -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(
        (1..=max_vars as i64).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]),
        1..5,
    )
}

fn cnf_strategy(max_vars: u32, max_clauses: usize) -> impl Strategy<Value = Cnf> {
    prop::collection::vec(clause_strategy(max_vars), 1..max_clauses).prop_map(move |clauses| {
        let mut cnf = Cnf::with_vars(max_vars as usize);
        for c in clauses {
            cnf.add_dimacs_clause(&c);
        }
        cnf
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline property: whatever the solver claims is independently
    /// validated — models satisfy, UNSAT traces check under both
    /// strategies, and the answer agrees with brute force.
    #[test]
    fn solver_claims_always_validate(cnf in cnf_strategy(8, 40)) {
        let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
        let mut trace = MemorySink::new();
        match solver.solve_traced(&mut trace).unwrap() {
            SolveResult::Satisfiable(model) => {
                prop_assert!(check_sat_claim(&cnf, &model).is_ok());
                prop_assert!(cnf.brute_force_status().is_sat());
            }
            SolveResult::Unsatisfiable => {
                prop_assert!(cnf.brute_force_status().is_unsat());
                for strategy in [
                    CheckStrategy::DepthFirst,
                    CheckStrategy::BreadthFirst,
                    CheckStrategy::Hybrid,
                ] {
                    let outcome =
                        check_unsat_claim(&cnf, &trace, strategy, &CheckConfig::default());
                    prop_assert!(outcome.is_ok(), "{strategy}: {:?}", outcome.err());
                }
            }
            SolveResult::Unknown => prop_assert!(false, "no budget configured"),
        }
    }

    /// The depth-first core is itself unsatisfiable and re-checks.
    #[test]
    fn df_core_is_unsat(cnf in cnf_strategy(7, 44)) {
        let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
        let mut trace = MemorySink::new();
        if solver.solve_traced(&mut trace).unwrap().is_unsat() {
            let outcome = check_unsat_claim(
                &cnf, &trace, CheckStrategy::DepthFirst, &CheckConfig::default(),
            ).unwrap();
            let core = outcome.core.unwrap();
            let sub = core.to_subformula(&cnf);
            prop_assert!(sub.brute_force_status().is_unsat());
        }
    }

    /// Both strategies agree on validity and on the learned-clause count.
    #[test]
    fn strategies_agree(cnf in cnf_strategy(7, 40)) {
        let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
        let mut trace = MemorySink::new();
        if solver.solve_traced(&mut trace).unwrap().is_unsat() {
            let df = check_unsat_claim(
                &cnf, &trace, CheckStrategy::DepthFirst, &CheckConfig::default()).unwrap();
            let bf = check_unsat_claim(
                &cnf, &trace, CheckStrategy::BreadthFirst, &CheckConfig::default()).unwrap();
            prop_assert_eq!(df.stats.learned_in_trace, bf.stats.learned_in_trace);
            prop_assert!(df.stats.clauses_built <= bf.stats.clauses_built);
        }
    }

    /// Solver determinism: the same seed and input give the same trace.
    #[test]
    fn solver_is_deterministic(cnf in cnf_strategy(8, 30)) {
        let run = |cnf: &Cnf| {
            let mut solver = Solver::from_cnf(cnf, SolverConfig::default());
            let mut trace = MemorySink::new();
            let result = solver.solve_traced(&mut trace).unwrap();
            (result, trace.into_events())
        };
        let (r1, t1) = run(&cnf);
        let (r2, t2) = run(&cnf);
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(t1, t2);
    }

    /// Resolution soundness: any assignment satisfying both inputs
    /// satisfies the resolvent.
    #[test]
    fn resolvent_is_implied(
        a in clause_strategy(6),
        b in clause_strategy(6),
        bits in 0u32..64,
    ) {
        let an = normalize_literals(a.iter().map(|&d| Lit::from_dimacs(d)));
        let bn = normalize_literals(b.iter().map(|&d| Lit::from_dimacs(d)));
        if let Ok(resolvent) = resolve_sorted(&an, &bn) {
            let mut assignment = Assignment::new(6);
            for i in 0..6 {
                assignment.set(Var::new(i), LBool::from(bits >> i & 1 == 1));
            }
            let sat = |lits: &[Lit]| lits.iter().any(|&l| assignment.satisfies(l));
            if sat(&an) && sat(&bn) {
                prop_assert!(
                    sat(&resolvent),
                    "resolvent {:?} not satisfied", resolvent
                );
            }
        }
    }

    /// Resolution never invents literals: the resolvent is a subset of
    /// the union of its inputs minus the clashing variable.
    #[test]
    fn resolvent_literals_come_from_inputs(
        a in clause_strategy(6),
        b in clause_strategy(6),
    ) {
        let an = normalize_literals(a.iter().map(|&d| Lit::from_dimacs(d)));
        let bn = normalize_literals(b.iter().map(|&d| Lit::from_dimacs(d)));
        if let Ok(resolvent) = resolve_sorted(&an, &bn) {
            for l in &resolvent {
                prop_assert!(an.contains(l) || bn.contains(l));
            }
            // Sorted and duplicate-free.
            prop_assert!(resolvent.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
