//! Randomized tests: over random formulas, the solver's claims always
//! survive independent validation, and the resolution engine obeys its
//! algebraic laws. Driven by the in-house [`SplitMix64`] generator
//! (seeded loops, reproducible from the printed seed); the `heavy-tests`
//! feature raises the case count.

use rescheck_checker::{
    check_sat_claim, check_unsat_claim, normalize_literals, resolve_sorted, CheckConfig,
    Strategy as CheckStrategy,
};
use rescheck_cnf::{Assignment, Cnf, LBool, Lit, SplitMix64, Var};
use rescheck_solver::{SolveResult, Solver, SolverConfig};
use rescheck_trace::MemorySink;

const CASES: u64 = if cfg!(feature = "heavy-tests") {
    512
} else {
    64
};

/// A random non-empty clause (1 to 4 literals) over `max_vars` variables.
fn random_dimacs_clause(rng: &mut SplitMix64, max_vars: u32) -> Vec<i64> {
    let len = rng.range_usize(1..5);
    (0..len)
        .map(|_| {
            let v = rng.range_u32(1..max_vars + 1) as i64;
            if rng.gen_bool(0.5) {
                v
            } else {
                -v
            }
        })
        .collect()
}

fn random_cnf(rng: &mut SplitMix64, max_vars: u32, max_clauses: u64) -> Cnf {
    let mut cnf = Cnf::with_vars(max_vars as usize);
    for _ in 0..1 + rng.below(max_clauses - 1) {
        let clause = random_dimacs_clause(rng, max_vars);
        cnf.add_dimacs_clause(&clause);
    }
    cnf
}

/// The headline property: whatever the solver claims is independently
/// validated — models satisfy, UNSAT traces check under both
/// strategies, and the answer agrees with brute force.
#[test]
fn solver_claims_always_validate() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let cnf = random_cnf(&mut rng, 8, 40);
        let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
        let mut trace = MemorySink::new();
        match solver.solve_traced(&mut trace).unwrap() {
            SolveResult::Satisfiable(model) => {
                assert!(check_sat_claim(&cnf, &model).is_ok(), "seed {seed}");
                assert!(cnf.brute_force_status().is_sat(), "seed {seed}");
            }
            SolveResult::Unsatisfiable => {
                assert!(cnf.brute_force_status().is_unsat(), "seed {seed}");
                for strategy in [
                    CheckStrategy::DepthFirst,
                    CheckStrategy::BreadthFirst,
                    CheckStrategy::Hybrid,
                ] {
                    let outcome =
                        check_unsat_claim(&cnf, &trace, strategy, &CheckConfig::default());
                    assert!(
                        outcome.is_ok(),
                        "seed {seed} {strategy}: {:?}",
                        outcome.err()
                    );
                }
            }
            SolveResult::Unknown => panic!("no budget configured (seed {seed})"),
        }
    }
}

/// The depth-first core is itself unsatisfiable and re-checks.
#[test]
fn df_core_is_unsat() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let cnf = random_cnf(&mut rng, 7, 44);
        let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
        let mut trace = MemorySink::new();
        if solver.solve_traced(&mut trace).unwrap().is_unsat() {
            let outcome = check_unsat_claim(
                &cnf,
                &trace,
                CheckStrategy::DepthFirst,
                &CheckConfig::default(),
            )
            .unwrap();
            let core = outcome.core.unwrap();
            let sub = core.to_subformula(&cnf);
            assert!(sub.brute_force_status().is_unsat(), "seed {seed}");
        }
    }
}

/// Both strategies agree on validity and on the learned-clause count.
#[test]
fn strategies_agree() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let cnf = random_cnf(&mut rng, 7, 40);
        let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
        let mut trace = MemorySink::new();
        if solver.solve_traced(&mut trace).unwrap().is_unsat() {
            let df = check_unsat_claim(
                &cnf,
                &trace,
                CheckStrategy::DepthFirst,
                &CheckConfig::default(),
            )
            .unwrap();
            let bf = check_unsat_claim(
                &cnf,
                &trace,
                CheckStrategy::BreadthFirst,
                &CheckConfig::default(),
            )
            .unwrap();
            assert_eq!(
                df.stats.learned_in_trace, bf.stats.learned_in_trace,
                "seed {seed}"
            );
            assert!(
                df.stats.clauses_built <= bf.stats.clauses_built,
                "seed {seed}"
            );
        }
    }
}

/// Solver determinism: the same seed and input give the same trace.
#[test]
fn solver_is_deterministic() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let cnf = random_cnf(&mut rng, 8, 30);
        let run = |cnf: &Cnf| {
            let mut solver = Solver::from_cnf(cnf, SolverConfig::default());
            let mut trace = MemorySink::new();
            let result = solver.solve_traced(&mut trace).unwrap();
            (result, trace.into_events())
        };
        let (r1, t1) = run(&cnf);
        let (r2, t2) = run(&cnf);
        assert_eq!(r1, r2, "seed {seed}");
        assert_eq!(t1, t2, "seed {seed}");
    }
}

/// Resolution soundness: any assignment satisfying both inputs
/// satisfies the resolvent.
#[test]
fn resolvent_is_implied() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let a = random_dimacs_clause(&mut rng, 6);
        let b = random_dimacs_clause(&mut rng, 6);
        let bits = rng.below(64);
        let an = normalize_literals(a.iter().map(|&d| Lit::from_dimacs(d)));
        let bn = normalize_literals(b.iter().map(|&d| Lit::from_dimacs(d)));
        if let Ok(resolvent) = resolve_sorted(&an, &bn) {
            let mut assignment = Assignment::new(6);
            for i in 0..6 {
                assignment.set(Var::new(i), LBool::from(bits >> i & 1 == 1));
            }
            let sat = |lits: &[Lit]| lits.iter().any(|&l| assignment.satisfies(l));
            if sat(&an) && sat(&bn) {
                assert!(
                    sat(&resolvent),
                    "seed {seed}: resolvent {resolvent:?} not satisfied"
                );
            }
        }
    }
}

/// Resolution never invents literals: the resolvent is a subset of
/// the union of its inputs minus the clashing variable.
#[test]
fn resolvent_literals_come_from_inputs() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let a = random_dimacs_clause(&mut rng, 6);
        let b = random_dimacs_clause(&mut rng, 6);
        let an = normalize_literals(a.iter().map(|&d| Lit::from_dimacs(d)));
        let bn = normalize_literals(b.iter().map(|&d| Lit::from_dimacs(d)));
        if let Ok(resolvent) = resolve_sorted(&an, &bn) {
            for l in &resolvent {
                assert!(an.contains(l) || bn.contains(l), "seed {seed}");
            }
            // Sorted and duplicate-free.
            assert!(resolvent.windows(2).all(|w| w[0] < w[1]), "seed {seed}");
        }
    }
}
