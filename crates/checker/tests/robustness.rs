//! Robustness: no input — however mangled — may panic the checker.
//! A validation tool that crashes on malformed evidence is useless, so
//! every strategy must return `Ok` or a structured `Err` on arbitrary
//! corruption of real traces and formulas.

use proptest::prelude::*;
use rescheck_checker::{
    check_unsat_claim, proof_stats, trim_trace, CheckConfig, Strategy as CheckStrategy,
};
use rescheck_cnf::{Cnf, Lit, Var};
use rescheck_solver::{Solver, SolverConfig};
use rescheck_trace::{MemorySink, TraceEvent, TraceSink};

fn pigeonhole(holes: usize) -> Cnf {
    let pigeons = holes + 1;
    let mut cnf = Cnf::new();
    let lit = |p: usize, h: usize| Lit::positive(Var::new(p * holes + h));
    for p in 0..pigeons {
        cnf.add_clause((0..holes).map(|h| lit(p, h)));
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                cnf.add_clause([!lit(p1, h), !lit(p2, h)]);
            }
        }
    }
    cnf
}

fn genuine() -> (Cnf, Vec<TraceEvent>) {
    let cnf = pigeonhole(4);
    let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
    let mut sink = MemorySink::new();
    assert!(solver.solve_traced(&mut sink).unwrap().is_unsat());
    (cnf, sink.into_events())
}

/// One structured mutation of an event stream.
#[derive(Clone, Debug)]
enum Mutation {
    DropEvent(prop::sample::Index),
    DuplicateEvent(prop::sample::Index),
    SwapEvents(prop::sample::Index, prop::sample::Index),
    PerturbId(prop::sample::Index, u64),
    PerturbSource(prop::sample::Index, prop::sample::Index, u64),
    FlipLiteral(prop::sample::Index),
    TruncateSources(prop::sample::Index),
}

fn mutation_strategy() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        any::<prop::sample::Index>().prop_map(Mutation::DropEvent),
        any::<prop::sample::Index>().prop_map(Mutation::DuplicateEvent),
        (any::<prop::sample::Index>(), any::<prop::sample::Index>())
            .prop_map(|(a, b)| Mutation::SwapEvents(a, b)),
        (any::<prop::sample::Index>(), 0u64..1_000_000)
            .prop_map(|(i, d)| Mutation::PerturbId(i, d)),
        (
            any::<prop::sample::Index>(),
            any::<prop::sample::Index>(),
            0u64..1_000_000
        )
            .prop_map(|(i, j, d)| Mutation::PerturbSource(i, j, d)),
        any::<prop::sample::Index>().prop_map(Mutation::FlipLiteral),
        any::<prop::sample::Index>().prop_map(Mutation::TruncateSources),
    ]
}

fn apply(events: &mut Vec<TraceEvent>, m: &Mutation) {
    if events.is_empty() {
        return;
    }
    match m {
        Mutation::DropEvent(i) => {
            let i = i.index(events.len());
            events.remove(i);
        }
        Mutation::DuplicateEvent(i) => {
            let i = i.index(events.len());
            let e = events[i].clone();
            events.insert(i, e);
        }
        Mutation::SwapEvents(a, b) => {
            let (a, b) = (a.index(events.len()), b.index(events.len()));
            events.swap(a, b);
        }
        Mutation::PerturbId(i, delta) => {
            let i = i.index(events.len());
            match &mut events[i] {
                TraceEvent::Learned { id, .. } | TraceEvent::FinalConflict { id } => {
                    *id = id.wrapping_add(*delta);
                }
                TraceEvent::LevelZero { antecedent, .. } => {
                    *antecedent = antecedent.wrapping_add(*delta);
                }
            }
        }
        Mutation::PerturbSource(i, j, delta) => {
            let i = i.index(events.len());
            if let TraceEvent::Learned { sources, .. } = &mut events[i] {
                let j = j.index(sources.len());
                sources[j] = sources[j].wrapping_add(*delta);
            }
        }
        Mutation::FlipLiteral(i) => {
            let i = i.index(events.len());
            if let TraceEvent::LevelZero { lit, .. } = &mut events[i] {
                *lit = !*lit;
            }
        }
        Mutation::TruncateSources(i) => {
            let i = i.index(events.len());
            if let TraceEvent::Learned { sources, .. } = &mut events[i] {
                sources.truncate(2.max(sources.len() / 2));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Apply a burst of structured mutations to a genuine trace: every
    /// strategy, the trimmer and the analyzer must return without
    /// panicking, and — crucially — if a checker still says `Ok`, the
    /// formula really is unsatisfiable (it is PHP, so that is given; the
    /// point is the no-panic and no-hang guarantee).
    #[test]
    fn mutated_traces_never_panic(
        mutations in prop::collection::vec(mutation_strategy(), 1..6),
    ) {
        let (cnf, mut events) = genuine();
        for m in &mutations {
            apply(&mut events, m);
        }
        for strategy in [
            CheckStrategy::DepthFirst,
            CheckStrategy::BreadthFirst,
            CheckStrategy::Hybrid,
        ] {
            let _ = check_unsat_claim(&cnf, &events, strategy, &CheckConfig::default());
        }
        let _ = trim_trace(&cnf, &events);
        let _ = proof_stats(&cnf, &events);
    }

    /// Checking a genuine trace against mutated *formulas* (clauses
    /// shuffled out, literals flipped) must never panic either.
    #[test]
    fn mutated_formulas_never_panic(
        drop_at in any::<prop::sample::Index>(),
        flip_at in any::<prop::sample::Index>(),
    ) {
        let (cnf, events) = genuine();
        // Drop one clause.
        let mut ids: Vec<usize> = (0..cnf.num_clauses()).collect();
        ids.remove(drop_at.index(ids.len()));
        let smaller = cnf.subformula(ids);
        for strategy in [
            CheckStrategy::DepthFirst,
            CheckStrategy::BreadthFirst,
            CheckStrategy::Hybrid,
        ] {
            let _ = check_unsat_claim(&smaller, &events, strategy, &CheckConfig::default());
        }
        // Flip one literal of one clause.
        let mut mutated = Cnf::with_vars(cnf.num_vars());
        let target = flip_at.index(cnf.num_clauses());
        for (i, clause) in cnf.iter() {
            let mut lits: Vec<Lit> = clause.iter().copied().collect();
            if i == target {
                lits[0] = !lits[0];
            }
            mutated.add_clause(lits);
        }
        for strategy in [
            CheckStrategy::DepthFirst,
            CheckStrategy::BreadthFirst,
            CheckStrategy::Hybrid,
        ] {
            let _ = check_unsat_claim(&mutated, &events, strategy, &CheckConfig::default());
        }
        let _ = trim_trace(&mutated, &events);
    }
}
