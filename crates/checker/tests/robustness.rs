//! Robustness: no input — however mangled — may panic the checker.
//! A validation tool that crashes on malformed evidence is useless, so
//! every strategy must return `Ok` or a structured `Err` on arbitrary
//! corruption of real traces and formulas. Mutations are drawn from the
//! in-house [`SplitMix64`] generator (seeded loops, reproducible from
//! the printed seed); `heavy-tests` raises the case count.

use rescheck_checker::{
    check_unsat_claim, proof_stats, trim_trace, CheckConfig, Strategy as CheckStrategy,
};
use rescheck_cnf::{Cnf, Lit, SplitMix64, Var};
use rescheck_solver::{Solver, SolverConfig};
use rescheck_trace::{MemorySink, TraceEvent};

const CASES: u64 = if cfg!(feature = "heavy-tests") {
    512
} else {
    64
};

fn pigeonhole(holes: usize) -> Cnf {
    let pigeons = holes + 1;
    let mut cnf = Cnf::new();
    let lit = |p: usize, h: usize| Lit::positive(Var::new(p * holes + h));
    for p in 0..pigeons {
        cnf.add_clause((0..holes).map(|h| lit(p, h)));
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                cnf.add_clause([!lit(p1, h), !lit(p2, h)]);
            }
        }
    }
    cnf
}

fn genuine() -> (Cnf, Vec<TraceEvent>) {
    let cnf = pigeonhole(4);
    let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
    let mut sink = MemorySink::new();
    assert!(solver.solve_traced(&mut sink).unwrap().is_unsat());
    (cnf, sink.into_events())
}

/// Applies one randomly chosen structured mutation to an event stream.
fn mutate(events: &mut Vec<TraceEvent>, rng: &mut SplitMix64) {
    if events.is_empty() {
        return;
    }
    let i = rng.range_usize(0..events.len());
    match rng.below(7) {
        // Drop an event.
        0 => {
            events.remove(i);
        }
        // Duplicate an event.
        1 => {
            let e = events[i].clone();
            events.insert(i, e);
        }
        // Swap two events.
        2 => {
            let j = rng.range_usize(0..events.len());
            events.swap(i, j);
        }
        // Perturb a clause / antecedent ID.
        3 => {
            let delta = rng.below(1_000_000);
            match &mut events[i] {
                TraceEvent::Learned { id, .. } | TraceEvent::FinalConflict { id } => {
                    *id = id.wrapping_add(delta);
                }
                TraceEvent::LevelZero { antecedent, .. } => {
                    *antecedent = antecedent.wrapping_add(delta);
                }
            }
        }
        // Perturb one source of a learned clause.
        4 => {
            let delta = rng.below(1_000_000);
            if let TraceEvent::Learned { sources, .. } = &mut events[i] {
                let j = rng.range_usize(0..sources.len());
                sources[j] = sources[j].wrapping_add(delta);
            }
        }
        // Flip a level-zero literal.
        5 => {
            if let TraceEvent::LevelZero { lit, .. } = &mut events[i] {
                *lit = !*lit;
            }
        }
        // Truncate a learned clause's source list.
        _ => {
            if let TraceEvent::Learned { sources, .. } = &mut events[i] {
                sources.truncate(2.max(sources.len() / 2));
            }
        }
    }
}

/// Apply a burst of structured mutations to a genuine trace: every
/// strategy, the trimmer and the analyzer must return without
/// panicking, and — crucially — if a checker still says `Ok`, the
/// formula really is unsatisfiable (it is PHP, so that is given; the
/// point is the no-panic and no-hang guarantee).
#[test]
fn mutated_traces_never_panic() {
    let (cnf, pristine) = genuine();
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let mut events = pristine.clone();
        for _ in 0..rng.range_usize(1..6) {
            mutate(&mut events, &mut rng);
        }
        for strategy in [
            CheckStrategy::DepthFirst,
            CheckStrategy::BreadthFirst,
            CheckStrategy::Hybrid,
        ] {
            let _ = check_unsat_claim(&cnf, &events, strategy, &CheckConfig::default());
        }
        let _ = trim_trace(&cnf, &events);
        let _ = proof_stats(&cnf, &events);
    }
}

/// Checking a genuine trace against mutated *formulas* (clauses
/// shuffled out, literals flipped) must never panic either.
#[test]
fn mutated_formulas_never_panic() {
    let (cnf, events) = genuine();
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        // Drop one clause.
        let mut ids: Vec<usize> = (0..cnf.num_clauses()).collect();
        ids.remove(rng.range_usize(0..ids.len()));
        let smaller = cnf.subformula(ids);
        for strategy in [
            CheckStrategy::DepthFirst,
            CheckStrategy::BreadthFirst,
            CheckStrategy::Hybrid,
        ] {
            let _ = check_unsat_claim(&smaller, &events, strategy, &CheckConfig::default());
        }
        // Flip one literal of one clause.
        let mut mutated = Cnf::with_vars(cnf.num_vars());
        let target = rng.range_usize(0..cnf.num_clauses());
        for (i, clause) in cnf.iter() {
            let mut lits: Vec<Lit> = clause.iter().copied().collect();
            if i == target {
                lits[0] = !lits[0];
            }
            mutated.add_clause(lits);
        }
        for strategy in [
            CheckStrategy::DepthFirst,
            CheckStrategy::BreadthFirst,
            CheckStrategy::Hybrid,
        ] {
            let _ = check_unsat_claim(&mutated, &events, strategy, &CheckConfig::default());
        }
        let _ = trim_trace(&mutated, &events);
    }
}
