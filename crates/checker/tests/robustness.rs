//! Robustness: no input — however mangled — may panic the checker.
//! A validation tool that crashes on malformed evidence is useless, so
//! every strategy must return `Ok` or a structured `Err` on arbitrary
//! corruption of real traces and formulas. Mutations are drawn from the
//! in-house [`SplitMix64`] generator (seeded loops, reproducible from
//! the printed seed); `heavy-tests` raises the case count.

use rescheck_checker::{
    check_unsat_claim, proof_stats, trim_trace, CheckConfig, Strategy as CheckStrategy,
};
use rescheck_cnf::{Cnf, Lit, SplitMix64, Var};
use rescheck_solver::{Solver, SolverConfig};
use rescheck_trace::{BinaryWriter, FileTrace, MemorySink, TraceEvent, TraceSink};

const CASES: u64 = if cfg!(feature = "heavy-tests") {
    512
} else {
    64
};

/// Every checking strategy, the parallel and disk-backed ones included:
/// anything the sequential checkers must survive, the racing portfolio,
/// the sharded breadth-first checker and the disk-backed depth-first
/// checker must survive too.
const ALL_STRATEGIES: [CheckStrategy; 6] = [
    CheckStrategy::DepthFirst,
    CheckStrategy::BreadthFirst,
    CheckStrategy::Hybrid,
    CheckStrategy::Portfolio,
    CheckStrategy::ParallelBf,
    CheckStrategy::DiskDepthFirst,
];

fn pigeonhole(holes: usize) -> Cnf {
    let pigeons = holes + 1;
    let mut cnf = Cnf::new();
    let lit = |p: usize, h: usize| Lit::positive(Var::new(p * holes + h));
    for p in 0..pigeons {
        cnf.add_clause((0..holes).map(|h| lit(p, h)));
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                cnf.add_clause([!lit(p1, h), !lit(p2, h)]);
            }
        }
    }
    cnf
}

fn genuine() -> (Cnf, Vec<TraceEvent>) {
    let cnf = pigeonhole(4);
    let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
    let mut sink = MemorySink::new();
    assert!(solver.solve_traced(&mut sink).unwrap().is_unsat());
    (cnf, sink.into_events())
}

/// Applies one randomly chosen structured mutation to an event stream.
fn mutate(events: &mut Vec<TraceEvent>, rng: &mut SplitMix64) {
    if events.is_empty() {
        return;
    }
    let i = rng.range_usize(0..events.len());
    match rng.below(7) {
        // Drop an event.
        0 => {
            events.remove(i);
        }
        // Duplicate an event.
        1 => {
            let e = events[i].clone();
            events.insert(i, e);
        }
        // Swap two events.
        2 => {
            let j = rng.range_usize(0..events.len());
            events.swap(i, j);
        }
        // Perturb a clause / antecedent ID.
        3 => {
            let delta = rng.below(1_000_000);
            match &mut events[i] {
                TraceEvent::Learned { id, .. } | TraceEvent::FinalConflict { id } => {
                    *id = id.wrapping_add(delta);
                }
                TraceEvent::LevelZero { antecedent, .. } => {
                    *antecedent = antecedent.wrapping_add(delta);
                }
            }
        }
        // Perturb one source of a learned clause.
        4 => {
            let delta = rng.below(1_000_000);
            if let TraceEvent::Learned { sources, .. } = &mut events[i] {
                let j = rng.range_usize(0..sources.len());
                sources[j] = sources[j].wrapping_add(delta);
            }
        }
        // Flip a level-zero literal.
        5 => {
            if let TraceEvent::LevelZero { lit, .. } = &mut events[i] {
                *lit = !*lit;
            }
        }
        // Truncate a learned clause's source list.
        _ => {
            if let TraceEvent::Learned { sources, .. } = &mut events[i] {
                sources.truncate(2.max(sources.len() / 2));
            }
        }
    }
}

/// Apply a burst of structured mutations to a genuine trace: every
/// strategy, the trimmer and the analyzer must return without
/// panicking, and — crucially — if a checker still says `Ok`, the
/// formula really is unsatisfiable (it is PHP, so that is given; the
/// point is the no-panic and no-hang guarantee).
#[test]
fn mutated_traces_never_panic() {
    let (cnf, pristine) = genuine();
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let mut events = pristine.clone();
        for _ in 0..rng.range_usize(1..6) {
            mutate(&mut events, &mut rng);
        }
        for strategy in ALL_STRATEGIES {
            let _ = check_unsat_claim(&cnf, &events, strategy, &CheckConfig::default());
        }
        let _ = trim_trace(&cnf, &events);
        let _ = proof_stats(&cnf, &events);
    }
}

/// Checking a genuine trace against mutated *formulas* (clauses
/// shuffled out, literals flipped) must never panic either.
#[test]
fn mutated_formulas_never_panic() {
    let (cnf, events) = genuine();
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        // Drop one clause.
        let mut ids: Vec<usize> = (0..cnf.num_clauses()).collect();
        ids.remove(rng.range_usize(0..ids.len()));
        let smaller = cnf.subformula(ids);
        for strategy in ALL_STRATEGIES {
            let _ = check_unsat_claim(&smaller, &events, strategy, &CheckConfig::default());
        }
        // Flip one literal of one clause.
        let mut mutated = Cnf::with_vars(cnf.num_vars());
        let target = rng.range_usize(0..cnf.num_clauses());
        for (i, clause) in cnf.iter() {
            let mut lits: Vec<Lit> = clause.to_vec();
            if i == target {
                lits[0] = !lits[0];
            }
            mutated.add_clause(lits);
        }
        for strategy in ALL_STRATEGIES {
            let _ = check_unsat_claim(&mutated, &events, strategy, &CheckConfig::default());
        }
        let _ = trim_trace(&mutated, &events);
    }
}

/// Crafted corruptions that must produce a structured `CheckError` from
/// *every* strategy — not an `Ok`, not a panic: bogus duplicated final
/// conflicts, self-referencing source lists and empty source lists.
#[test]
fn crafted_corruptions_are_rejected_by_every_strategy() {
    let (cnf, pristine) = genuine();
    let learned_positions: Vec<usize> = pristine
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, TraceEvent::Learned { .. }))
        .map(|(i, _)| i)
        .collect();
    assert!(!learned_positions.is_empty());

    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0x5eed_0000 + seed);
        let mut events = pristine.clone();
        let case = rng.below(3);
        match case {
            // Duplicated final conflicts naming a clause that does not
            // exist, placed ahead of the genuine one.
            0 => {
                let bogus = 1_000_000 + rng.below(1_000_000);
                let copies = 2 + rng.range_usize(0..3);
                for _ in 0..copies {
                    let at = rng.range_usize(0..events.len());
                    events.insert(at, TraceEvent::FinalConflict { id: bogus });
                }
                events.insert(0, TraceEvent::FinalConflict { id: bogus });
            }
            // A learned clause listing itself as a resolve source, made
            // the derivation root so even the needed-clauses-only
            // strategies must walk into the cycle.
            1 => {
                let at = learned_positions[rng.range_usize(0..learned_positions.len())];
                let mut self_ref = 0;
                if let TraceEvent::Learned { id, sources } = &mut events[at] {
                    let k = rng.range_usize(0..sources.len());
                    sources[k] = *id;
                    self_ref = *id;
                }
                events.insert(0, TraceEvent::FinalConflict { id: self_ref });
            }
            // A learned clause with no sources at all.
            _ => {
                let at = learned_positions[rng.range_usize(0..learned_positions.len())];
                if let TraceEvent::Learned { sources, .. } = &mut events[at] {
                    sources.clear();
                }
            }
        }
        for strategy in ALL_STRATEGIES {
            let result = check_unsat_claim(&cnf, &events, strategy, &CheckConfig::default());
            assert!(
                result.is_err(),
                "seed {seed} case {case}: {strategy} accepted a corrupted trace"
            );
        }
    }
}

/// Binary traces cut off mid-varint (or mid-event) must surface as a
/// `CheckError` from every strategy, including through the parallel
/// readers that decode on separate threads.
#[test]
fn truncated_binary_traces_are_rejected_by_every_strategy() {
    let (cnf, events) = genuine();
    let mut encoded: Vec<u8> = Vec::new();
    {
        let mut writer = BinaryWriter::new(&mut encoded).unwrap();
        for e in &events {
            writer.event(e).unwrap();
        }
    }
    let cases: u64 = if cfg!(feature = "heavy-tests") {
        64
    } else {
        12
    };
    let dir = std::env::temp_dir();
    for seed in 0..cases {
        let mut rng = SplitMix64::new(0x7a11_0000 + seed);
        // Keep the magic header; drop at least one trailing byte.
        let cut = rng.range_usize(5..encoded.len());
        let path = dir.join(format!(
            "rescheck-robustness-{}-{seed}.rt",
            std::process::id()
        ));
        std::fs::write(&path, &encoded[..cut]).unwrap();
        let trace = FileTrace::open(&path).unwrap();
        for strategy in ALL_STRATEGIES {
            let result = check_unsat_claim(&cnf, &trace, strategy, &CheckConfig::default());
            assert!(
                result.is_err(),
                "seed {seed} cut {cut}: {strategy} accepted a truncated binary trace"
            );
        }
        std::fs::remove_file(&path).ok();
    }
}

/// Repeated portfolio runs must not accumulate threads: the scoped
/// racers are joined before `check_unsat_claim` returns, winner and
/// cancelled loser alike. Best-effort (needs procfs); a systematic leak
/// of two racers per call would trip the slack immediately.
#[test]
fn portfolio_cancellation_leaks_no_threads() {
    let thread_count = || -> Option<usize> {
        std::fs::read_to_string("/proc/self/status")
            .ok()?
            .lines()
            .find(|l| l.starts_with("Threads:"))?
            .split_whitespace()
            .nth(1)?
            .parse()
            .ok()
    };
    let (cnf, events) = genuine();
    let Some(before) = thread_count() else {
        return;
    };
    let runs = 16;
    for _ in 0..runs {
        check_unsat_claim(
            &cnf,
            &events,
            CheckStrategy::Portfolio,
            &CheckConfig::default(),
        )
        .unwrap();
    }
    let after = thread_count().unwrap();
    // 2 racers per run would mean +32 on a leak; allow noise from
    // concurrently running tests.
    assert!(
        after < before + runs,
        "portfolio leaked threads: {before} -> {after}"
    );
}
