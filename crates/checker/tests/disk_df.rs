//! Acceptance tests for the disk-backed depth-first strategy: on a trace
//! whose residency dominates the in-memory depth-first peak, `dfd` must
//! finish under a memory limit that makes `df` fail, while reproducing
//! `df`'s resolution statistics and unsat core bit for bit.

use rescheck_checker::{
    check_depth_first, check_disk_depth_first, CheckConfig, CheckError, CheckOutcome,
};
use rescheck_cnf::{Cnf, Lit};
use rescheck_trace::{BinaryWriter, FileTrace, MemorySink, TraceSink};

/// A long implication chain: `n` original clauses and `n - 1` learned
/// clauses, every one of them on the proof path, each with exactly two
/// resolve sources. In-memory depth-first keeps all `n - 1` source lists
/// resident (40 accounted bytes each); the disk-backed walk keeps a
/// 16-byte index entry instead.
fn chain(n: i64) -> (Cnf, MemorySink) {
    let mut cnf = Cnf::new();
    cnf.add_dimacs_clause(&[1]); // 0: (x1)
    for i in 1..n {
        cnf.add_dimacs_clause(&[-i, i + 1]); // i: xi → xi+1
    }
    cnf.add_dimacs_clause(&[-n]); // n: (¬xn)
    let mut sink = MemorySink::new();
    let mut prev = 0u64;
    for i in 1..n {
        let next_id = (n + i) as u64;
        sink.learned(next_id, &[prev, i as u64]).unwrap();
        prev = next_id;
    }
    sink.level_zero(Lit::from_dimacs(n), prev).unwrap();
    sink.final_conflict(n as u64).unwrap();
    (cnf, sink)
}

/// Writes the trace to a binary file so the disk-backed strategy
/// exercises the real seek-and-decode cursor path.
fn write_binary(sink: &MemorySink, name: &str) -> FileTrace {
    let dir = std::env::temp_dir().join("rescheck-disk-df");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}-{}.rt", std::process::id()));
    let file = std::fs::File::create(&path).unwrap();
    let mut writer = BinaryWriter::new(std::io::BufWriter::new(file)).unwrap();
    for event in sink.events() {
        writer.event(event).unwrap();
    }
    writer.flush().unwrap();
    FileTrace::open(&path).unwrap()
}

fn assert_same_proof(dfd: &CheckOutcome, df: &CheckOutcome) {
    assert_eq!(dfd.stats.clauses_built, df.stats.clauses_built);
    assert_eq!(dfd.stats.resolutions, df.stats.resolutions);
    assert_eq!(dfd.stats.learned_in_trace, df.stats.learned_in_trace);
    assert_eq!(
        dfd.core.as_ref().map(|c| &c.clause_ids),
        df.core.as_ref().map(|c| &c.clause_ids),
        "unsat cores differ"
    );
}

#[test]
fn completes_under_a_limit_that_memory_outs_depth_first() {
    let (cnf, sink) = chain(512);
    let trace = write_binary(&sink, "chain512");

    // Establish both unlimited peaks. The source cache is disabled so the
    // disk-backed peak is exactly its mandatory structures (index + arena
    // + level-0 + originals) and the midpoint limit below is meaningful.
    let no_cache = CheckConfig {
        source_cache_bytes: Some(0),
        ..CheckConfig::default()
    };
    let df = check_depth_first(&cnf, &trace, &CheckConfig::default()).unwrap();
    let dfd = check_disk_depth_first(&cnf, &trace, &no_cache).unwrap();
    assert_same_proof(&dfd, &df);
    assert!(
        dfd.stats.peak_memory_bytes < df.stats.peak_memory_bytes,
        "disk-backed peak {} must undercut in-memory peak {}",
        dfd.stats.peak_memory_bytes,
        df.stats.peak_memory_bytes
    );

    // A budget between the two peaks: in-memory depth-first memory-outs,
    // the disk-backed walk completes with the identical proof.
    let limit = (dfd.stats.peak_memory_bytes + df.stats.peak_memory_bytes) / 2;
    let limited = CheckConfig {
        memory_limit: Some(limit),
        source_cache_bytes: Some(0),
        ..CheckConfig::default()
    };
    let df_err = check_depth_first(&cnf, &trace, &limited).unwrap_err();
    assert!(
        matches!(df_err, CheckError::MemoryLimitExceeded { .. }),
        "expected a memory-out, got {df_err:?}"
    );
    let dfd_limited = check_disk_depth_first(&cnf, &trace, &limited).unwrap();
    assert_same_proof(&dfd_limited, &df);
    assert!(dfd_limited.stats.peak_memory_bytes <= limit);
}

#[test]
fn source_cache_does_not_change_the_proof() {
    let (cnf, sink) = chain(128);
    let trace = write_binary(&sink, "chain128");
    let df = check_depth_first(&cnf, &trace, &CheckConfig::default()).unwrap();
    for cache_bytes in [Some(0), Some(1 << 10), None] {
        let config = CheckConfig {
            source_cache_bytes: cache_bytes,
            ..CheckConfig::default()
        };
        let dfd = check_disk_depth_first(&cnf, &trace, &config).unwrap();
        assert_same_proof(&dfd, &df);
    }
}

#[test]
fn works_on_in_memory_random_access_traces_too() {
    let (cnf, sink) = chain(64);
    let df = check_depth_first(&cnf, &sink, &CheckConfig::default()).unwrap();
    let dfd = check_disk_depth_first(&cnf, &sink, &CheckConfig::default()).unwrap();
    assert_same_proof(&dfd, &df);
}
