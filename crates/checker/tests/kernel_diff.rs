//! Differential tests for the mark-array resolution kernel against the
//! sorted-merge oracle ([`resolve_sorted`]), plus end-to-end agreement
//! of all five checking strategies on the arena-backed hot path.
//!
//! The kernel replaced the oracle inside every strategy; the oracle is
//! deliberately kept (unchanged two-pointer merge) precisely so these
//! tests can hold the fast path to the slow path's semantics — the
//! paper's own validation idea applied to the checker itself.

use rescheck_checker::{
    check_unsat_claim, normalize_literals, resolve_sorted, CheckConfig, CheckOutcome,
    ResolutionKernel, Strategy,
};
use rescheck_cnf::{Cnf, Lit, SplitMix64};
use rescheck_solver::{Solver, SolverConfig};
use rescheck_trace::{MemorySink, TraceSink};

const CASES: u64 = if cfg!(feature = "heavy-tests") {
    2048
} else {
    256
};

/// A random sorted, duplicate-free clause that may be empty and may be
/// tautological (contain both polarities of a variable).
fn random_clause(rng: &mut SplitMix64, max_vars: u32) -> Vec<Lit> {
    let len = rng.range_usize(0..6);
    normalize_literals((0..len).map(|_| {
        let v = rng.range_u32(1..max_vars + 1) as i64;
        Lit::from_dimacs(if rng.gen_bool(0.5) { v } else { -v })
    }))
}

/// Drives one random chain through both implementations and asserts
/// they agree on every observable: which step fails (if any), the exact
/// clashing-variable list of the failure, and the final resolvent.
///
/// Small variable ranges make zero-clash, multi-clash, tautological and
/// empty-clause steps all common rather than corner cases.
#[test]
fn kernel_matches_oracle_on_random_chains() {
    let mut kernel = ResolutionKernel::new();
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let max_vars = rng.range_u32(2..7);
        let steps = rng.range_usize(1..10);
        let seed_clause = random_clause(&mut rng, max_vars);
        let antecedents: Vec<Vec<Lit>> = (0..steps)
            .map(|_| random_clause(&mut rng, max_vars))
            .collect();

        let mut acc = seed_clause.clone();
        kernel.begin(&seed_clause);
        let mut oracle_failed = false;
        for (step, ant) in antecedents.iter().enumerate() {
            let oracle = resolve_sorted(&acc, ant);
            let fast = kernel.fold(ant);
            match (oracle, fast) {
                (Ok(resolvent), Ok(pivot)) => {
                    // The oracle accepted, so exactly one variable
                    // clashed; the kernel must name that same variable.
                    assert!(
                        acc.contains(&Lit::from_code(pivot.index() << 1))
                            || acc.contains(&Lit::from_code(pivot.index() << 1 | 1)),
                        "seed {seed} step {step}: pivot {pivot:?} not in accumulator"
                    );
                    acc = resolvent;
                }
                (Err(slow_failure), Err(fast_failure)) => {
                    assert_eq!(
                        slow_failure.clashing_vars, fast_failure.clashing_vars,
                        "seed {seed} step {step}: failure diagnostics diverge"
                    );
                    oracle_failed = true;
                    break;
                }
                (oracle, fast) => panic!(
                    "seed {seed} step {step}: oracle {oracle:?} vs kernel {fast:?} disagree on validity"
                ),
            }
        }
        if !oracle_failed {
            assert_eq!(
                kernel.finish(),
                acc.as_slice(),
                "seed {seed}: final resolvents diverge"
            );
        }
    }
}

/// Crafted failure diagnostics: zero clashing variables, several
/// clashing variables, an empty antecedent, and the tautology cases
/// where a naive "negation present means clash" kernel would diverge
/// from the merge-pairing semantics of the oracle.
#[test]
fn kernel_failure_diagnostics_match_the_oracle_exactly() {
    let clause = |ds: &[i64]| normalize_literals(ds.iter().map(|&d| Lit::from_dimacs(d)));
    // (accumulator, antecedent) pairs covering each diagnostic shape.
    let cases: &[(&[i64], &[i64])] = &[
        (&[1, 2], &[3, 4]),          // zero clash, disjoint
        (&[1, 2], &[]),              // zero clash, empty antecedent
        (&[], &[1, 2]),              // zero clash, empty accumulator
        (&[1, 2], &[-1, -2]),        // double clash
        (&[1, 2, 3], &[-1, -2, -3]), // triple clash
        (&[1, -1], &[-1]),           // tautological accumulator: single clash
        (&[1, -1], &[1]),            // tautological accumulator: merge, no clash
        (&[1], &[1, -1]),            // tautological antecedent: single clash
        (&[-1], &[1, -1]),           // tautological antecedent, other polarity
        (&[1, -1], &[1, -1]),        // both tautological: both pair, no clash
        (&[1, -1, 2], &[-1, -2]),    // tautology plus a genuine second clash
    ];
    let mut kernel = ResolutionKernel::new();
    for (i, (acc, ant)) in cases.iter().enumerate() {
        let acc = clause(acc);
        let ant = clause(ant);
        let oracle = resolve_sorted(&acc, &ant);
        kernel.begin(&acc);
        match (oracle, kernel.fold(&ant)) {
            (Ok(resolvent), Ok(_)) => {
                assert_eq!(kernel.finish(), resolvent.as_slice(), "case {i}");
            }
            (Err(slow), Err(fast)) => {
                assert_eq!(slow.clashing_vars, fast.clashing_vars, "case {i}");
            }
            (oracle, fast) => panic!("case {i}: oracle {oracle:?} vs kernel {fast:?}"),
        }
    }
}

/// An implication-chain instance whose trace every strategy accepts.
fn chain(n: i64) -> (Cnf, MemorySink) {
    let mut cnf = Cnf::new();
    cnf.add_dimacs_clause(&[1]);
    for i in 1..n {
        cnf.add_dimacs_clause(&[-i, i + 1]);
    }
    cnf.add_dimacs_clause(&[-n]);
    let mut sink = MemorySink::new();
    let mut prev = 0u64;
    for i in 1..n {
        let next_id = (n + i) as u64;
        sink.learned(next_id, &[prev, i as u64]).unwrap();
        prev = next_id;
    }
    sink.level_zero(Lit::from_dimacs(n), prev).unwrap();
    sink.final_conflict(n as u64).unwrap();
    (cnf, sink)
}

/// A solver-produced trace on a small hard formula.
fn solved(seed: u64) -> Option<(Cnf, MemorySink)> {
    let mut rng = SplitMix64::new(seed);
    let mut cnf = Cnf::with_vars(7);
    for _ in 0..40 {
        let len = rng.range_usize(1..4);
        let clause: Vec<i64> = (0..len)
            .map(|_| {
                let v = rng.range_u32(1..8) as i64;
                if rng.gen_bool(0.5) {
                    v
                } else {
                    -v
                }
            })
            .collect();
        cnf.add_dimacs_clause(&clause);
    }
    let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
    let mut sink = MemorySink::new();
    solver
        .solve_traced(&mut sink)
        .unwrap()
        .is_unsat()
        .then_some((cnf, sink))
}

/// All six strategies accept the same traces with consistent counters
/// on the shared kernel/arena hot path: depth-first, its disk-backed
/// variant and hybrid verify the same needed subset, breadth-first and
/// parallel breadth-first are bit-identical, and breadth-first builds
/// every learned clause.
#[test]
fn six_strategies_agree_end_to_end() {
    let mut fixtures: Vec<(Cnf, MemorySink)> = vec![chain(64), chain(300)];
    fixtures.extend((0..32).filter_map(solved).take(6));
    assert!(fixtures.len() > 2, "no solver fixture went UNSAT");

    for (f, (cnf, trace)) in fixtures.iter().enumerate() {
        let run = |strategy: Strategy| -> CheckOutcome {
            let config = CheckConfig {
                jobs: 3,
                ..CheckConfig::default()
            };
            check_unsat_claim(cnf, trace, strategy, &config)
                .unwrap_or_else(|e| panic!("fixture {f} {strategy}: {e:?}"))
        };
        let df = run(Strategy::DepthFirst);
        let bf = run(Strategy::BreadthFirst);
        let hybrid = run(Strategy::Hybrid);
        let portfolio = run(Strategy::Portfolio);
        let pbf = run(Strategy::ParallelBf);
        let dfd = run(Strategy::DiskDepthFirst);

        // The disk-backed depth-first walk is the same traversal as the
        // in-memory one: bit-identical work counters and the same core.
        assert_eq!(
            dfd.stats.clauses_built, df.stats.clauses_built,
            "fixture {f}"
        );
        assert_eq!(dfd.stats.resolutions, df.stats.resolutions, "fixture {f}");
        assert_eq!(
            dfd.core.as_ref().map(|c| &c.clause_ids),
            df.core.as_ref().map(|c| &c.clause_ids),
            "fixture {f}"
        );

        // Everyone sees the same trace.
        for outcome in [&bf, &hybrid, &portfolio, &pbf, &dfd] {
            assert_eq!(
                outcome.stats.learned_in_trace, df.stats.learned_in_trace,
                "fixture {f}"
            );
        }
        // DF and hybrid build exactly the needed subset.
        assert_eq!(
            df.stats.clauses_built, hybrid.stats.clauses_built,
            "fixture {f}"
        );
        assert_eq!(
            df.stats.resolutions, hybrid.stats.resolutions,
            "fixture {f}"
        );
        // BF builds every learned clause, and the parallel variant is
        // bit-identical to it (same per-event code path).
        assert_eq!(
            bf.stats.clauses_built, bf.stats.learned_in_trace,
            "fixture {f}"
        );
        assert_eq!(
            pbf.stats.clauses_built, bf.stats.clauses_built,
            "fixture {f}"
        );
        assert_eq!(pbf.stats.resolutions, bf.stats.resolutions, "fixture {f}");
        assert_eq!(
            pbf.stats.peak_memory_bytes, bf.stats.peak_memory_bytes,
            "fixture {f}"
        );
        // The portfolio's winner is one of its racers.
        assert!(
            portfolio.stats.resolutions == df.stats.resolutions
                || portfolio.stats.resolutions == bf.stats.resolutions,
            "fixture {f}"
        );
    }
}

/// The allocation-free claim, observed through the kernel's own scratch
/// accounting: once warmed up on the largest chain shape, further
/// chains trigger zero scratch growth — every begin/fold/finish cycle
/// runs entirely in reused buffers.
#[test]
fn kernel_scratch_stops_growing_in_steady_state() {
    let mut kernel = ResolutionKernel::new();
    let mut rng = SplitMix64::new(7);
    let mut chains = |kernel: &mut ResolutionKernel| {
        for _ in 0..50 {
            let seed_clause = random_clause(&mut rng, 30);
            kernel.begin(&seed_clause);
            for _ in 0..rng.range_usize(1..12) {
                let _ = kernel.fold(&random_clause(&mut rng, 30));
            }
            let _ = kernel.finish();
        }
    };
    chains(&mut kernel); // warm-up: scratch grows to the working-set size
    let warmed = kernel.stats();
    chains(&mut kernel); // steady state: identical shapes, zero growth
    let after = kernel.stats();
    assert_eq!(after.scratch_grows, warmed.scratch_grows, "scratch grew");
    assert_eq!(
        after.scratch_high_water, warmed.scratch_high_water,
        "high-water moved"
    );
    assert_eq!(after.chains, warmed.chains + 50);
    assert!(after.literals_folded > warmed.literals_folded);
}
