//! Differential tests for the mark-array resolution kernel against the
//! sorted-merge oracle ([`resolve_sorted`]), plus end-to-end agreement
//! of all seven checking strategies on the shared hot path.
//!
//! The kernel replaced the oracle inside every strategy; the oracle is
//! deliberately kept (unchanged two-pointer merge) precisely so these
//! tests can hold the fast path to the slow path's semantics — the
//! paper's own validation idea applied to the checker itself.

use rescheck_checker::{
    check_unsat_claim, normalize_literals, resolve_sorted, CheckConfig, CheckOutcome, KernelMode,
    ResolutionKernel, Strategy,
};
use rescheck_cnf::{Cnf, Lit, SplitMix64};
use rescheck_solver::{Solver, SolverConfig};
use rescheck_trace::{MemorySink, TraceSink};

const CASES: u64 = if cfg!(feature = "heavy-tests") {
    2048
} else {
    256
};

/// A random sorted, duplicate-free clause that may be empty and may be
/// tautological (contain both polarities of a variable).
fn random_clause(rng: &mut SplitMix64, max_vars: u32) -> Vec<Lit> {
    let len = rng.range_usize(0..6);
    normalize_literals((0..len).map(|_| {
        let v = rng.range_u32(1..max_vars + 1) as i64;
        Lit::from_dimacs(if rng.gen_bool(0.5) { v } else { -v })
    }))
}

/// Drives one random chain through both implementations and asserts
/// they agree on every observable: which step fails (if any), the exact
/// clashing-variable list of the failure, and the final resolvent.
///
/// Small variable ranges make zero-clash, multi-clash, tautological and
/// empty-clause steps all common rather than corner cases.
#[test]
fn kernel_matches_oracle_on_random_chains() {
    for mode in [KernelMode::Swar, KernelMode::Scalar] {
        let mut kernel = ResolutionKernel::with_mode(mode);
        for seed in 0..CASES {
            let mut rng = SplitMix64::new(seed);
            let max_vars = rng.range_u32(2..7);
            let steps = rng.range_usize(1..10);
            let seed_clause = random_clause(&mut rng, max_vars);
            let antecedents: Vec<Vec<Lit>> = (0..steps)
                .map(|_| random_clause(&mut rng, max_vars))
                .collect();

            let mut acc = seed_clause.clone();
            kernel.begin(&seed_clause);
            let mut oracle_failed = false;
            for (step, ant) in antecedents.iter().enumerate() {
                let oracle = resolve_sorted(&acc, ant);
                let fast = kernel.fold(ant);
                match (oracle, fast) {
                    (Ok(resolvent), Ok(pivot)) => {
                        // The oracle accepted, so exactly one variable
                        // clashed; the kernel must name that same variable.
                        assert!(
                            acc.contains(&Lit::from_code(pivot.index() << 1))
                                || acc.contains(&Lit::from_code(pivot.index() << 1 | 1)),
                            "{mode:?} seed {seed} step {step}: pivot {pivot:?} not in accumulator"
                        );
                        acc = resolvent;
                    }
                    (Err(slow_failure), Err(fast_failure)) => {
                        assert_eq!(
                            slow_failure.clashing_vars, fast_failure.clashing_vars,
                            "{mode:?} seed {seed} step {step}: failure diagnostics diverge"
                        );
                        oracle_failed = true;
                        break;
                    }
                    (oracle, fast) => panic!(
                        "{mode:?} seed {seed} step {step}: oracle {oracle:?} vs kernel {fast:?} disagree on validity"
                    ),
                }
            }
            if !oracle_failed {
                assert_eq!(
                    kernel.finish(),
                    acc.as_slice(),
                    "{mode:?} seed {seed}: final resolvents diverge"
                );
            }
        }
    }
}

/// Crafted failure diagnostics: zero clashing variables, several
/// clashing variables, an empty antecedent, and the tautology cases
/// where a naive "negation present means clash" kernel would diverge
/// from the merge-pairing semantics of the oracle.
#[test]
fn kernel_failure_diagnostics_match_the_oracle_exactly() {
    let clause = |ds: &[i64]| normalize_literals(ds.iter().map(|&d| Lit::from_dimacs(d)));
    // (accumulator, antecedent) pairs covering each diagnostic shape.
    let cases: &[(&[i64], &[i64])] = &[
        (&[1, 2], &[3, 4]),          // zero clash, disjoint
        (&[1, 2], &[]),              // zero clash, empty antecedent
        (&[], &[1, 2]),              // zero clash, empty accumulator
        (&[1, 2], &[-1, -2]),        // double clash
        (&[1, 2, 3], &[-1, -2, -3]), // triple clash
        (&[1, -1], &[-1]),           // tautological accumulator: single clash
        (&[1, -1], &[1]),            // tautological accumulator: merge, no clash
        (&[1], &[1, -1]),            // tautological antecedent: single clash
        (&[-1], &[1, -1]),           // tautological antecedent, other polarity
        (&[1, -1], &[1, -1]),        // both tautological: both pair, no clash
        (&[1, -1, 2], &[-1, -2]),    // tautology plus a genuine second clash
    ];
    for mode in [KernelMode::Swar, KernelMode::Scalar] {
        let mut kernel = ResolutionKernel::with_mode(mode);
        for (i, (acc, ant)) in cases.iter().enumerate() {
            let acc = clause(acc);
            let ant = clause(ant);
            let oracle = resolve_sorted(&acc, &ant);
            kernel.begin(&acc);
            match (oracle, kernel.fold(&ant)) {
                (Ok(resolvent), Ok(_)) => {
                    assert_eq!(kernel.finish(), resolvent.as_slice(), "{mode:?} case {i}");
                }
                (Err(slow), Err(fast)) => {
                    assert_eq!(slow.clashing_vars, fast.clashing_vars, "{mode:?} case {i}");
                }
                (oracle, fast) => panic!("{mode:?} case {i}: oracle {oracle:?} vs kernel {fast:?}"),
            }
        }
    }
}

/// An implication-chain instance whose trace every strategy accepts.
fn chain(n: i64) -> (Cnf, MemorySink) {
    let mut cnf = Cnf::new();
    cnf.add_dimacs_clause(&[1]);
    for i in 1..n {
        cnf.add_dimacs_clause(&[-i, i + 1]);
    }
    cnf.add_dimacs_clause(&[-n]);
    let mut sink = MemorySink::new();
    let mut prev = 0u64;
    for i in 1..n {
        let next_id = (n + i) as u64;
        sink.learned(next_id, &[prev, i as u64]).unwrap();
        prev = next_id;
    }
    sink.level_zero(Lit::from_dimacs(n), prev).unwrap();
    sink.final_conflict(n as u64).unwrap();
    (cnf, sink)
}

/// A solver-produced trace on a small hard formula.
fn solved(seed: u64) -> Option<(Cnf, MemorySink)> {
    let mut rng = SplitMix64::new(seed);
    let mut cnf = Cnf::with_vars(7);
    for _ in 0..40 {
        let len = rng.range_usize(1..4);
        let clause: Vec<i64> = (0..len)
            .map(|_| {
                let v = rng.range_u32(1..8) as i64;
                if rng.gen_bool(0.5) {
                    v
                } else {
                    -v
                }
            })
            .collect();
        cnf.add_dimacs_clause(&clause);
    }
    let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
    let mut sink = MemorySink::new();
    solver
        .solve_traced(&mut sink)
        .unwrap()
        .is_unsat()
        .then_some((cnf, sink))
}

/// All seven strategies accept the same traces with consistent counters
/// on the shared kernel/arena hot path: depth-first, its disk-backed
/// variant and hybrid verify the same needed subset, breadth-first,
/// parallel breadth-first and the parallel-dag executor verify the full
/// trace with matching work counters, and breadth-first builds every
/// learned clause.
#[test]
fn seven_strategies_agree_end_to_end() {
    let mut fixtures: Vec<(Cnf, MemorySink)> = vec![chain(64), chain(300)];
    fixtures.extend((0..32).filter_map(solved).take(6));
    assert!(fixtures.len() > 2, "no solver fixture went UNSAT");

    for (f, (cnf, trace)) in fixtures.iter().enumerate() {
        let run = |strategy: Strategy| -> CheckOutcome {
            let config = CheckConfig {
                jobs: 3,
                // Exercise the real parallel paths even on these small
                // fixtures instead of the sequential-bf fallback.
                parallel_min_learned: 0,
                ..CheckConfig::default()
            };
            check_unsat_claim(cnf, trace, strategy, &config)
                .unwrap_or_else(|e| panic!("fixture {f} {strategy}: {e:?}"))
        };
        let df = run(Strategy::DepthFirst);
        let bf = run(Strategy::BreadthFirst);
        let hybrid = run(Strategy::Hybrid);
        let portfolio = run(Strategy::Portfolio);
        let pbf = run(Strategy::ParallelBf);
        let dfd = run(Strategy::DiskDepthFirst);
        let pdag = run(Strategy::ParallelDag);

        // The disk-backed depth-first walk is the same traversal as the
        // in-memory one: bit-identical work counters and the same core.
        assert_eq!(
            dfd.stats.clauses_built, df.stats.clauses_built,
            "fixture {f}"
        );
        assert_eq!(dfd.stats.resolutions, df.stats.resolutions, "fixture {f}");
        assert_eq!(
            dfd.core.as_ref().map(|c| &c.clause_ids),
            df.core.as_ref().map(|c| &c.clause_ids),
            "fixture {f}"
        );

        // Everyone sees the same trace.
        for outcome in [&bf, &hybrid, &portfolio, &pbf, &dfd, &pdag] {
            assert_eq!(
                outcome.stats.learned_in_trace, df.stats.learned_in_trace,
                "fixture {f}"
            );
        }
        // DF and hybrid build exactly the needed subset.
        assert_eq!(
            df.stats.clauses_built, hybrid.stats.clauses_built,
            "fixture {f}"
        );
        assert_eq!(
            df.stats.resolutions, hybrid.stats.resolutions,
            "fixture {f}"
        );
        // BF builds every learned clause, and the parallel variant is
        // bit-identical to it (same per-event code path).
        assert_eq!(
            bf.stats.clauses_built, bf.stats.learned_in_trace,
            "fixture {f}"
        );
        assert_eq!(
            pbf.stats.clauses_built, bf.stats.clauses_built,
            "fixture {f}"
        );
        assert_eq!(pbf.stats.resolutions, bf.stats.resolutions, "fixture {f}");
        assert_eq!(
            pbf.stats.peak_memory_bytes, bf.stats.peak_memory_bytes,
            "fixture {f}"
        );
        // The parallel-dag executor verifies the same full trace as
        // breadth-first (its accounting model differs, so peak memory
        // is instead held bit-identical across its own worker counts in
        // `parallel_dag_stats_are_identical_across_job_counts`).
        assert_eq!(
            pdag.stats.clauses_built, bf.stats.clauses_built,
            "fixture {f}"
        );
        assert_eq!(pdag.stats.resolutions, bf.stats.resolutions, "fixture {f}");
        // The portfolio's winner is one of its racers.
        assert!(
            portfolio.stats.resolutions == df.stats.resolutions
                || portfolio.stats.resolutions == bf.stats.resolutions,
            "fixture {f}"
        );
    }
}

/// The parallel-dag determinism guarantee: `clauses_built`,
/// `resolutions` and `peak_memory_bytes` are bit-identical for any
/// worker count, because every memory charge and free happens at the
/// trace-order commit watermark, never on a worker's own clock.
#[test]
fn parallel_dag_stats_are_identical_across_job_counts() {
    let mut fixtures: Vec<(Cnf, MemorySink)> = vec![chain(64), chain(300)];
    fixtures.extend((0..32).filter_map(solved).take(4));

    for (f, (cnf, trace)) in fixtures.iter().enumerate() {
        let mut baseline: Option<CheckOutcome> = None;
        for jobs in [1usize, 2, 4] {
            let config = CheckConfig {
                jobs,
                parallel_min_learned: 0,
                ..CheckConfig::default()
            };
            let outcome = check_unsat_claim(cnf, trace, Strategy::ParallelDag, &config)
                .unwrap_or_else(|e| panic!("fixture {f} jobs {jobs}: {e:?}"));
            if let Some(base) = &baseline {
                assert_eq!(
                    outcome.stats.clauses_built, base.stats.clauses_built,
                    "fixture {f} jobs {jobs}"
                );
                assert_eq!(
                    outcome.stats.resolutions, base.stats.resolutions,
                    "fixture {f} jobs {jobs}"
                );
                assert_eq!(
                    outcome.stats.peak_memory_bytes, base.stats.peak_memory_bytes,
                    "fixture {f} jobs {jobs}"
                );
                assert_eq!(
                    outcome.stats.learned_in_trace, base.stats.learned_in_trace,
                    "fixture {f} jobs {jobs}"
                );
            } else {
                baseline = Some(outcome);
            }
        }
    }
}

/// The parallel-dag executor on a solver-produced pigeonhole trace —
/// the Table 2 instance family — at `--jobs 4`, cross-checked against
/// breadth-first and re-run for stat determinism. This is the
/// ThreadSanitizer job's anchor for the work-stealing executor: on a
/// multi-core runner the public API runs real worker threads here.
#[test]
fn parallel_dag_checks_pigeonhole_at_four_workers() {
    // php(6 pigeons, 5 holes): every pigeon sits somewhere, no two
    // pigeons share a hole. Var of pigeon i in hole j is i*5 + j.
    let mut cnf = Cnf::with_vars(30);
    for i in 0..6i64 {
        let holes: Vec<i64> = (1..=5).map(|j| i * 5 + j).collect();
        cnf.add_dimacs_clause(&holes);
    }
    for j in 1..=5i64 {
        for i1 in 0..6i64 {
            for i2 in (i1 + 1)..6 {
                cnf.add_dimacs_clause(&[-(i1 * 5 + j), -(i2 * 5 + j)]);
            }
        }
    }
    let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
    let mut trace = MemorySink::new();
    assert!(solver.solve_traced(&mut trace).unwrap().is_unsat());

    let config = CheckConfig {
        jobs: 4,
        parallel_min_learned: 0,
        ..CheckConfig::default()
    };
    let bf = check_unsat_claim(&cnf, &trace, Strategy::BreadthFirst, &config).unwrap();
    let first = check_unsat_claim(&cnf, &trace, Strategy::ParallelDag, &config).unwrap();
    let second = check_unsat_claim(&cnf, &trace, Strategy::ParallelDag, &config).unwrap();
    assert_eq!(first.stats.clauses_built, bf.stats.clauses_built);
    assert_eq!(first.stats.resolutions, bf.stats.resolutions);
    assert_eq!(first.stats.learned_in_trace, bf.stats.learned_in_trace);
    assert_eq!(first.stats.clauses_built, second.stats.clauses_built);
    assert_eq!(first.stats.resolutions, second.stats.resolutions);
    assert_eq!(
        first.stats.peak_memory_bytes,
        second.stats.peak_memory_bytes
    );
}

/// The allocation-free claim, observed through the kernel's own scratch
/// accounting: once warmed up on the largest chain shape, further
/// chains trigger zero scratch growth — every begin/fold/finish cycle
/// runs entirely in reused buffers.
#[test]
fn kernel_scratch_stops_growing_in_steady_state() {
    let mut kernel = ResolutionKernel::new();
    let mut rng = SplitMix64::new(7);
    let mut chains = |kernel: &mut ResolutionKernel| {
        for _ in 0..50 {
            let seed_clause = random_clause(&mut rng, 30);
            kernel.begin(&seed_clause);
            for _ in 0..rng.range_usize(1..12) {
                let _ = kernel.fold(&random_clause(&mut rng, 30));
            }
            let _ = kernel.finish();
        }
    };
    chains(&mut kernel); // warm-up: scratch grows to the working-set size
    let warmed = kernel.stats();
    chains(&mut kernel); // steady state: identical shapes, zero growth
    let after = kernel.stats();
    assert_eq!(after.scratch_grows, warmed.scratch_grows, "scratch grew");
    assert_eq!(
        after.scratch_high_water, warmed.scratch_high_water,
        "high-water moved"
    );
    assert_eq!(after.chains, warmed.chains + 50);
    assert!(after.literals_folded > warmed.literals_folded);
}
