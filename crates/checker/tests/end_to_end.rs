//! End-to-end validation: solve → trace → check, both strategies, over a
//! spread of instance families and solver configurations.

use rescheck_checker::{check_sat_claim, check_unsat_claim, minimize_core, CheckConfig, Strategy};
use rescheck_cnf::{Cnf, Lit, Var};
use rescheck_solver::{SolveResult, Solver, SolverConfig};
use rescheck_trace::{AsciiWriter, BinaryWriter, FileTrace, MemorySink, TraceSink, TraceSource};

fn pigeonhole(holes: usize) -> Cnf {
    let pigeons = holes + 1;
    let mut cnf = Cnf::new();
    let lit = |p: usize, h: usize| Lit::positive(Var::new(p * holes + h));
    for p in 0..pigeons {
        cnf.add_clause((0..holes).map(|h| lit(p, h)));
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                cnf.add_clause([!lit(p1, h), !lit(p2, h)]);
            }
        }
    }
    cnf
}

/// XOR chain x1 ⊕ x2, x2 ⊕ x3, …, plus x1 = xn forced unequal — UNSAT for
/// odd-length cycles. Encoded directly in CNF.
fn xor_cycle(n: usize) -> Cnf {
    assert!(n >= 3 && n % 2 == 1);
    let mut cnf = Cnf::new();
    let v: Vec<Var> = (0..n).map(Var::new).collect();
    for i in 0..n {
        let a = v[i];
        let b = v[(i + 1) % n];
        // a XOR b = 1:  (a ∨ b)(¬a ∨ ¬b)
        cnf.add_clause([a.positive(), b.positive()]);
        cnf.add_clause([a.negative(), b.negative()]);
    }
    cnf
}

fn solve_and_check_both(cnf: &Cnf, cfg: SolverConfig) {
    let mut solver = Solver::from_cnf(cnf, cfg);
    let mut trace = MemorySink::new();
    let result = solver.solve_traced(&mut trace).expect("memory sink");
    match result {
        SolveResult::Satisfiable(model) => {
            check_sat_claim(cnf, &model).expect("claimed model must satisfy");
        }
        SolveResult::Unsatisfiable => {
            for strategy in [
                Strategy::DepthFirst,
                Strategy::BreadthFirst,
                Strategy::Hybrid,
            ] {
                let outcome = check_unsat_claim(cnf, &trace, strategy, &CheckConfig::default())
                    .unwrap_or_else(|e| panic!("{strategy} check failed: {e}"));
                assert_eq!(
                    outcome.stats.learned_in_trace,
                    solver.stats().learned_clauses
                );
                if strategy == Strategy::BreadthFirst {
                    assert_eq!(outcome.stats.clauses_built, outcome.stats.learned_in_trace);
                } else {
                    assert!(outcome.stats.clauses_built <= outcome.stats.learned_in_trace);
                    assert!(outcome.core.is_some(), "{strategy} yields a core");
                }
            }
        }
        SolveResult::Unknown => panic!("no budget was configured"),
    }
}

#[test]
fn pigeonhole_family_checks() {
    for holes in 1..=6 {
        solve_and_check_both(&pigeonhole(holes), SolverConfig::default());
    }
}

#[test]
fn xor_cycles_check() {
    for n in [3, 5, 7, 9, 11] {
        solve_and_check_both(&xor_cycle(n), SolverConfig::default());
    }
}

#[test]
fn ablation_configs_produce_checkable_traces() {
    let cnf = pigeonhole(5);
    for cfg in [
        SolverConfig::without_learning(),
        SolverConfig::without_deletion(),
        SolverConfig::without_restarts(),
        SolverConfig {
            reduce_db_interval: 5,
            reduce_db_increment: 0,
            ..SolverConfig::default()
        },
        SolverConfig {
            random_decision_freq: 0.2,
            seed: 7,
            ..SolverConfig::default()
        },
        SolverConfig {
            phase_saving: false,
            default_phase: true,
            ..SolverConfig::default()
        },
        SolverConfig::without_minimization(),
    ] {
        solve_and_check_both(&cnf, cfg);
    }
}

#[test]
fn minimized_traces_check_and_shrink_clauses() {
    // Minimization adds resolve sources; the checker must accept the
    // richer chains, and the learned clauses must actually get shorter.
    let cnf = pigeonhole(6);
    let run = |cfg: SolverConfig| {
        let mut solver = Solver::from_cnf(&cnf, cfg);
        let mut trace = MemorySink::new();
        assert!(solver.solve_traced(&mut trace).unwrap().is_unsat());
        for strategy in [Strategy::DepthFirst, Strategy::BreadthFirst] {
            check_unsat_claim(&cnf, &trace, strategy, &CheckConfig::default())
                .unwrap_or_else(|e| panic!("{strategy}: {e}"));
        }
        solver.stats().avg_learned_len()
    };
    let with = run(SolverConfig::default());
    let without = run(SolverConfig::without_minimization());
    assert!(
        with < without,
        "minimization should shorten clauses: {with:.2} vs {without:.2}"
    );
}

#[test]
fn random_unsat_instances_check_under_both_strategies() {
    // Deterministic generator; keep instances small but non-trivial and
    // verify UNSAT instances check (SAT ones verify their model).
    let mut state = 0x0bad_5eedu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut unsat_seen = 0;
    for _ in 0..120 {
        let num_vars = 4 + (next() % 8) as usize;
        let num_clauses = (4.3 * num_vars as f64) as usize + (next() % 10) as usize;
        let mut cnf = Cnf::with_vars(num_vars);
        for _ in 0..num_clauses {
            let len = 2 + (next() % 2) as usize;
            let lits: Vec<i64> = (0..len)
                .map(|_| {
                    let v = (next() % num_vars as u64) as i64 + 1;
                    if next() % 2 == 0 {
                        v
                    } else {
                        -v
                    }
                })
                .collect();
            cnf.add_dimacs_clause(&lits);
        }
        let mut probe = Solver::from_cnf(&cnf, SolverConfig::default());
        if probe.solve().is_unsat() {
            unsat_seen += 1;
        }
        solve_and_check_both(&cnf, SolverConfig::default());
    }
    assert!(unsat_seen > 10, "generator should produce UNSAT instances");
}

#[test]
fn traces_check_through_ascii_and_binary_files() {
    let cnf = pigeonhole(5);
    let dir = std::env::temp_dir().join("rescheck-e2e");
    std::fs::create_dir_all(&dir).unwrap();

    // ASCII file trace.
    let ascii_path = dir.join("php5.trace");
    {
        let file = std::fs::File::create(&ascii_path).unwrap();
        let mut writer = AsciiWriter::new(std::io::BufWriter::new(file));
        let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
        assert!(solver.solve_traced(&mut writer).unwrap().is_unsat());
        writer.flush().unwrap();
    }
    // Binary file trace (same solve, deterministic).
    let bin_path = dir.join("php5.rtb");
    {
        let file = std::fs::File::create(&bin_path).unwrap();
        let mut writer = BinaryWriter::new(std::io::BufWriter::new(file)).unwrap();
        let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
        assert!(solver.solve_traced(&mut writer).unwrap().is_unsat());
        writer.flush().unwrap();
    }

    let ascii_trace = FileTrace::open(&ascii_path).unwrap();
    let bin_trace = FileTrace::open(&bin_path).unwrap();

    // Both encodings decode to the identical event stream…
    let a = rescheck_trace::collect_events(&ascii_trace).unwrap();
    let b = rescheck_trace::collect_events(&bin_trace).unwrap();
    assert_eq!(a, b);
    // …the binary one is smaller (paper §4 predicts 2–3x)…
    assert!(bin_trace.encoded_size().unwrap() * 2 < ascii_trace.encoded_size().unwrap() * 3);

    // …and both check under both strategies.
    for strategy in [Strategy::DepthFirst, Strategy::BreadthFirst] {
        check_unsat_claim(&cnf, &ascii_trace, strategy, &CheckConfig::default()).unwrap();
        check_unsat_claim(&cnf, &bin_trace, strategy, &CheckConfig::default()).unwrap();
    }

    std::fs::remove_file(&ascii_path).ok();
    std::fs::remove_file(&bin_path).ok();
}

#[test]
fn core_extraction_shrinks_padded_instances() {
    // PHP(4,3) buried in irrelevant clauses: the core finds the real
    // contradiction (the paper's planning/routing observation, Table 3).
    let mut cnf = pigeonhole(3);
    let base = cnf.num_vars();
    for i in 0..40 {
        let a = Var::new(base + 2 * i);
        let b = Var::new(base + 2 * i + 1);
        cnf.add_clause([a.positive(), b.positive()]);
        cnf.add_clause([a.negative(), b.positive()]);
    }
    let total = cnf.num_clauses();
    let result = minimize_core(&cnf, &SolverConfig::default(), 30).unwrap();
    assert!(result.core_ids.len() < total);
    // Core is still UNSAT.
    let sub = cnf.subformula(result.core_ids.iter().copied());
    let mut solver = Solver::from_cnf(&sub, SolverConfig::default());
    assert!(solver.solve().is_unsat());
}

#[test]
fn depth_first_memory_out_vs_breadth_first_survival() {
    // Reproduce Table 2's qualitative behaviour: under a tight memory
    // budget the depth-first checker can fail while breadth-first
    // finishes the same trace.
    let cnf = pigeonhole(6);
    let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
    let mut trace = MemorySink::new();
    assert!(solver.solve_traced(&mut trace).unwrap().is_unsat());

    // Find the BF peak, then set the budget between BF and DF peaks.
    let bf = check_unsat_claim(
        &cnf,
        &trace,
        Strategy::BreadthFirst,
        &CheckConfig::default(),
    )
    .unwrap();
    let df =
        check_unsat_claim(&cnf, &trace, Strategy::DepthFirst, &CheckConfig::default()).unwrap();
    assert!(
        bf.stats.peak_memory_bytes < df.stats.peak_memory_bytes,
        "bf {} < df {}",
        bf.stats.peak_memory_bytes,
        df.stats.peak_memory_bytes
    );

    let budget = (bf.stats.peak_memory_bytes + df.stats.peak_memory_bytes) / 2;
    let config = CheckConfig {
        memory_limit: Some(budget),
        ..CheckConfig::default()
    };
    assert!(check_unsat_claim(&cnf, &trace, Strategy::DepthFirst, &config).is_err());
    assert!(check_unsat_claim(&cnf, &trace, Strategy::BreadthFirst, &config).is_ok());
}

#[test]
fn df_core_checks_out_as_unsat_on_xor_cycles() {
    let cnf = xor_cycle(9);
    let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
    let mut trace = MemorySink::new();
    assert!(solver.solve_traced(&mut trace).unwrap().is_unsat());
    let outcome =
        check_unsat_claim(&cnf, &trace, Strategy::DepthFirst, &CheckConfig::default()).unwrap();
    let core = outcome.core.unwrap();
    // XOR cycles need every clause: the core should be (nearly) everything.
    let sub = core.to_subformula(&cnf);
    let mut sub_solver = Solver::from_cnf(&sub, SolverConfig::default());
    assert!(sub_solver.solve().is_unsat());
}

/// The `no_mmap` escape hatch swaps only the trace *backing*: every
/// verdict and every stat must be bit-identical with the mapping on and
/// off, for every map-consuming strategy, at every worker count — and
/// the parallel strategies must also agree across worker counts.
#[test]
fn no_mmap_checks_are_bit_identical() {
    let cnf = pigeonhole(5);
    let dir = std::env::temp_dir().join("rescheck-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("php5-nommap-{}.rtb", std::process::id()));
    {
        let file = std::fs::File::create(&path).unwrap();
        let mut writer = BinaryWriter::new(std::io::BufWriter::new(file)).unwrap();
        let mut solver = Solver::from_cnf(&cnf, SolverConfig::default());
        assert!(solver.solve_traced(&mut writer).unwrap().is_unsat());
        writer.flush().unwrap();
    }

    for (strategy, job_counts) in [
        (Strategy::ParallelBf, &[1usize, 2, 4][..]),
        (Strategy::ParallelDag, &[1, 2, 4][..]),
        (Strategy::DiskDepthFirst, &[1][..]),
    ] {
        let mut across_jobs: Option<(u64, u64, u64, u64)> = None;
        for &jobs in job_counts {
            let mut across_backings: Option<(u64, u64, u64, u64)> = None;
            for no_mmap in [false, true] {
                // Fresh handle per run: a FileTrace caches the first
                // backing it establishes.
                let trace = FileTrace::open(&path).unwrap();
                let config = CheckConfig {
                    jobs,
                    parallel_min_learned: 0,
                    no_mmap,
                    ..CheckConfig::default()
                };
                let outcome = check_unsat_claim(&cnf, &trace, strategy, &config)
                    .unwrap_or_else(|e| panic!("{strategy} jobs={jobs} no_mmap={no_mmap}: {e}"));
                let key = (
                    outcome.stats.learned_in_trace,
                    outcome.stats.clauses_built,
                    outcome.stats.resolutions,
                    outcome.stats.peak_memory_bytes,
                );
                if let Some(prev) = across_backings {
                    assert_eq!(
                        prev, key,
                        "{strategy} jobs={jobs}: stats differ across mmap on/off"
                    );
                }
                across_backings = Some(key);
            }
            if let Some(prev) = across_jobs {
                assert_eq!(
                    prev,
                    across_backings.unwrap(),
                    "{strategy}: stats differ across worker counts"
                );
            }
            across_jobs = across_backings;
        }
    }
    std::fs::remove_file(&path).ok();
}
