//! A Chaff-style CDCL SAT solver with resolve-trace generation.
//!
//! This crate implements the solver side of Zhang & Malik's *"Validating
//! SAT Solvers Using an Independent Resolution-Based Checker"* (DATE
//! 2003): a DLL search with Boolean constraint propagation over watched
//! literals, VSIDS decision ordering, 1UIP conflict-driven clause learning
//! by resolution, **assertion-based backtracking** (the property the
//! checker relies on), Luby restarts with growing periods (required for
//! termination, paper §2.2), and activity-based learned-clause deletion
//! that never deletes the antecedent of an assigned variable.
//!
//! While solving, the solver can emit a *resolve trace* to any
//! [`rescheck_trace::TraceSink`]: every learned clause with its resolve
//! sources, every decision-level-0 assignment with its antecedent, and the
//! final conflicting clause — exactly the "less than twenty lines of C++"
//! modification the paper describes (§3.1).
//!
//! # Examples
//!
//! Solve a tiny unsatisfiable instance while recording a trace:
//!
//! ```
//! use rescheck_cnf::Cnf;
//! use rescheck_solver::{SolveResult, Solver, SolverConfig};
//! use rescheck_trace::MemorySink;
//!
//! let mut cnf = Cnf::new();
//! cnf.add_dimacs_clause(&[1, 2]);
//! cnf.add_dimacs_clause(&[1, -2]);
//! cnf.add_dimacs_clause(&[-1, 2]);
//! cnf.add_dimacs_clause(&[-1, -2]);
//!
//! let mut solver = Solver::new(SolverConfig::default());
//! solver.add_formula(&cnf);
//! let mut trace = MemorySink::new();
//! let result = solver.solve_traced(&mut trace)?;
//! assert!(matches!(result, SolveResult::Unsatisfiable));
//! assert!(!trace.is_empty());
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clause_db;
mod config;
pub mod dp;
mod heap;
mod luby;
mod result;
mod solver;
mod stats;

pub use clause_db::{ClauseDb, ClauseId};
pub use config::SolverConfig;
pub use luby::luby;
pub use result::SolveResult;
pub use solver::Solver;
pub use stats::SolverStats;
