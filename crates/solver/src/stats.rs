//! Solver statistics.

use std::fmt;

/// Counters accumulated during a solve.
///
/// These feed the harness that regenerates Table 1 of the paper (learned
/// clause counts, runtimes) and are generally useful for performance
/// work.
///
/// # Examples
///
/// ```
/// use rescheck_solver::{Solver, SolverConfig};
/// use rescheck_cnf::Cnf;
///
/// let mut cnf = Cnf::new();
/// cnf.add_dimacs_clause(&[1]);
/// let mut solver = Solver::new(SolverConfig::default());
/// solver.add_formula(&cnf);
/// solver.solve();
/// assert!(solver.stats().propagations >= 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Branching decisions made.
    pub decisions: u64,
    /// Literals enqueued by Boolean constraint propagation.
    pub propagations: u64,
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Learned clauses added to the database.
    pub learned_clauses: u64,
    /// Learned clauses deleted by database reductions.
    pub deleted_clauses: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learned-clause database reductions performed.
    pub db_reductions: u64,
    /// Total literals across all learned clauses (for average length).
    pub learned_literals: u64,
    /// Conflicts resolved without learning a new clause because the
    /// conflicting clause was already asserting.
    pub reused_conflicts: u64,
    /// Literals removed from learned clauses by self-subsuming
    /// minimization (each removal is a recorded resolution).
    pub minimized_literals: u64,
}

impl SolverStats {
    /// Average learned clause length, or 0.0 if nothing was learned.
    pub fn avg_learned_len(&self) -> f64 {
        if self.learned_clauses == 0 {
            0.0
        } else {
            self.learned_literals as f64 / self.learned_clauses as f64
        }
    }
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decisions={} propagations={} conflicts={} learned={} (avg len {:.1}) \
             deleted={} restarts={} reductions={} reused={} minimized={}",
            self.decisions,
            self.propagations,
            self.conflicts,
            self.learned_clauses,
            self.avg_learned_len(),
            self.deleted_clauses,
            self.restarts,
            self.db_reductions,
            self.reused_conflicts,
            self.minimized_literals,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = SolverStats::default();
        assert_eq!(s.decisions, 0);
        assert_eq!(s.conflicts, 0);
        assert_eq!(s.avg_learned_len(), 0.0);
    }

    #[test]
    fn avg_learned_len() {
        let s = SolverStats {
            learned_clauses: 4,
            learned_literals: 10,
            ..SolverStats::default()
        };
        assert!((s.avg_learned_len() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn display_is_not_empty() {
        let s = SolverStats::default();
        assert!(s.to_string().contains("conflicts=0"));
    }

    #[test]
    fn display_covers_every_documented_counter() {
        let s = SolverStats {
            reused_conflicts: 3,
            minimized_literals: 17,
            ..SolverStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("reused=3"), "got: {text}");
        assert!(text.contains("minimized=17"), "got: {text}");
    }
}
