//! Solve outcomes.

use rescheck_cnf::{Assignment, SatStatus};
use std::fmt;

/// The outcome of a complete solve.
///
/// For SAT the solver hands back a total model that can be verified in
/// linear time ([`rescheck_cnf::Cnf::is_satisfied_by`]); for UNSAT the
/// evidence lives in the resolve trace the solver emitted, which an
/// independent checker validates.
///
/// # Examples
///
/// ```
/// use rescheck_cnf::Cnf;
/// use rescheck_solver::{SolveResult, Solver, SolverConfig};
///
/// let mut cnf = Cnf::new();
/// cnf.add_dimacs_clause(&[1, 2]);
/// let mut solver = Solver::new(SolverConfig::default());
/// solver.add_formula(&cnf);
/// match solver.solve() {
///     SolveResult::Satisfiable(model) => assert!(cnf.is_satisfied_by(&model)),
///     other => unreachable!("{other}"),
/// }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveResult {
    /// The formula is satisfiable; the payload is a satisfying total
    /// assignment.
    Satisfiable(Assignment),
    /// The formula is unsatisfiable.
    Unsatisfiable,
    /// The configured conflict budget ran out before an answer was found.
    ///
    /// Only produced when [`SolverConfig::conflict_limit`] is set; calling
    /// [`Solver::solve`] again resumes the search with a fresh budget.
    ///
    /// [`SolverConfig::conflict_limit`]: crate::SolverConfig::conflict_limit
    /// [`Solver::solve`]: crate::Solver::solve
    Unknown,
}

impl SolveResult {
    /// The claim as a [`SatStatus`].
    ///
    /// # Panics
    ///
    /// Panics on [`SolveResult::Unknown`], which makes no claim.
    pub fn status(&self) -> SatStatus {
        match self {
            SolveResult::Satisfiable(_) => SatStatus::Satisfiable,
            SolveResult::Unsatisfiable => SatStatus::Unsatisfiable,
            SolveResult::Unknown => panic!("an inconclusive result has no status"),
        }
    }

    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&Assignment> {
        match self {
            SolveResult::Satisfiable(m) => Some(m),
            _ => None,
        }
    }

    /// Consumes the result and returns the model, if satisfiable.
    pub fn into_model(self) -> Option<Assignment> {
        match self {
            SolveResult::Satisfiable(m) => Some(m),
            _ => None,
        }
    }

    /// Returns `true` for a SAT answer.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Satisfiable(_))
    }

    /// Returns `true` for an UNSAT answer.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SolveResult::Unsatisfiable)
    }
}

impl fmt::Display for SolveResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveResult::Unknown => f.write_str("UNKNOWN"),
            other => other.status().fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let model = Assignment::from_bools(&[true]);
        let sat = SolveResult::Satisfiable(model.clone());
        assert!(sat.is_sat());
        assert!(!sat.is_unsat());
        assert_eq!(sat.model(), Some(&model));
        assert_eq!(sat.clone().into_model(), Some(model));
        assert_eq!(sat.status(), SatStatus::Satisfiable);
        assert_eq!(sat.to_string(), "SATISFIABLE");

        let unsat = SolveResult::Unsatisfiable;
        assert!(unsat.is_unsat());
        assert_eq!(unsat.model(), None);
        assert_eq!(unsat.into_model(), None);

        let unknown = SolveResult::Unknown;
        assert!(!unknown.is_sat());
        assert!(!unknown.is_unsat());
        assert_eq!(unknown.model(), None);
        assert_eq!(unknown.to_string(), "UNKNOWN");
    }

    #[test]
    #[should_panic(expected = "no status")]
    fn unknown_has_no_status() {
        let _ = SolveResult::Unknown.status();
    }
}
